#!/usr/bin/env python3
"""Compare a fresh benchmark report against the committed baseline.

Usage:
    bench_compare.py BASELINE.json FRESH.json [--max-regression 0.20]

Two layers of checking:

1. **Structure** (always): the fresh report must contain every benchmark
   row present in the baseline — same sections, same (kernel, shape/world)
   identity keys, same timing fields. A refactor that silently drops a
   tracked kernel row fails here even in smoke mode. Benches listed in
   REQUIRED_METADATA (adaptive, straggler) must also carry the metadata
   that makes a run attributable (autotune provenance, kernel threads,
   active kernel table).

2. **Timings** (full runs only): every `*_ms` field shared by a matched
   row pair must not regress by more than `--max-regression` (default
   20%). Skipped when either report is a smoke run (`metadata.smoke` /
   `smoke` true) or when the reports come from different CPU models —
   cross-machine wall-clock deltas are noise, not regressions.

Exit codes: 0 ok, 1 regression or structural mismatch, 2 usage/IO error.
"""

import argparse
import json
import sys

# Fields that identify a row within a section (never compared as timings).
# The coarse keys name *what* is benchmarked (stable across smoke and full
# runs); the fine keys pin the exact configuration (shape, world size),
# which smoke mode shrinks — so structure checks use coarse identity and
# timing checks use the full identity. `engine` distinguishes the pipeline
# bench's per-engine breakdown rows (sequential / pipelined / streaming):
# dropping one engine's breakdown must fail the structure gate, and its
# `encode_ms`/`comm_ms`/`decode_ms`/`exposed_wait_ms` fields ride the same
# >20% regression policy as every other timing field.
# `transport` separates rows measured over different backends (sim vs
# tcp): a Sim row must never gate against a TCP row of the same method.
COARSE_KEYS = ("kernel", "method", "scheme", "regime", "engine", "transport")
FINE_KEYS = ("p", "m", "k", "n", "bucket_bytes", "workers", "gbps", "latency_us")

# Wall-clock fields that depend on the machine running the bench (the
# adaptive report keeps them "for honesty, never gated") — excluded from
# the timing regression gate; modelled `*_ms` fields are still compared.
NOISY_FIELDS = {"measured_step_ms"}

# Per-bench metadata the report must carry so runs stay attributable to a
# concrete kernel/autotune configuration (keyed by the report's "bench").
REQUIRED_METADATA = {
    "adaptive": ("autotune_provenance", "kernel_threads", "active_kernel_table"),
    "straggler": ("autotune_provenance", "kernel_threads", "active_kernel_table"),
}


def row_identity(section, row, fine):
    ident = [("section", section)]
    keys = COARSE_KEYS + FINE_KEYS if fine else COARSE_KEYS
    for key in keys:
        if key in row:
            ident.append((key, row[key]))
    return tuple(ident)


def iter_rows(report):
    """Yields (section, row) for every dict row in the report."""
    for section, value in report.items():
        if section in ("metadata", "bench", "smoke", "params"):
            continue
        if isinstance(value, dict):
            yield section, value
        elif isinstance(value, list):
            for row in value:
                if isinstance(row, dict):
                    yield section, row


def timing_fields(row):
    return {
        key: val
        for key, val in row.items()
        if key.endswith("_ms")
        and key not in NOISY_FIELDS
        and isinstance(val, (int, float))
        and val > 0
    }


def missing_metadata(report):
    """Names of required metadata keys absent from `report`, if any."""
    required = REQUIRED_METADATA.get(report.get("bench"), ())
    meta = report.get("metadata") or {}
    return [key for key in required if key not in meta]


def is_smoke(report):
    meta = report.get("metadata") or {}
    return bool(report.get("smoke") or meta.get("smoke"))


def cpu_model(report):
    meta = report.get("metadata") or {}
    return meta.get("cpu_model")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.20,
        help="maximum tolerated fractional slowdown per timing (default 0.20)",
    )
    args = parser.parse_args()

    try:
        with open(args.baseline) as f:
            baseline = json.load(f)
        with open(args.fresh) as f:
            fresh = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"bench_compare: cannot load reports: {err}", file=sys.stderr)
        return 2

    base_rows = {row_identity(s, r, True): r for s, r in iter_rows(baseline)}
    fresh_rows = {row_identity(s, r, True): r for s, r in iter_rows(fresh)}
    base_coarse = {row_identity(s, r, False): r for s, r in iter_rows(baseline)}
    fresh_coarse = {row_identity(s, r, False): r for s, r in iter_rows(fresh)}

    failures = []

    for name, report in (("baseline", baseline), ("fresh", fresh)):
        for key in missing_metadata(report):
            failures.append(f"{name} report lacks required metadata: {key}")

    # Layer 1: every benchmark the baseline tracks must still exist in the
    # fresh report with the same timing fields (coarse identity: smoke runs
    # shrink shapes/worlds but must not drop a tracked kernel or field).
    for ident, base_row in sorted(base_coarse.items()):
        if ident not in fresh_coarse:
            failures.append(f"missing benchmark: {dict(ident)}")
            continue
        missing = set(timing_fields(base_row)) - set(fresh_coarse[ident])
        if missing:
            failures.append(f"benchmark {dict(ident)} lost fields: {sorted(missing)}")

    # Layer 2: timing regression gate, full-run vs full-run on one machine.
    compare_times = not is_smoke(baseline) and not is_smoke(fresh)
    base_cpu, fresh_cpu = cpu_model(baseline), cpu_model(fresh)
    if compare_times and base_cpu and fresh_cpu and base_cpu != fresh_cpu:
        print(
            f"bench_compare: cpu mismatch ({base_cpu!r} vs {fresh_cpu!r}); "
            "skipping timing comparison"
        )
        compare_times = False

    checked = 0
    if compare_times:
        for ident, base_row in sorted(base_rows.items()):
            fresh_row = fresh_rows.get(ident)
            if fresh_row is None:
                continue
            for field, base_ms in timing_fields(base_row).items():
                fresh_ms = fresh_row.get(field)
                if not isinstance(fresh_ms, (int, float)):
                    continue
                checked += 1
                ratio = fresh_ms / base_ms
                if ratio > 1.0 + args.max_regression:
                    failures.append(
                        f"regression: {dict(ident)} {field} "
                        f"{base_ms:.3f}ms -> {fresh_ms:.3f}ms ({ratio:.2f}x)"
                    )

    mode = f"{checked} timings" if compare_times else "structure only (smoke)"
    if failures:
        for failure in failures:
            print(f"bench_compare: FAIL {failure}", file=sys.stderr)
        print(
            f"bench_compare: {len(failures)} failure(s) "
            f"({len(base_rows)} baseline rows, {mode})",
            file=sys.stderr,
        )
        return 1
    print(
        f"bench_compare: OK — {len(base_rows)} rows matched, {mode}, "
        f"tolerance {args.max_regression:.0%}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
