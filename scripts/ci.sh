#!/usr/bin/env bash
# Offline CI gate: build, tests, and lints for the whole workspace.
# No network access is assumed (all dependencies are vendored path crates).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

# Second pass with the SIMD kernel tables disabled: every dispatched call
# site must behave identically on the portable scalar path (the kernel
# property tests compare the tables directly; this run proves the whole
# pipeline — compression bit-exactness included — under forced-scalar
# dispatch, i.e. what a non-AVX2 host executes).
echo "==> cargo test --workspace -q (GCS_FORCE_SCALAR=1)"
GCS_FORCE_SCALAR=1 cargo test --workspace -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

# Static verification layer, all five passes: (1) model-check every
# collective schedule family (p = 2..16, dead-rank subsets <= 2);
# (2) lint the workspace source (unsafe hygiene, data-plane panic paths,
# raw accumulation loops, Relaxed-ordering allowlist); (3) explore the
# thread/event models of the pool, CommEngine, streaming window,
# adaptive broadcast, and TCP readers for races/deadlocks/lost wakeups;
# (4) prove the Hello handshake, decision protocol, and streaming FIFO
# window state machines; (5) fuzz the wire headers/frames and
# Payload::from_bytes for all 15 methods at a fixed seed (deterministic,
# finishes well under 10 s). Writes results/analyze_report.json and
# exits non-zero on any violation.
echo "==> gradcomp analyze --all"
cargo run -q --release -p gcs-cli --bin gradcomp-cli -- analyze --all

# Negative self-test: each pass must still DETECT its seeded negative —
# a racy thread model, a double-accepting Hello mutant, a panicking wire
# parser. If any of these exits zero the gate has lost its teeth.
for neg in race double-accept parser-panic; do
  echo "==> gradcomp analyze --inject $neg (must fail)"
  if cargo run -q --release -p gcs-cli --bin gradcomp-cli -- \
      analyze --inject "$neg" --json "/tmp/gcs_analyze_neg_$neg.json" \
      > /dev/null 2>&1; then
    echo "analyze --inject $neg exited zero: seeded negative NOT detected"
    exit 1
  fi
done

# Smoke-run the tracked benchmark binaries: tiny sizes, one iteration,
# no JSON rewrite — catches bit-rot in the bench plumbing without the
# minutes-long full runs. The datapath smoke runs under both dispatch
# modes so the scalar fallback paths stay executable too.
echo "==> bench smoke (datapath)"
GCS_BENCH_SMOKE=1 GCS_BENCH_OUT=results/bench_datapath_smoke.json \
  cargo run -q --release -p gcs-bench --bin datapath

echo "==> bench smoke (datapath, GCS_FORCE_SCALAR=1)"
GCS_BENCH_SMOKE=1 GCS_FORCE_SCALAR=1 cargo run -q --release -p gcs-bench --bin datapath

echo "==> bench smoke (pipeline)"
GCS_BENCH_SMOKE=1 GCS_BENCH_OUT=results/bench_pipeline_smoke.json \
  cargo run -q --release -p gcs-bench --bin pipeline

# Bench regression gate: the smoke reports must keep every tracked row of
# the committed baselines (structure check; timings are only diffed when
# comparing two full runs on the same CPU — see the script's docstring).
# Regenerate the committed files with full runs and the same script flags
# before landing intentional changes: a >20% slowdown on matched full-run
# rows fails the gate.
echo "==> bench smoke (adaptive)"
GCS_BENCH_SMOKE=1 GCS_BENCH_OUT=results/bench_adaptive_smoke.json \
  timeout 300 cargo run -q --release -p gcs-bench --bin adaptive

echo "==> bench compare (structure gate vs committed baselines)"
python3 scripts/bench_compare.py BENCH_datapath.json results/bench_datapath_smoke.json
python3 scripts/bench_compare.py BENCH_pipeline.json results/bench_pipeline_smoke.json
python3 scripts/bench_compare.py BENCH_adaptive.json results/bench_adaptive_smoke.json

# Fault-injection suite under two fixed seeds (decimal; the suite reads
# GCS_FAULT_SEED). Wrapped in `timeout` because the failure mode the fault
# plane guards against is a hang — a wedged collective must fail CI fast,
# not stall it.
echo "==> fault suite (seed 12648430)"
GCS_FAULT_SEED=12648430 timeout 300 cargo test -q -p gcs-cluster --test fault_injection

echo "==> fault suite (seed 271828)"
GCS_FAULT_SEED=271828 timeout 300 cargo test -q -p gcs-cluster --test fault_injection

# CommEngine poison ordering under concurrent submitters, same two seeds
# (the failure mode is a hang or a silent post-poison success).
echo "==> comm poison suite (seed 12648430)"
GCS_FAULT_SEED=12648430 timeout 300 cargo test -q -p gcs-cluster --test comm_poison

echo "==> comm poison suite (seed 271828)"
GCS_FAULT_SEED=271828 timeout 300 cargo test -q -p gcs-cluster --test comm_poison

# Backend-agnostic transport semantics (same workload on SimCluster and
# TcpCluster through the Transport trait) and the TCP-vs-sim bitexact
# gate, each under the same two seeds.
echo "==> transport trait suite (seed 12648430)"
GCS_FAULT_SEED=12648430 timeout 300 cargo test -q -p gcs-cluster --test transport_trait

echo "==> transport trait suite (seed 271828)"
GCS_FAULT_SEED=271828 timeout 300 cargo test -q -p gcs-cluster --test transport_trait

echo "==> transport bitexact suite (seed 12648430)"
GCS_FAULT_SEED=12648430 timeout 300 cargo test -q -p gcs-ddp --test transport_bitexact

echo "==> transport bitexact suite (seed 271828)"
GCS_FAULT_SEED=271828 timeout 300 cargo test -q -p gcs-ddp --test transport_bitexact

# Multi-process smoke: one orchestrator + two workers as REAL OS
# processes over loopback. The orchestrator verifies every worker's
# digest against the in-process SimCluster reference and exits non-zero
# on any mismatch; `timeout` guards the whole choreography because the
# failure mode of a control/data-plane bug is a hang.
echo "==> multi-process smoke (orchestrator + 2 workers on loopback)"
GRADCOMP=./target/release/gradcomp-cli
MP_DIR=$(mktemp -d)
trap 'rm -rf "$MP_DIR"' EXIT
timeout 120 "$GRADCOMP" orchestrator --world 2 --method topk:0.2 --steps 3 \
  --addr-file "$MP_DIR/orch.addr" > "$MP_DIR/orch.out" 2>&1 &
ORCH_PID=$!
for _ in $(seq 1 200); do
  [ -f "$MP_DIR/orch.addr" ] && break
  sleep 0.05
done
[ -f "$MP_DIR/orch.addr" ] || { echo "orchestrator never published its address"; exit 1; }
ORCH_ADDR=$(cat "$MP_DIR/orch.addr")
timeout 120 "$GRADCOMP" worker --orchestrator "$ORCH_ADDR" > "$MP_DIR/w0.out" 2>&1 &
W0_PID=$!
timeout 120 "$GRADCOMP" worker --orchestrator "$ORCH_ADDR" > "$MP_DIR/w1.out" 2>&1 &
W1_PID=$!
wait "$ORCH_PID" "$W0_PID" "$W1_PID" || {
  echo "multi-process smoke failed:"; cat "$MP_DIR"/*.out; exit 1;
}
grep -q "bit-identical to the sim reference" "$MP_DIR/orch.out" || {
  echo "orchestrator did not verify:"; cat "$MP_DIR/orch.out"; exit 1;
}
cat "$MP_DIR/orch.out"

# The adaptive controller under the same two fault seeds: delay-injected
# links must steer the measured-mode controller toward compression, and
# the steering must reproduce per seed (see adaptive_faults.rs).
echo "==> adaptive controller fault suite (seed 12648430)"
GCS_FAULT_SEED=12648430 timeout 300 cargo test -q -p gcs-ddp --test adaptive_faults

echo "==> adaptive controller fault suite (seed 271828)"
GCS_FAULT_SEED=271828 timeout 300 cargo test -q -p gcs-ddp --test adaptive_faults

echo "==> adaptive switch property suite"
timeout 300 cargo test -q -p gcs-ddp --test adaptive_switch

# Streaming-engine bit-exactness under the same two delay seeds: chunked
# streaming must stay bitwise equal to the chunked pipelined schedule for
# every registry method even when frames arrive late (the streaming bench
# smoke above already runs the streaming arm through the bench_compare
# structure gate).
echo "==> streaming bitexact suite (seed 12648430)"
GCS_FAULT_SEED=12648430 timeout 300 cargo test -q -p gcs-ddp --test streaming_bitexact

echo "==> streaming bitexact suite (seed 271828)"
GCS_FAULT_SEED=271828 timeout 300 cargo test -q -p gcs-ddp --test streaming_bitexact

echo "==> bench smoke (straggler)"
GCS_BENCH_SMOKE=1 GCS_BENCH_OUT=results/bench_straggler_smoke.json \
  timeout 300 cargo run -q --release -p gcs-bench --bin straggler
python3 scripts/bench_compare.py BENCH_straggler.json results/bench_straggler_smoke.json

# Transport bench: sim vs tcp rows carry a `transport` identity key so
# the gate never diffs a channel row against a socket row; the bench
# itself asserts cross-backend bit-identity every iteration.
echo "==> bench smoke (transport)"
GCS_BENCH_SMOKE=1 GCS_BENCH_OUT=results/bench_transport_smoke.json \
  timeout 300 cargo run -q --release -p gcs-bench --bin transport
python3 scripts/bench_compare.py BENCH_transport.json results/bench_transport_smoke.json

echo "CI OK"
