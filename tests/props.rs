//! Randomized (deterministically seeded) tests over the core data
//! structures and protocol invariants. Formerly proptest-based; rewritten
//! as seeded loops because the build environment is offline and proptest
//! cannot be vendored cheaply. Every invariant is preserved; case counts
//! match the old `ProptestConfig::with_cases` settings.

use gradcomp::compress::driver::{all_reduce_compressed, round_trip};
use gradcomp::compress::registry::MethodConfig;
use gradcomp::compress::{Compressor, Payload};
use gradcomp::tensor::bits::SignBits;
use gradcomp::tensor::f16::{f16_bits_to_f32, f32_to_f16_bits};
use gradcomp::tensor::select::top_k_abs;
use gradcomp::tensor::{stats, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn finite_vec(rng: &mut StdRng, max_len: usize) -> Vec<f32> {
    let len = rng.gen_range(1..max_len);
    (0..len).map(|_| rng.gen_range(-1e3f32..1e3)).collect()
}

/// Payload serialization round-trips for every variant reachable from a
/// compressor encode.
#[test]
fn payload_wire_roundtrip() {
    let methods = [
        MethodConfig::SyncSgd,
        MethodConfig::Fp16,
        MethodConfig::SignSgd,
        MethodConfig::TopK { ratio: 0.3 },
        MethodConfig::Qsgd { levels: 15 },
        MethodConfig::TernGrad,
        MethodConfig::RandomK { ratio: 0.3 },
    ];
    let mut rng = StdRng::seed_from_u64(0xB0B);
    for case in 0..64 {
        let data = finite_vec(&mut rng, 200);
        let method = &methods[case % methods.len()];
        let mut c = method.build().expect("builds");
        let g = Tensor::from_vec(data);
        let p = c.encode(0, &g).expect("encode");
        let bytes = p.to_bytes();
        let q = Payload::from_bytes(&bytes).expect("decode");
        assert_eq!(p, q, "case {case} {method:?}");
    }
}

/// Sign packing is a bijection on the sign pattern.
#[test]
fn sign_pack_unpack_is_identity() {
    let mut rng = StdRng::seed_from_u64(0x516);
    for _ in 0..64 {
        let data = finite_vec(&mut rng, 500);
        let bits = SignBits::pack(&data);
        let unpacked = bits.unpack(1.0);
        for (x, s) in data.iter().zip(&unpacked) {
            assert_eq!(*s, if *x >= 0.0 { 1.0 } else { -1.0 });
        }
    }
}

/// f16 conversion round-trips exactly for values already representable
/// and is within half-ULP otherwise.
#[test]
fn f16_roundtrip_error_bounded() {
    let mut rng = StdRng::seed_from_u64(0xF16);
    for _ in 0..256 {
        let x = rng.gen_range(-60000.0f32..60000.0);
        let r = f16_bits_to_f32(f32_to_f16_bits(x));
        let tol = x.abs().max(2.0f32.powi(-14)) * 2.0f32.powi(-11);
        assert!((r - x).abs() <= tol, "x={x} r={r}");
    }
}

/// top_k_abs returns exactly k entries whose magnitudes dominate all
/// excluded ones.
#[test]
fn top_k_dominance() {
    let mut rng = StdRng::seed_from_u64(0x709);
    for _ in 0..64 {
        let data = finite_vec(&mut rng, 300);
        let k = rng.gen_range(1usize..50).min(data.len());
        let sel = top_k_abs(&data, k);
        assert_eq!(sel.len(), k);
        let kept: std::collections::HashSet<u32> = sel.indices.iter().copied().collect();
        assert_eq!(kept.len(), k, "indices must be distinct");
        let min_kept = sel.values.iter().map(|v| v.abs()).fold(f32::MAX, f32::min);
        for (i, v) in data.iter().enumerate() {
            if !kept.contains(&(i as u32)) {
                assert!(v.abs() <= min_kept + 1e-6);
            }
        }
    }
}

/// syncSGD all-reduce over any worker count equals the sequential mean.
#[test]
fn syncsgd_allreduce_is_mean() {
    let mut rng = StdRng::seed_from_u64(0x3A7);
    for _ in 0..64 {
        let workers = rng.gen_range(2usize..6);
        let len = rng.gen_range(1usize..64);
        let seeds: Vec<u64> = (0..workers).map(|_| rng.gen_range(0u64..1000)).collect();
        let grads: Vec<Tensor> = seeds.iter().map(|&s| Tensor::randn([len], s)).collect();
        let mut comps: Vec<_> = (0..grads.len())
            .map(|_| MethodConfig::SyncSgd.build().expect("builds"))
            .collect();
        let outs = all_reduce_compressed(&mut comps, 0, &grads).expect("protocol");
        let mut mean = Tensor::zeros([len]);
        for g in &grads {
            mean.add_assign(g).expect("same shape");
        }
        mean.scale(1.0 / grads.len() as f32);
        assert!(stats::relative_l2_error(&mean, &outs[0]) < 1e-5);
    }
}

/// TernGrad zeroes small entries but may never flip the sign of the
/// largest-magnitude entry (p(keep) = 1 there).
#[test]
fn unbiased_quantizers_preserve_sign_of_large_entries() {
    let mut rng = StdRng::seed_from_u64(0x7E9);
    for _ in 0..64 {
        let data = finite_vec(&mut rng, 100);
        let g = Tensor::from_vec(data.clone());
        if g.linf_norm() == 0.0 {
            continue;
        }
        let mut c = MethodConfig::TernGrad.build().expect("builds");
        let out = round_trip(&mut c, 0, &g).expect("round trip");
        let (argmax, &maxv) = data
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).expect("finite"))
            .expect("non-empty");
        let o = out.data()[argmax];
        assert!(o != 0.0, "max-magnitude coordinate must be kept");
        assert_eq!(o.signum(), maxv.signum());
    }
}

/// The decoded output of every single-round method has the input's shape
/// and only finite values.
#[test]
fn decoded_gradients_are_finite() {
    let methods = [
        MethodConfig::SyncSgd,
        MethodConfig::Fp16,
        MethodConfig::SignSgd,
        MethodConfig::EfSignSgd,
        MethodConfig::TopK { ratio: 0.25 },
        MethodConfig::Qsgd { levels: 15 },
        MethodConfig::TernGrad,
        MethodConfig::RandomK { ratio: 0.25 },
        MethodConfig::OneBit,
    ];
    let mut rng = StdRng::seed_from_u64(0xD1F);
    for case in 0..64 {
        let data = finite_vec(&mut rng, 128);
        let method = &methods[case % methods.len()];
        let mut c = method.build().expect("builds");
        let g = Tensor::from_vec(data);
        let out = round_trip(&mut c, 0, &g).expect("round trip");
        assert_eq!(out.shape(), g.shape());
        assert!(out.data().iter().all(|x| x.is_finite()));
    }
}

/// Ring all-reduce over the real threaded cluster equals the sequential
/// sum for arbitrary buffer lengths and worker counts.
#[test]
fn threaded_ring_allreduce_matches_sequential_sum() {
    let mut rng = StdRng::seed_from_u64(0x417);
    for _ in 0..16 {
        let p = rng.gen_range(1usize..6);
        let len = rng.gen_range(0usize..40);
        let outs = gradcomp::cluster::SimCluster::run(p, |w| {
            let mut buf: Vec<f32> = (0..len).map(|i| (w.rank() * 100 + i) as f32).collect();
            w.all_reduce_sum(&mut buf).expect("all-reduce");
            buf
        });
        for out in &outs {
            for (i, &x) in out.iter().enumerate() {
                let expected: f32 = (0..p).map(|r| (r * 100 + i) as f32).sum();
                assert_eq!(x, expected);
            }
        }
    }
}

/// PowerSGD's two-round protocol leaves every worker with identical
/// decoded gradients, for arbitrary worker counts and shapes.
#[test]
fn powersgd_workers_always_agree() {
    let mut rng = StdRng::seed_from_u64(0x969);
    for _ in 0..16 {
        let p = rng.gen_range(2usize..5);
        let rows = rng.gen_range(2usize..10);
        let cols = rng.gen_range(2usize..10);
        let rank = rng.gen_range(1usize..4);
        let grads: Vec<Tensor> = (0..p as u64)
            .map(|s| Tensor::randn([rows, cols], s))
            .collect();
        let mut workers: Vec<_> = (0..p)
            .map(|_| MethodConfig::PowerSgd { rank }.build().expect("builds"))
            .collect();
        let outs = all_reduce_compressed(&mut workers, 0, &grads).expect("protocol");
        for w in 1..p {
            assert_eq!(&outs[0], &outs[w]);
        }
    }
}
