//! The paper's five headline findings (§1), each reproduced as an
//! executable assertion against this implementation.

use gradcomp::cluster::cost::NetworkModel;
use gradcomp::compress::registry::MethodConfig;
use gradcomp::core::ideal::{ideal_gap, required_compression, RequiredCompression};
use gradcomp::core::whatif::bandwidth_sweep;
use gradcomp::ddp::sim::{simulate_iteration, SimConfig};
use gradcomp::models::{presets, DeviceSpec};

/// Finding 1: "There is no utility in over-compressing gradients" — in a
/// >10 Gbps datacenter, ~2-4x compression (often just FP16) already
/// > suffices; 60x PowerSGD buys nothing extra.
#[test]
fn finding1_no_utility_in_overcompression() {
    let device = DeviceSpec::v100();
    let net = NetworkModel::datacenter_10gbps();
    for model in presets::paper_models() {
        let batch = if model.name.starts_with("BERT") {
            12
        } else {
            64
        };
        match required_compression(&model, &device, &net, 64, batch) {
            RequiredCompression::Achievable { ratio, .. } => {
                assert!(
                    ratio < 5.0,
                    "{}: only {ratio:.1}x compression is ever needed — far below the \
                     32-100x popular schemes advertise",
                    model.name
                );
            }
            RequiredCompression::LatencyBound => panic!("not latency bound at 10 Gbps"),
        }
    }
}

/// Finding 2: "Increasing batch size decreases the utility of gradient
/// compression."
#[test]
fn finding2_large_batches_kill_compression_benefit() {
    let model = presets::resnet101();
    let speedup = |batch: usize| {
        let sync =
            simulate_iteration(&SimConfig::new(model.clone(), 64).batch_per_worker(batch)).total_s;
        let psgd = simulate_iteration(
            &SimConfig::new(model.clone(), 64)
                .batch_per_worker(batch)
                .method(MethodConfig::PowerSgd { rank: 4 }),
        )
        .total_s;
        sync / psgd
    };
    let s16 = speedup(16);
    let s64 = speedup(64);
    assert!(s16 > 1.2, "PowerSGD should win at small batch: {s16}");
    assert!(s64 < 1.0, "PowerSGD should lose at batch 64: {s64}");
}

/// Finding 3: "Compression techniques that are not all-reducible do not
/// scale well" — SignSGD at 96 GPUs is several times slower than syncSGD
/// on ResNet-101 (paper: ~1075 ms vs <265 ms).
#[test]
fn finding3_non_all_reducible_methods_do_not_scale() {
    let model = presets::resnet101();
    let sync = simulate_iteration(&SimConfig::new(model.clone(), 96)).total_s;
    let sign = simulate_iteration(&SimConfig::new(model, 96).method(MethodConfig::SignSgd)).total_s;
    assert!(
        sign > 2.5 * sync,
        "SignSGD {:.0} ms vs syncSGD {:.0} ms at 96 GPUs",
        sign * 1e3,
        sync * 1e3
    );
}

/// Finding 4: "Back-propagation and gradient compression compete for
/// computational resources" — overlapping loses for every method tested.
#[test]
fn finding4_overlapped_compression_is_slower() {
    let model = presets::resnet101();
    for method in [
        MethodConfig::PowerSgd { rank: 4 },
        MethodConfig::TopK { ratio: 0.01 },
        MethodConfig::SignSgd,
    ] {
        let base = SimConfig::new(model.clone(), 16).method(method.clone());
        let seq = simulate_iteration(&base).total_s;
        let ovl = simulate_iteration(&base.clone().overlap_compression(true)).total_s;
        assert!(
            ovl > seq,
            "{method:?}: overlap should lose ({ovl} vs {seq})"
        );
    }
}

/// Finding 5: "For most settings there is limited opportunity for gradient
/// compression to provide speedup" — the syncSGD-to-ideal gap stays below
/// ~200 ms, while popular schemes' encode times alone eat most of it.
#[test]
fn finding5_limited_opportunity_window() {
    let device = DeviceSpec::v100();
    let net = NetworkModel::datacenter_10gbps();
    for model in presets::paper_models() {
        let batch = if model.name.starts_with("BERT") {
            16
        } else {
            64
        };
        let gap = ideal_gap(&model, &device, &net, 96, batch);
        assert!(gap < 0.25, "{}: gap {gap}", model.name);
        // Top-K's encode time alone exceeds the entire budget.
        let topk_encode =
            gradcomp::models::encode_cost::encode_cost(&MethodConfig::TopK { ratio: 0.01 }, &model)
                .total_seconds(96);
        assert!(
            topk_encode > gap,
            "{}: Top-K encode {topk_encode} should not fit in gap {gap}",
            model.name
        );
    }
}

/// §6 takeaway: "Improvements in network bandwidth will make gradient
/// compression less effective, whereas improvements in compute can make
/// them more effective."
#[test]
fn takeaway_bandwidth_up_compression_down() {
    let pts = bandwidth_sweep(
        &presets::resnet50(),
        &DeviceSpec::v100(),
        64,
        64,
        &MethodConfig::PowerSgd { rank: 4 },
        &[1.0, 10.0, 30.0],
        15e-6,
    );
    assert!(pts[0].speedup() > pts[1].speedup());
    assert!(pts[1].speedup() > pts[2].speedup());
    assert!(pts[0].speedup() > 1.0, "compression wins at 1 Gbps");
    assert!(pts[2].speedup() < 1.0, "compression loses at 30 Gbps");
}
