//! Property-based invariants of the timing simulator and performance
//! model — the guarantees every figure in the paper's evaluation rests on.

use gradcomp::cluster::cost::NetworkModel;
use gradcomp::compress::registry::MethodConfig;
use gradcomp::core::perf::predict_iteration;
use gradcomp::ddp::sim::{simulate_iteration, simulate_local_sgd, SimConfig};
use gradcomp::models::{presets, DeviceSpec, ModelSpec};
use proptest::prelude::*;

fn any_model() -> impl Strategy<Value = ModelSpec> {
    (0usize..3).prop_map(|i| match i {
        0 => presets::resnet50(),
        1 => presets::resnet101(),
        _ => presets::bert_base(),
    })
}

fn any_method() -> impl Strategy<Value = MethodConfig> {
    (0usize..6).prop_map(|i| match i {
        0 => MethodConfig::SyncSgd,
        1 => MethodConfig::Fp16,
        2 => MethodConfig::PowerSgd { rank: 4 },
        3 => MethodConfig::TopK { ratio: 0.01 },
        4 => MethodConfig::SignSgd,
        _ => MethodConfig::Qsgd { levels: 15 },
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The iteration can never be faster than the backward pass, and the
    /// breakdown's parts never exceed the total.
    #[test]
    fn total_dominates_parts(
        model in any_model(),
        method in any_method(),
        workers in 1usize..128,
        batch in 1usize..96,
    ) {
        let cfg = SimConfig::new(model, workers)
            .batch_per_worker(batch)
            .method(method);
        let b = simulate_iteration(&cfg);
        prop_assert!(b.total_s >= b.backward_s - 1e-12);
        prop_assert!(b.total_s + 1e-12 >= b.encode_decode_s);
        prop_assert!(b.exposed_comm_s <= b.comm_s + 1e-12);
        prop_assert!(b.total_s.is_finite() && b.total_s > 0.0);
    }

    /// Weak-scaling iteration time is non-decreasing in worker count for
    /// every method (more workers never makes a single iteration faster).
    #[test]
    fn monotone_in_workers(
        model in any_model(),
        method in any_method(),
        p in 2usize..64,
    ) {
        let t = |workers: usize| {
            simulate_iteration(
                &SimConfig::new(model.clone(), workers).method(method.clone()),
            )
            .total_s
        };
        prop_assert!(t(p + 8) + 1e-12 >= t(p), "method {method:?} p {p}");
    }

    /// More bandwidth never hurts.
    #[test]
    fn monotone_in_bandwidth(
        model in any_model(),
        method in any_method(),
        gbps in 1.0f64..40.0,
    ) {
        let t = |g: f64| {
            simulate_iteration(
                &SimConfig::new(model.clone(), 32)
                    .method(method.clone())
                    .network(NetworkModel::from_gbps(15e-6, g)),
            )
            .total_s
        };
        prop_assert!(t(gbps * 2.0) <= t(gbps) + 1e-12);
    }

    /// Faster compute never hurts (encode/decode scales along).
    #[test]
    fn monotone_in_compute(
        model in any_model(),
        method in any_method(),
        speedup in 1.0f64..4.0,
    ) {
        let t = |k: f64| {
            simulate_iteration(
                &SimConfig::new(model.clone(), 32)
                    .method(method.clone())
                    .device(DeviceSpec::v100().with_speedup(k)),
            )
            .total_s
        };
        prop_assert!(t(speedup * 1.5) <= t(speedup) + 1e-12);
    }

    /// The analytic model and the event simulator always agree on sign
    /// and never diverge by more than 25 % on the paper's grid.
    #[test]
    fn model_tracks_simulator(
        model in any_model(),
        method in any_method(),
        workers in 2usize..100,
        batch in 4usize..80,
    ) {
        let cfg = SimConfig::new(model, workers)
            .batch_per_worker(batch)
            .method(method.clone());
        let predicted = predict_iteration(&cfg).total_s;
        let simulated = simulate_iteration(&cfg).total_s;
        let rel = (predicted - simulated).abs() / simulated;
        prop_assert!(rel < 0.25, "{method:?}: {predicted} vs {simulated} ({rel:.3})");
    }

    /// Longer local-SGD periods never increase the per-step time, and the
    /// per-step time never drops below pure compute.
    #[test]
    fn local_sgd_monotone_in_period(
        model in any_model(),
        period in 1usize..32,
    ) {
        let cfg = SimConfig::new(model.clone(), 32).batch_per_worker(16);
        let a = simulate_local_sgd(&cfg, period).total_s;
        let b = simulate_local_sgd(&cfg, period * 2).total_s;
        prop_assert!(b <= a + 1e-12);
        let t_comp = cfg.device.backward_seconds(&model, 16);
        prop_assert!(b + 1e-12 >= t_comp);
    }

    /// Wire bytes reported by the simulator match the method's plan and
    /// never exceed the raw gradient size (plus metadata).
    #[test]
    fn wire_bytes_bounded_by_raw(
        model in any_model(),
        method in any_method(),
    ) {
        let cfg = SimConfig::new(model.clone(), 16).method(method);
        let b = simulate_iteration(&cfg);
        prop_assert!(b.wire_bytes <= model.size_bytes() + 1024 * model.num_layers());
    }
}
