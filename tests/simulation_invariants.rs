//! Randomized (deterministically seeded) invariants of the timing
//! simulator and performance model — the guarantees every figure in the
//! paper's evaluation rests on. Formerly proptest-based; rewritten as
//! seeded loops for the offline build (case counts preserved).

use gradcomp::cluster::cost::NetworkModel;
use gradcomp::compress::registry::MethodConfig;
use gradcomp::core::perf::predict_iteration;
use gradcomp::ddp::sim::{simulate_iteration, simulate_local_sgd, SimConfig};
use gradcomp::models::{presets, DeviceSpec, ModelSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn any_model(rng: &mut StdRng) -> ModelSpec {
    match rng.gen_range(0usize..3) {
        0 => presets::resnet50(),
        1 => presets::resnet101(),
        _ => presets::bert_base(),
    }
}

fn any_method(rng: &mut StdRng) -> MethodConfig {
    match rng.gen_range(0usize..6) {
        0 => MethodConfig::SyncSgd,
        1 => MethodConfig::Fp16,
        2 => MethodConfig::PowerSgd { rank: 4 },
        3 => MethodConfig::TopK { ratio: 0.01 },
        4 => MethodConfig::SignSgd,
        _ => MethodConfig::Qsgd { levels: 15 },
    }
}

/// The iteration can never be faster than the backward pass, and the
/// breakdown's parts never exceed the total.
#[test]
fn total_dominates_parts() {
    let mut rng = StdRng::seed_from_u64(0x101);
    for _ in 0..48 {
        let model = any_model(&mut rng);
        let method = any_method(&mut rng);
        let workers = rng.gen_range(1usize..128);
        let batch = rng.gen_range(1usize..96);
        let cfg = SimConfig::new(model, workers)
            .batch_per_worker(batch)
            .method(method);
        let b = simulate_iteration(&cfg);
        assert!(b.total_s >= b.backward_s - 1e-12);
        assert!(b.total_s + 1e-12 >= b.encode_decode_s);
        assert!(b.exposed_comm_s <= b.comm_s + 1e-12);
        assert!(b.total_s.is_finite() && b.total_s > 0.0);
    }
}

/// Weak-scaling iteration time is non-decreasing in worker count for
/// every method (more workers never makes a single iteration faster).
#[test]
fn monotone_in_workers() {
    let mut rng = StdRng::seed_from_u64(0x102);
    for _ in 0..48 {
        let model = any_model(&mut rng);
        let method = any_method(&mut rng);
        let p = rng.gen_range(2usize..64);
        let t = |workers: usize| {
            simulate_iteration(&SimConfig::new(model.clone(), workers).method(method.clone()))
                .total_s
        };
        assert!(t(p + 8) + 1e-12 >= t(p), "method {method:?} p {p}");
    }
}

/// More bandwidth never hurts.
#[test]
fn monotone_in_bandwidth() {
    let mut rng = StdRng::seed_from_u64(0x103);
    for _ in 0..48 {
        let model = any_model(&mut rng);
        let method = any_method(&mut rng);
        let gbps = rng.gen_range(1.0f64..40.0);
        let t = |g: f64| {
            simulate_iteration(
                &SimConfig::new(model.clone(), 32)
                    .method(method.clone())
                    .network(NetworkModel::from_gbps(15e-6, g)),
            )
            .total_s
        };
        assert!(t(gbps * 2.0) <= t(gbps) + 1e-12);
    }
}

/// Faster compute never hurts (encode/decode scales along).
#[test]
fn monotone_in_compute() {
    let mut rng = StdRng::seed_from_u64(0x104);
    for _ in 0..48 {
        let model = any_model(&mut rng);
        let method = any_method(&mut rng);
        let speedup = rng.gen_range(1.0f64..4.0);
        let t = |k: f64| {
            simulate_iteration(
                &SimConfig::new(model.clone(), 32)
                    .method(method.clone())
                    .device(DeviceSpec::v100().with_speedup(k)),
            )
            .total_s
        };
        assert!(t(speedup * 1.5) <= t(speedup) + 1e-12);
    }
}

/// The analytic model and the event simulator always agree on sign and
/// never diverge by more than 25 % on the paper's grid.
#[test]
fn model_tracks_simulator() {
    let mut rng = StdRng::seed_from_u64(0x105);
    for _ in 0..48 {
        let model = any_model(&mut rng);
        let method = any_method(&mut rng);
        let workers = rng.gen_range(2usize..100);
        let batch = rng.gen_range(4usize..80);
        let cfg = SimConfig::new(model, workers)
            .batch_per_worker(batch)
            .method(method.clone());
        let predicted = predict_iteration(&cfg).total_s;
        let simulated = simulate_iteration(&cfg).total_s;
        let rel = (predicted - simulated).abs() / simulated;
        assert!(
            rel < 0.25,
            "{method:?}: {predicted} vs {simulated} ({rel:.3})"
        );
    }
}

/// Longer local-SGD periods never increase the per-step time, and the
/// per-step time never drops below pure compute.
#[test]
fn local_sgd_monotone_in_period() {
    let mut rng = StdRng::seed_from_u64(0x106);
    for _ in 0..48 {
        let model = any_model(&mut rng);
        let period = rng.gen_range(1usize..32);
        let cfg = SimConfig::new(model.clone(), 32).batch_per_worker(16);
        let a = simulate_local_sgd(&cfg, period).total_s;
        let b = simulate_local_sgd(&cfg, period * 2).total_s;
        assert!(b <= a + 1e-12);
        let t_comp = cfg.device.backward_seconds(&model, 16);
        assert!(b + 1e-12 >= t_comp);
    }
}

/// Wire bytes reported by the simulator match the method's plan and never
/// exceed the raw gradient size (plus metadata).
#[test]
fn wire_bytes_bounded_by_raw() {
    let mut rng = StdRng::seed_from_u64(0x107);
    for _ in 0..48 {
        let model = any_model(&mut rng);
        let method = any_method(&mut rng);
        let cfg = SimConfig::new(model.clone(), 16).method(method);
        let b = simulate_iteration(&cfg);
        assert!(b.wire_bytes <= model.size_bytes() + 1024 * model.num_layers());
    }
}
