//! End-to-end integration tests spanning every crate: real gradients,
//! real compression, real collectives, real training, and the performance
//! model on top.

use gradcomp::compress::registry::MethodConfig;
use gradcomp::core::perf::predict_iteration;
use gradcomp::ddp::exec::data_parallel_exchange;
use gradcomp::ddp::sim::{simulate_iteration, SimConfig};
use gradcomp::models::presets;
use gradcomp::tensor::{stats, Tensor};
use gradcomp::train::harness::{train_distributed, TrainConfig};
use gradcomp::train::task::LinearRegression;

/// Per-worker gradients for a small multi-layer "model".
fn worker_grads(workers: usize, seed: u64) -> Vec<Vec<Tensor>> {
    (0..workers as u64)
        .map(|w| {
            vec![
                Tensor::randn([16, 8], seed + w * 31),
                Tensor::randn([16], seed + w * 31 + 1),
                Tensor::randn([4, 16], seed + w * 31 + 2),
            ]
        })
        .collect()
}

#[test]
fn every_catalogue_method_exchanges_over_real_cluster() {
    for cfg in gradcomp::compress::registry::table1_methods() {
        let grads = worker_grads(3, 5);
        let outs =
            data_parallel_exchange(&cfg, &grads).unwrap_or_else(|e| panic!("{cfg:?} failed: {e}"));
        assert_eq!(outs.len(), 3);
        // All workers decode the same gradients, with the right shapes.
        for w in 1..3 {
            assert_eq!(outs[0], outs[w], "{cfg:?} diverged across workers");
        }
        for (out, g) in outs[0].iter().zip(&grads[0]) {
            assert_eq!(out.shape(), g.shape());
            assert!(out.data().iter().all(|x| x.is_finite()));
        }
    }
}

#[test]
fn syncsgd_exchange_is_the_exact_mean() {
    let workers = 4;
    let grads = worker_grads(workers, 9);
    let outs = data_parallel_exchange(&MethodConfig::SyncSgd, &grads).expect("exchange");
    for layer in 0..3 {
        let mut mean = Tensor::zeros(grads[0][layer].shape().clone());
        for w in &grads {
            mean.add_assign(&w[layer]).expect("same shapes");
        }
        mean.scale(1.0 / workers as f32);
        let err = stats::relative_l2_error(&mean, &outs[0][layer]);
        assert!(err < 1e-5, "layer {layer} error {err}");
    }
}

#[test]
fn distributed_training_loss_decreases_for_all_reducible_methods() {
    let task = LinearRegression::new(6, 96, 0.0, 3);
    let cfg = TrainConfig::new()
        .workers(3)
        .steps(120)
        .lr(0.1)
        .batch(8)
        .seed(2);
    for method in [
        MethodConfig::SyncSgd,
        MethodConfig::Fp16,
        MethodConfig::PowerSgd { rank: 2 },
        MethodConfig::RandomK { ratio: 0.5 },
    ] {
        let rep = train_distributed(&task, &method, &cfg).expect("training runs");
        assert!(
            rep.final_loss() < 0.2 * rep.initial_loss(),
            "{method:?}: {} -> {}",
            rep.initial_loss(),
            rep.final_loss()
        );
    }
}

#[test]
fn simulator_model_and_measurement_agree_on_winner() {
    // Whatever the analytic model says about "does PowerSGD beat syncSGD",
    // the event simulator must agree, across the full grid.
    for model in presets::paper_models() {
        let batch = if model.name.starts_with("BERT") {
            12
        } else {
            64
        };
        for p in [8usize, 32, 96] {
            let sync_cfg = SimConfig::new(model.clone(), p).batch_per_worker(batch);
            let psgd_cfg = sync_cfg.clone().method(MethodConfig::PowerSgd { rank: 4 });
            let model_says =
                predict_iteration(&psgd_cfg).total_s < predict_iteration(&sync_cfg).total_s;
            let sim_says =
                simulate_iteration(&psgd_cfg).total_s < simulate_iteration(&sync_cfg).total_s;
            assert_eq!(
                model_says, sim_says,
                "{} p={p}: model and simulator disagree on the winner",
                model.name
            );
        }
    }
}

#[test]
fn compression_ratio_and_wire_bytes_are_consistent() {
    // The wire plan (used by the timing models) must agree with the bytes
    // the actual payloads serialize to, within framing overhead.
    use gradcomp::compress::Compressor;
    use gradcomp::ddp::wire::wire_plan;

    let model = presets::tiny_mlp(32, 64, 10);
    let grads: Vec<Tensor> = model
        .layers
        .iter()
        .enumerate()
        .map(|(i, l)| Tensor::randn(l.shape.clone(), i as u64))
        .collect();
    for method in [
        MethodConfig::SignSgd,
        MethodConfig::Fp16,
        MethodConfig::TernGrad,
        MethodConfig::Qsgd { levels: 15 },
        MethodConfig::TopK { ratio: 0.25 },
    ] {
        let plan_bytes = wire_plan(&method, &model).total_bytes();
        let mut compressor = method.build().expect("builds");
        let mut actual = 0usize;
        for (layer, g) in grads.iter().enumerate() {
            actual += compressor.encode(layer, g).expect("encode").wire_bytes();
        }
        let rel = (plan_bytes as f64 - actual as f64).abs() / actual as f64;
        assert!(
            rel < 0.1,
            "{method:?}: plan {plan_bytes} vs actual {actual} ({rel:.3})"
        );
    }
}

#[test]
fn weak_scaling_shapes_hold_end_to_end() {
    // The paper's central contrast in one test: scaling 8 -> 96 workers,
    // gather-based methods blow up, ring-based ones stay flat.
    let model = presets::resnet101();
    let slowdown = |method: MethodConfig| {
        let t8 =
            simulate_iteration(&SimConfig::new(model.clone(), 8).method(method.clone())).total_s;
        let t96 = simulate_iteration(&SimConfig::new(model.clone(), 96).method(method)).total_s;
        t96 / t8
    };
    assert!(slowdown(MethodConfig::SyncSgd) < 1.3);
    assert!(slowdown(MethodConfig::PowerSgd { rank: 4 }) < 1.3);
    assert!(slowdown(MethodConfig::SignSgd) > 2.0);
    assert!(slowdown(MethodConfig::TopK { ratio: 0.01 }) > 1.5);
}
