//! Offline drop-in replacement for the subset of the `rand` crate this
//! workspace uses. The container image has no registry access, so the real
//! crates.io `rand` cannot be resolved; this shim keeps the same module
//! paths (`rand::rngs::StdRng`, `rand::{Rng, SeedableRng}`,
//! `rand::seq::SliceRandom`) so call sites compile unchanged.
//!
//! The generator is SplitMix64 — a 64-bit state, full-period mixer that is
//! more than adequate for the stochastic-rounding and sampling duties it
//! serves here. Sequences differ from crates.io `rand`'s ChaCha-based
//! `StdRng`, which is fine: nothing in the workspace depends on exact
//! streams, only on determinism per seed.

/// Low-level entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a raw 64-bit word.
pub trait Sample: Sized {
    fn sample(word: u64) -> Self;
}

impl Sample for f32 {
    #[inline]
    fn sample(word: u64) -> Self {
        // 24 high-quality mantissa bits -> uniform in [0, 1).
        ((word >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Sample for f64 {
    #[inline]
    fn sample(word: u64) -> Self {
        ((word >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for u64 {
    #[inline]
    fn sample(word: u64) -> Self {
        word
    }
}

impl Sample for u32 {
    #[inline]
    fn sample(word: u64) -> Self {
        (word >> 32) as u32
    }
}

impl Sample for bool {
    #[inline]
    fn sample(word: u64) -> Self {
        word >> 63 != 0
    }
}

/// Ranges that `Rng::gen_range` accepts. The output type is a trait
/// parameter (as in crates.io rand) so `gen_range(0.0..1.0)` infers the
/// float width from the binding site.
pub trait SampleRange<T> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_range!(usize, u64, u32, i64, i32);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Sample>::sample(rng.next_u64());
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

float_range!(f32, f64);

/// High-level sampling interface, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: Sample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self.next_u64())
    }

    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 generator behind the `StdRng` name the workspace imports.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        #[inline]
        fn seed_from_u64(seed: u64) -> Self {
            // One mixing round decorrelates small consecutive seeds.
            let mut rng = StdRng { state: seed };
            rng.next_u64();
            rng
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Fisher–Yates shuffling over slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        fn shuffle<G: RngCore>(&mut self, rng: &mut G);

        /// Shuffles the first `amount` elements into place; returns the
        /// shuffled prefix and the untouched remainder.
        fn partial_shuffle<G: RngCore>(
            &mut self,
            rng: &mut G,
            amount: usize,
        ) -> (&mut [Self::Item], &mut [Self::Item]);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<G: RngCore>(&mut self, rng: &mut G) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }

        fn partial_shuffle<G: RngCore>(
            &mut self,
            rng: &mut G,
            amount: usize,
        ) -> (&mut [T], &mut [T]) {
            let amount = amount.min(self.len());
            for i in 0..amount {
                let j = rng.gen_range(i..self.len());
                self.swap(i, j);
            }
            self.split_at_mut(amount)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_hits_every_bucket() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.gen_range(-2.5f32..7.5);
            assert!((-2.5..7.5).contains(&x));
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }
}
