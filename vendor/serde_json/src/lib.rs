//! Offline drop-in replacement for the subset of `serde_json` this
//! workspace uses: the `Value` tree, the `json!` constructor macro,
//! pretty-printing, and a strict JSON parser. The container image has no
//! registry access, so the real crates.io `serde_json` cannot be resolved;
//! this shim keeps the same paths (`serde_json::Value`, `serde_json::json!`,
//! `serde_json::to_string_pretty`, `serde_json::from_str`) so call sites
//! compile unchanged.
//!
//! Numbers are stored as `f64` (every value the benches emit fits in 53
//! bits); integral numbers print without a fractional part, matching the
//! upstream output for the workspace's benchmark artifacts. Objects keep
//! insertion order.

use std::fmt;

/// A JSON value tree. Objects are ordered key/value pairs.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n)
                if n.fract() == 0.0 && *n >= i64::MIN as f64 && *n <= i64::MAX as f64 =>
            {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object field lookup; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

macro_rules! eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_f64() == Some(*other as f64)
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

eq_int!(i32, i64, u32, u64, usize);

macro_rules! from_num {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Value {
                Value::Number(n as f64)
            }
        }
    )*};
}

from_num!(f64, f32, i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<&&str> for Value {
    fn from(s: &&str) -> Value {
        Value::String((*s).to_string())
    }
}

impl From<&String> for Value {
    fn from(s: &String) -> Value {
        Value::String(s.clone())
    }
}

impl From<Vec<Value>> for Value {
    fn from(a: Vec<Value>) -> Value {
        Value::Array(a)
    }
}

impl From<&Value> for Value {
    fn from(v: &Value) -> Value {
        v.clone()
    }
}

/// By-reference conversion into [`Value`] — the `json!` macro borrows its
/// value expressions (like real serde_json, whose `Serialize` is blanket
/// implemented for references), so `json!({"k": some.string_field})` does
/// not move the field out of a borrowed struct.
pub trait ToJson {
    fn to_json(&self) -> Value;
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

macro_rules! to_json_num {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
    )*};
}

to_json_num!(f64, f32, i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Value {
        Value::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

/// Builds a [`Value`] from a JSON-shaped literal. Supports `null`, array
/// literals of expressions, object literals with string-literal keys and
/// expression values (nest by writing `json!` again in value position),
/// and bare expressions convertible via [`ToJson`]. Values are borrowed,
/// never moved.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::ToJson::to_json(&$elem) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (($key).to_string(), $crate::ToJson::to_json(&$val)) ),*
        ])
    };
    ($other:expr) => { $crate::ToJson::to_json(&$other) };
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: f64) {
    if n.is_finite() && n.fract() == 0.0 && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else if n.is_finite() {
        out.push_str(&format!("{n}"));
    } else {
        // JSON has no inf/nan; mirror serde_json's lossy `null` here.
        out.push_str("null");
    }
}

fn write_pretty(out: &mut String, v: &Value, indent: usize) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(a) => {
            if a.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, elem) in a.iter().enumerate() {
                out.push_str(&pad_in);
                write_pretty(out, elem, indent + 1);
                if i + 1 < a.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, val)) in pairs.iter().enumerate() {
                out.push_str(&pad_in);
                write_escaped(out, k);
                out.push_str(": ");
                write_pretty(out, val, indent + 1);
                if i + 1 < pairs.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&mut out, value, 0);
    Ok(out)
}

pub fn to_string(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&mut out, value);
    Ok(out)
}

fn write_compact(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(a) => {
            out.push('[');
            for (i, elem) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, elem);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_compact(out, val);
            }
            out.push('}');
        }
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(Error::new(format!("unexpected byte at {}", self.pos))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(Error::new("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(Error::new("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode multi-byte UTF-8 starting at pos - 1.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    if start + len > self.bytes.len() {
                        return Err(Error::new("truncated UTF-8"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::new(format!("invalid number '{text}'")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            out.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(out));
                }
                _ => return Err(Error::new("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.parse_value()?;
            out.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(out));
                }
                _ => return Err(Error::new("expected ',' or '}'")),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Target types for [`from_str`], mirroring the workspace's two uses:
/// `Value` and `Vec<Value>`.
pub trait FromJson: Sized {
    fn from_value(v: Value) -> Result<Self, Error>;
}

impl FromJson for Value {
    fn from_value(v: Value) -> Result<Self, Error> {
        Ok(v)
    }
}

impl FromJson for Vec<Value> {
    fn from_value(v: Value) -> Result<Self, Error> {
        match v {
            Value::Array(a) => Ok(a),
            _ => Err(Error::new("expected a JSON array")),
        }
    }
}

pub fn from_str<T: FromJson>(text: &str) -> Result<T, Error> {
    let mut p = Parser::new(text);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new("trailing characters after JSON value"));
    }
    T::from_value(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_pretty() {
        let v = json!({
            "name": "ring",
            "workers": 8,
            "seconds": 0.125,
            "enabled": true,
            "tags": json!(["a", "b"]),
            "nested": json!({"k": 1}),
        });
        let text = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn integral_numbers_print_without_fraction() {
        assert_eq!(to_string(&json!(96)).unwrap(), "96");
        assert_eq!(to_string(&json!(0.5)).unwrap(), "0.5");
    }

    #[test]
    fn index_and_comparisons() {
        let v = json!({"workers": 96, "all_reduce": true, "method": "ring"});
        assert_eq!(v["workers"], 96);
        assert!(v["all_reduce"] == true);
        assert_eq!(v["method"], "ring");
        assert_eq!(v["workers"].as_u64(), Some(96));
        assert!(v["missing"].is_null());
    }

    #[test]
    fn parses_vec_of_values() {
        let rows: Vec<Value> = from_str(r#"[{"a": 1}, {"a": 2}]"#).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1]["a"], 2);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = json!("line\n\"quoted\"\tand\\slash");
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }
}
