//! Facade crate for the gradient-compression utility study — a Rust
//! reproduction of *"On the Utility of Gradient Compression in Distributed
//! Training Systems"* (MLSys 2022).
//!
//! Re-exports every sub-crate under one roof:
//!
//! * [`tensor`] — dense `f32` tensors, orthogonalization, top-k, sign
//!   packing;
//! * [`compress`] — the 14 gradient-compression schemes (PowerSGD, Top-K,
//!   SignSGD, QSGD, …) behind one round-based [`compress::Compressor`]
//!   protocol;
//! * [`cluster`] — in-process multi-worker collectives + α–β cost model;
//! * [`models`] — ResNet/BERT/VGG specs, V100-calibrated compute model,
//!   DDP bucketing;
//! * [`ddp`] — discrete-event iteration simulator + real-execution
//!   data-parallel engine;
//! * [`train`] — convergence validation on synthetic tasks;
//! * [`core`] — the paper's performance model, ideal-scaling analysis and
//!   what-if engine.
//!
//! # Quick start
//!
//! ```
//! use gradcomp::compress::{driver::round_trip, powersgd::PowerSgd};
//! use gradcomp::tensor::Tensor;
//!
//! # fn main() -> Result<(), gradcomp::compress::CompressError> {
//! let grad = Tensor::randn([64, 128], 7);
//! let mut compressor = PowerSgd::new(4)?;
//! let approx = round_trip(&mut compressor, 0, &grad)?;
//! assert_eq!(approx.shape(), grad.shape());
//! # Ok(())
//! # }
//! ```

pub use gcs_cluster as cluster;
pub use gcs_compress as compress;
pub use gcs_core as core;
pub use gcs_ddp as ddp;
pub use gcs_models as models;
pub use gcs_tensor as tensor;
pub use gcs_train as train;
