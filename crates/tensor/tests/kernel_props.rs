//! Property tests: every vectorized kernel table must be exactly
//! interchangeable with the scalar table, and the pooled (banded) entry
//! points must be exactly interchangeable with serial execution.
//!
//! Every dispatched kernel is checked across lengths covering every lane
//! remainder (0..2 x widest lane width and beyond), with payloads
//! containing NaN, ±0, ±inf and denormals. Bit kernels must be
//! **byte-identical**; float kernels must be **bit-identical under the
//! fixed association order** (elementwise ops have no reassociation;
//! `sum_abs` is lane-striped identically in every table).
//!
//! [`kernels::tables`] enumerates the tables the host supports, so on an
//! AVX-512 machine each check runs scalar-vs-AVX2 *and* scalar-vs-AVX-512;
//! on hosts without SIMD the pair list is empty and the table checks
//! degenerate to the always-on pooled/threaded properties.

use gcs_tensor::kernels::{self, Kernels};
use gcs_tensor::pool::Pool;

/// Lengths covering lane remainders 0..16 twice (AVX-512 is 16 f32 lanes),
/// word-boundary remainders 0..32, and sizes that hit every unrolled path.
fn lengths() -> Vec<usize> {
    let mut v: Vec<usize> = (0..=67).collect();
    v.extend([95, 96, 97, 128, 1000, 4096, 4097]);
    v
}

/// Deterministic "adversarial" payload: a pseudo-random mix seeded per
/// index, with NaN, ±0, ±inf and a denormal sprinkled at fixed strides.
fn payload(n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| match i % 13 {
            0 => 0.0,
            1 => -0.0,
            2 => f32::NAN,
            3 => -f32::NAN,
            4 => f32::INFINITY,
            5 => f32::NEG_INFINITY,
            6 => 1.0e-40, // denormal
            _ => {
                let x = ((i as u32).wrapping_mul(2654435761) >> 8) as f32;
                (x / 1.0e6 - 8.0) * 1.7
            }
        })
        .collect()
}

/// `(scalar, vectorized)` pairs: every vectorized table the host supports
/// is checked against the scalar reference.
fn pairs() -> Vec<(&'static Kernels, &'static Kernels)> {
    let ts = kernels::tables();
    ts[1..].iter().map(|t| (ts[0], *t)).collect()
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Bit patterns with NaNs canonicalized. Arithmetic float kernels are
/// bit-identical except for NaN *payloads*: when both inputs of an add are
/// NaN, x86 keeps the first operand's payload, and LLVM may commute the
/// scalar `a + b` — IEEE-754 deliberately leaves payload propagation
/// unspecified. The contract is: NaN in exactly the same lanes, every
/// non-NaN lane bit-identical.
fn canon_bits(v: &[f32]) -> Vec<u32> {
    v.iter()
        .map(|x| if x.is_nan() { 0x7FC0_0000 } else { x.to_bits() })
        .collect()
}

#[test]
fn sign_pack_is_byte_identical() {
    for (sc, simd) in pairs() {
        let tbl = simd.name;
        for n in lengths() {
            let data = payload(n);
            let words = n.div_ceil(32);
            let mut a = vec![0u32; words];
            let mut b = vec![0xdead_beefu32; words];
            (sc.sign_pack)(&data, &mut a);
            (simd.sign_pack)(&data, &mut b);
            assert_eq!(a, b, "{tbl} n={n}");
        }
    }
}

#[test]
fn unpack_fill_and_add_are_byte_identical() {
    for (sc, simd) in pairs() {
        let tbl = simd.name;
        for n in lengths() {
            let data = payload(n);
            let mut words = vec![0u32; n.div_ceil(32)];
            (sc.sign_pack)(&data, &mut words);
            // Asymmetric neg/pos, including a negative-zero reconstruction.
            for (neg, pos) in [(-1.5f32, 0.25f32), (-0.0, 2.0)] {
                let mut a = vec![7.0f32; n];
                let mut b = vec![7.0f32; n];
                (sc.unpack_fill)(&words, neg, pos, &mut a);
                (simd.unpack_fill)(&words, neg, pos, &mut b);
                assert_eq!(bits(&a), bits(&b), "{tbl} fill n={n}");
                let mut a2 = data.clone();
                let mut b2 = data.clone();
                (sc.unpack_add)(&words, neg, pos, &mut a2);
                (simd.unpack_add)(&words, neg, pos, &mut b2);
                assert_eq!(bits(&a2), bits(&b2), "{tbl} add n={n}");
            }
        }
    }
}

#[test]
fn vote_add_and_pack_are_byte_identical() {
    for (sc, simd) in pairs() {
        let tbl = simd.name;
        for n in lengths() {
            let mut tally_a: Vec<i32> = (0..n as i32).map(|i| (i % 7) - 3).collect();
            let mut tally_b = tally_a.clone();
            for voter in 0..3u32 {
                let data: Vec<f32> = (0..n)
                    .map(|i| {
                        if (i as u32 ^ voter) % 3 == 0 {
                            1.0
                        } else {
                            -1.0
                        }
                    })
                    .collect();
                let mut words = vec![0u32; n.div_ceil(32)];
                (sc.sign_pack)(&data, &mut words);
                (sc.vote_add)(&words, &mut tally_a);
                (simd.vote_add)(&words, &mut tally_b);
                assert_eq!(tally_a, tally_b, "{tbl} n={n} voter={voter}");
            }
            let mut wa = vec![0u32; n.div_ceil(32)];
            let mut wb = vec![0xffff_ffffu32; n.div_ceil(32)];
            (sc.vote_pack)(&tally_a, &mut wa);
            (simd.vote_pack)(&tally_b, &mut wb);
            assert_eq!(wa, wb, "{tbl} pack n={n}");
        }
    }
}

#[test]
fn byte_conversions_are_byte_identical() {
    for (sc, simd) in pairs() {
        let tbl = simd.name;
        for n in lengths() {
            let data = payload(n);
            let mut ba = vec![0u8; n * 4];
            let mut bb = vec![0xAAu8; n * 4];
            (sc.f32s_to_bytes)(&data, &mut ba);
            (simd.f32s_to_bytes)(&data, &mut bb);
            assert_eq!(ba, bb, "{tbl} f32s_to_bytes n={n}");

            let words: Vec<u32> = (0..n as u32).map(|i| i.wrapping_mul(0x9E3779B9)).collect();
            let mut ua = vec![0u8; n * 4];
            let mut ub = vec![0x55u8; n * 4];
            (sc.u32s_to_bytes)(&words, &mut ua);
            (simd.u32s_to_bytes)(&words, &mut ub);
            assert_eq!(ua, ub, "{tbl} u32s_to_bytes n={n}");

            let mut fa = vec![0.0f32; n];
            let mut fb = vec![1.0f32; n];
            (sc.bytes_to_f32s)(&ba, &mut fa);
            (simd.bytes_to_f32s)(&ba, &mut fb);
            assert_eq!(bits(&fa), bits(&fb), "{tbl} bytes_to_f32s n={n}");

            let mut wa = vec![0u32; n];
            let mut wb = vec![1u32; n];
            (sc.bytes_to_u32s)(&ua, &mut wa);
            (simd.bytes_to_u32s)(&ua, &mut wb);
            assert_eq!(wa, wb, "{tbl} bytes_to_u32s n={n}");
        }
    }
}

#[test]
fn float_kernels_match_bitwise_under_fixed_association() {
    for (sc, simd) in pairs() {
        let tbl = simd.name;
        for n in lengths() {
            let data = payload(n);
            let other = payload(n + 1)[1..].to_vec();
            let mut bytes = vec![0u8; n * 4];
            (sc.f32s_to_bytes)(&other, &mut bytes);

            // add_from_bytes: elementwise, no reassociation. Both `data` and
            // `other` carry NaNs, so some lanes add NaN to NaN — compare with
            // canonicalized payloads there (see `canon_bits`).
            let mut a = data.clone();
            let mut b = data.clone();
            (sc.add_from_bytes)(&bytes, &mut a);
            (simd.add_from_bytes)(&bytes, &mut b);
            assert_eq!(canon_bits(&a), canon_bits(&b), "{tbl} add_from_bytes n={n}");

            // add_assign / axpy / scale / abs_into: elementwise.
            let mut a = data.clone();
            let mut b = data.clone();
            (sc.add_assign)(&mut a, &other);
            (simd.add_assign)(&mut b, &other);
            assert_eq!(canon_bits(&a), canon_bits(&b), "{tbl} add_assign n={n}");

            let mut a = data.clone();
            let mut b = data.clone();
            (sc.axpy)(&mut a, -1.25, &other);
            (simd.axpy)(&mut b, -1.25, &other);
            assert_eq!(canon_bits(&a), canon_bits(&b), "{tbl} axpy n={n}");

            // A single-NaN add is deterministic (the NaN operand's payload
            // wins regardless of operand order), so with a NaN-free `other`
            // the results must be fully bit-identical, payloads included.
            let finite: Vec<f32> = other
                .iter()
                .map(|x| if x.is_nan() { 0.75 } else { *x })
                .collect();
            let mut a = data.clone();
            let mut b = data.clone();
            (sc.add_assign)(&mut a, &finite);
            (simd.add_assign)(&mut b, &finite);
            assert_eq!(bits(&a), bits(&b), "{tbl} add_assign finite-rhs n={n}");

            let mut a = data.clone();
            let mut b = data.clone();
            (sc.scale)(&mut a, 0.3);
            (simd.scale)(&mut b, 0.3);
            assert_eq!(bits(&a), bits(&b), "{tbl} scale n={n}");

            let mut a = vec![0.0f32; n];
            let mut b = vec![-1.0f32; n];
            (sc.abs_into)(&data, &mut a);
            (simd.abs_into)(&data, &mut b);
            assert_eq!(bits(&a), bits(&b), "{tbl} abs_into n={n}");

            // sum_abs: horizontal, but every table stripes across 8 lanes
            // and combines with the same pairwise tree (the AVX-512 table
            // deliberately reuses the AVX2 entry). NaN payloads poison both
            // identically, so compare bit patterns, not values.
            let sa = (sc.sum_abs)(&data);
            let sb = (simd.sum_abs)(&data);
            assert_eq!(sa.to_bits(), sb.to_bits(), "{tbl} sum_abs n={n}");
            // And on a NaN-free payload the sums are still bitwise equal.
            let clean: Vec<f32> = data
                .iter()
                .map(|x| if x.is_nan() { 0.5 } else { *x })
                .collect();
            assert_eq!(
                (sc.sum_abs)(&clean).to_bits(),
                (simd.sum_abs)(&clean).to_bits(),
                "{tbl} sum_abs clean n={n}"
            );
        }
    }
}

#[test]
fn add_into_bytes_matches_decode_accumulate_reserialize() {
    // The in-wire accumulator `w ← x + w` must be exactly the collapsed
    // form of add_from_bytes (buf ← x + w) followed by f32s_to_bytes —
    // that equivalence is what makes the single-pass ring bit-identical
    // to the textbook one.
    let sc = kernels::scalar();
    for (_, simd) in pairs().into_iter().chain([(sc, sc)]) {
        let tbl = simd.name;
        for n in lengths() {
            let xs = payload(n);
            let wire_f = payload(n + 1)[1..].to_vec();
            let mut wire = vec![0u8; n * 4];
            (sc.f32s_to_bytes)(&wire_f, &mut wire);

            // Reference: decode + accumulate into a float buffer + encode.
            let mut acc = xs.clone();
            (sc.add_from_bytes)(&wire, &mut acc);
            let mut expect = vec![0u8; n * 4];
            (sc.f32s_to_bytes)(&acc, &mut expect);

            let mut got = wire.clone();
            (simd.add_into_bytes)(&xs, &mut got);

            // NaN+NaN lanes may differ in payload only (see canon_bits);
            // decode both and compare canonicalized.
            let mut ef = vec![0.0f32; n];
            let mut gf = vec![0.0f32; n];
            (sc.bytes_to_f32s)(&expect, &mut ef);
            (sc.bytes_to_f32s)(&got, &mut gf);
            assert_eq!(canon_bits(&ef), canon_bits(&gf), "{tbl} n={n}");

            // With a NaN-free wire the bytes must match exactly.
            let clean: Vec<f32> = wire_f
                .iter()
                .map(|x| if x.is_nan() { 0.5 } else { *x })
                .collect();
            let mut wire_c = vec![0u8; n * 4];
            (sc.f32s_to_bytes)(&clean, &mut wire_c);
            let mut acc = xs.clone();
            (sc.add_from_bytes)(&wire_c, &mut acc);
            let mut expect = vec![0u8; n * 4];
            (sc.f32s_to_bytes)(&acc, &mut expect);
            let mut got = wire_c.clone();
            (simd.add_into_bytes)(&xs, &mut got);
            assert_eq!(expect, got, "{tbl} clean n={n}");
        }
    }
}

#[test]
fn gather_above_is_byte_identical() {
    for (sc, simd) in pairs() {
        let tbl = simd.name;
        for n in lengths() {
            let data = payload(n);
            for threshold in [0.0f32, 1.0, 5.5, -1.0, f32::INFINITY] {
                let (mut ia, mut va) = (Vec::new(), Vec::new());
                let (mut ib, mut vb) = (Vec::new(), Vec::new());
                (sc.gather_above)(&data, threshold, &mut ia, &mut va);
                (simd.gather_above)(&data, threshold, &mut ib, &mut vb);
                assert_eq!(ia, ib, "{tbl} indices n={n} t={threshold}");
                assert_eq!(bits(&va), bits(&vb), "{tbl} values n={n} t={threshold}");
            }
        }
    }
}

#[test]
fn gather_above_tied_magnitudes_are_byte_identical() {
    // Top-K's tie-break contract: entries whose |x| equals the threshold
    // are excluded by gather_above (strictly-above semantics) and later
    // filled scanning from index 0 — all tables must agree exactly on a
    // payload dominated by tied magnitudes, including runs of ties that
    // straddle the 8-lane (AVX2) and 16-lane (AVX-512) widths.
    for (sc, simd) in pairs() {
        let tbl = simd.name;
        for n in lengths() {
            // Blocks of ±t ties with isolated strictly-above spikes.
            let t = 2.5f32;
            let data: Vec<f32> = (0..n)
                .map(|i| match i % 11 {
                    0 => 7.0,
                    d if d % 2 == 0 => t,
                    _ => -t,
                })
                .collect();
            let (mut ia, mut va) = (Vec::new(), Vec::new());
            let (mut ib, mut vb) = (Vec::new(), Vec::new());
            (sc.gather_above)(&data, t, &mut ia, &mut va);
            (simd.gather_above)(&data, t, &mut ib, &mut vb);
            assert_eq!(ia, ib, "{tbl} tied indices n={n}");
            assert_eq!(bits(&va), bits(&vb), "{tbl} tied values n={n}");
            // Only the spikes pass a strictly-above gather.
            assert!(ia.iter().all(|&i| i % 11 == 0), "{tbl} n={n}");
        }
    }
}

#[test]
fn top_k_selection_is_identical_across_dispatch_tables_on_ties() {
    // End-to-end: the full top_k_abs pipeline (quickselect + gather + tie
    // fill) must pick identical indices whichever table is active. The
    // runtime dispatch is cached in a OnceLock, so instead of flipping
    // GCS_FORCE_SCALAR we compare against a hand-rolled scalar reference
    // implementing the documented lowest-index contract.
    let n = 4096;
    let t = 1.0f32;
    let data: Vec<f32> = (0..n)
        .map(|i| match i % 97 {
            0 => 3.0,
            d if d % 3 == 0 => -t,
            _ => t,
        })
        .collect();
    let k = n / 3;
    let sel = gcs_tensor::select::top_k_abs(&data, k);
    // Reference: strictly-above in index order, then tied entries from 0.
    let mut expect: Vec<u32> = (0..n as u32)
        .filter(|&i| data[i as usize].abs() > t)
        .collect();
    for i in 0..n as u32 {
        if expect.len() == k {
            break;
        }
        if data[i as usize].abs() == t {
            expect.push(i);
        }
    }
    assert_eq!(sel.indices, expect);
}

#[test]
fn gather_above_appends_without_clobbering() {
    for (sc, simd) in pairs() {
        let tbl = simd.name;
        let data = payload(100);
        let (mut ia, mut va) = (vec![42u32], vec![9.0f32]);
        let (mut ib, mut vb) = (vec![42u32], vec![9.0f32]);
        (sc.gather_above)(&data, 1.0, &mut ia, &mut va);
        (simd.gather_above)(&data, 1.0, &mut ib, &mut vb);
        assert_eq!(ia, ib, "{tbl}");
        assert_eq!(bits(&va), bits(&vb), "{tbl}");
        assert_eq!(ia[0], 42, "{tbl}");
        assert_eq!(va[0], 9.0, "{tbl}");
    }
}

#[test]
fn gemm_tiles_are_bit_identical() {
    use gcs_tensor::autotune::{supported_tiles, GemmTile};
    use gcs_tensor::matrix::{at_mul_b_with_tile, matmul_with_tile, MatrixRef};
    // Dims chosen to hit the 4x32 AVX-512 tile, the 4x16 tile, the 4x4
    // tile, the column remainder and the row remainder in one product.
    for (m, k, n) in [
        (4, 8, 16),
        (5, 3, 21),
        (13, 17, 37),
        (64, 32, 48),
        (3, 5, 7),
        (9, 11, 70),
        (8, 16, 96),
    ] {
        let a: Vec<f32> = (0..m * k)
            .map(|i| (((i * 53) % 97) as f32 - 48.0) * 0.021)
            .collect();
        let b: Vec<f32> = (0..k * n)
            .map(|i| (((i * 37) % 101) as f32 - 50.0) * 0.013)
            .collect();
        let at: Vec<f32> = (0..k * m)
            .map(|i| ((i * 29 % 83) as f32 - 41.0) * 0.02)
            .collect();
        let am = MatrixRef::new(&a, m, k).unwrap();
        let bm = MatrixRef::new(&b, k, n).unwrap();
        let atm = MatrixRef::new(&at, k, m).unwrap();

        let mut mm_ref = vec![0.0f32; m * n];
        matmul_with_tile(GemmTile::Scalar, am, bm, &mut mm_ref).unwrap();
        let mut atb_ref = vec![0.0f32; m * n];
        at_mul_b_with_tile(GemmTile::Scalar, atm, bm, &mut atb_ref).unwrap();

        for tile in supported_tiles() {
            let mut out = vec![0.0f32; m * n];
            matmul_with_tile(tile, am, bm, &mut out).unwrap();
            assert_eq!(bits(&mm_ref), bits(&out), "matmul {:?} {m}x{k}x{n}", tile);
            let mut out = vec![0.0f32; m * n];
            at_mul_b_with_tile(tile, atm, bm, &mut out).unwrap();
            assert_eq!(
                bits(&atb_ref),
                bits(&out),
                "at_mul_b {:?} {k}x{m}x{n}",
                tile
            );
        }
    }
}

#[test]
fn gemm_dispatch_paths_are_bit_identical() {
    use gcs_tensor::matrix::{at_mul_b_with_dispatch, matmul_with_dispatch, MatrixRef};
    if kernels::simd().is_none() {
        return;
    }
    for (m, k, n) in [(4, 8, 16), (13, 17, 37), (64, 32, 48)] {
        let a: Vec<f32> = (0..m * k)
            .map(|i| (((i * 53) % 97) as f32 - 48.0) * 0.021)
            .collect();
        let b: Vec<f32> = (0..k * n)
            .map(|i| (((i * 37) % 101) as f32 - 50.0) * 0.013)
            .collect();
        let am = MatrixRef::new(&a, m, k).unwrap();
        let bm = MatrixRef::new(&b, k, n).unwrap();
        let mut scalar_out = vec![0.0f32; m * n];
        let mut simd_out = vec![0.0f32; m * n];
        matmul_with_dispatch(false, am, bm, &mut scalar_out).unwrap();
        matmul_with_dispatch(true, am, bm, &mut simd_out).unwrap();
        assert_eq!(bits(&scalar_out), bits(&simd_out), "matmul {m}x{k}x{n}");

        let at: Vec<f32> = (0..k * m)
            .map(|i| ((i * 29 % 83) as f32 - 41.0) * 0.02)
            .collect();
        let atm = MatrixRef::new(&at, k, m).unwrap();
        at_mul_b_with_dispatch(false, atm, bm, &mut scalar_out).unwrap();
        at_mul_b_with_dispatch(true, atm, bm, &mut simd_out).unwrap();
        assert_eq!(bits(&scalar_out), bits(&simd_out), "at_mul_b {k}x{m}x{n}");
    }
}

// ---------------------------------------------------------------------------
// Threaded determinism: the pooled entry points must be bit-identical to
// serial execution for every pool width, and stable across repeated runs.
// ---------------------------------------------------------------------------

/// Small + banding-triggering lengths for the pooled wire kernels. The
/// large size exceeds `4 x` the widest autotunable chunk (2^18 elements),
/// so a width-4 pool genuinely splits it into 4 concurrent bands.
fn pooled_lengths() -> Vec<usize> {
    let mut v: Vec<usize> = (0..=67).collect();
    v.push((1 << 20) + 37);
    v
}

#[test]
fn pooled_wire_kernels_are_bit_identical_across_widths_and_runs() {
    for width in [1usize, 2, 4] {
        let pool = Pool::new(width);
        for n in pooled_lengths() {
            let data = payload(n);
            let words = n.div_ceil(32);

            // Serial references through the dispatched (active-table)
            // entry points — the pooled variants run the same table, so
            // banding must be invisible down to NaN payloads.
            let mut words_ref = vec![0u32; words];
            kernels::sign_pack(&data, &mut words_ref);
            let mut unpack_ref = vec![0.0f32; n];
            kernels::unpack_fill(&words_ref, -1.5, 0.25, &mut unpack_ref);
            let mut tally_ref: Vec<i32> = (0..n as i32).map(|i| (i % 5) - 2).collect();
            kernels::vote_add(&words_ref, &mut tally_ref);
            let mut vote_ref = vec![0u32; words];
            kernels::vote_pack(&tally_ref, &mut vote_ref);
            let mut bytes_ref = vec![0u8; n * 4];
            kernels::f32s_to_bytes(&data, &mut bytes_ref);
            let mut add_ref = data.clone();
            kernels::add_from_bytes(&bytes_ref, &mut add_ref);
            let mut wire_ref = bytes_ref.clone();
            kernels::add_into_bytes(&data, &mut wire_ref);

            for run in 0..2 {
                let ctx = format!("w={width} n={n} run={run}");

                let mut w = vec![0xdead_beefu32; words];
                kernels::sign_pack_pooled(&pool, &data, &mut w);
                assert_eq!(words_ref, w, "sign_pack {ctx}");

                let mut u = vec![7.0f32; n];
                kernels::unpack_fill_pooled(&pool, &words_ref, -1.5, 0.25, &mut u);
                assert_eq!(bits(&unpack_ref), bits(&u), "unpack_fill {ctx}");

                let mut u = data.clone();
                kernels::unpack_add_pooled(&pool, &words_ref, -1.5, 0.25, &mut u);
                let mut u_ref = data.clone();
                kernels::unpack_add(&words_ref, -1.5, 0.25, &mut u_ref);
                assert_eq!(bits(&u_ref), bits(&u), "unpack_add {ctx}");

                let mut t: Vec<i32> = (0..n as i32).map(|i| (i % 5) - 2).collect();
                kernels::vote_add_pooled(&pool, &words_ref, &mut t);
                assert_eq!(tally_ref, t, "vote_add {ctx}");

                let mut v = vec![0u32; words];
                kernels::vote_pack_pooled(&pool, &tally_ref, &mut v);
                assert_eq!(vote_ref, v, "vote_pack {ctx}");

                let mut by = vec![0xAAu8; n * 4];
                kernels::f32s_to_bytes_pooled(&pool, &data, &mut by);
                assert_eq!(bytes_ref, by, "f32s_to_bytes {ctx}");

                let mut f = vec![0.5f32; n];
                kernels::bytes_to_f32s_pooled(&pool, &bytes_ref, &mut f);
                assert_eq!(bits(&data), bits(&f), "bytes_to_f32s {ctx}");

                let mut acc = data.clone();
                kernels::add_from_bytes_pooled(&pool, &bytes_ref, &mut acc);
                assert_eq!(bits(&add_ref), bits(&acc), "add_from_bytes {ctx}");

                let mut wire = bytes_ref.clone();
                kernels::add_into_bytes_pooled(&pool, &data, &mut wire);
                assert_eq!(wire_ref, wire, "add_into_bytes {ctx}");

                let mut acc = data.clone();
                kernels::add_assign_pooled(&pool, &mut acc, &data);
                let mut acc_ref = data.clone();
                kernels::add_assign(&mut acc_ref, &data);
                assert_eq!(bits(&acc_ref), bits(&acc), "add_assign {ctx}");
            }
        }
    }
}

#[test]
fn pooled_gemm_and_topk_are_deterministic_across_widths_and_runs() {
    use gcs_tensor::matrix::{self, MatrixRef};
    use gcs_tensor::select;

    // GEMM with adversarial payloads (NaN, ±0, ±inf propagate through the
    // FMA chains identically in every band split).
    for width in [1usize, 2, 4] {
        let pool = Pool::new(width);
        for (m, k, n) in [(67, 33, 29), (16, 8, 48), (5, 4, 3)] {
            let a = payload(m * k);
            let b = payload(k * n);
            let am = MatrixRef::new(&a, m, k).unwrap();
            let bm = MatrixRef::new(&b, k, n).unwrap();
            let mut serial = vec![0.0f32; m * n];
            matrix::matmul(am, bm, &mut serial).unwrap();
            for run in 0..2 {
                let mut pooled = vec![0.0f32; m * n];
                matrix::matmul_pooled(&pool, am, bm, &mut pooled).unwrap();
                assert_eq!(
                    canon_bits(&serial),
                    canon_bits(&pooled),
                    "matmul w={width} {m}x{k}x{n} run={run}"
                );
            }
        }

        // Top-k: tie-heavy data so the lowest-index tie-break is load
        // bearing, at a size that splits the banded gather.
        let n = 300_000;
        let data: Vec<f32> = (0..n)
            .map(|i| ((i * 131 % 17) as f32 - 8.0) * 0.25)
            .collect();
        for k in [1usize, 1000, 50_000] {
            let serial = select::top_k_abs_with(&data, k, &mut Vec::new());
            for run in 0..2 {
                let pooled = select::top_k_abs_pooled(&pool, &data, k, &mut Vec::new());
                assert_eq!(
                    serial.indices, pooled.indices,
                    "topk w={width} k={k} run={run}"
                );
                assert_eq!(
                    bits(&serial.values),
                    bits(&pooled.values),
                    "topk w={width} k={k} run={run}"
                );
            }
        }
    }
}

#[test]
fn signbits_roundtrip_matches_under_both_tables() {
    // End-to-end through the public SignBits API: whatever table is active,
    // pack -> unpack must invert (NaN packs as negative by the `>= 0`
    // convention).
    use gcs_tensor::bits::SignBits;
    for n in [0usize, 1, 31, 32, 33, 100] {
        let data = payload(n);
        let bits = SignBits::pack(&data);
        let un = bits.unpack(1.0);
        for (i, (&d, &u)) in data.iter().zip(&un).enumerate() {
            let expect = if d >= 0.0 { 1.0 } else { -1.0 };
            assert_eq!(u, expect, "n={n} i={i} d={d}");
        }
    }
}

#[test]
fn nan_inputs_keep_percentile_total_ordered_and_deterministic() {
    use gcs_tensor::stats::percentile;
    // NaN-poisoned input must select under a total order: no panic, the
    // same bits on every call, and (since positive NaN sorts above +inf
    // in the total order) low percentiles still come from finite values.
    let xs = vec![3.0f64, f64::NAN, 1.0, 2.0, f64::NAN, 5.0, 4.0];
    assert_eq!(percentile(&xs, 0.0), 1.0);
    assert!(percentile(&xs, 100.0).is_nan(), "NaN sorts last");
    for p in [0.0, 10.0, 25.0, 50.0, 75.0, 100.0] {
        let a = percentile(&xs, p);
        let b = percentile(&xs, p);
        assert_eq!(a.to_bits(), b.to_bits(), "p={p} must be deterministic");
    }
    // All-NaN input: still no panic.
    assert!(percentile(&[f64::NAN, f64::NAN], 50.0).is_nan());
}

#[test]
fn nan_inputs_keep_top_k_selection_deterministic_and_exactly_k() {
    use gcs_tensor::pool::Pool;
    use gcs_tensor::select;
    let data: Vec<f32> = (0..4096)
        .map(|i| {
            if i % 97 == 13 {
                f32::NAN
            } else {
                ((i * 131 % 17) as f32 - 8.0) * 0.5
            }
        })
        .collect();
    let pool = Pool::new(2);
    for k in [1usize, 64, 512] {
        let serial = select::top_k_abs(&data, k);
        assert_eq!(serial.len(), k, "k={k}: NaNs must not shrink the selection");
        // Repeat calls and the pooled path must agree exactly — the old
        // partial_cmp fallback let NaN land anywhere in the partition.
        let again = select::top_k_abs(&data, k);
        assert_eq!(serial.indices, again.indices, "k={k} repeat");
        let pooled = select::top_k_abs_pooled(&pool, &data, k, &mut Vec::new());
        assert_eq!(serial.indices, pooled.indices, "k={k} pooled");
        assert_eq!(
            bits(&serial.values),
            bits(&pooled.values),
            "k={k} pooled values"
        );
    }
    // More NaNs than k: the NaN fill itself must be deterministic.
    let noisy = vec![f32::NAN, 1.0, f32::NAN, 2.0, f32::NAN];
    let sel = select::top_k_abs(&noisy, 2);
    assert_eq!(sel.len(), 2);
    assert_eq!(sel.indices, select::top_k_abs(&noisy, 2).indices);
}
