//! Property-based tests of the linear-algebra kernels.

use gcs_tensor::matrix::{
    a_mul_bt, at_mul_b, matmul, orthonormalize_columns, svd_truncated, MatrixRef,
};
use gcs_tensor::Tensor;
use proptest::prelude::*;

/// Random matrix dims kept small so each case is fast.
fn dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..8, 1usize..8, 1usize..8)
}

fn frob(v: &[f32]) -> f32 {
    v.iter().map(|x| x * x).sum::<f32>().sqrt()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (A·B)·C == A·(B·C) within f32 tolerance.
    #[test]
    fn matmul_is_associative((m, k, n) in dims(), l in 1usize..8, s1 in 0u64..100) {
        let a = Tensor::randn([m, k], s1).into_vec();
        let b = Tensor::randn([k, n], s1 + 1).into_vec();
        let c = Tensor::randn([n, l], s1 + 2).into_vec();
        let mut ab = vec![0.0; m * n];
        matmul(MatrixRef::new(&a, m, k).unwrap(), MatrixRef::new(&b, k, n).unwrap(), &mut ab)
            .unwrap();
        let mut ab_c = vec![0.0; m * l];
        matmul(MatrixRef::new(&ab, m, n).unwrap(), MatrixRef::new(&c, n, l).unwrap(), &mut ab_c)
            .unwrap();
        let mut bc = vec![0.0; k * l];
        matmul(MatrixRef::new(&b, k, n).unwrap(), MatrixRef::new(&c, n, l).unwrap(), &mut bc)
            .unwrap();
        let mut a_bc = vec![0.0; m * l];
        matmul(MatrixRef::new(&a, m, k).unwrap(), MatrixRef::new(&bc, k, l).unwrap(), &mut a_bc)
            .unwrap();
        let diff: f32 = ab_c.iter().zip(&a_bc).map(|(x, y)| (x - y).abs()).fold(0.0, f32::max);
        let scale = frob(&ab_c).max(1.0);
        prop_assert!(diff <= 1e-3 * scale, "diff {diff} scale {scale}");
    }

    /// Aᵀ·B computed directly equals transpose-then-matmul.
    #[test]
    fn at_mul_b_matches_explicit_transpose((k, m, n) in dims(), seed in 0u64..100) {
        let a = Tensor::randn([k, m], seed).into_vec();
        let b = Tensor::randn([k, n], seed + 7).into_vec();
        let mut direct = vec![0.0; m * n];
        at_mul_b(MatrixRef::new(&a, k, m).unwrap(), MatrixRef::new(&b, k, n).unwrap(), &mut direct)
            .unwrap();
        let mut at = vec![0.0; m * k];
        for r in 0..k {
            for c in 0..m {
                at[c * k + r] = a[r * m + c];
            }
        }
        let mut explicit = vec![0.0; m * n];
        matmul(MatrixRef::new(&at, m, k).unwrap(), MatrixRef::new(&b, k, n).unwrap(), &mut explicit)
            .unwrap();
        for (x, y) in direct.iter().zip(&explicit) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    /// A·Bᵀ equals matmul against the explicit transpose.
    #[test]
    fn a_mul_bt_matches_explicit_transpose((m, k, n) in dims(), seed in 0u64..100) {
        let a = Tensor::randn([m, k], seed).into_vec();
        let b = Tensor::randn([n, k], seed + 3).into_vec();
        let mut direct = vec![0.0; m * n];
        a_mul_bt(MatrixRef::new(&a, m, k).unwrap(), MatrixRef::new(&b, n, k).unwrap(), &mut direct)
            .unwrap();
        let mut bt = vec![0.0; k * n];
        for r in 0..n {
            for c in 0..k {
                bt[c * n + r] = b[r * k + c];
            }
        }
        let mut explicit = vec![0.0; m * n];
        matmul(MatrixRef::new(&a, m, k).unwrap(), MatrixRef::new(&bt, k, n).unwrap(), &mut explicit)
            .unwrap();
        for (x, y) in direct.iter().zip(&explicit) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    /// Orthonormalization always produces orthonormal columns, for any
    /// input (including rank-deficient ones).
    #[test]
    fn orthonormalize_always_orthonormal(rows in 2usize..16, cols in 1usize..6, seed in 0u64..50, degenerate in proptest::bool::ANY) {
        let cols = cols.min(rows);
        let mut m = Tensor::randn([rows, cols], seed).into_vec();
        if degenerate && cols >= 2 {
            // Force column 1 = column 0 to exercise the rescue path.
            for r in 0..rows {
                m[r * cols + 1] = m[r * cols];
            }
        }
        orthonormalize_columns(&mut m, rows, cols).unwrap();
        for c1 in 0..cols {
            for c2 in 0..cols {
                let dot: f32 = (0..rows).map(|r| m[r * cols + c1] * m[r * cols + c2]).sum();
                let expect = if c1 == c2 { 1.0 } else { 0.0 };
                prop_assert!((dot - expect).abs() < 2e-3, "cols {c1},{c2}: {dot}");
            }
        }
    }

    /// Truncated SVD reconstruction never increases the Frobenius error
    /// beyond the input norm, and full-rank SVD is near exact.
    #[test]
    fn svd_error_is_bounded(rows in 2usize..10, cols in 2usize..10, seed in 0u64..50) {
        let m = Tensor::randn([rows, cols], seed).into_vec();
        let full_rank = rows.min(cols);
        let svd = svd_truncated(&m, rows, cols, full_rank, 25).unwrap();
        let mut rec = vec![0.0; rows * cols];
        svd.reconstruct(rows, cols, &mut rec).unwrap();
        let err: f32 = m.iter().zip(&rec).map(|(a, b)| (a - b) * (a - b)).sum::<f32>().sqrt();
        prop_assert!(err <= 0.05 * frob(&m).max(1e-3), "err {err} norm {}", frob(&m));
    }

    /// Rank-1 truncation error is at most the input norm and the
    /// approximation captures the dominant direction (error strictly less
    /// than the norm for matrices with any signal).
    #[test]
    fn svd_rank1_error_below_input_norm(rows in 2usize..10, cols in 2usize..10, seed in 0u64..50) {
        let m = Tensor::randn([rows, cols], seed).into_vec();
        let svd = svd_truncated(&m, rows, cols, 1, 20).unwrap();
        let mut rec = vec![0.0; rows * cols];
        svd.reconstruct(rows, cols, &mut rec).unwrap();
        let err: f32 = m.iter().zip(&rec).map(|(a, b)| (a - b) * (a - b)).sum::<f32>().sqrt();
        let norm = frob(&m);
        prop_assert!(err <= norm * (1.0 + 1e-3), "err {err} vs norm {norm}");
    }
}
