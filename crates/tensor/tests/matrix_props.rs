//! Randomized (deterministically seeded) tests of the linear-algebra
//! kernels. Formerly proptest-based; rewritten as seeded loops for the
//! offline build (case counts preserved). These are the correctness oracle
//! for the register-blocked GEMM kernels.

use gcs_tensor::matrix::{
    a_mul_bt, at_mul_b, matmul, orthonormalize_columns, svd_truncated, MatrixRef,
};
use gcs_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn dims(rng: &mut StdRng) -> (usize, usize, usize) {
    (
        rng.gen_range(1usize..8),
        rng.gen_range(1usize..8),
        rng.gen_range(1usize..8),
    )
}

fn frob(v: &[f32]) -> f32 {
    v.iter().map(|x| x * x).sum::<f32>().sqrt()
}

/// (A·B)·C == A·(B·C) within f32 tolerance.
#[test]
fn matmul_is_associative() {
    let mut rng = StdRng::seed_from_u64(0x301);
    for _ in 0..48 {
        let (m, k, n) = dims(&mut rng);
        let l = rng.gen_range(1usize..8);
        let s1 = rng.gen_range(0u64..100);
        let a = Tensor::randn([m, k], s1).into_vec();
        let b = Tensor::randn([k, n], s1 + 1).into_vec();
        let c = Tensor::randn([n, l], s1 + 2).into_vec();
        let mut ab = vec![0.0; m * n];
        matmul(
            MatrixRef::new(&a, m, k).unwrap(),
            MatrixRef::new(&b, k, n).unwrap(),
            &mut ab,
        )
        .unwrap();
        let mut ab_c = vec![0.0; m * l];
        matmul(
            MatrixRef::new(&ab, m, n).unwrap(),
            MatrixRef::new(&c, n, l).unwrap(),
            &mut ab_c,
        )
        .unwrap();
        let mut bc = vec![0.0; k * l];
        matmul(
            MatrixRef::new(&b, k, n).unwrap(),
            MatrixRef::new(&c, n, l).unwrap(),
            &mut bc,
        )
        .unwrap();
        let mut a_bc = vec![0.0; m * l];
        matmul(
            MatrixRef::new(&a, m, k).unwrap(),
            MatrixRef::new(&bc, k, l).unwrap(),
            &mut a_bc,
        )
        .unwrap();
        let diff: f32 = ab_c
            .iter()
            .zip(&a_bc)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max);
        let scale = frob(&ab_c).max(1.0);
        assert!(diff <= 1e-3 * scale, "diff {diff} scale {scale}");
    }
}

/// Aᵀ·B computed directly equals transpose-then-matmul.
#[test]
fn at_mul_b_matches_explicit_transpose() {
    let mut rng = StdRng::seed_from_u64(0x302);
    for _ in 0..48 {
        let (k, m, n) = dims(&mut rng);
        let seed = rng.gen_range(0u64..100);
        let a = Tensor::randn([k, m], seed).into_vec();
        let b = Tensor::randn([k, n], seed + 7).into_vec();
        let mut direct = vec![0.0; m * n];
        at_mul_b(
            MatrixRef::new(&a, k, m).unwrap(),
            MatrixRef::new(&b, k, n).unwrap(),
            &mut direct,
        )
        .unwrap();
        let mut at = vec![0.0; m * k];
        for r in 0..k {
            for c in 0..m {
                at[c * k + r] = a[r * m + c];
            }
        }
        let mut explicit = vec![0.0; m * n];
        matmul(
            MatrixRef::new(&at, m, k).unwrap(),
            MatrixRef::new(&b, k, n).unwrap(),
            &mut explicit,
        )
        .unwrap();
        for (x, y) in direct.iter().zip(&explicit) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }
}

/// A·Bᵀ equals matmul against the explicit transpose.
#[test]
fn a_mul_bt_matches_explicit_transpose() {
    let mut rng = StdRng::seed_from_u64(0x303);
    for _ in 0..48 {
        let (m, k, n) = dims(&mut rng);
        let seed = rng.gen_range(0u64..100);
        let a = Tensor::randn([m, k], seed).into_vec();
        let b = Tensor::randn([n, k], seed + 3).into_vec();
        let mut direct = vec![0.0; m * n];
        a_mul_bt(
            MatrixRef::new(&a, m, k).unwrap(),
            MatrixRef::new(&b, n, k).unwrap(),
            &mut direct,
        )
        .unwrap();
        let mut bt = vec![0.0; k * n];
        for r in 0..n {
            for c in 0..k {
                bt[c * n + r] = b[r * k + c];
            }
        }
        let mut explicit = vec![0.0; m * n];
        matmul(
            MatrixRef::new(&a, m, k).unwrap(),
            MatrixRef::new(&bt, k, n).unwrap(),
            &mut explicit,
        )
        .unwrap();
        for (x, y) in direct.iter().zip(&explicit) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }
}

/// Orthonormalization always produces orthonormal columns, for any input
/// (including rank-deficient ones).
#[test]
fn orthonormalize_always_orthonormal() {
    let mut rng = StdRng::seed_from_u64(0x304);
    for case in 0..48 {
        let rows = rng.gen_range(2usize..16);
        let cols = rng.gen_range(1usize..6).min(rows);
        let seed = rng.gen_range(0u64..50);
        let degenerate = case % 2 == 0;
        let mut m = Tensor::randn([rows, cols], seed).into_vec();
        if degenerate && cols >= 2 {
            // Force column 1 = column 0 to exercise the rescue path.
            for r in 0..rows {
                m[r * cols + 1] = m[r * cols];
            }
        }
        orthonormalize_columns(&mut m, rows, cols).unwrap();
        for c1 in 0..cols {
            for c2 in 0..cols {
                let dot: f32 = (0..rows).map(|r| m[r * cols + c1] * m[r * cols + c2]).sum();
                let expect = if c1 == c2 { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 2e-3, "cols {c1},{c2}: {dot}");
            }
        }
    }
}

/// Truncated SVD reconstruction never increases the Frobenius error
/// beyond the input norm, and full-rank SVD is near exact.
#[test]
fn svd_error_is_bounded() {
    let mut rng = StdRng::seed_from_u64(0x305);
    for _ in 0..48 {
        let rows = rng.gen_range(2usize..10);
        let cols = rng.gen_range(2usize..10);
        let seed = rng.gen_range(0u64..50);
        let m = Tensor::randn([rows, cols], seed).into_vec();
        let full_rank = rows.min(cols);
        let svd = svd_truncated(&m, rows, cols, full_rank, 25).unwrap();
        let mut rec = vec![0.0; rows * cols];
        svd.reconstruct(rows, cols, &mut rec).unwrap();
        let err: f32 = m
            .iter()
            .zip(&rec)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt();
        assert!(
            err <= 0.05 * frob(&m).max(1e-3),
            "err {err} norm {}",
            frob(&m)
        );
    }
}

/// Rank-1 truncation error is at most the input norm and the approximation
/// captures the dominant direction (error strictly less than the norm for
/// matrices with any signal).
#[test]
fn svd_rank1_error_below_input_norm() {
    let mut rng = StdRng::seed_from_u64(0x306);
    for _ in 0..48 {
        let rows = rng.gen_range(2usize..10);
        let cols = rng.gen_range(2usize..10);
        let seed = rng.gen_range(0u64..50);
        let m = Tensor::randn([rows, cols], seed).into_vec();
        let svd = svd_truncated(&m, rows, cols, 1, 20).unwrap();
        let mut rec = vec![0.0; rows * cols];
        svd.reconstruct(rows, cols, &mut rec).unwrap();
        let err: f32 = m
            .iter()
            .zip(&rec)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt();
        let norm = frob(&m);
        assert!(err <= norm * (1.0 + 1e-3), "err {err} vs norm {norm}");
    }
}
