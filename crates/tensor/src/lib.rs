//! Dense `f32` tensor substrate for the gradient-compression study.
//!
//! This crate implements the numerical kernels every gradient-compression
//! scheme in the paper relies on:
//!
//! * [`Tensor`] — a contiguous, shape-tagged `f32` buffer with elementwise
//!   arithmetic, norms and reductions;
//! * [`Matrix`](matrix::MatrixRef) views with matrix multiplication and
//!   Gram–Schmidt orthonormalization (the core of PowerSGD's power
//!   iteration);
//! * top-k / random-k index selection ([`select`]) used by sparsification
//!   compressors;
//! * sign bit-packing and majority vote ([`bits`]) used by SignSGD;
//! * half-precision conversion ([mod@f16]) used by the FP16 baseline;
//! * runtime-dispatched SIMD kernels ([`kernels`]) behind the hot loops of
//!   all of the above (AVX2 on x86_64, scalar elsewhere or with
//!   `GCS_FORCE_SCALAR=1`).
//!
//! Everything is deterministic: random initialisation goes through seeded
//! [`rand::rngs::StdRng`] so experiments are exactly reproducible.
//!
//! # Example
//!
//! ```
//! use gcs_tensor::Tensor;
//!
//! let a = Tensor::randn([4, 8], 42);
//! let b = a.scaled(2.0);
//! assert!((b.l2_norm() - 2.0 * a.l2_norm()).abs() < 1e-5);
//! ```

pub mod autotune;
pub mod bits;
pub mod f16;
pub mod kernels;
pub mod matrix;
pub mod pool;
pub mod select;
pub mod shape;
pub mod stats;
mod tensor;

pub use pool::Pool;
pub use shape::Shape;
pub use tensor::{Tensor, TensorError};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;
