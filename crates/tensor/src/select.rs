//! Top-k / random-k index selection used by sparsification compressors.

use crate::kernels;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A sparse selection: parallel arrays of flat indices and their values.
///
/// Indices are `u32` because the paper's Top-K implementation communicates
/// 32-bit indices alongside 32-bit values (hence the 2x latency/byte
/// overhead the performance model charges it).
#[derive(Debug, Clone, PartialEq)]
pub struct SparseSelection {
    /// Flat element indices, unordered.
    pub indices: Vec<u32>,
    /// Values at those indices.
    pub values: Vec<f32>,
}

impl SparseSelection {
    /// Number of selected entries.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Whether the selection is empty.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Scatters the selection into a dense buffer of length `n`,
    /// accumulating into existing content (`out[i] += v`).
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= out.len()`.
    pub fn scatter_add(&self, out: &mut [f32]) {
        for (&i, &v) in self.indices.iter().zip(&self.values) {
            out[i as usize] += v;
        }
    }
}

/// Selects the `k` entries of `data` with the largest absolute value.
///
/// Uses an average-O(n) quickselect on a scratch copy, then gathers the
/// winning indices. Ties at the threshold magnitude are broken
/// **deterministically toward the lowest index**: entries strictly above
/// the k-th magnitude are gathered first in ascending index order, then
/// threshold-equal entries fill the remaining slots scanning from index 0.
/// The scalar and AVX2 gather kernels honor the same order, so the
/// selection is bit-identical across dispatch tables — which is what keeps
/// Top-K workers in agreement regardless of each host's SIMD support. If
/// `k >= data.len()` all entries are selected.
///
/// # Example
///
/// ```
/// use gcs_tensor::select::top_k_abs;
///
/// let sel = top_k_abs(&[0.1, -5.0, 2.0, 0.0], 2);
/// let mut idx = sel.indices.clone();
/// idx.sort();
/// assert_eq!(idx, vec![1, 2]);
/// ```
pub fn top_k_abs(data: &[f32], k: usize) -> SparseSelection {
    top_k_abs_with(data, k, &mut Vec::new())
}

/// [`top_k_abs`] with a caller-provided magnitude scratch buffer, so
/// repeated selections (one per layer per iteration in Top-K compression)
/// reuse one allocation instead of building a fresh `|data|`-sized copy
/// each call.
pub fn top_k_abs_with(data: &[f32], k: usize, mags: &mut Vec<f32>) -> SparseSelection {
    let n = data.len();
    if k == 0 || n == 0 {
        return SparseSelection {
            indices: Vec::new(),
            values: Vec::new(),
        };
    }
    if k >= n {
        return SparseSelection {
            indices: (0..n as u32).collect(),
            values: data.to_vec(),
        };
    }
    // Quickselect the k-th largest absolute value on the scratch copy.
    mags.clear();
    mags.resize(n, 0.0);
    kernels::abs_into(data, mags);
    gather_top_k(data, k, mags)
}

/// [`top_k_abs_with`] with the magnitude scan *and* the gather fanned out
/// across `pool`.
///
/// Both banded stages are order-preserving: the `|data|` fill is
/// elementwise, and the chunked gather emits each span's hits with
/// span-local index fixup before concatenating in span order — the same
/// ascending index order as the serial scan. Since `|x|` is exact in f32
/// the threshold is identical too, so the result is **bit-identical** to
/// [`top_k_abs_with`]. Only the quickselect and tie-fill stay serial.
pub fn top_k_abs_pooled(
    pool: &crate::pool::Pool,
    data: &[f32],
    k: usize,
    mags: &mut Vec<f32>,
) -> SparseSelection {
    let n = data.len();
    if k == 0 || n == 0 || k >= n {
        return top_k_abs_with(data, k, mags);
    }
    mags.clear();
    mags.resize(n, 0.0);
    // ~64k elements per band before forking pays for itself.
    pool.for_rows(&mut mags[..], 1, 1 << 16, |lo, band| {
        kernels::abs_into(&data[lo..lo + band.len()], band);
    });
    let threshold = kth_threshold(mags, k);
    // Chunked stream compaction: each span gathers its own sub-slice
    // (span-local indices, fixed up by the span offset), and `map_spans`
    // returns the parts in span order.
    let parts = pool.map_spans(n, 1 << 16, |lo, hi| {
        let mut idx = Vec::new();
        let mut val = Vec::new();
        kernels::gather_above(&data[lo..hi], threshold, &mut idx, &mut val);
        for i in &mut idx {
            *i += lo as u32;
        }
        (idx, val)
    });
    let mut indices = Vec::with_capacity(k);
    let mut values = Vec::with_capacity(k);
    for (idx, val) in parts {
        indices.extend_from_slice(&idx);
        values.extend_from_slice(&val);
    }
    finish_selection(data, k, threshold, indices, values)
}

/// Quickselect the k-th largest magnitude on the (already filled)
/// magnitude scratch. Requires `0 < k <= mags.len()`.
fn kth_threshold(mags: &mut [f32], k: usize) -> f32 {
    // total_cmp keeps the descending selection deterministic even when a
    // NaN magnitude sneaks in (partial_cmp's Equal fallback let NaN float
    // anywhere in the partition, making the threshold run-to-run noise).
    let (_, kth, _) = mags.select_nth_unstable_by(k - 1, |a, b| b.total_cmp(a));
    *kth
}

/// Shared tail of the top-k variants: quickselect the threshold on the
/// (already filled) magnitude scratch, then gather the winning indices.
/// Requires `0 < k < data.len()`.
fn gather_top_k(data: &[f32], k: usize, mags: &mut [f32]) -> SparseSelection {
    let threshold = kth_threshold(mags, k);
    // Gather: first everything strictly above threshold (SIMD stream
    // compaction on AVX2/AVX-512 hosts, same index order as the scalar
    // scan), then fill with threshold-equal entries until k are collected.
    let mut indices = Vec::with_capacity(k);
    let mut values = Vec::with_capacity(k);
    kernels::gather_above(data, threshold, &mut indices, &mut values);
    finish_selection(data, k, threshold, indices, values)
}

/// Tie-fill: if fewer than `k` entries were strictly above the threshold,
/// scan from index 0 adding threshold-equal entries until `k` are
/// collected — the deterministic lowest-index tie-break.
fn finish_selection(
    data: &[f32],
    k: usize,
    threshold: f32,
    mut indices: Vec<u32>,
    mut values: Vec<f32>,
) -> SparseSelection {
    if indices.len() < k {
        for (i, &v) in data.iter().enumerate() {
            if indices.len() == k {
                break;
            }
            if v.abs() == threshold {
                indices.push(i as u32);
                values.push(v);
            }
        }
    }
    if indices.len() < k {
        // Only reachable with NaN inputs: NaN magnitudes rank above every
        // finite value in the descending total order (so the quickselect
        // counted them into the top k) but match neither the `>` gather
        // nor the `==` tie-fill. Append them in ascending index order so
        // the selection still has exactly k deterministic entries.
        for (i, &v) in data.iter().enumerate() {
            if indices.len() == k {
                break;
            }
            if v.is_nan() {
                indices.push(i as u32);
                values.push(v);
            }
        }
    }
    debug_assert_eq!(indices.len(), k);
    SparseSelection { indices, values }
}

/// Selects `k` uniformly random entries (without replacement) using a seeded
/// RNG — the Random-K baseline from Table 1 of the paper.
///
/// All workers sharing the same `seed` select the same coordinates, which is
/// what makes Random-K all-reduce compatible.
///
/// Uses Floyd's sampling algorithm: O(k) time and memory, independent of
/// the gradient length — the previous implementation materialized and
/// partially shuffled all `n` indices per call.
pub fn random_k(data: &[f32], k: usize, seed: u64) -> SparseSelection {
    let n = data.len();
    let k = k.min(n);
    if k == 0 {
        return SparseSelection {
            indices: Vec::new(),
            values: Vec::new(),
        };
    }
    let mut rng = StdRng::seed_from_u64(seed);
    // Floyd's algorithm: for j = n-k..n, draw t uniform in [0, j]; insert t
    // unless already chosen, in which case insert j. Every k-subset is
    // equally likely, and indices come out in insertion order (still
    // deterministic per seed, which is all workers need to agree on).
    let mut chosen: std::collections::HashSet<u32> = std::collections::HashSet::with_capacity(k);
    let mut indices: Vec<u32> = Vec::with_capacity(k);
    for j in (n - k)..n {
        let t = rng.gen_range(0..=j) as u32;
        let pick = if chosen.insert(t) { t } else { j as u32 };
        if pick != t {
            chosen.insert(pick);
        }
        indices.push(pick);
    }
    let values = indices.iter().map(|&i| data[i as usize]).collect();
    SparseSelection { indices, values }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_picks_largest_magnitudes() {
        let data = [1.0, -10.0, 3.0, 0.5, -4.0];
        let sel = top_k_abs(&data, 3);
        let mut pairs: Vec<(u32, f32)> = sel
            .indices
            .iter()
            .copied()
            .zip(sel.values.iter().copied())
            .collect();
        pairs.sort_by_key(|&(i, _)| i);
        assert_eq!(pairs, vec![(1, -10.0), (2, 3.0), (4, -4.0)]);
    }

    #[test]
    fn top_k_zero_and_full() {
        let data = [1.0, 2.0];
        assert!(top_k_abs(&data, 0).is_empty());
        let all = top_k_abs(&data, 5);
        assert_eq!(all.len(), 2);
        assert!(top_k_abs(&[], 3).is_empty());
    }

    #[test]
    fn top_k_handles_ties_with_exact_count() {
        let data = [1.0f32; 100];
        let sel = top_k_abs(&data, 37);
        assert_eq!(sel.len(), 37);
    }

    #[test]
    fn top_k_breaks_threshold_ties_toward_lowest_index() {
        // Threshold magnitude 1.0 is shared by indices 1, 2, 3, 5; only two
        // slots remain after the strictly-above entries (indices 0 and 4),
        // and the contract picks the lowest-indexed tied entries.
        let data = [2.0, -1.0, 1.0, 1.0, -2.0, 1.0];
        let sel = top_k_abs(&data, 4);
        assert_eq!(sel.indices, vec![0, 4, 1, 2]);
        assert_eq!(sel.values, vec![2.0, -2.0, -1.0, 1.0]);
        // All-tied input: exactly the first k indices.
        let flat = [3.0f32; 8];
        let sel = top_k_abs(&flat, 5);
        assert_eq!(sel.indices, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn top_k_values_match_indices() {
        let data: Vec<f32> = (0..1000).map(|i| ((i * 37 % 101) as f32) - 50.0).collect();
        let sel = top_k_abs(&data, 100);
        for (&i, &v) in sel.indices.iter().zip(&sel.values) {
            assert_eq!(data[i as usize], v);
        }
        // Every selected magnitude >= every unselected magnitude.
        let selected: std::collections::HashSet<u32> = sel.indices.iter().copied().collect();
        let min_sel = sel.values.iter().map(|v| v.abs()).fold(f32::MAX, f32::min);
        for (i, &v) in data.iter().enumerate() {
            if !selected.contains(&(i as u32)) {
                assert!(v.abs() <= min_sel + 1e-6);
            }
        }
    }

    #[test]
    fn pooled_top_k_is_bit_identical_to_serial() {
        use crate::pool::Pool;
        let pool = Pool::new(3);
        let data: Vec<f32> = (0..200_000)
            .map(|i| ((i * 131 % 7919) as f32 - 3959.5) * 0.017)
            .collect();
        for k in [1usize, 100, 9999] {
            let serial = top_k_abs_with(&data, k, &mut Vec::new());
            let pooled = top_k_abs_pooled(&pool, &data, k, &mut Vec::new());
            assert_eq!(serial.indices, pooled.indices, "k={k}");
            let sb: Vec<u32> = serial.values.iter().map(|v| v.to_bits()).collect();
            let pb: Vec<u32> = pooled.values.iter().map(|v| v.to_bits()).collect();
            assert_eq!(sb, pb, "k={k}");
        }
        // Degenerate cases route through the serial path.
        assert!(top_k_abs_pooled(&pool, &data, 0, &mut Vec::new()).is_empty());
        let all = top_k_abs_pooled(&pool, &[1.0, 2.0], 5, &mut Vec::new());
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn random_k_is_deterministic_and_distinct() {
        let data: Vec<f32> = (0..50).map(|i| i as f32).collect();
        let a = random_k(&data, 10, 7);
        let b = random_k(&data, 10, 7);
        assert_eq!(a, b);
        let mut idx = a.indices.clone();
        idx.sort();
        idx.dedup();
        assert_eq!(idx.len(), 10, "indices must be distinct");
        let c = random_k(&data, 10, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn random_k_is_not_biased_to_a_prefix() {
        // Regression test: rand's partial_shuffle shuffles the slice tail,
        // so naively taking the front returns 0..k almost verbatim.
        let data = vec![0.0f32; 1000];
        let sel = random_k(&data, 10, 99);
        let prefix_hits = sel.indices.iter().filter(|&&i| i < 10).count();
        assert!(
            prefix_hits < 5,
            "selection stuck on prefix: {:?}",
            sel.indices
        );
        // Different seeds give different sets.
        let other = random_k(&data, 10, 100);
        assert_ne!(sel.indices, other.indices);
    }

    #[test]
    fn scatter_add_accumulates() {
        let sel = SparseSelection {
            indices: vec![0, 2, 2],
            values: vec![1.0, 2.0, 3.0],
        };
        let mut out = vec![10.0, 0.0, 0.0];
        sel.scatter_add(&mut out);
        assert_eq!(out, vec![11.0, 0.0, 5.0]);
    }
}
