//! IEEE 754 binary16 conversion, used by the half-precision ("communicate at
//! half precision") baseline the paper recommends for moderate compression.
//!
//! Implemented from the bit layout directly so no external crate is needed.
//! Round-to-nearest-even on encode; subnormals, infinities and NaN are
//! handled.

/// Converts an `f32` to its nearest `f16` bit pattern
/// (round-to-nearest-even).
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let mant = bits & 0x007f_ffff;

    if exp == 0xff {
        // Inf / NaN. Preserve NaN-ness with a quiet mantissa bit.
        return if mant != 0 {
            sign | 0x7e00
        } else {
            sign | 0x7c00
        };
    }
    // Re-bias exponent: f32 bias 127 -> f16 bias 15.
    let unbiased = exp - 127;
    if unbiased > 15 {
        // Overflow -> infinity.
        return sign | 0x7c00;
    }
    if unbiased >= -14 {
        // Normal f16. Round mantissa from 23 to 10 bits, nearest-even.
        let mant16 = mant >> 13;
        let rem = mant & 0x1fff;
        let half = 0x1000;
        let mut out = sign | (((unbiased + 15) as u16) << 10) | (mant16 as u16);
        if rem > half || (rem == half && (mant16 & 1) == 1) {
            out = out.wrapping_add(1); // may carry into exponent: correct (rounds up to next binade / inf)
        }
        return out;
    }
    if unbiased >= -25 {
        // Subnormal f16.
        let full_mant = mant | 0x0080_0000; // implicit leading 1
        let shift = (-14 - unbiased) + 13;
        let mant16 = full_mant >> shift;
        let rem_mask = (1u32 << shift) - 1;
        let rem = full_mant & rem_mask;
        let half = 1u32 << (shift - 1);
        let mut out = sign | (mant16 as u16);
        if rem > half || (rem == half && (mant16 & 1) == 1) {
            out = out.wrapping_add(1);
        }
        return out;
    }
    // Underflow to signed zero.
    sign
}

/// Converts an `f16` bit pattern back to `f32`.
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h as u32) & 0x8000) << 16;
    let exp = ((h >> 10) & 0x1f) as u32;
    let mant = (h & 0x03ff) as u32;
    let bits = if exp == 0x1f {
        // Inf / NaN.
        sign | 0x7f80_0000 | (mant << 13)
    } else if exp == 0 {
        if mant == 0 {
            sign // signed zero
        } else {
            // Subnormal: normalize.
            let mut e = -14i32;
            let mut m = mant;
            while m & 0x0400 == 0 {
                m <<= 1;
                e -= 1;
            }
            m &= 0x03ff;
            sign | (((e + 127) as u32) << 23) | (m << 13)
        }
    } else {
        sign | ((exp + 127 - 15) << 23) | (mant << 13)
    };
    f32::from_bits(bits)
}

/// Encodes a slice of `f32` into packed `f16` bit patterns.
pub fn encode_f16(data: &[f32]) -> Vec<u16> {
    data.iter().map(|&x| f32_to_f16_bits(x)).collect()
}

/// Decodes packed `f16` bit patterns back to `f32`.
pub fn decode_f16(half: &[u16]) -> Vec<f32> {
    half.iter().map(|&h| f16_bits_to_f32(h)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_values_roundtrip() {
        for v in [0.0f32, -0.0, 1.0, -1.0, 0.5, 2.0, 1024.0, 0.25, -65504.0] {
            let h = f32_to_f16_bits(v);
            assert_eq!(f16_bits_to_f32(h), v, "value {v}");
        }
    }

    #[test]
    fn signed_zero_preserved() {
        assert_eq!(f32_to_f16_bits(-0.0).to_be_bytes()[0] & 0x80, 0x80);
        assert!(f16_bits_to_f32(0x8000).is_sign_negative());
    }

    #[test]
    fn infinity_and_nan() {
        assert_eq!(
            f16_bits_to_f32(f32_to_f16_bits(f32::INFINITY)),
            f32::INFINITY
        );
        assert_eq!(
            f16_bits_to_f32(f32_to_f16_bits(f32::NEG_INFINITY)),
            f32::NEG_INFINITY
        );
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(1e6)), f32::INFINITY);
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(-1e6)), f32::NEG_INFINITY);
    }

    #[test]
    fn tiny_values_flush_to_zero() {
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(1e-10)), 0.0);
    }

    #[test]
    fn subnormals_roundtrip() {
        // Smallest positive f16 subnormal = 2^-24.
        let tiny = 2.0f32.powi(-24);
        let h = f32_to_f16_bits(tiny);
        assert_eq!(f16_bits_to_f32(h), tiny);
        // A subnormal with multiple mantissa bits.
        let v = 3.0 * 2.0f32.powi(-24);
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(v)), v);
    }

    #[test]
    fn relative_error_is_within_half_ulp() {
        let vals: Vec<f32> = (1..2000).map(|i| (i as f32) * 0.013 - 13.0).collect();
        for &v in &vals {
            let r = f16_bits_to_f32(f32_to_f16_bits(v));
            // f16 has 11 bits of significand => rel err <= 2^-11.
            let tol = v.abs().max(2.0f32.powi(-14)) * 2.0f32.powi(-11);
            assert!((r - v).abs() <= tol, "v={v} r={r}");
        }
    }

    #[test]
    fn round_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and the next f16; must
        // round to even mantissa (1.0).
        let v = 1.0 + 2.0f32.powi(-11);
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(v)), 1.0);
        // 1 + 3*2^-11 is halfway between odd and even; rounds up to even.
        let v = 1.0 + 3.0 * 2.0f32.powi(-11);
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(v)), 1.0 + 2.0f32.powi(-9));
    }

    #[test]
    fn slice_encode_decode() {
        let data = vec![1.0f32, -2.5, 0.125, 100.0];
        let enc = encode_f16(&data);
        assert_eq!(enc.len(), 4);
        assert_eq!(decode_f16(&enc), data);
    }
}
