//! A small persistent fork-join thread pool for intra-worker kernel
//! parallelism.
//!
//! PowerSGD encode time is dominated by its three GEMMs and Top-K encode
//! by the `|data|` magnitude scan; both decompose into independent bands.
//! The pool spawns its workers **once** (at construction; the process-wide
//! [`global()`] pool on first use) and parks them on a condvar, so the
//! per-call cost is one mutex push + wakeup instead of a thread spawn.
//! Three banding primitives are exposed:
//!
//! - [`Pool::for_rows`] splits a mutable output buffer into disjoint
//!   row bands and runs a closure on each band concurrently;
//! - [`Pool::for_spans`] hands each band a `[lo, hi)` index span (for
//!   kernels whose in/out buffers need block-aligned banding, e.g. the
//!   32-elements-per-word sign kernels);
//! - [`Pool::map_spans`] additionally collects one result per band in band
//!   order (for the chunked top-k gather, which concatenates per-band
//!   index/value vectors).
//!
//! The banding is **bit-identical** to the serial kernel for every caller
//! in this crate because bands never split an accumulation chain: each
//! output element's FMA chain is computed in the same order regardless of
//! which band it lands in (see `matrix::matmul_pooled` et al.), and the
//! band *boundaries* depend only on `(units, bands)` — so results are also
//! identical across pool widths and repeated runs (verified by
//! `tests/kernel_props.rs`).
//!
//! Width comes from `GCS_KERNEL_THREADS` when set, else the legacy
//! `GCS_THREADS`, else [`std::thread::available_parallelism`]; setting
//! `GCS_FORCE_SCALAR=1` pins the width to 1 so the scalar reference path
//! is truly single-threaded. With width 1 (the common case on small CI
//! boxes) every call runs inline on the caller's thread with zero
//! overhead and no threads are spawned, so the pooled kernels are safe to
//! use unconditionally.
//!
//! # Soundness of the submission protocol
//!
//! Worker threads outlive any one call, so band closures cannot be handed
//! to them by borrow; instead [`Pool::dispatch`] erases the closure to a
//! raw `*const dyn Fn(usize)` and publishes it in a queue slot. The
//! submitting thread (a) participates in the band claim loop itself and
//! (b) blocks until every claimed band has finished executing before
//! returning, so the erased pointer is only ever dereferenced while the
//! closure (and everything it borrows) is alive. Panics inside a band are
//! caught on the executing thread, recorded, and re-raised on the
//! submitting thread after all bands drain.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A raw pointer that may cross threads. Used by the banding primitives to
/// hand disjoint sub-slices of one buffer to concurrent bands.
pub(crate) struct SendPtr<T>(pub(crate) *mut T);

// Manual impls: the derives would demand `T: Copy`, but the wrapped
// pointer is Copy for any `T`.
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// By-value accessor: calling a method on `self` makes closures
    /// capture the whole (Sync) wrapper instead of disjointly borrowing
    /// the raw (non-Sync) pointer field.
    pub(crate) fn get(self) -> *mut T {
        self.0
    }
}

// SAFETY: `SendPtr` is only used to address *disjoint* regions of a buffer
// the submitting thread holds exclusively for the duration of a dispatch;
// the dispatch protocol (see module docs) guarantees all cross-thread
// accesses finish before the submitter returns.
unsafe impl<T: Send> Send for SendPtr<T> {}
// SAFETY: as above — disjointness is the caller's per-band contract.
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Type-erased band task: call with a band index in `0..bands`.
///
/// The `'static` in the field type is a lie told to the type system;
/// see the module docs for why the pointer never outlives its closure.
struct RawTask(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (bound enforced at construction in
// `dispatch`) and is kept alive by the submitting thread until every band
// completes, so sharing the pointer across worker threads is sound.
unsafe impl Send for RawTask {}
// SAFETY: as above.
unsafe impl Sync for RawTask {}

/// One submitted fan-out: a task pointer plus claim/completion state.
struct Job {
    task: RawTask,
    bands: usize,
    /// Next unclaimed band index; claims are atomic-RMW so each band runs
    /// exactly once.
    next: AtomicUsize,
    /// Bands not yet finished; guarded by a mutex so the final decrement
    /// and the submitter's wait synchronize (mutex release/acquire is the
    /// happens-before edge that publishes band writes to the submitter).
    remaining: Mutex<usize>,
    done_cv: Condvar,
    /// First panic payload raised by any band, re-thrown by the submitter.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Job {
    /// Claims the next band index, or `None` when all are claimed.
    fn claim(&self) -> Option<usize> {
        // SYNC: Relaxed is sufficient for the band cursor: the CAS inside
        // fetch_update makes each claim unique on its own, and band
        // *results* are never published through this atomic — the
        // `remaining` mutex release/acquire plus the condvar join carry
        // the happens-before edge to the submitter (verified by the
        // Pass 3 pool-join model in gcs-analyze).
        self.next
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                (v < self.bands).then_some(v + 1)
            })
            .ok()
    }

    /// Runs one band, recording (not propagating) any panic, and signals
    /// the submitter when it was the last.
    fn run_band(&self, idx: usize) {
        // SAFETY: `task` points at a closure the submitting thread keeps
        // alive until `remaining` hits 0, which cannot happen before this
        // call returns (we decrement below, after the call).
        let f = unsafe { &*self.task.0 };
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(idx))) {
            let mut slot = self.panic.lock().unwrap();
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        let mut remaining = self.remaining.lock().unwrap();
        *remaining -= 1;
        if *remaining == 0 {
            self.done_cv.notify_all();
        }
    }
}

/// State shared between pool handles and the parked worker threads.
struct Shared {
    queue: Mutex<JobQueue>,
    work_cv: Condvar,
}

#[derive(Default)]
struct JobQueue {
    jobs: Vec<Arc<Job>>,
    shutdown: bool,
}

impl JobQueue {
    /// Claims a band from the first job that still has one, pruning jobs
    /// that were fully claimed by their submitter in the meantime.
    fn claim(&mut self) -> Option<(Arc<Job>, usize)> {
        while let Some(job) = self.jobs.first() {
            match job.claim() {
                Some(idx) => {
                    let job = Arc::clone(job);
                    if idx + 1 == job.bands {
                        self.jobs.remove(0);
                    }
                    return Some((job, idx));
                }
                None => {
                    self.jobs.remove(0);
                }
            }
        }
        None
    }
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let claimed = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(c) = q.claim() {
                    break Some(c);
                }
                if q.shutdown {
                    break None;
                }
                q = shared.work_cv.wait(q).unwrap();
            }
        };
        match claimed {
            Some((job, idx)) => job.run_band(idx),
            None => return,
        }
    }
}

/// Signals worker shutdown when the last pool handle drops, so `Pool`
/// values created in tests do not leak parked threads.
struct ShutdownGuard(Arc<Shared>);

impl Drop for ShutdownGuard {
    fn drop(&mut self) {
        self.0.queue.lock().unwrap().shutdown = true;
        self.0.work_cv.notify_all();
    }
}

/// Fork-join helper over disjoint bands, backed by persistent workers.
#[derive(Clone)]
pub struct Pool {
    width: usize,
    shared: Option<Arc<Shared>>,
    _guard: Option<Arc<ShutdownGuard>>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool").field("width", &self.width).finish()
    }
}

impl Pool {
    /// A pool that fans out to at most `width` threads (including the
    /// calling thread). `width` is clamped to at least 1; `width - 1`
    /// worker threads are spawned immediately and parked until work
    /// arrives (none for width 1).
    pub fn new(width: usize) -> Self {
        let width = width.max(1);
        if width == 1 {
            return Pool {
                width,
                shared: None,
                _guard: None,
            };
        }
        let shared = Arc::new(Shared {
            queue: Mutex::new(JobQueue::default()),
            work_cv: Condvar::new(),
        });
        let mut spawned = 0usize;
        for i in 0..width - 1 {
            let s = Arc::clone(&shared);
            let builder = std::thread::Builder::new().name(format!("gcs-kernel-{i}"));
            if builder.spawn(move || worker_loop(s)).is_ok() {
                spawned += 1;
            }
        }
        // If the OS refused some threads the pool degrades gracefully: the
        // submitter always participates, so any width still completes.
        Pool {
            width: spawned + 1,
            shared: Some(Arc::clone(&shared)),
            _guard: Some(Arc::new(ShutdownGuard(shared))),
        }
    }

    /// Width from the environment: `GCS_KERNEL_THREADS` when set to a
    /// positive integer, else the legacy `GCS_THREADS`, else
    /// [`std::thread::available_parallelism`], else 1. `GCS_FORCE_SCALAR=1`
    /// overrides everything to width 1 (single-threaded scalar reference).
    pub fn from_env() -> Self {
        Pool::new(width_from(
            crate::kernels::force_scalar(),
            std::env::var("GCS_KERNEL_THREADS").ok().as_deref(),
            std::env::var("GCS_THREADS").ok().as_deref(),
        ))
    }

    /// Maximum number of concurrent bands.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of bands for fanning `units` work items out with at least
    /// `min_units_per_band` items per band.
    fn bands_for(&self, units: usize, min_units_per_band: usize) -> usize {
        self.width
            .min(units / min_units_per_band.max(1))
            .clamp(1, units.max(1))
    }

    /// Core fan-out: runs `f(0), f(1), ..., f(bands - 1)` concurrently
    /// across the pool (the calling thread participates) and returns once
    /// all bands finish, re-raising the first band panic if any.
    fn dispatch(&self, bands: usize, f: &(dyn Fn(usize) + Sync)) {
        let Some(shared) = self.shared.as_ref().filter(|_| bands > 1) else {
            for b in 0..bands {
                f(b);
            }
            return;
        };
        let ptr: *const (dyn Fn(usize) + Sync + '_) = f;
        // SAFETY: erases the closure's borrow lifetime to 'static. The
        // pointer is dereferenced only by `Job::run_band`, and this
        // function does not return until `remaining == 0`, i.e. until
        // every `run_band` call has completed — so the closure outlives
        // every dereference (see module docs).
        let task = RawTask(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync + '_),
                *const (dyn Fn(usize) + Sync + 'static),
            >(ptr)
        });
        let job = Arc::new(Job {
            task,
            bands,
            next: AtomicUsize::new(0),
            remaining: Mutex::new(bands),
            done_cv: Condvar::new(),
            panic: Mutex::new(None),
        });
        {
            let mut q = shared.queue.lock().unwrap();
            // Drop exhausted entries left behind by submitters that
            // claimed their own last band.
            // SYNC: a Relaxed read of the cursor is only a garbage-
            // collection hint under the queue mutex; a stale value keeps
            // an exhausted job one round longer, never hands out a band
            // twice (the CAS in `claim` stays authoritative).
            q.jobs.retain(|j| j.next.load(Ordering::Relaxed) < j.bands);
            q.jobs.push(Arc::clone(&job));
        }
        shared.work_cv.notify_all();
        // Participate: claim bands alongside the workers.
        while let Some(idx) = job.claim() {
            job.run_band(idx);
        }
        // Wait for bands claimed by workers to finish.
        let mut remaining = job.remaining.lock().unwrap();
        while *remaining > 0 {
            remaining = job.done_cv.wait(remaining).unwrap();
        }
        drop(remaining);
        let payload = job.panic.lock().unwrap().take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }

    /// Splits `out` (rows of `row_len` elements each) into up to
    /// [`width`](Pool::width) near-equal contiguous row bands of at least
    /// `min_rows_per_band` rows and runs `f(first_row, band)` on each band
    /// concurrently, returning once all bands finish.
    ///
    /// With one band (width 1, few rows, or a small buffer) `f` runs
    /// inline exactly once over the whole buffer. Band boundaries depend
    /// only on the row count and band count — not on scheduling — so
    /// callers whose bands are independent get bit-identical results for
    /// every width.
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` is not a multiple of `row_len`, or if `f`
    /// panics on any band (the panic is propagated).
    pub fn for_rows<T, F>(&self, out: &mut [T], row_len: usize, min_rows_per_band: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        if out.is_empty() || row_len == 0 {
            f(0, out);
            return;
        }
        assert_eq!(
            out.len() % row_len,
            0,
            "buffer length {} is not a multiple of row length {row_len}",
            out.len()
        );
        let rows = out.len() / row_len;
        let bands = self.bands_for(rows, min_rows_per_band);
        if bands == 1 {
            f(0, out);
            return;
        }
        let base = SendPtr(out.as_mut_ptr());
        self.dispatch(bands, &move |b| {
            let lo = rows * b / bands;
            let hi = rows * (b + 1) / bands;
            // SAFETY: bands partition `0..rows` into disjoint `[lo, hi)`
            // ranges, so each band's sub-slice is exclusively owned by one
            // closure invocation; `out` itself is borrowed mutably for the
            // whole dispatch.
            let band = unsafe {
                std::slice::from_raw_parts_mut(base.get().add(lo * row_len), (hi - lo) * row_len)
            };
            f(lo, band);
        });
    }

    /// Splits `0..units` into up to [`width`](Pool::width) contiguous
    /// spans of at least `min_units_per_band` units and runs `f(lo, hi)`
    /// on each span concurrently. Does nothing when `units == 0`.
    ///
    /// Unlike [`for_rows`](Pool::for_rows) no buffer is split here — the
    /// closure indexes its own captures, which is what kernels with
    /// block-aligned in/out pairs (sign words ↔ 32 floats) need.
    pub fn for_spans<F>(&self, units: usize, min_units_per_band: usize, f: F)
    where
        F: Fn(usize, usize) + Sync,
    {
        if units == 0 {
            return;
        }
        let bands = self.bands_for(units, min_units_per_band);
        self.dispatch(bands, &|b| {
            f(units * b / bands, units * (b + 1) / bands);
        });
    }

    /// Like [`for_spans`](Pool::for_spans) but collects `f`'s result for
    /// each span, returned in span order (lowest `lo` first) — the shape
    /// the chunked top-k gather needs to concatenate per-band matches in
    /// serial scan order.
    pub fn map_spans<R, F>(&self, units: usize, min_units_per_band: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, usize) -> R + Sync,
    {
        if units == 0 {
            return Vec::new();
        }
        let bands = self.bands_for(units, min_units_per_band);
        let slots: Vec<Mutex<Option<R>>> = (0..bands).map(|_| Mutex::new(None)).collect();
        self.dispatch(bands, &|b| {
            let r = f(units * b / bands, units * (b + 1) / bands);
            *slots[b].lock().unwrap() = Some(r);
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .unwrap()
                    .expect("every band stores its result")
            })
            .collect()
    }
}

/// Pure width policy, split out so the env plumbing is testable without
/// mutating the process environment: `force_scalar` wins (width 1), then
/// `GCS_KERNEL_THREADS`, then `GCS_THREADS`, then available parallelism.
fn width_from(force_scalar: bool, kernel_threads: Option<&str>, threads: Option<&str>) -> usize {
    if force_scalar {
        return 1;
    }
    let parse = |s: Option<&str>| {
        s.and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&w| w >= 1)
    };
    parse(kernel_threads)
        .or_else(|| parse(threads))
        .or_else(|| std::thread::available_parallelism().ok().map(|n| n.get()))
        .unwrap_or(1)
}

impl Default for Pool {
    fn default() -> Self {
        Pool::from_env()
    }
}

/// The process-wide pool used by the pooled kernels when the caller does
/// not thread one through explicitly (compressors keep their trait
/// signatures unchanged by going through this). Workers are spawned once,
/// on first use, with the width from the environment.
pub fn global() -> &'static Pool {
    static GLOBAL: OnceLock<Pool> = OnceLock::new();
    GLOBAL.get_or_init(Pool::from_env)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_is_clamped_to_one() {
        assert_eq!(Pool::new(0).width(), 1);
        assert_eq!(Pool::new(5).width(), 5);
    }

    #[test]
    fn width_policy_honors_force_scalar_and_env_order() {
        assert_eq!(width_from(true, Some("8"), Some("4")), 1);
        assert_eq!(width_from(false, Some("8"), Some("4")), 8);
        assert_eq!(width_from(false, None, Some("4")), 4);
        assert_eq!(width_from(false, Some("garbage"), Some("4")), 4);
        assert_eq!(width_from(false, Some("0"), Some("3")), 3);
        // No env: falls back to available_parallelism (>= 1 either way).
        assert!(width_from(false, None, None) >= 1);
    }

    #[test]
    fn for_rows_covers_every_row_exactly_once() {
        for width in [1usize, 2, 3, 7] {
            for rows in [1usize, 2, 5, 16, 33] {
                let row_len = 3;
                let mut out = vec![0u32; rows * row_len];
                Pool::new(width).for_rows(&mut out, row_len, 1, |first_row, band| {
                    for (r, row) in band.chunks_mut(row_len).enumerate() {
                        for v in row.iter_mut() {
                            *v += (first_row + r) as u32 + 1;
                        }
                    }
                });
                let expect: Vec<u32> = (0..rows)
                    .flat_map(|r| std::iter::repeat(r as u32 + 1).take(row_len))
                    .collect();
                assert_eq!(out, expect, "width={width} rows={rows}");
            }
        }
    }

    #[test]
    fn for_rows_respects_min_band_size() {
        // 10 rows, min 8 per band: only one band fits, so everything runs
        // inline in a single call.
        let mut calls = std::sync::atomic::AtomicUsize::new(0);
        let mut out = vec![0u8; 10];
        Pool::new(4).for_rows(&mut out, 1, 8, |_, _| {
            calls.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
        assert_eq!(*calls.get_mut(), 1);
    }

    #[test]
    fn for_rows_empty_buffer_runs_once() {
        let hits = std::sync::atomic::AtomicUsize::new(0);
        let mut out: Vec<f32> = Vec::new();
        Pool::new(3).for_rows(&mut out, 4, 1, |_, band| {
            assert!(band.is_empty());
            hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
        assert_eq!(hits.load(std::sync::atomic::Ordering::Relaxed), 1);
    }

    #[test]
    fn for_spans_partitions_exactly() {
        for width in [1usize, 2, 4] {
            for units in [1usize, 5, 16, 67] {
                let hits: Vec<AtomicUsize> = (0..units).map(|_| AtomicUsize::new(0)).collect();
                Pool::new(width).for_spans(units, 1, |lo, hi| {
                    assert!(lo < hi && hi <= units);
                    for h in &hits[lo..hi] {
                        h.fetch_add(1, Ordering::Relaxed);
                    }
                });
                assert!(
                    hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                    "width={width} units={units}"
                );
            }
        }
        // Zero units: closure must not run.
        Pool::new(2).for_spans(0, 1, |_, _| panic!("must not run"));
    }

    #[test]
    fn map_spans_returns_results_in_span_order() {
        let pool = Pool::new(4);
        let spans = pool.map_spans(100, 1, |lo, hi| (lo, hi));
        assert!(!spans.is_empty());
        let mut expect_lo = 0;
        for (lo, hi) in spans {
            assert_eq!(lo, expect_lo);
            expect_lo = hi;
        }
        assert_eq!(expect_lo, 100);
        assert!(pool.map_spans(0, 1, |_, _| 0u8).is_empty());
    }

    #[test]
    fn band_panic_propagates_to_submitter() {
        let pool = Pool::new(3);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.for_spans(16, 1, |lo, _| {
                if lo >= 8 {
                    panic!("band boom");
                }
            });
        }));
        assert!(result.is_err(), "band panic must reach the submitter");
        // The pool must still be usable afterwards.
        let sum: usize = pool.map_spans(10, 1, |lo, hi| hi - lo).into_iter().sum();
        assert_eq!(sum, 10);
    }

    #[test]
    fn pool_survives_many_round_trips() {
        // Regression guard for the persistent queue: repeated dispatches
        // must not wedge on stale jobs or lost wakeups.
        let pool = Pool::new(4);
        for round in 0..200usize {
            let total: usize = pool
                .map_spans(round + 1, 1, |lo, hi| hi - lo)
                .into_iter()
                .sum();
            assert_eq!(total, round + 1);
        }
    }

    #[test]
    fn global_pool_is_stable() {
        let a = global() as *const Pool;
        let b = global() as *const Pool;
        assert_eq!(a, b);
        assert!(global().width() >= 1);
    }
}
