//! A small fork-join thread pool for intra-worker kernel parallelism.
//!
//! PowerSGD encode time is dominated by its three GEMMs and Top-K encode
//! by the `|data|` magnitude scan; both decompose into independent row
//! bands.  [`Pool::for_rows`] splits a mutable output buffer into disjoint
//! bands and runs a closure on each band from a scoped thread, joining
//! before it returns — no unsafe, no lifetime erasure, and the banding is
//! **bit-identical** to the serial kernel because every output element's
//! FMA chain is computed in the same order regardless of which band it
//! lands in (see `matrix::matmul_pooled` et al.).
//!
//! Width comes from the `GCS_THREADS` environment variable when set, else
//! [`std::thread::available_parallelism`].  With width 1 (the common case
//! on small CI boxes) every call runs inline on the caller's thread with
//! zero overhead, so the pooled kernels are safe to use unconditionally.
//!
//! Threads are spawned per call rather than parked persistently: the
//! kernels this pool serves run for hundreds of microseconds to
//! milliseconds per call, so ~10 µs of spawn cost is noise, and scoped
//! spawning keeps borrowed band slices safe without any `'static`
//! plumbing.

use std::sync::OnceLock;

/// Fork-join helper over disjoint row bands of a mutable buffer.
#[derive(Debug, Clone)]
pub struct Pool {
    width: usize,
}

impl Pool {
    /// A pool that fans out to at most `width` threads (including the
    /// calling thread).  `width` is clamped to at least 1.
    pub fn new(width: usize) -> Self {
        Pool {
            width: width.max(1),
        }
    }

    /// Width from the environment: `GCS_THREADS` when set to a positive
    /// integer, else [`std::thread::available_parallelism`], else 1.
    pub fn from_env() -> Self {
        let width = std::env::var("GCS_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&w| w >= 1)
            .or_else(|| std::thread::available_parallelism().ok().map(|n| n.get()))
            .unwrap_or(1);
        Pool::new(width)
    }

    /// Maximum number of concurrent bands.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Splits `out` (rows of `row_len` elements each) into up to
    /// [`width`](Pool::width) near-equal contiguous row bands of at least
    /// `min_rows_per_band` rows and runs `f(first_row, band)` on each band
    /// concurrently, returning once all bands finish.  The last band runs
    /// on the calling thread.
    ///
    /// With one band (width 1, few rows, or a small buffer) `f` runs
    /// inline exactly once over the whole buffer.
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` is not a multiple of `row_len`, or if `f`
    /// panics on any band (the panic is propagated).
    pub fn for_rows<T, F>(&self, out: &mut [T], row_len: usize, min_rows_per_band: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        if out.is_empty() || row_len == 0 {
            f(0, out);
            return;
        }
        assert_eq!(
            out.len() % row_len,
            0,
            "buffer length {} is not a multiple of row length {row_len}",
            out.len()
        );
        let rows = out.len() / row_len;
        let bands = self
            .width
            .min(rows / min_rows_per_band.max(1))
            .clamp(1, rows);
        if bands == 1 {
            f(0, out);
            return;
        }
        std::thread::scope(|s| {
            let f = &f;
            let mut rest = out;
            let mut lo = 0usize;
            for b in 0..bands {
                let hi = rows * (b + 1) / bands;
                let (band, tail) = rest.split_at_mut((hi - lo) * row_len);
                rest = tail;
                let first_row = lo;
                if b + 1 == bands {
                    f(first_row, band);
                } else {
                    s.spawn(move || f(first_row, band));
                }
                lo = hi;
            }
        });
    }
}

impl Default for Pool {
    fn default() -> Self {
        Pool::from_env()
    }
}

/// The process-wide pool used by the pooled kernels when the caller does
/// not thread one through explicitly (compressors keep their trait
/// signatures unchanged by going through this).  Initialized lazily from
/// the environment on first use.
pub fn global() -> &'static Pool {
    static GLOBAL: OnceLock<Pool> = OnceLock::new();
    GLOBAL.get_or_init(Pool::from_env)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_is_clamped_to_one() {
        assert_eq!(Pool::new(0).width(), 1);
        assert_eq!(Pool::new(5).width(), 5);
    }

    #[test]
    fn for_rows_covers_every_row_exactly_once() {
        for width in [1usize, 2, 3, 7] {
            for rows in [1usize, 2, 5, 16, 33] {
                let row_len = 3;
                let mut out = vec![0u32; rows * row_len];
                Pool::new(width).for_rows(&mut out, row_len, 1, |first_row, band| {
                    for (r, row) in band.chunks_mut(row_len).enumerate() {
                        for v in row.iter_mut() {
                            *v += (first_row + r) as u32 + 1;
                        }
                    }
                });
                let expect: Vec<u32> = (0..rows)
                    .flat_map(|r| std::iter::repeat(r as u32 + 1).take(row_len))
                    .collect();
                assert_eq!(out, expect, "width={width} rows={rows}");
            }
        }
    }

    #[test]
    fn for_rows_respects_min_band_size() {
        // 10 rows, min 8 per band: only one band fits, so everything runs
        // inline in a single call.
        let mut calls = std::sync::atomic::AtomicUsize::new(0);
        let mut out = vec![0u8; 10];
        Pool::new(4).for_rows(&mut out, 1, 8, |_, _| {
            calls.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
        assert_eq!(*calls.get_mut(), 1);
    }

    #[test]
    fn for_rows_empty_buffer_runs_once() {
        let hits = std::sync::atomic::AtomicUsize::new(0);
        let mut out: Vec<f32> = Vec::new();
        Pool::new(3).for_rows(&mut out, 4, 1, |_, band| {
            assert!(band.is_empty());
            hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
        assert_eq!(hits.load(std::sync::atomic::Ordering::Relaxed), 1);
    }

    #[test]
    fn global_pool_is_stable() {
        let a = global() as *const Pool;
        let b = global() as *const Pool;
        assert_eq!(a, b);
        assert!(global().width() >= 1);
    }
}
