//! Tensor shapes and the 4D→2D matricization rule used by low-rank
//! compressors.

use std::fmt;

/// The shape of a [`Tensor`](crate::Tensor): an ordered list of dimension
/// sizes.
///
/// A scalar has an empty dimension list and one element.
///
/// # Example
///
/// ```
/// use gcs_tensor::Shape;
///
/// let s = Shape::new(vec![64, 3, 7, 7]);
/// assert_eq!(s.numel(), 64 * 3 * 7 * 7);
/// assert_eq!(s.rank(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from its dimension sizes.
    pub fn new(dims: Vec<usize>) -> Self {
        Shape { dims }
    }

    /// Creates a 0-dimensional (scalar) shape.
    pub fn scalar() -> Self {
        Shape { dims: Vec::new() }
    }

    /// The dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements (product of all dimensions; 1 for scalars).
    pub fn numel(&self) -> usize {
        self.dims.iter().product()
    }

    /// Whether this shape is a matrix (rank 2).
    pub fn is_matrix(&self) -> bool {
        self.rank() == 2
    }

    /// The `(rows, cols)` a tensor of this shape is reshaped to before
    /// low-rank compression.
    ///
    /// PowerSGD and ATOMO view an `n`-dimensional gradient as a 2-D matrix:
    /// the first dimension becomes the rows and the remaining dimensions are
    /// flattened into the columns (the reshaping described in Section 2.1 of
    /// the paper for 4-D convolution kernels). Vectors (rank ≤ 1) are kept as
    /// a single row.
    ///
    /// # Example
    ///
    /// ```
    /// use gcs_tensor::Shape;
    ///
    /// // ResNet conv kernel: 512 output channels, 512x3x3 receptive field.
    /// assert_eq!(Shape::new(vec![512, 512, 3, 3]).matricized(), (512, 4608));
    /// // A bias vector stays a single-row matrix.
    /// assert_eq!(Shape::new(vec![512]).matricized(), (1, 512));
    /// ```
    pub fn matricized(&self) -> (usize, usize) {
        match self.dims.len() {
            0 => (1, 1),
            1 => (1, self.dims[0]),
            _ => (self.dims[0], self.dims[1..].iter().product()),
        }
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_of_scalar_is_one() {
        assert_eq!(Shape::scalar().numel(), 1);
        assert_eq!(Shape::scalar().rank(), 0);
    }

    #[test]
    fn numel_multiplies_dims() {
        assert_eq!(Shape::new(vec![2, 3, 4]).numel(), 24);
    }

    #[test]
    fn matricized_flattens_trailing_dims() {
        assert_eq!(Shape::new(vec![64, 3, 7, 7]).matricized(), (64, 147));
        assert_eq!(Shape::new(vec![10, 20]).matricized(), (10, 20));
        assert_eq!(Shape::new(vec![7]).matricized(), (1, 7));
        assert_eq!(Shape::scalar().matricized(), (1, 1));
    }

    #[test]
    fn display_is_x_separated() {
        assert_eq!(Shape::new(vec![2, 3]).to_string(), "[2x3]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }

    #[test]
    fn conversions() {
        let s: Shape = [1usize, 2, 3].into();
        assert_eq!(s.dims(), &[1, 2, 3]);
        let s: Shape = vec![4usize, 5].into();
        assert_eq!(s.dims(), &[4, 5]);
    }
}
