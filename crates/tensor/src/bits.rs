//! Sign bit-packing and majority voting — the SignSGD kernels.
//!
//! SignSGD transmits one bit per 32-bit gradient element (`sign(g)`), and
//! aggregation is a per-coordinate majority vote:
//! `sign(Σᵢ sign(gᵢ))` (Section 2.1 of the paper).
//!
//! The pack/unpack/vote inner loops dispatch through the *pooled*
//! [`crate::kernels`] entry points, so they run vectorized (AVX-512 or
//! AVX2 where detected) and banded across the global kernel pool on
//! multi-core hosts — with byte-identical results to the serial scalar
//! fallback in every configuration.

use crate::kernels;
use crate::pool;

/// A packed vector of signs: bit = 1 means the element was non-negative.
///
/// `len` elements are packed into `ceil(len / 32)` `u32` words, LSB-first
/// within each word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignBits {
    words: Vec<u32>,
    len: usize,
}

impl SignBits {
    /// Packs the signs of `data` (one bit per element). Word-parallel:
    /// 32 elements per output word, no per-element division.
    pub fn pack(data: &[f32]) -> Self {
        let len = data.len();
        let mut words = vec![0u32; len.div_ceil(32)];
        kernels::sign_pack_pooled(pool::global(), data, &mut words);
        SignBits { words, len }
    }

    /// Reconstructs a `±1.0` vector, optionally scaled by `scale`.
    ///
    /// Element `i` becomes `+scale` if bit `i` is set, `-scale` otherwise.
    pub fn unpack(&self, scale: f32) -> Vec<f32> {
        let mut out = vec![0.0; self.len];
        kernels::unpack_fill_pooled(pool::global(), &self.words, -scale, scale, &mut out);
        out
    }

    /// [`unpack`](Self::unpack) with an asymmetric value pair: element `i`
    /// becomes `pos` if bit `i` is set, `neg` otherwise (1-bit SGD keeps
    /// distinct per-bucket means for the two halves).
    pub fn unpack_into(&self, neg: f32, pos: f32, out: &mut [f32]) {
        assert_eq!(out.len(), self.len, "unpack_into length mismatch");
        kernels::unpack_fill_pooled(pool::global(), &self.words, neg, pos, out);
    }

    /// Accumulating unpack: `out[i] += if bit i { pos } else { neg }`.
    pub fn unpack_add_into(&self, neg: f32, pos: f32, out: &mut [f32]) {
        assert_eq!(out.len(), self.len, "unpack_add_into length mismatch");
        kernels::unpack_add_pooled(pool::global(), &self.words, neg, pos, out);
    }

    /// Number of packed elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no elements are packed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Size in bytes of the packed representation.
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 4
    }

    /// Whether bit `i` is set (element was non-negative).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index out of bounds");
        (self.words[i / 32] >> (i % 32)) & 1 == 1
    }

    /// The raw packed words.
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// Consumes the packing and returns the word buffer.
    pub fn into_words(self) -> Vec<u32> {
        self.words
    }

    /// Reconstructs from raw words.
    ///
    /// # Panics
    ///
    /// Panics if `words` is too short for `len` elements.
    pub fn from_words(words: Vec<u32>, len: usize) -> Self {
        assert!(words.len() * 32 >= len, "word buffer too short");
        SignBits { words, len }
    }
}

/// Accumulates sign votes from multiple workers and takes the majority —
/// SignSGD's non-associative aggregation (`sign(Σ sign(g))`).
///
/// This aggregation is *not* all-reduce compatible: the inner sum must see
/// every worker's vote before the outer sign is applied, which is why
/// SignSGD has to use all-gather in the paper's experiments.
///
/// # Example
///
/// ```
/// use gcs_tensor::bits::{MajorityVote, SignBits};
///
/// let mut vote = MajorityVote::new(3);
/// vote.add(&SignBits::pack(&[-0.5, 1.0, 2.0]));
/// vote.add(&SignBits::pack(&[-0.1, -3.0, 1.0]));
/// vote.add(&SignBits::pack(&[-1.7, 4.0, -0.2]));
/// assert_eq!(vote.majority(1.0), vec![-1.0, 1.0, 1.0]);
/// ```
#[derive(Debug, Clone)]
pub struct MajorityVote {
    /// +1 per positive vote, −1 per negative vote, per coordinate.
    tally: Vec<i32>,
    voters: usize,
}

impl MajorityVote {
    /// Creates a vote accumulator for `len`-element sign vectors.
    pub fn new(len: usize) -> Self {
        MajorityVote {
            tally: vec![0; len],
            voters: 0,
        }
    }

    /// Adds one worker's sign vector to the tally.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len()` differs from the accumulator length.
    pub fn add(&mut self, bits: &SignBits) {
        assert_eq!(bits.len(), self.tally.len(), "vote length mismatch");
        // +1 for a set bit, −1 otherwise, branchless.
        kernels::vote_add_pooled(pool::global(), bits.words(), &mut self.tally);
        self.voters += 1;
    }

    /// Number of votes received so far.
    pub fn voters(&self) -> usize {
        self.voters
    }

    /// Resolves the majority as a `±scale` dense vector. Exact ties resolve
    /// to `+scale` (consistent with `sign(0) = +1` under `x >= 0` packing).
    pub fn majority(&self, scale: f32) -> Vec<f32> {
        self.tally
            .iter()
            .map(|&t| if t >= 0 { scale } else { -scale })
            .collect()
    }

    /// Resolves the majority directly into packed form (what the server
    /// would broadcast back).
    pub fn majority_bits(&self) -> SignBits {
        let mut words = vec![0u32; self.tally.len().div_ceil(32)];
        kernels::vote_pack_pooled(pool::global(), &self.tally, &mut words);
        SignBits {
            words,
            len: self.tally.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let data = [1.5, -0.2, 0.0, -7.0, 3.3];
        let bits = SignBits::pack(&data);
        assert_eq!(bits.len(), 5);
        assert_eq!(bits.unpack(1.0), vec![1.0, -1.0, 1.0, -1.0, 1.0]);
        assert_eq!(bits.unpack(0.5), vec![0.5, -0.5, 0.5, -0.5, 0.5]);
    }

    #[test]
    fn packing_is_32x_compression() {
        let data = vec![1.0f32; 1024];
        let bits = SignBits::pack(&data);
        assert_eq!(bits.size_bytes(), 1024 / 8);
        // 4 bytes/f32 vs 1/8 byte/element = 32x.
        assert_eq!(data.len() * 4 / bits.size_bytes(), 32);
    }

    #[test]
    fn pack_crosses_word_boundaries() {
        let data: Vec<f32> = (0..100)
            .map(|i| if i % 3 == 0 { 1.0 } else { -1.0 })
            .collect();
        let bits = SignBits::pack(&data);
        for i in 0..100 {
            assert_eq!(bits.get(i), i % 3 == 0, "bit {i}");
        }
    }

    #[test]
    fn majority_vote_example_from_paper() {
        // Paper: coordinate values -0.5, -0.1, -1.7, 2 vote to -1.
        let mut vote = MajorityVote::new(1);
        for v in [-0.5f32, -0.1, -1.7, 2.0] {
            vote.add(&SignBits::pack(&[v]));
        }
        assert_eq!(vote.majority(1.0), vec![-1.0]);
        assert_eq!(vote.voters(), 4);
    }

    #[test]
    fn majority_tie_is_positive() {
        let mut vote = MajorityVote::new(1);
        vote.add(&SignBits::pack(&[1.0]));
        vote.add(&SignBits::pack(&[-1.0]));
        assert_eq!(vote.majority(1.0), vec![1.0]);
    }

    #[test]
    fn majority_bits_matches_dense_majority() {
        let mut vote = MajorityVote::new(40);
        for seed in 0..5u64 {
            let t = crate::Tensor::randn([40], seed);
            vote.add(&SignBits::pack(t.data()));
        }
        let dense = vote.majority(1.0);
        let packed = vote.majority_bits().unpack(1.0);
        assert_eq!(dense, packed);
    }

    #[test]
    fn from_words_roundtrip() {
        let bits = SignBits::pack(&[1.0, -1.0, 1.0]);
        let rebuilt = SignBits::from_words(bits.words().to_vec(), bits.len());
        assert_eq!(bits, rebuilt);
    }

    #[test]
    #[should_panic(expected = "word buffer too short")]
    fn from_words_validates_len() {
        let _ = SignBits::from_words(vec![0u32], 64);
    }
}
