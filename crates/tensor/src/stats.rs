//! Small statistics helpers used by the experiment harness: error metrics
//! between gradients, and mean/std summaries for timing series.

use crate::Tensor;

/// Relative L2 error `||a - b|| / ||a||` (returns `0` when `a` is the zero
/// vector and `a == b`, `inf` when `a` is zero but `b` is not).
///
/// # Panics
///
/// Panics if the tensors have different element counts.
pub fn relative_l2_error(a: &Tensor, b: &Tensor) -> f32 {
    assert_eq!(a.numel(), b.numel(), "relative error needs equal lengths");
    let diff: f32 = a
        .data()
        .iter()
        .zip(b.data())
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f32>()
        .sqrt();
    let norm = a.l2_norm();
    if norm == 0.0 {
        if diff == 0.0 {
            0.0
        } else {
            f32::INFINITY
        }
    } else {
        diff / norm
    }
}

/// Cosine similarity between two tensors viewed as flat vectors (0 if either
/// is the zero vector).
///
/// # Panics
///
/// Panics if the tensors have different element counts.
pub fn cosine_similarity(a: &Tensor, b: &Tensor) -> f32 {
    assert_eq!(a.numel(), b.numel(), "cosine needs equal lengths");
    let na = a.l2_norm();
    let nb = b.l2_norm();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    a.dot(b).expect("lengths checked") / (na * nb)
}

/// Mean and sample standard deviation of a series.
///
/// Returns `(0, 0)` for an empty series and `(x, 0)` for a single sample.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    if xs.len() < 2 {
        return (mean, 0.0);
    }
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64;
    (mean, var.sqrt())
}

/// Median of a series (average of middle two for even lengths; `0` for an
/// empty series).
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_basics() {
        let a = Tensor::from_vec(vec![3.0, 4.0]);
        let b = Tensor::from_vec(vec![3.0, 4.0]);
        assert_eq!(relative_l2_error(&a, &b), 0.0);
        let c = Tensor::from_vec(vec![0.0, 0.0]);
        assert_eq!(relative_l2_error(&c, &c), 0.0);
        assert_eq!(relative_l2_error(&c, &a), f32::INFINITY);
        let d = Tensor::from_vec(vec![6.0, 8.0]);
        assert!((relative_l2_error(&a, &d) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_basics() {
        let a = Tensor::from_vec(vec![1.0, 0.0]);
        let b = Tensor::from_vec(vec![0.0, 1.0]);
        assert_eq!(cosine_similarity(&a, &b), 0.0);
        assert!((cosine_similarity(&a, &a) - 1.0).abs() < 1e-6);
        let neg = a.scaled(-2.0);
        assert!((cosine_similarity(&a, &neg) + 1.0).abs() < 1e-6);
        let zero = Tensor::zeros([2]);
        assert_eq!(cosine_similarity(&a, &zero), 0.0);
    }

    #[test]
    fn mean_std_series() {
        assert_eq!(mean_std(&[]), (0.0, 0.0));
        assert_eq!(mean_std(&[5.0]), (5.0, 0.0));
        let (m, s) = mean_std(&[1.0, 2.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn median_series() {
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }
}
