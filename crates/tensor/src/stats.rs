//! Small statistics helpers used by the experiment harness: error metrics
//! between gradients, and mean/std summaries for timing series.

use crate::Tensor;

/// Relative L2 error `||a - b|| / ||a||` (returns `0` when `a` is the zero
/// vector and `a == b`, `inf` when `a` is zero but `b` is not).
///
/// # Panics
///
/// Panics if the tensors have different element counts.
pub fn relative_l2_error(a: &Tensor, b: &Tensor) -> f32 {
    assert_eq!(a.numel(), b.numel(), "relative error needs equal lengths");
    let diff: f32 = a
        .data()
        .iter()
        .zip(b.data())
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f32>()
        .sqrt();
    let norm = a.l2_norm();
    if norm == 0.0 {
        if diff == 0.0 {
            0.0
        } else {
            f32::INFINITY
        }
    } else {
        diff / norm
    }
}

/// Cosine similarity between two tensors viewed as flat vectors (0 if either
/// is the zero vector).
///
/// # Panics
///
/// Panics if the tensors have different element counts.
pub fn cosine_similarity(a: &Tensor, b: &Tensor) -> f32 {
    assert_eq!(a.numel(), b.numel(), "cosine needs equal lengths");
    let na = a.l2_norm();
    let nb = b.l2_norm();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    a.dot(b).expect("lengths checked") / (na * nb)
}

/// Mean and sample standard deviation of a series.
///
/// Returns `(0, 0)` for an empty series and `(x, 0)` for a single sample.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    if xs.len() < 2 {
        return (mean, 0.0);
    }
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64;
    (mean, var.sqrt())
}

/// Median of a series (average of middle two for even lengths; `0` for an
/// empty series). O(n) via quickselect rather than a full sort.
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

/// The `p`-th percentile (`p` in `[0, 100]`) with linear interpolation
/// between the two nearest order statistics (`0` for an empty series).
///
/// Average-O(n): one `select_nth_unstable_by` pass positions the lower
/// order statistic; the upper one is then the minimum of the partition
/// above it, so no sort is needed.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let p = p.clamp(0.0, 100.0);
    let n = xs.len();
    let rank = p / 100.0 * (n - 1) as f64;
    let lo_idx = rank.floor() as usize;
    let frac = rank - lo_idx as f64;
    let mut scratch = xs.to_vec();
    // total_cmp: NaN-total order, so a NaN input can never misorder the
    // selection (partial_cmp would silently treat NaN pairs as equal).
    let (_, lo, above) = scratch.select_nth_unstable_by(lo_idx, f64::total_cmp);
    let lo = *lo;
    if frac == 0.0 || above.is_empty() {
        return lo;
    }
    let hi = above.iter().copied().fold(f64::INFINITY, f64::min);
    lo + frac * (hi - lo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_basics() {
        let a = Tensor::from_vec(vec![3.0, 4.0]);
        let b = Tensor::from_vec(vec![3.0, 4.0]);
        assert_eq!(relative_l2_error(&a, &b), 0.0);
        let c = Tensor::from_vec(vec![0.0, 0.0]);
        assert_eq!(relative_l2_error(&c, &c), 0.0);
        assert_eq!(relative_l2_error(&c, &a), f32::INFINITY);
        let d = Tensor::from_vec(vec![6.0, 8.0]);
        assert!((relative_l2_error(&a, &d) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_basics() {
        let a = Tensor::from_vec(vec![1.0, 0.0]);
        let b = Tensor::from_vec(vec![0.0, 1.0]);
        assert_eq!(cosine_similarity(&a, &b), 0.0);
        assert!((cosine_similarity(&a, &a) - 1.0).abs() < 1e-6);
        let neg = a.scaled(-2.0);
        assert!((cosine_similarity(&a, &neg) + 1.0).abs() < 1e-6);
        let zero = Tensor::zeros([2]);
        assert_eq!(cosine_similarity(&a, &zero), 0.0);
    }

    #[test]
    fn mean_std_series() {
        assert_eq!(mean_std(&[]), (0.0, 0.0));
        assert_eq!(mean_std(&[5.0]), (5.0, 0.0));
        let (m, s) = mean_std(&[1.0, 2.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn median_series() {
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[7.0]), 7.0);
    }

    #[test]
    fn percentile_series() {
        assert_eq!(percentile(&[], 50.0), 0.0);
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
        // Interpolated: rank = 0.9 * 4 = 3.6 -> 4 + 0.6 * (5 - 4).
        assert!((percentile(&xs, 90.0) - 4.6).abs() < 1e-12);
        // Out-of-range p clamps.
        assert_eq!(percentile(&xs, -5.0), 1.0);
        assert_eq!(percentile(&xs, 150.0), 5.0);
    }

    #[test]
    fn percentile_matches_sorted_reference() {
        // Cross-check the quickselect path against sort-then-index.
        let xs: Vec<f64> = (0..101).map(|i| ((i * 37) % 101) as f64).collect();
        let mut sorted = xs.clone();
        sorted.sort_by(f64::total_cmp);
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 99.0, 100.0] {
            let rank = p / 100.0 * (xs.len() - 1) as f64;
            let lo = rank.floor() as usize;
            let frac = rank - lo as f64;
            let expect = if lo + 1 < sorted.len() {
                sorted[lo] + frac * (sorted[lo + 1] - sorted[lo])
            } else {
                sorted[lo]
            };
            assert!((percentile(&xs, p) - expect).abs() < 1e-9, "p={p}");
        }
    }
}
