//! Canonical portable implementations of every dispatched kernel.
//!
//! These define the exact semantics (bit patterns, association order) that
//! the vectorized tables must reproduce. The AVX2 table also calls into
//! these for sub-lane tails, so the helpers are `pub(super)`.

use super::Kernels;

pub(super) static KERNELS: Kernels = Kernels {
    name: "scalar",
    sign_pack,
    unpack_fill,
    unpack_add,
    vote_add,
    vote_pack,
    f32s_to_bytes,
    u32s_to_bytes,
    bytes_to_f32s,
    bytes_to_u32s,
    add_from_bytes,
    add_into_bytes,
    add_assign,
    axpy,
    scale,
    abs_into,
    sum_abs,
    gather_above,
};

/// The sign predicate shared by pack and vote: NaN packs as 0 (negative),
/// `-0.0` packs as 1 (non-negative), matching IEEE `>=`.
#[inline(always)]
fn is_non_negative(v: f32) -> bool {
    v >= 0.0
}

pub(super) fn sign_pack(data: &[f32], out: &mut [u32]) {
    for (w, chunk) in out.iter_mut().zip(data.chunks(32)) {
        let mut acc = 0u32;
        for (b, &v) in chunk.iter().enumerate() {
            acc |= u32::from(is_non_negative(v)) << b;
        }
        *w = acc;
    }
}

pub(super) fn unpack_fill(words: &[u32], neg: f32, pos: f32, out: &mut [f32]) {
    for (w, block) in words.iter().zip(out.chunks_mut(32)) {
        for (b, o) in block.iter_mut().enumerate() {
            *o = if (w >> b) & 1 == 1 { pos } else { neg };
        }
    }
}

pub(super) fn unpack_add(words: &[u32], neg: f32, pos: f32, out: &mut [f32]) {
    for (w, block) in words.iter().zip(out.chunks_mut(32)) {
        for (b, o) in block.iter_mut().enumerate() {
            *o += if (w >> b) & 1 == 1 { pos } else { neg };
        }
    }
}

pub(super) fn vote_add(words: &[u32], tally: &mut [i32]) {
    for (w, block) in words.iter().zip(tally.chunks_mut(32)) {
        for (b, t) in block.iter_mut().enumerate() {
            *t += (((w >> b) & 1) as i32) * 2 - 1;
        }
    }
}

pub(super) fn vote_pack(tally: &[i32], out: &mut [u32]) {
    for (w, chunk) in out.iter_mut().zip(tally.chunks(32)) {
        let mut acc = 0u32;
        for (b, &t) in chunk.iter().enumerate() {
            acc |= u32::from(t >= 0) << b;
        }
        *w = acc;
    }
}

pub(super) fn f32s_to_bytes(xs: &[f32], out: &mut [u8]) {
    for (dst, &x) in out.chunks_exact_mut(4).zip(xs) {
        dst.copy_from_slice(&x.to_le_bytes());
    }
}

pub(super) fn u32s_to_bytes(xs: &[u32], out: &mut [u8]) {
    for (dst, &x) in out.chunks_exact_mut(4).zip(xs) {
        dst.copy_from_slice(&x.to_le_bytes());
    }
}

pub(super) fn bytes_to_f32s(bytes: &[u8], out: &mut [f32]) {
    for (o, src) in out.iter_mut().zip(bytes.chunks_exact(4)) {
        *o = f32::from_le_bytes([src[0], src[1], src[2], src[3]]);
    }
}

pub(super) fn bytes_to_u32s(bytes: &[u8], out: &mut [u32]) {
    for (o, src) in out.iter_mut().zip(bytes.chunks_exact(4)) {
        *o = u32::from_le_bytes([src[0], src[1], src[2], src[3]]);
    }
}

pub(super) fn add_from_bytes(bytes: &[u8], out: &mut [f32]) {
    for (o, src) in out.iter_mut().zip(bytes.chunks_exact(4)) {
        *o += f32::from_le_bytes([src[0], src[1], src[2], src[3]]);
    }
}

pub(super) fn add_into_bytes(xs: &[f32], bytes: &mut [u8]) {
    // Operand order `x + w` (local contribution first) matches the
    // `add_from_bytes` accumulator path `out += wire`, so a sum built in
    // the wire image is bit-identical to one built in a float buffer and
    // re-serialized — including NaN payload propagation.
    for (chunk, &x) in bytes.chunks_exact_mut(4).zip(xs) {
        let w = f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        chunk.copy_from_slice(&(x + w).to_le_bytes());
    }
}

pub(super) fn add_assign(acc: &mut [f32], other: &[f32]) {
    for (a, &b) in acc.iter_mut().zip(other) {
        *a += b;
    }
}

pub(super) fn axpy(y: &mut [f32], alpha: f32, x: &[f32]) {
    // Mul-then-add, two roundings; the AVX2 table matches by using separate
    // vmulps + vaddps rather than an FMA.
    for (a, &b) in y.iter_mut().zip(x) {
        *a += alpha * b;
    }
}

pub(super) fn scale(v: &mut [f32], alpha: f32) {
    for x in v {
        *x *= alpha;
    }
}

pub(super) fn abs_into(data: &[f32], out: &mut [f32]) {
    for (o, &v) in out.iter_mut().zip(data) {
        *o = v.abs();
    }
}

/// Lane-striped |x| reduction. The stripe width (8) and the pairwise
/// combination tree are part of the kernel contract — see the module docs
/// in `mod.rs` and DESIGN.md §10.
pub(super) fn sum_abs(data: &[f32]) -> f32 {
    let mut lanes = [0.0f32; 8];
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        for (l, &v) in lanes.iter_mut().zip(c) {
            *l += v.abs();
        }
    }
    let mut total = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
        + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
    for &v in chunks.remainder() {
        total += v.abs();
    }
    total
}

/// Appends `(i, data[i])` for every `|data[i]| > threshold` in index order.
/// `base` offsets the emitted indices so the AVX2 table can delegate its
/// tail without renumbering.
pub(super) fn gather_above_from(
    data: &[f32],
    base: u32,
    threshold: f32,
    indices: &mut Vec<u32>,
    values: &mut Vec<f32>,
) {
    for (i, &v) in data.iter().enumerate() {
        if v.abs() > threshold {
            indices.push(base + i as u32);
            values.push(v);
        }
    }
}

pub(super) fn gather_above(
    data: &[f32],
    threshold: f32,
    indices: &mut Vec<u32>,
    values: &mut Vec<f32>,
) {
    gather_above_from(data, 0, threshold, indices, values);
}
