//! AVX-512F implementations of the kernel table.
//!
//! Same structure as the AVX2 table (`avx2.rs`): every entry is a thin
//! safe wrapper around a `#[target_feature]` inner function, sound because
//! this table is only installed after `is_x86_feature_detected!` confirms
//! `avx512f` **and** `avx2`/`fma` (the tails and the shared `sum_abs`
//! entry run AVX2 code) — see `mod.rs::simd`.
//!
//! What the 512-bit ISA buys over the AVX2 tier:
//!
//! - **Mask registers replace movemask/LUT games.** `vcmpps` produces a
//!   `__mmask16` directly, so `sign_pack` builds a 32-bit sign word from
//!   two compares and one shift-or, and `gather_above` left-packs matching
//!   lanes with `vcompressps` (one instruction) instead of the 256-entry
//!   `vpermps` permutation LUT — and `vcompressps` stores *exactly*
//!   `popcount(mask)` elements, so no over-wide store trick is needed.
//! - **16-lane elementwise kernels** halve the instruction count on the
//!   wire-add and unpack hot loops.
//!
//! The exactness contract is unchanged: ordered compares (`_CMP_GE_OQ` /
//! `_CMP_GT_OQ`) against `+0.0` reproduce the scalar predicates on NaN and
//! `-0.0`; float kernels stay per-lane with no reassociation (`vmulps` +
//! `vaddps`, never FMA, for `axpy`); and `sum_abs` **reuses the AVX2
//! entry unchanged**, because the kernel contract pins the reduction to
//! 8-lane striping — a 16-lane stripe would change the result bits, which
//! is exactly what the contract forbids.

use super::{avx2, scalar, Kernels};
use std::arch::x86_64::*;

pub(super) static KERNELS: Kernels = Kernels {
    name: "avx512",
    sign_pack,
    unpack_fill,
    unpack_add,
    vote_add,
    vote_pack,
    // Byte ↔ word conversions are memcpy on little-endian x86; the AVX2
    // table's `copy_nonoverlapping` entries are already width-optimal.
    f32s_to_bytes: avx2::f32s_to_bytes,
    u32s_to_bytes: avx2::u32s_to_bytes,
    bytes_to_f32s: avx2::bytes_to_f32s,
    bytes_to_u32s: avx2::bytes_to_u32s,
    add_from_bytes,
    add_into_bytes,
    add_assign,
    axpy,
    scale,
    abs_into,
    // 8-lane striping is the kernel contract; see the module docs.
    sum_abs: avx2::sum_abs,
    gather_above,
};

/// IEEE-754 abs mask (clears the sign bit), matching `f32::abs` bitwise.
const ABS_MASK: i32 = 0x7fff_ffff;

// ---------------------------------------------------------------------------
// sign pack / unpack / majority vote
// ---------------------------------------------------------------------------

fn sign_pack(data: &[f32], out: &mut [u32]) {
    // SAFETY: table installed only after AVX-512F runtime detection.
    unsafe { sign_pack_avx512(data, out) }
}

// SAFETY: caller must guarantee AVX-512F is present; `out` must hold
// `ceil(data.len() / 32)` words (the table contract checked by `mod.rs`).
#[target_feature(enable = "avx512f")]
unsafe fn sign_pack_avx512(data: &[f32], out: &mut [u32]) {
    let full_words = data.len() / 32;
    let zero = _mm512_setzero_ps();
    for (w, out_w) in out.iter_mut().enumerate().take(full_words) {
        let base = data.as_ptr().add(w * 32);
        // Two 16-lane ordered >= compares fill one u32, LSB-first like the
        // scalar pack (NaN → 0, -0.0 → 1).
        let lo = _mm512_cmp_ps_mask::<_CMP_GE_OQ>(_mm512_loadu_ps(base), zero);
        let hi = _mm512_cmp_ps_mask::<_CMP_GE_OQ>(_mm512_loadu_ps(base.add(16)), zero);
        *out_w = (lo as u32) | ((hi as u32) << 16);
    }
    scalar::sign_pack(&data[full_words * 32..], &mut out[full_words..]);
}

fn unpack_fill(words: &[u32], neg: f32, pos: f32, out: &mut [f32]) {
    // SAFETY: table installed only after AVX-512F runtime detection.
    unsafe { unpack_select_avx512::<false>(words, neg, pos, out) }
}

fn unpack_add(words: &[u32], neg: f32, pos: f32, out: &mut [f32]) {
    // SAFETY: table installed only after AVX-512F runtime detection.
    unsafe { unpack_select_avx512::<true>(words, neg, pos, out) }
}

/// Shared body of `unpack_fill` / `unpack_add`: 16 bits of the sign stream
/// become one mask register, which blends `neg`/`pos` in a single
/// `vblendmps`. `ACCUMULATE` adds into `out` instead of storing.
// SAFETY: caller must guarantee AVX-512F is present; `words` must hold at
// least `ceil(out.len() / 32)` bit words.
#[target_feature(enable = "avx512f")]
unsafe fn unpack_select_avx512<const ACCUMULATE: bool>(
    words: &[u32],
    neg: f32,
    pos: f32,
    out: &mut [f32],
) {
    let n = out.len();
    let negv = _mm512_set1_ps(neg);
    let posv = _mm512_set1_ps(pos);
    let groups = n / 16;
    for g in 0..groups {
        let k = ((words[g / 2] >> ((g % 2) * 16)) & 0xffff) as __mmask16;
        let sel = _mm512_mask_blend_ps(k, negv, posv);
        let dst = out.as_mut_ptr().add(g * 16);
        if ACCUMULATE {
            _mm512_storeu_ps(dst, _mm512_add_ps(_mm512_loadu_ps(dst), sel));
        } else {
            _mm512_storeu_ps(dst, sel);
        }
    }
    for (i, o) in out.iter_mut().enumerate().skip(groups * 16) {
        let v = if (words[i / 32] >> (i % 32)) & 1 == 1 {
            pos
        } else {
            neg
        };
        if ACCUMULATE {
            *o += v;
        } else {
            *o = v;
        }
    }
}

fn vote_add(words: &[u32], tally: &mut [i32]) {
    // SAFETY: table installed only after AVX-512F runtime detection.
    unsafe { vote_add_avx512(words, tally) }
}

// SAFETY: caller must guarantee AVX-512F is present; `words` must hold at
// least `ceil(tally.len() / 32)` bit words.
#[target_feature(enable = "avx512f")]
unsafe fn vote_add_avx512(words: &[u32], tally: &mut [i32]) {
    let n = tally.len();
    let plus = _mm512_set1_epi32(1);
    let minus = _mm512_set1_epi32(-1);
    let groups = n / 16;
    for g in 0..groups {
        let k = ((words[g / 2] >> ((g % 2) * 16)) & 0xffff) as __mmask16;
        // t += bit ? +1 : -1, as one masked blend + integer add (exact).
        let delta = _mm512_mask_blend_epi32(k, minus, plus);
        let dst = tally.as_mut_ptr().add(g * 16);
        let t = _mm512_loadu_si512(dst as *const _);
        _mm512_storeu_si512(dst as *mut _, _mm512_add_epi32(t, delta));
    }
    for (i, t) in tally.iter_mut().enumerate().skip(groups * 16) {
        *t += (((words[i / 32] >> (i % 32)) & 1) as i32) * 2 - 1;
    }
}

fn vote_pack(tally: &[i32], out: &mut [u32]) {
    // SAFETY: table installed only after AVX-512F runtime detection.
    unsafe { vote_pack_avx512(tally, out) }
}

// SAFETY: caller must guarantee AVX-512F is present; `out` must hold
// `ceil(tally.len() / 32)` words.
#[target_feature(enable = "avx512f")]
unsafe fn vote_pack_avx512(tally: &[i32], out: &mut [u32]) {
    let full_words = tally.len() / 32;
    let zero = _mm512_setzero_si512();
    for (w, out_w) in out.iter_mut().enumerate().take(full_words) {
        let base = tally.as_ptr().add(w * 32);
        // t >= 0 as a signed not-less-than compare straight to a mask.
        let lo =
            _mm512_cmp_epi32_mask::<_MM_CMPINT_NLT>(_mm512_loadu_si512(base as *const _), zero);
        let hi = _mm512_cmp_epi32_mask::<_MM_CMPINT_NLT>(
            _mm512_loadu_si512(base.add(16) as *const _),
            zero,
        );
        *out_w = (lo as u32) | ((hi as u32) << 16);
    }
    scalar::vote_pack(&tally[full_words * 32..], &mut out[full_words..]);
}

// ---------------------------------------------------------------------------
// wire reduce steps
// ---------------------------------------------------------------------------

fn add_from_bytes(bytes: &[u8], out: &mut [f32]) {
    // SAFETY: table installed only after AVX-512F runtime detection.
    unsafe { add_from_bytes_avx512(bytes, out) }
}

// SAFETY: caller must guarantee AVX-512F is present and that `bytes` holds
// exactly `4 * out.len()` little-endian f32s; unaligned loads are used
// throughout so `bytes` needs no alignment.
#[target_feature(enable = "avx512f")]
unsafe fn add_from_bytes_avx512(bytes: &[u8], out: &mut [f32]) {
    let full = out.len() / 16;
    let src = bytes.as_ptr();
    for i in 0..full {
        // Per-lane vaddps in index order is exactly the scalar loop's
        // association (out first, wire second).
        let w = _mm512_loadu_ps(src.add(i * 64) as *const f32);
        let dst = out.as_mut_ptr().add(i * 16);
        _mm512_storeu_ps(dst, _mm512_add_ps(_mm512_loadu_ps(dst), w));
    }
    scalar::add_from_bytes(&bytes[full * 64..], &mut out[full * 16..]);
}

fn add_into_bytes(xs: &[f32], bytes: &mut [u8]) {
    // SAFETY: table installed only after AVX-512F runtime detection.
    unsafe { add_into_bytes_avx512(xs, bytes) }
}

// SAFETY: caller must guarantee AVX-512F is present and that `bytes` holds
// exactly `4 * xs.len()` little-endian f32s; unaligned loads/stores are
// used so `bytes` needs no alignment.
#[target_feature(enable = "avx512f")]
unsafe fn add_into_bytes_avx512(xs: &[f32], bytes: &mut [u8]) {
    let full = xs.len() / 16;
    let dst = bytes.as_mut_ptr();
    for i in 0..full {
        let w = _mm512_loadu_ps(dst.add(i * 64) as *const f32);
        let x = _mm512_loadu_ps(xs.as_ptr().add(i * 16));
        // x first, wire second — the scalar kernel's `x + w` order.
        _mm512_storeu_ps(dst.add(i * 64) as *mut f32, _mm512_add_ps(x, w));
    }
    scalar::add_into_bytes(&xs[full * 16..], &mut bytes[full * 64..]);
}

// ---------------------------------------------------------------------------
// elementwise float kernels
// ---------------------------------------------------------------------------

fn add_assign(acc: &mut [f32], other: &[f32]) {
    // SAFETY: table installed only after AVX-512F runtime detection.
    unsafe { add_assign_avx512(acc, other) }
}

// SAFETY: caller must guarantee AVX-512F is present and
// `other.len() >= acc.len()`.
#[target_feature(enable = "avx512f")]
unsafe fn add_assign_avx512(acc: &mut [f32], other: &[f32]) {
    let full = acc.len() / 16;
    for i in 0..full {
        let dst = acc.as_mut_ptr().add(i * 16);
        let b = _mm512_loadu_ps(other.as_ptr().add(i * 16));
        _mm512_storeu_ps(dst, _mm512_add_ps(_mm512_loadu_ps(dst), b));
    }
    scalar::add_assign(&mut acc[full * 16..], &other[full * 16..]);
}

fn axpy(y: &mut [f32], alpha: f32, x: &[f32]) {
    // SAFETY: table installed only after AVX-512F runtime detection.
    unsafe { axpy_avx512(y, alpha, x) }
}

// SAFETY: caller must guarantee AVX-512F is present and
// `x.len() >= y.len()`.
#[target_feature(enable = "avx512f")]
unsafe fn axpy_avx512(y: &mut [f32], alpha: f32, x: &[f32]) {
    let a = _mm512_set1_ps(alpha);
    let full = y.len() / 16;
    for i in 0..full {
        let dst = y.as_mut_ptr().add(i * 16);
        // vmulps + vaddps, NOT vfmadd: the scalar kernel rounds twice.
        let prod = _mm512_mul_ps(a, _mm512_loadu_ps(x.as_ptr().add(i * 16)));
        _mm512_storeu_ps(dst, _mm512_add_ps(_mm512_loadu_ps(dst), prod));
    }
    scalar::axpy(&mut y[full * 16..], alpha, &x[full * 16..]);
}

fn scale(v: &mut [f32], alpha: f32) {
    // SAFETY: table installed only after AVX-512F runtime detection.
    unsafe { scale_avx512(v, alpha) }
}

// SAFETY: caller must guarantee AVX-512F is present; all loads/stores stay
// inside `v`.
#[target_feature(enable = "avx512f")]
unsafe fn scale_avx512(v: &mut [f32], alpha: f32) {
    let a = _mm512_set1_ps(alpha);
    let full = v.len() / 16;
    for i in 0..full {
        let dst = v.as_mut_ptr().add(i * 16);
        _mm512_storeu_ps(dst, _mm512_mul_ps(_mm512_loadu_ps(dst), a));
    }
    scalar::scale(&mut v[full * 16..], alpha);
}

fn abs_into(data: &[f32], out: &mut [f32]) {
    // SAFETY: table installed only after AVX-512F runtime detection.
    unsafe { abs_into_avx512(data, out) }
}

// SAFETY: caller must guarantee AVX-512F is present and
// `out.len() >= data.len()`.
#[target_feature(enable = "avx512f")]
unsafe fn abs_into_avx512(data: &[f32], out: &mut [f32]) {
    let mask = _mm512_set1_epi32(ABS_MASK);
    let full = data.len() / 16;
    for i in 0..full {
        let v = _mm512_loadu_si512(data.as_ptr().add(i * 16) as *const _);
        _mm512_storeu_si512(
            out.as_mut_ptr().add(i * 16) as *mut _,
            _mm512_and_si512(v, mask),
        );
    }
    scalar::abs_into(&data[full * 16..], &mut out[full * 16..]);
}

// ---------------------------------------------------------------------------
// top-k threshold gather (stream compaction)
// ---------------------------------------------------------------------------

fn gather_above(data: &[f32], threshold: f32, indices: &mut Vec<u32>, values: &mut Vec<f32>) {
    // SAFETY: table installed only after AVX-512F runtime detection.
    unsafe { gather_above_avx512(data, threshold, indices, values) }
}

// SAFETY: caller must guarantee AVX-512F is present. `vcompressps` /
// `vpcompressd` store exactly `popcount(mask)` elements into capacity
// reserved immediately beforehand (`reserve(16)`), and `set_len` commits
// exactly that count.
#[target_feature(enable = "avx512f")]
unsafe fn gather_above_avx512(
    data: &[f32],
    threshold: f32,
    indices: &mut Vec<u32>,
    values: &mut Vec<f32>,
) {
    let absmask = _mm512_set1_epi32(ABS_MASK);
    let tv = _mm512_set1_ps(threshold);
    let sixteen = _mm512_set1_epi32(16);
    let mut idx = _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15);
    let full = data.len() / 16;
    for blk in 0..full {
        let v = _mm512_loadu_ps(data.as_ptr().add(blk * 16));
        let av = _mm512_castsi512_ps(_mm512_and_si512(_mm512_castps_si512(v), absmask));
        // Ordered > : NaNs compare false, matching the scalar `abs() > t`.
        let m = _mm512_cmp_ps_mask::<_CMP_GT_OQ>(av, tv);
        if m != 0 {
            let cnt = m.count_ones() as usize;
            let il = indices.len();
            indices.reserve(16);
            _mm512_mask_compressstoreu_epi32(indices.as_mut_ptr().add(il) as *mut i32, m, idx);
            indices.set_len(il + cnt);
            let vl = values.len();
            values.reserve(16);
            _mm512_mask_compressstoreu_ps(values.as_mut_ptr().add(vl), m, v);
            values.set_len(vl + cnt);
        }
        idx = _mm512_add_epi32(idx, sixteen);
    }
    scalar::gather_above_from(
        &data[full * 16..],
        (full * 16) as u32,
        threshold,
        indices,
        values,
    );
}
