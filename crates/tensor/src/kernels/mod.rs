//! Runtime-dispatched SIMD kernels for the compression and collective hot
//! paths.
//!
//! Every scalar inner loop that dominates Table 2's encode/decode column or
//! the ring/Rabenseifner reduce step lives behind the [`Kernels`] vtable: a
//! plain struct of function pointers with one canonical scalar
//! implementation ([`scalar()`]) and, on x86_64 hosts, explicitly
//! vectorized tiers — AVX2+FMA and, where the CPU has it, AVX-512F
//! ([`simd()`] returns the widest supported one; [`tables()`] enumerates
//! them all for the property tests and benchmarks). The active table is
//! chosen **once** at first use by runtime CPU-feature detection
//! (`is_x86_feature_detected!`) and cached in a `OnceLock`; setting
//! `GCS_FORCE_SCALAR=1` in the environment pins the scalar table regardless
//! of what the CPU supports, which is how CI exercises both code paths.
//!
//! The `*_pooled` variants at the bottom fan the embarrassingly parallel
//! kernels (sign pack/unpack/vote, wire byte↔f32 conversion and the wire
//! adds) out across a [`crate::pool::Pool`] in fixed 32-element-aligned
//! bands. Banding never splits an accumulation chain — these kernels are
//! all elementwise or per-32-element-block — so the pooled results are
//! bitwise identical to the serial kernels for every pool width.
//!
//! # Exactness contract
//!
//! Callers throughout `gcs-tensor`, `gcs-compress` and `gcs-cluster` assume
//! the two tables are interchangeable, so each kernel falls into one of two
//! classes (verified by `tests/kernel_props.rs`):
//!
//! - **Bit kernels** (sign pack/unpack, majority vote, byte↔f32/u32
//!   conversion, threshold gather): byte-identical output for every input,
//!   including NaN and signed-zero payloads. E.g. sign packing follows the
//!   scalar `v >= 0.0` predicate, so the AVX2 path uses an ordered
//!   `_CMP_GE_OQ` compare — *not* the sign-bit `movmskps` shortcut, which
//!   disagrees on positive NaNs.
//! - **Float kernels** (segment add, axpy, scale, |x| reduction): a fixed
//!   association order shared by both tables. Elementwise kernels have no
//!   reassociation at all; the horizontal [`sum_abs`] reduction is defined
//!   lane-striped (8 partial sums combined in a fixed pairwise tree, then a
//!   scalar tail) in *both* implementations, so results are reproducible
//!   bit-for-bit across dispatch modes and worker counts.
//!
//! The GEMM microkernel's FMA lanes are dispatched separately (its tile
//! routines are const-generic, which function pointers can't express) —
//! `matrix.rs` consults [`simd_active()`] directly.

mod scalar;

#[cfg(target_arch = "x86_64")]
mod avx2;
#[cfg(target_arch = "x86_64")]
mod avx512;

use crate::pool::{Pool, SendPtr};
use std::sync::OnceLock;

/// Dispatch table of SIMD-accelerated primitives.
///
/// All slice-length contracts are asserted by the free wrapper functions in
/// this module (the usual entry points); the table entries themselves assume
/// the contract holds.
#[derive(Debug, Clone, Copy)]
pub struct Kernels {
    /// Implementation name, e.g. `"scalar"` or `"avx2"`.
    pub name: &'static str,
    /// Packs `data[i] >= 0.0` into bit `i % 32` of `out[i / 32]`
    /// (LSB-first). `out.len() == data.len().div_ceil(32)`; trailing bits of
    /// the last word are zero.
    pub sign_pack: fn(data: &[f32], out: &mut [u32]),
    /// Sets `out[i] = if bit i of words { pos } else { neg }`.
    pub unpack_fill: fn(words: &[u32], neg: f32, pos: f32, out: &mut [f32]),
    /// Accumulating variant: `out[i] += if bit i { pos } else { neg }`.
    pub unpack_add: fn(words: &[u32], neg: f32, pos: f32, out: &mut [f32]),
    /// Majority-vote accumulate: `tally[i] += if bit i { 1 } else { -1 }`.
    pub vote_add: fn(words: &[u32], tally: &mut [i32]),
    /// Packs the vote outcome `tally[i] >= 0` back into bits (LSB-first).
    /// `out.len() == tally.len().div_ceil(32)`.
    pub vote_pack: fn(tally: &[i32], out: &mut [u32]),
    /// Bulk little-endian serialization: `out.len() == 4 * xs.len()`.
    pub f32s_to_bytes: fn(xs: &[f32], out: &mut [u8]),
    /// Bulk little-endian serialization: `out.len() == 4 * xs.len()`.
    pub u32s_to_bytes: fn(xs: &[u32], out: &mut [u8]),
    /// Bulk little-endian deserialization: `bytes.len() == 4 * out.len()`.
    pub bytes_to_f32s: fn(bytes: &[u8], out: &mut [f32]),
    /// Bulk little-endian deserialization: `bytes.len() == 4 * out.len()`.
    pub bytes_to_u32s: fn(bytes: &[u8], out: &mut [u32]),
    /// The ring / Rabenseifner reduce step: `out[i] += f32::from_le_bytes`
    /// of the i-th 4-byte group. `bytes.len() == 4 * out.len()`.
    pub add_from_bytes: fn(bytes: &[u8], out: &mut [f32]),
    /// The in-wire reduce step: the i-th 4-byte group of `bytes` becomes
    /// `xs[i] + f32::from_le_bytes(group)` re-serialized in place
    /// (`bytes.len() == 4 * xs.len()`). Operand order `x + w` matches the
    /// `add_from_bytes` accumulator path bit-for-bit, so a ring that
    /// accumulates in the wire image gets the same sums as one that
    /// accumulates in a float buffer and re-serializes.
    pub add_into_bytes: fn(xs: &[f32], bytes: &mut [u8]),
    /// Elementwise `acc[i] += other[i]` (equal lengths).
    pub add_assign: fn(acc: &mut [f32], other: &[f32]),
    /// `y[i] += alpha * x[i]` (equal lengths), mul-then-add with two
    /// roundings in both tables — deliberately *not* fused.
    pub axpy: fn(y: &mut [f32], alpha: f32, x: &[f32]),
    /// `v[i] *= alpha`.
    pub scale: fn(v: &mut [f32], alpha: f32),
    /// `out[i] = data[i].abs()` (equal lengths).
    pub abs_into: fn(data: &[f32], out: &mut [f32]),
    /// Lane-striped `Σ |x_i|`: 8 partial sums over `x[8k + lane]`, combined
    /// `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`, then the `< 8` tail added in
    /// order. Both tables use this exact association.
    pub sum_abs: fn(data: &[f32]) -> f32,
    /// Appends `(i, data[i])` for every `|data[i]| > threshold`, in index
    /// order, to `indices`/`values`. NaNs never match (ordered compare).
    pub gather_above:
        fn(data: &[f32], threshold: f32, indices: &mut Vec<u32>, values: &mut Vec<f32>),
}

static ACTIVE: OnceLock<&'static Kernels> = OnceLock::new();

/// Whether `GCS_FORCE_SCALAR=1` (or any non-empty value other than `0`) is
/// set, pinning dispatch to the scalar table (and, via `pool::from_env` /
/// `autotune`, the thread pool to width 1 and the autotuner off).
pub(crate) fn force_scalar() -> bool {
    match std::env::var("GCS_FORCE_SCALAR") {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    }
}

/// The canonical portable implementation. Always available; defines the
/// exact semantics every other table must reproduce.
pub fn scalar() -> &'static Kernels {
    &scalar::KERNELS
}

/// Whether the AVX2+FMA tier is usable on this CPU.
#[cfg(target_arch = "x86_64")]
pub fn avx2_supported() -> bool {
    std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
}

/// Whether the AVX2+FMA tier is usable on this CPU (never, off x86_64).
#[cfg(not(target_arch = "x86_64"))]
pub fn avx2_supported() -> bool {
    false
}

/// Whether the AVX-512 tier is usable on this CPU. AVX2+FMA is required
/// too because the AVX-512 table's tails and its shared `sum_abs` entry
/// run AVX2 code (every real AVX-512F CPU has both, but the soundness of
/// the table installation rests on detection, not on that convention).
#[cfg(target_arch = "x86_64")]
pub fn avx512_supported() -> bool {
    std::arch::is_x86_feature_detected!("avx512f") && avx2_supported()
}

/// Whether the AVX-512 tier is usable on this CPU (never, off x86_64).
#[cfg(not(target_arch = "x86_64"))]
pub fn avx512_supported() -> bool {
    false
}

/// The best vectorized table this CPU supports, independent of
/// `GCS_FORCE_SCALAR` (benchmarks and property tests compare it against
/// [`scalar()`] explicitly): AVX-512 where detected, else AVX2+FMA, else
/// `None`.
pub fn simd() -> Option<&'static Kernels> {
    #[cfg(target_arch = "x86_64")]
    {
        if avx512_supported() {
            return Some(&avx512::KERNELS);
        }
        if avx2_supported() {
            return Some(&avx2::KERNELS);
        }
    }
    None
}

/// Every table this CPU can run, scalar first, widest last. The property
/// suite iterates this so the AVX2 tier stays covered on AVX-512 hosts
/// (where [`simd()`] returns the AVX-512 table).
pub fn tables() -> Vec<&'static Kernels> {
    #[allow(unused_mut)]
    let mut t = vec![scalar()];
    #[cfg(target_arch = "x86_64")]
    {
        if avx2_supported() {
            t.push(&avx2::KERNELS);
        }
        if avx512_supported() {
            t.push(&avx512::KERNELS);
        }
    }
    t
}

/// The table in effect for this process: [`simd()`] when available unless
/// `GCS_FORCE_SCALAR=1`, else [`scalar()`]. Resolved once and cached.
pub fn active() -> &'static Kernels {
    ACTIVE.get_or_init(|| {
        if force_scalar() {
            return scalar();
        }
        simd().unwrap_or_else(scalar)
    })
}

/// Whether the active table is a SIMD one — consulted by the GEMM tile
/// dispatch in `matrix.rs`, which can't go through function pointers.
pub fn simd_active() -> bool {
    !std::ptr::eq(active(), scalar())
}

/// Human-readable description of what runtime detection found, for bench
/// metadata: e.g. `"avx512f+avx2+fma (active: avx512)"` or
/// `"avx2+fma (active: scalar, GCS_FORCE_SCALAR)"`.
pub fn feature_string() -> String {
    let detected = match simd().map(|t| t.name) {
        Some("avx512") => "avx512f+avx2+fma",
        Some(_) => "avx2+fma",
        None => "none",
    };
    let forced = if force_scalar() {
        ", GCS_FORCE_SCALAR"
    } else {
        ""
    };
    format!("{} (active: {}{})", detected, active().name, forced)
}

// ---------------------------------------------------------------------------
// Free wrappers: assert the length contract once, then dispatch.
// ---------------------------------------------------------------------------

/// Dispatched [`Kernels::sign_pack`].
pub fn sign_pack(data: &[f32], out: &mut [u32]) {
    assert_eq!(out.len(), data.len().div_ceil(32), "sign_pack word count");
    (active().sign_pack)(data, out);
}

/// Dispatched [`Kernels::unpack_fill`].
pub fn unpack_fill(words: &[u32], neg: f32, pos: f32, out: &mut [f32]) {
    assert!(words.len() * 32 >= out.len(), "unpack_fill word count");
    (active().unpack_fill)(words, neg, pos, out);
}

/// Dispatched [`Kernels::unpack_add`].
pub fn unpack_add(words: &[u32], neg: f32, pos: f32, out: &mut [f32]) {
    assert!(words.len() * 32 >= out.len(), "unpack_add word count");
    (active().unpack_add)(words, neg, pos, out);
}

/// Dispatched [`Kernels::vote_add`].
pub fn vote_add(words: &[u32], tally: &mut [i32]) {
    assert!(words.len() * 32 >= tally.len(), "vote_add word count");
    (active().vote_add)(words, tally);
}

/// Dispatched [`Kernels::vote_pack`].
pub fn vote_pack(tally: &[i32], out: &mut [u32]) {
    assert_eq!(out.len(), tally.len().div_ceil(32), "vote_pack word count");
    (active().vote_pack)(tally, out);
}

/// Dispatched [`Kernels::f32s_to_bytes`].
pub fn f32s_to_bytes(xs: &[f32], out: &mut [u8]) {
    assert_eq!(out.len(), xs.len() * 4, "f32s_to_bytes byte count");
    (active().f32s_to_bytes)(xs, out);
}

/// Dispatched [`Kernels::u32s_to_bytes`].
pub fn u32s_to_bytes(xs: &[u32], out: &mut [u8]) {
    assert_eq!(out.len(), xs.len() * 4, "u32s_to_bytes byte count");
    (active().u32s_to_bytes)(xs, out);
}

/// Dispatched [`Kernels::bytes_to_f32s`].
pub fn bytes_to_f32s(bytes: &[u8], out: &mut [f32]) {
    assert_eq!(bytes.len(), out.len() * 4, "bytes_to_f32s byte count");
    (active().bytes_to_f32s)(bytes, out);
}

/// Dispatched [`Kernels::bytes_to_u32s`].
pub fn bytes_to_u32s(bytes: &[u8], out: &mut [u32]) {
    assert_eq!(bytes.len(), out.len() * 4, "bytes_to_u32s byte count");
    (active().bytes_to_u32s)(bytes, out);
}

/// Dispatched [`Kernels::add_from_bytes`].
pub fn add_from_bytes(bytes: &[u8], out: &mut [f32]) {
    assert_eq!(bytes.len(), out.len() * 4, "add_from_bytes byte count");
    (active().add_from_bytes)(bytes, out);
}

/// Dispatched [`Kernels::add_into_bytes`].
pub fn add_into_bytes(xs: &[f32], bytes: &mut [u8]) {
    assert_eq!(bytes.len(), xs.len() * 4, "add_into_bytes byte count");
    (active().add_into_bytes)(xs, bytes);
}

/// Dispatched [`Kernels::add_assign`].
pub fn add_assign(acc: &mut [f32], other: &[f32]) {
    assert_eq!(acc.len(), other.len(), "add_assign length");
    (active().add_assign)(acc, other);
}

/// Dispatched [`Kernels::axpy`].
pub fn axpy(y: &mut [f32], alpha: f32, x: &[f32]) {
    assert_eq!(y.len(), x.len(), "axpy length");
    (active().axpy)(y, alpha, x);
}

/// Dispatched [`Kernels::scale`].
pub fn scale(v: &mut [f32], alpha: f32) {
    (active().scale)(v, alpha);
}

/// Dispatched [`Kernels::abs_into`].
pub fn abs_into(data: &[f32], out: &mut [f32]) {
    assert_eq!(data.len(), out.len(), "abs_into length");
    (active().abs_into)(data, out);
}

/// Dispatched [`Kernels::sum_abs`].
pub fn sum_abs(data: &[f32]) -> f32 {
    (active().sum_abs)(data)
}

/// Dispatched [`Kernels::gather_above`].
pub fn gather_above(data: &[f32], threshold: f32, indices: &mut Vec<u32>, values: &mut Vec<f32>) {
    (active().gather_above)(data, threshold, indices, values);
}

// ---------------------------------------------------------------------------
// Pooled variants: fixed 32-element-aligned banding across a Pool.
//
// Every kernel here is elementwise or per-32-element-block, so any split
// into contiguous aligned bands computes exactly the serial result — the
// banding is invisible in the output bits for every pool width (verified
// by `tests/kernel_props.rs`). Band sizing comes from the autotuner's
// wire-chunk choice so fork overhead is only paid on buffers that
// amortize it.
// ---------------------------------------------------------------------------

/// Minimum elements per band for the pooled wire kernels.
fn wire_min_elems() -> usize {
    crate::autotune::choice().wire_chunk_elems
}

/// [`sign_pack`] with the word stream banded across `pool`. Each band
/// packs a disjoint word range from the matching 32-element data blocks —
/// identical output for every width.
pub fn sign_pack_pooled(pool: &Pool, data: &[f32], out: &mut [u32]) {
    assert_eq!(out.len(), data.len().div_ceil(32), "sign_pack word count");
    let n = data.len();
    let min_words = (wire_min_elems() / 32).max(1);
    pool.for_rows(out, 1, min_words, |lo_word, band| {
        let d_lo = lo_word * 32;
        let d_hi = ((lo_word + band.len()) * 32).min(n);
        (active().sign_pack)(&data[d_lo..d_hi], band);
    });
}

/// Shared banding of the three word-indexed mutators (`unpack_fill`,
/// `unpack_add`, `vote_add`): spans of whole sign words map to disjoint
/// 32-aligned ranges of the float/tally buffer, handed out through a raw
/// base pointer because the span authority (`words`) is the *shared*
/// input here, not the mutable output.
fn for_word_blocks<T: Send>(
    pool: &Pool,
    words: &[u32],
    out: &mut [T],
    f: impl Fn(&[u32], &mut [T]) + Sync,
) {
    let n = out.len();
    let base = SendPtr(out.as_mut_ptr());
    let min_words = (wire_min_elems() / 32).max(1);
    pool.for_spans(words.len(), min_words, move |lw, hw| {
        let lo = lw * 32;
        let hi = (hw * 32).min(n);
        if lo >= hi {
            return;
        }
        // SAFETY: `for_spans` hands out disjoint `[lw, hw)` word spans, so
        // the 32-aligned `[lo, hi)` element ranges are disjoint too; `out`
        // stays mutably borrowed for the whole dispatch.
        let band = unsafe { std::slice::from_raw_parts_mut(base.get().add(lo), hi - lo) };
        f(&words[lw..hw], band);
    });
}

/// [`unpack_fill`] banded across `pool` (bit-identical for every width).
pub fn unpack_fill_pooled(pool: &Pool, words: &[u32], neg: f32, pos: f32, out: &mut [f32]) {
    assert!(words.len() * 32 >= out.len(), "unpack_fill word count");
    for_word_blocks(pool, words, out, |w, band| {
        (active().unpack_fill)(w, neg, pos, band);
    });
}

/// [`unpack_add`] banded across `pool` (bit-identical for every width).
pub fn unpack_add_pooled(pool: &Pool, words: &[u32], neg: f32, pos: f32, out: &mut [f32]) {
    assert!(words.len() * 32 >= out.len(), "unpack_add word count");
    for_word_blocks(pool, words, out, |w, band| {
        (active().unpack_add)(w, neg, pos, band);
    });
}

/// [`vote_add`] banded across `pool` (bit-identical for every width —
/// each tally element is touched by exactly one band).
pub fn vote_add_pooled(pool: &Pool, words: &[u32], tally: &mut [i32]) {
    assert!(words.len() * 32 >= tally.len(), "vote_add word count");
    for_word_blocks(pool, words, tally, |w, band| {
        (active().vote_add)(w, band);
    });
}

/// [`vote_pack`] with the word stream banded across `pool`.
pub fn vote_pack_pooled(pool: &Pool, tally: &[i32], out: &mut [u32]) {
    assert_eq!(out.len(), tally.len().div_ceil(32), "vote_pack word count");
    let n = tally.len();
    let min_words = (wire_min_elems() / 32).max(1);
    pool.for_rows(out, 1, min_words, |lo_word, band| {
        let t_lo = lo_word * 32;
        let t_hi = ((lo_word + band.len()) * 32).min(n);
        (active().vote_pack)(&tally[t_lo..t_hi], band);
    });
}

/// [`f32s_to_bytes`] banded across `pool` (a banded memcpy).
pub fn f32s_to_bytes_pooled(pool: &Pool, xs: &[f32], out: &mut [u8]) {
    assert_eq!(out.len(), xs.len() * 4, "f32s_to_bytes byte count");
    pool.for_rows(out, 4, wire_min_elems(), |lo, band| {
        (active().f32s_to_bytes)(&xs[lo..lo + band.len() / 4], band);
    });
}

/// [`bytes_to_f32s`] banded across `pool` (a banded memcpy).
pub fn bytes_to_f32s_pooled(pool: &Pool, bytes: &[u8], out: &mut [f32]) {
    assert_eq!(bytes.len(), out.len() * 4, "bytes_to_f32s byte count");
    pool.for_rows(out, 1, wire_min_elems(), |lo, band| {
        (active().bytes_to_f32s)(&bytes[lo * 4..(lo + band.len()) * 4], band);
    });
}

/// [`add_from_bytes`] banded across `pool`: elementwise, so banding never
/// splits an accumulation chain — bit-identical for every width.
pub fn add_from_bytes_pooled(pool: &Pool, bytes: &[u8], out: &mut [f32]) {
    assert_eq!(bytes.len(), out.len() * 4, "add_from_bytes byte count");
    pool.for_rows(out, 1, wire_min_elems(), |lo, band| {
        (active().add_from_bytes)(&bytes[lo * 4..(lo + band.len()) * 4], band);
    });
}

/// [`add_into_bytes`] banded across `pool` (elementwise; bit-identical
/// for every width).
pub fn add_into_bytes_pooled(pool: &Pool, xs: &[f32], bytes: &mut [u8]) {
    assert_eq!(bytes.len(), xs.len() * 4, "add_into_bytes byte count");
    pool.for_rows(bytes, 4, wire_min_elems(), |lo, band| {
        (active().add_into_bytes)(&xs[lo..lo + band.len() / 4], band);
    });
}

/// [`add_assign`] banded across `pool` (elementwise; bit-identical for
/// every width).
pub fn add_assign_pooled(pool: &Pool, acc: &mut [f32], other: &[f32]) {
    assert_eq!(acc.len(), other.len(), "add_assign length");
    pool.for_rows(acc, 1, wire_min_elems(), |lo, band| {
        (active().add_assign)(band, &other[lo..lo + band.len()]);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_table_is_always_available() {
        assert_eq!(scalar().name, "scalar");
    }

    #[test]
    fn active_is_stable_and_named() {
        let a = active();
        assert!(std::ptr::eq(a, active()));
        assert!(a.name == "scalar" || a.name == "avx2" || a.name == "avx512");
        if simd_active() {
            assert_ne!(a.name, "scalar");
        }
    }

    #[test]
    fn tables_enumerates_scalar_first_and_widest_last() {
        let t = tables();
        assert!(std::ptr::eq(t[0], scalar()));
        let names: Vec<&str> = t.iter().map(|k| k.name).collect();
        let mut expected = vec!["scalar"];
        if names.contains(&"avx2") {
            expected.push("avx2");
        }
        if names.contains(&"avx512") {
            expected.push("avx512");
        }
        assert_eq!(names, expected);
        // The best table simd() reports must be the last enumerated one.
        if let Some(best) = simd() {
            assert!(std::ptr::eq(best, *t.last().unwrap()));
        } else {
            assert_eq!(t.len(), 1);
        }
    }

    #[test]
    fn feature_string_mentions_active_table() {
        let s = feature_string();
        assert!(s.contains(active().name), "{s}");
    }

    #[test]
    fn wrappers_round_trip_signs() {
        let data = [1.0f32, -2.0, 3.0, -4.0, 5.0];
        let mut words = vec![0u32; 1];
        sign_pack(&data, &mut words);
        assert_eq!(words[0], 0b10101);
        let mut out = vec![0.0f32; 5];
        unpack_fill(&words, -1.0, 1.0, &mut out);
        assert_eq!(out, [1.0, -1.0, 1.0, -1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "sign_pack word count")]
    fn wrapper_asserts_word_count() {
        let mut words = vec![0u32; 2];
        sign_pack(&[1.0; 5], &mut words);
    }
}
