//! Runtime-dispatched SIMD kernels for the compression and collective hot
//! paths.
//!
//! Every scalar inner loop that dominates Table 2's encode/decode column or
//! the ring/Rabenseifner reduce step lives behind the [`Kernels`] vtable: a
//! plain struct of function pointers with one canonical scalar
//! implementation ([`scalar()`]) and, on x86_64 hosts with AVX2+FMA, an
//! explicitly vectorized implementation ([`simd()`]). The active table is
//! chosen **once** at first use by runtime CPU-feature detection
//! (`is_x86_feature_detected!`) and cached in a `OnceLock`; setting
//! `GCS_FORCE_SCALAR=1` in the environment pins the scalar table regardless
//! of what the CPU supports, which is how CI exercises both code paths.
//!
//! # Exactness contract
//!
//! Callers throughout `gcs-tensor`, `gcs-compress` and `gcs-cluster` assume
//! the two tables are interchangeable, so each kernel falls into one of two
//! classes (verified by `tests/kernel_props.rs`):
//!
//! - **Bit kernels** (sign pack/unpack, majority vote, byte↔f32/u32
//!   conversion, threshold gather): byte-identical output for every input,
//!   including NaN and signed-zero payloads. E.g. sign packing follows the
//!   scalar `v >= 0.0` predicate, so the AVX2 path uses an ordered
//!   `_CMP_GE_OQ` compare — *not* the sign-bit `movmskps` shortcut, which
//!   disagrees on positive NaNs.
//! - **Float kernels** (segment add, axpy, scale, |x| reduction): a fixed
//!   association order shared by both tables. Elementwise kernels have no
//!   reassociation at all; the horizontal [`sum_abs`] reduction is defined
//!   lane-striped (8 partial sums combined in a fixed pairwise tree, then a
//!   scalar tail) in *both* implementations, so results are reproducible
//!   bit-for-bit across dispatch modes and worker counts.
//!
//! The GEMM microkernel's FMA lanes are dispatched separately (its tile
//! routines are const-generic, which function pointers can't express) —
//! `matrix.rs` consults [`simd_active()`] directly.

mod scalar;

#[cfg(target_arch = "x86_64")]
mod avx2;

use std::sync::OnceLock;

/// Dispatch table of SIMD-accelerated primitives.
///
/// All slice-length contracts are asserted by the free wrapper functions in
/// this module (the usual entry points); the table entries themselves assume
/// the contract holds.
#[derive(Debug, Clone, Copy)]
pub struct Kernels {
    /// Implementation name, e.g. `"scalar"` or `"avx2"`.
    pub name: &'static str,
    /// Packs `data[i] >= 0.0` into bit `i % 32` of `out[i / 32]`
    /// (LSB-first). `out.len() == data.len().div_ceil(32)`; trailing bits of
    /// the last word are zero.
    pub sign_pack: fn(data: &[f32], out: &mut [u32]),
    /// Sets `out[i] = if bit i of words { pos } else { neg }`.
    pub unpack_fill: fn(words: &[u32], neg: f32, pos: f32, out: &mut [f32]),
    /// Accumulating variant: `out[i] += if bit i { pos } else { neg }`.
    pub unpack_add: fn(words: &[u32], neg: f32, pos: f32, out: &mut [f32]),
    /// Majority-vote accumulate: `tally[i] += if bit i { 1 } else { -1 }`.
    pub vote_add: fn(words: &[u32], tally: &mut [i32]),
    /// Packs the vote outcome `tally[i] >= 0` back into bits (LSB-first).
    /// `out.len() == tally.len().div_ceil(32)`.
    pub vote_pack: fn(tally: &[i32], out: &mut [u32]),
    /// Bulk little-endian serialization: `out.len() == 4 * xs.len()`.
    pub f32s_to_bytes: fn(xs: &[f32], out: &mut [u8]),
    /// Bulk little-endian serialization: `out.len() == 4 * xs.len()`.
    pub u32s_to_bytes: fn(xs: &[u32], out: &mut [u8]),
    /// Bulk little-endian deserialization: `bytes.len() == 4 * out.len()`.
    pub bytes_to_f32s: fn(bytes: &[u8], out: &mut [f32]),
    /// Bulk little-endian deserialization: `bytes.len() == 4 * out.len()`.
    pub bytes_to_u32s: fn(bytes: &[u8], out: &mut [u32]),
    /// The ring / Rabenseifner reduce step: `out[i] += f32::from_le_bytes`
    /// of the i-th 4-byte group. `bytes.len() == 4 * out.len()`.
    pub add_from_bytes: fn(bytes: &[u8], out: &mut [f32]),
    /// Elementwise `acc[i] += other[i]` (equal lengths).
    pub add_assign: fn(acc: &mut [f32], other: &[f32]),
    /// `y[i] += alpha * x[i]` (equal lengths), mul-then-add with two
    /// roundings in both tables — deliberately *not* fused.
    pub axpy: fn(y: &mut [f32], alpha: f32, x: &[f32]),
    /// `v[i] *= alpha`.
    pub scale: fn(v: &mut [f32], alpha: f32),
    /// `out[i] = data[i].abs()` (equal lengths).
    pub abs_into: fn(data: &[f32], out: &mut [f32]),
    /// Lane-striped `Σ |x_i|`: 8 partial sums over `x[8k + lane]`, combined
    /// `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`, then the `< 8` tail added in
    /// order. Both tables use this exact association.
    pub sum_abs: fn(data: &[f32]) -> f32,
    /// Appends `(i, data[i])` for every `|data[i]| > threshold`, in index
    /// order, to `indices`/`values`. NaNs never match (ordered compare).
    pub gather_above: fn(data: &[f32], threshold: f32, indices: &mut Vec<u32>, values: &mut Vec<f32>),
}

static ACTIVE: OnceLock<&'static Kernels> = OnceLock::new();

/// Whether `GCS_FORCE_SCALAR=1` (or any non-empty value other than `0`) is
/// set, pinning dispatch to the scalar table.
fn force_scalar() -> bool {
    match std::env::var("GCS_FORCE_SCALAR") {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    }
}

/// The canonical portable implementation. Always available; defines the
/// exact semantics every other table must reproduce.
pub fn scalar() -> &'static Kernels {
    &scalar::KERNELS
}

/// The best vectorized table this CPU supports, independent of
/// `GCS_FORCE_SCALAR` (benchmarks and property tests compare it against
/// [`scalar()`] explicitly). `None` when the host lacks AVX2+FMA.
pub fn simd() -> Option<&'static Kernels> {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2")
            && std::arch::is_x86_feature_detected!("fma")
        {
            return Some(&avx2::KERNELS);
        }
    }
    None
}

/// The table in effect for this process: [`simd()`] when available unless
/// `GCS_FORCE_SCALAR=1`, else [`scalar()`]. Resolved once and cached.
pub fn active() -> &'static Kernels {
    ACTIVE.get_or_init(|| {
        if force_scalar() {
            return scalar();
        }
        simd().unwrap_or_else(scalar)
    })
}

/// Whether the active table is a SIMD one — consulted by the GEMM tile
/// dispatch in `matrix.rs`, which can't go through function pointers.
pub fn simd_active() -> bool {
    !std::ptr::eq(active(), scalar())
}

/// Human-readable description of what runtime detection found, for bench
/// metadata: e.g. `"avx2+fma (active: avx2)"` or
/// `"avx2+fma (active: scalar, GCS_FORCE_SCALAR)"`.
pub fn feature_string() -> String {
    let detected = if simd().is_some() { "avx2+fma" } else { "none" };
    let forced = if force_scalar() { ", GCS_FORCE_SCALAR" } else { "" };
    format!("{} (active: {}{})", detected, active().name, forced)
}

// ---------------------------------------------------------------------------
// Free wrappers: assert the length contract once, then dispatch.
// ---------------------------------------------------------------------------

/// Dispatched [`Kernels::sign_pack`].
pub fn sign_pack(data: &[f32], out: &mut [u32]) {
    assert_eq!(out.len(), data.len().div_ceil(32), "sign_pack word count");
    (active().sign_pack)(data, out);
}

/// Dispatched [`Kernels::unpack_fill`].
pub fn unpack_fill(words: &[u32], neg: f32, pos: f32, out: &mut [f32]) {
    assert!(words.len() * 32 >= out.len(), "unpack_fill word count");
    (active().unpack_fill)(words, neg, pos, out);
}

/// Dispatched [`Kernels::unpack_add`].
pub fn unpack_add(words: &[u32], neg: f32, pos: f32, out: &mut [f32]) {
    assert!(words.len() * 32 >= out.len(), "unpack_add word count");
    (active().unpack_add)(words, neg, pos, out);
}

/// Dispatched [`Kernels::vote_add`].
pub fn vote_add(words: &[u32], tally: &mut [i32]) {
    assert!(words.len() * 32 >= tally.len(), "vote_add word count");
    (active().vote_add)(words, tally);
}

/// Dispatched [`Kernels::vote_pack`].
pub fn vote_pack(tally: &[i32], out: &mut [u32]) {
    assert_eq!(out.len(), tally.len().div_ceil(32), "vote_pack word count");
    (active().vote_pack)(tally, out);
}

/// Dispatched [`Kernels::f32s_to_bytes`].
pub fn f32s_to_bytes(xs: &[f32], out: &mut [u8]) {
    assert_eq!(out.len(), xs.len() * 4, "f32s_to_bytes byte count");
    (active().f32s_to_bytes)(xs, out);
}

/// Dispatched [`Kernels::u32s_to_bytes`].
pub fn u32s_to_bytes(xs: &[u32], out: &mut [u8]) {
    assert_eq!(out.len(), xs.len() * 4, "u32s_to_bytes byte count");
    (active().u32s_to_bytes)(xs, out);
}

/// Dispatched [`Kernels::bytes_to_f32s`].
pub fn bytes_to_f32s(bytes: &[u8], out: &mut [f32]) {
    assert_eq!(bytes.len(), out.len() * 4, "bytes_to_f32s byte count");
    (active().bytes_to_f32s)(bytes, out);
}

/// Dispatched [`Kernels::bytes_to_u32s`].
pub fn bytes_to_u32s(bytes: &[u8], out: &mut [u32]) {
    assert_eq!(bytes.len(), out.len() * 4, "bytes_to_u32s byte count");
    (active().bytes_to_u32s)(bytes, out);
}

/// Dispatched [`Kernels::add_from_bytes`].
pub fn add_from_bytes(bytes: &[u8], out: &mut [f32]) {
    assert_eq!(bytes.len(), out.len() * 4, "add_from_bytes byte count");
    (active().add_from_bytes)(bytes, out);
}

/// Dispatched [`Kernels::add_assign`].
pub fn add_assign(acc: &mut [f32], other: &[f32]) {
    assert_eq!(acc.len(), other.len(), "add_assign length");
    (active().add_assign)(acc, other);
}

/// Dispatched [`Kernels::axpy`].
pub fn axpy(y: &mut [f32], alpha: f32, x: &[f32]) {
    assert_eq!(y.len(), x.len(), "axpy length");
    (active().axpy)(y, alpha, x);
}

/// Dispatched [`Kernels::scale`].
pub fn scale(v: &mut [f32], alpha: f32) {
    (active().scale)(v, alpha);
}

/// Dispatched [`Kernels::abs_into`].
pub fn abs_into(data: &[f32], out: &mut [f32]) {
    assert_eq!(data.len(), out.len(), "abs_into length");
    (active().abs_into)(data, out);
}

/// Dispatched [`Kernels::sum_abs`].
pub fn sum_abs(data: &[f32]) -> f32 {
    (active().sum_abs)(data)
}

/// Dispatched [`Kernels::gather_above`].
pub fn gather_above(data: &[f32], threshold: f32, indices: &mut Vec<u32>, values: &mut Vec<f32>) {
    (active().gather_above)(data, threshold, indices, values);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_table_is_always_available() {
        assert_eq!(scalar().name, "scalar");
    }

    #[test]
    fn active_is_stable_and_named() {
        let a = active();
        assert!(std::ptr::eq(a, active()));
        assert!(a.name == "scalar" || a.name == "avx2");
        if simd_active() {
            assert_ne!(a.name, "scalar");
        }
    }

    #[test]
    fn feature_string_mentions_active_table() {
        let s = feature_string();
        assert!(s.contains(active().name), "{s}");
    }

    #[test]
    fn wrappers_round_trip_signs() {
        let data = [1.0f32, -2.0, 3.0, -4.0, 5.0];
        let mut words = vec![0u32; 1];
        sign_pack(&data, &mut words);
        assert_eq!(words[0], 0b10101);
        let mut out = vec![0.0f32; 5];
        unpack_fill(&words, -1.0, 1.0, &mut out);
        assert_eq!(out, [1.0, -1.0, 1.0, -1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "sign_pack word count")]
    fn wrapper_asserts_word_count() {
        let mut words = vec![0u32; 2];
        sign_pack(&[1.0; 5], &mut words);
    }
}
