//! AVX2+FMA implementations of the kernel table.
//!
//! Every entry is a thin safe wrapper around a `#[target_feature]` inner
//! function; the wrappers exist because function pointers can only be taken
//! of plain safe functions, and they are sound because this table is only
//! ever installed after `is_x86_feature_detected!("avx2")` and `("fma")`
//! both succeed (see `mod.rs::simd`).
//!
//! Where the vector width does not divide the input length, the `< lane`
//! tail is delegated to the scalar kernels, which are the semantic ground
//! truth — so exactness only has to be argued for the full-width body:
//!
//! - `sign_pack` uses an ordered `_CMP_GE_OQ` compare against `+0.0` and
//!   `movmskps`, reproducing the scalar `v >= 0.0` predicate exactly
//!   (NaN → 0, `-0.0` → 1). A raw sign-bit `movmskps` would misclassify
//!   positive NaNs.
//! - `vote_add` turns the per-lane bit mask `m ∈ {0, -1}` into `±1` with
//!   two integer subtracts: `t - 1 - 2m`.
//! - `gather_above` left-packs matching lanes with a 256-entry
//!   `vpermps` permutation LUT indexed by the compare movemask — the
//!   classic AVX2 stream-compaction trick that LLVM cannot autovectorize
//!   from the scalar branch-and-push loop.
//! - Float kernels use per-lane `vaddps`/`vmulps` (never FMA, matching the
//!   scalar two-rounding `a + alpha * b`), and `sum_abs` keeps the scalar
//!   table's 8-lane striping, so sums are bit-identical.

use super::{scalar, Kernels};
use std::arch::x86_64::*;

pub(super) static KERNELS: Kernels = Kernels {
    name: "avx2",
    sign_pack,
    unpack_fill,
    unpack_add,
    vote_add,
    vote_pack,
    f32s_to_bytes,
    u32s_to_bytes,
    bytes_to_f32s,
    bytes_to_u32s,
    add_from_bytes,
    add_into_bytes,
    add_assign,
    axpy,
    scale,
    abs_into,
    sum_abs,
    gather_above,
};

/// IEEE-754 abs mask (clears the sign bit), matching `f32::abs` bitwise.
const ABS_MASK: i32 = 0x7fff_ffff;

// ---------------------------------------------------------------------------
// sign pack / unpack / majority vote
// ---------------------------------------------------------------------------

fn sign_pack(data: &[f32], out: &mut [u32]) {
    // SAFETY: table installed only after AVX2+FMA runtime detection.
    unsafe { sign_pack_avx2(data, out) }
}

// SAFETY: caller must guarantee AVX2+FMA are present; `out` must hold
// `ceil(data.len() / 32)` words (the table contract checked by `mod.rs`).
#[target_feature(enable = "avx2,fma")]
unsafe fn sign_pack_avx2(data: &[f32], out: &mut [u32]) {
    let full_words = data.len() / 32;
    let zero = _mm256_setzero_ps();
    for (w, out_w) in out.iter_mut().enumerate().take(full_words) {
        let base = data.as_ptr().add(w * 32);
        let mut acc = 0u32;
        // 4 groups of 8 lanes fill one u32, LSB-first like the scalar pack.
        for g in 0..4 {
            let v = _mm256_loadu_ps(base.add(g * 8));
            let m = _mm256_cmp_ps::<_CMP_GE_OQ>(v, zero);
            acc |= (_mm256_movemask_ps(m) as u32 & 0xff) << (8 * g);
        }
        *out_w = acc;
    }
    scalar::sign_pack(&data[full_words * 32..], &mut out[full_words..]);
}

fn unpack_fill(words: &[u32], neg: f32, pos: f32, out: &mut [f32]) {
    // SAFETY: table installed only after AVX2+FMA runtime detection.
    unsafe { unpack_select_avx2::<false>(words, neg, pos, out) }
}

fn unpack_add(words: &[u32], neg: f32, pos: f32, out: &mut [f32]) {
    // SAFETY: table installed only after AVX2+FMA runtime detection.
    unsafe { unpack_select_avx2::<true>(words, neg, pos, out) }
}

/// Shared body of `unpack_fill` / `unpack_add`: broadcast one byte of the
/// bit stream per 8-lane group, test it against per-lane bit selectors, and
/// blend `neg`/`pos`. `ACCUMULATE` adds into `out` instead of storing.
// SAFETY: caller must guarantee AVX2+FMA are present; `words` must hold
// at least `ceil(out.len() / 32)` bit words.
#[target_feature(enable = "avx2,fma")]
unsafe fn unpack_select_avx2<const ACCUMULATE: bool>(
    words: &[u32],
    neg: f32,
    pos: f32,
    out: &mut [f32],
) {
    let n = out.len();
    let negv = _mm256_set1_ps(neg);
    let posv = _mm256_set1_ps(pos);
    let bitsel = _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
    let groups = n / 8;
    for g in 0..groups {
        let byte = (words[g / 4] >> ((g % 4) * 8)) & 0xff;
        let bv = _mm256_set1_epi32(byte as i32);
        let m = _mm256_cmpeq_epi32(_mm256_and_si256(bv, bitsel), bitsel);
        let sel = _mm256_blendv_ps(negv, posv, _mm256_castsi256_ps(m));
        let dst = out.as_mut_ptr().add(g * 8);
        if ACCUMULATE {
            _mm256_storeu_ps(dst, _mm256_add_ps(_mm256_loadu_ps(dst), sel));
        } else {
            _mm256_storeu_ps(dst, sel);
        }
    }
    for (i, o) in out.iter_mut().enumerate().skip(groups * 8) {
        let v = if (words[i / 32] >> (i % 32)) & 1 == 1 {
            pos
        } else {
            neg
        };
        if ACCUMULATE {
            *o += v;
        } else {
            *o = v;
        }
    }
}

fn vote_add(words: &[u32], tally: &mut [i32]) {
    // SAFETY: table installed only after AVX2+FMA runtime detection.
    unsafe { vote_add_avx2(words, tally) }
}

// SAFETY: caller must guarantee AVX2+FMA are present; `words` must hold
// at least `ceil(tally.len() / 32)` bit words.
#[target_feature(enable = "avx2,fma")]
unsafe fn vote_add_avx2(words: &[u32], tally: &mut [i32]) {
    let n = tally.len();
    let bitsel = _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
    let ones = _mm256_set1_epi32(1);
    let groups = n / 8;
    for g in 0..groups {
        let byte = (words[g / 4] >> ((g % 4) * 8)) & 0xff;
        let bv = _mm256_set1_epi32(byte as i32);
        // m = -1 where the bit is set; t += bit ? 1 : -1  ==  t - 1 - 2m.
        let m = _mm256_cmpeq_epi32(_mm256_and_si256(bv, bitsel), bitsel);
        let dst = tally.as_mut_ptr().add(g * 8) as *mut __m256i;
        let t = _mm256_loadu_si256(dst);
        let t = _mm256_sub_epi32(t, ones);
        let t = _mm256_sub_epi32(t, _mm256_add_epi32(m, m));
        _mm256_storeu_si256(dst, t);
    }
    for (i, t) in tally.iter_mut().enumerate().skip(groups * 8) {
        *t += (((words[i / 32] >> (i % 32)) & 1) as i32) * 2 - 1;
    }
}

fn vote_pack(tally: &[i32], out: &mut [u32]) {
    // SAFETY: table installed only after AVX2+FMA runtime detection.
    unsafe { vote_pack_avx2(tally, out) }
}

// SAFETY: caller must guarantee AVX2+FMA are present; `out` must hold
// `ceil(tally.len() / 32)` words.
#[target_feature(enable = "avx2,fma")]
unsafe fn vote_pack_avx2(tally: &[i32], out: &mut [u32]) {
    let full_words = tally.len() / 32;
    let zero = _mm256_setzero_si256();
    for (w, out_w) in out.iter_mut().enumerate().take(full_words) {
        let base = tally.as_ptr().add(w * 32);
        let mut acc = 0u32;
        for g in 0..4 {
            let t = _mm256_loadu_si256(base.add(g * 8) as *const __m256i);
            // t >= 0  ==  !(0 > t); movemask the negatives and invert.
            let negm = _mm256_cmpgt_epi32(zero, t);
            let neg_bits = _mm256_movemask_ps(_mm256_castsi256_ps(negm)) as u32;
            acc |= (!neg_bits & 0xff) << (8 * g);
        }
        *out_w = acc;
    }
    scalar::vote_pack(&tally[full_words * 32..], &mut out[full_words..]);
}

// ---------------------------------------------------------------------------
// bulk byte <-> f32/u32 conversion and the reduce step
// ---------------------------------------------------------------------------

/// x86_64 is little-endian, so the per-element `to_le_bytes` loops are a
/// straight memory copy; `copy_nonoverlapping` lowers to the platform
/// memcpy, whose bulk path is already the widest vector the CPU has.
pub(super) fn f32s_to_bytes(xs: &[f32], out: &mut [u8]) {
    // SAFETY: `out` holds exactly `4 * xs.len()` bytes (wrapper contract)
    // and the slices cannot overlap (`&mut` aliasing rules).
    unsafe {
        std::ptr::copy_nonoverlapping(xs.as_ptr() as *const u8, out.as_mut_ptr(), xs.len() * 4);
    }
}

pub(super) fn u32s_to_bytes(xs: &[u32], out: &mut [u8]) {
    // SAFETY: as in `f32s_to_bytes`.
    unsafe {
        std::ptr::copy_nonoverlapping(xs.as_ptr() as *const u8, out.as_mut_ptr(), xs.len() * 4);
    }
}

pub(super) fn bytes_to_f32s(bytes: &[u8], out: &mut [f32]) {
    // SAFETY: `bytes` holds exactly `4 * out.len()` bytes (wrapper
    // contract); `f32` has no invalid bit patterns and alignment-1 reads
    // into an aligned destination are handled by memcpy.
    unsafe {
        std::ptr::copy_nonoverlapping(bytes.as_ptr(), out.as_mut_ptr() as *mut u8, bytes.len());
    }
}

pub(super) fn bytes_to_u32s(bytes: &[u8], out: &mut [u32]) {
    // SAFETY: as in `bytes_to_f32s`.
    unsafe {
        std::ptr::copy_nonoverlapping(bytes.as_ptr(), out.as_mut_ptr() as *mut u8, bytes.len());
    }
}

fn add_from_bytes(bytes: &[u8], out: &mut [f32]) {
    // SAFETY: table installed only after AVX2+FMA runtime detection.
    unsafe { add_from_bytes_avx2(bytes, out) }
}

// SAFETY: caller must guarantee AVX2+FMA are present and that `bytes`
// holds exactly `4 * out.len()` little-endian f32s; unaligned loads are
// used throughout so `bytes` needs no alignment.
#[target_feature(enable = "avx2,fma")]
unsafe fn add_from_bytes_avx2(bytes: &[u8], out: &mut [f32]) {
    let n = out.len();
    let full = n / 8;
    let src = bytes.as_ptr();
    for i in 0..full {
        // Unaligned load straight from the wire buffer; per-lane vaddps in
        // index order is exactly the scalar loop's association.
        let b = _mm256_loadu_ps(src.add(i * 32) as *const f32);
        let dst = out.as_mut_ptr().add(i * 8);
        _mm256_storeu_ps(dst, _mm256_add_ps(_mm256_loadu_ps(dst), b));
    }
    scalar::add_from_bytes(&bytes[full * 32..], &mut out[full * 8..]);
}

fn add_into_bytes(xs: &[f32], bytes: &mut [u8]) {
    // SAFETY: table installed only after AVX2+FMA runtime detection.
    unsafe { add_into_bytes_avx2(xs, bytes) }
}

// SAFETY: caller must guarantee AVX2+FMA are present and that `bytes`
// holds exactly `4 * xs.len()` little-endian f32s; unaligned loads/stores
// are used so `bytes` needs no alignment.
#[target_feature(enable = "avx2,fma")]
unsafe fn add_into_bytes_avx2(xs: &[f32], bytes: &mut [u8]) {
    let full = xs.len() / 8;
    let dst = bytes.as_mut_ptr();
    for i in 0..full {
        let w = _mm256_loadu_ps(dst.add(i * 32) as *const f32);
        let x = _mm256_loadu_ps(xs.as_ptr().add(i * 8));
        // x first, wire second — the scalar kernel's `x + w` order.
        _mm256_storeu_ps(dst.add(i * 32) as *mut f32, _mm256_add_ps(x, w));
    }
    scalar::add_into_bytes(&xs[full * 8..], &mut bytes[full * 32..]);
}

// ---------------------------------------------------------------------------
// elementwise float kernels
// ---------------------------------------------------------------------------

fn add_assign(acc: &mut [f32], other: &[f32]) {
    // SAFETY: table installed only after AVX2+FMA runtime detection.
    unsafe { add_assign_avx2(acc, other) }
}

// SAFETY: caller must guarantee AVX2+FMA are present and
// `other.len() >= acc.len()`.
#[target_feature(enable = "avx2,fma")]
unsafe fn add_assign_avx2(acc: &mut [f32], other: &[f32]) {
    let full = acc.len() / 8;
    for i in 0..full {
        let dst = acc.as_mut_ptr().add(i * 8);
        let b = _mm256_loadu_ps(other.as_ptr().add(i * 8));
        _mm256_storeu_ps(dst, _mm256_add_ps(_mm256_loadu_ps(dst), b));
    }
    scalar::add_assign(&mut acc[full * 8..], &other[full * 8..]);
}

fn axpy(y: &mut [f32], alpha: f32, x: &[f32]) {
    // SAFETY: table installed only after AVX2+FMA runtime detection.
    unsafe { axpy_avx2(y, alpha, x) }
}

// SAFETY: caller must guarantee AVX2+FMA are present and
// `x.len() >= y.len()`.
#[target_feature(enable = "avx2,fma")]
unsafe fn axpy_avx2(y: &mut [f32], alpha: f32, x: &[f32]) {
    let a = _mm256_set1_ps(alpha);
    let full = y.len() / 8;
    for i in 0..full {
        let dst = y.as_mut_ptr().add(i * 8);
        // vmulps + vaddps, NOT vfmadd: the scalar kernel rounds twice.
        let prod = _mm256_mul_ps(a, _mm256_loadu_ps(x.as_ptr().add(i * 8)));
        _mm256_storeu_ps(dst, _mm256_add_ps(_mm256_loadu_ps(dst), prod));
    }
    scalar::axpy(&mut y[full * 8..], alpha, &x[full * 8..]);
}

fn scale(v: &mut [f32], alpha: f32) {
    // SAFETY: table installed only after AVX2+FMA runtime detection.
    unsafe { scale_avx2(v, alpha) }
}

// SAFETY: caller must guarantee AVX2+FMA are present; all loads/stores
// stay inside `v`.
#[target_feature(enable = "avx2,fma")]
unsafe fn scale_avx2(v: &mut [f32], alpha: f32) {
    let a = _mm256_set1_ps(alpha);
    let full = v.len() / 8;
    for i in 0..full {
        let dst = v.as_mut_ptr().add(i * 8);
        _mm256_storeu_ps(dst, _mm256_mul_ps(_mm256_loadu_ps(dst), a));
    }
    scalar::scale(&mut v[full * 8..], alpha);
}

fn abs_into(data: &[f32], out: &mut [f32]) {
    // SAFETY: table installed only after AVX2+FMA runtime detection.
    unsafe { abs_into_avx2(data, out) }
}

// SAFETY: caller must guarantee AVX2+FMA are present and
// `out.len() >= data.len()`.
#[target_feature(enable = "avx2,fma")]
unsafe fn abs_into_avx2(data: &[f32], out: &mut [f32]) {
    let mask = _mm256_castsi256_ps(_mm256_set1_epi32(ABS_MASK));
    let full = data.len() / 8;
    for i in 0..full {
        let v = _mm256_loadu_ps(data.as_ptr().add(i * 8));
        _mm256_storeu_ps(out.as_mut_ptr().add(i * 8), _mm256_and_ps(v, mask));
    }
    scalar::abs_into(&data[full * 8..], &mut out[full * 8..]);
}

/// `pub(super)` so the AVX-512 table reuses this entry directly: the
/// kernel contract fixes the 8-lane striping, so a 16-lane version would
/// *break* bit-exactness rather than improve it.
pub(super) fn sum_abs(data: &[f32]) -> f32 {
    // SAFETY: table installed only after AVX2+FMA runtime detection (the
    // AVX-512 table also requires AVX2+FMA — see `mod.rs::simd`).
    unsafe { sum_abs_avx2(data) }
}

// SAFETY: caller must guarantee AVX2+FMA are present; reads stay inside
// `data`.
#[target_feature(enable = "avx2,fma")]
unsafe fn sum_abs_avx2(data: &[f32]) -> f32 {
    // One vaddps per 8 elements IS the scalar kernel's lane striping:
    // lane l accumulates |data[8k + l]| in index order.
    let mask = _mm256_castsi256_ps(_mm256_set1_epi32(ABS_MASK));
    let mut acc = _mm256_setzero_ps();
    let full = data.len() / 8;
    for i in 0..full {
        let v = _mm256_loadu_ps(data.as_ptr().add(i * 8));
        acc = _mm256_add_ps(acc, _mm256_and_ps(v, mask));
    }
    let mut lanes = [0.0f32; 8];
    _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
    // Same fixed pairwise combination tree as the scalar kernel.
    let mut total = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
        + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
    for &v in &data[full * 8..] {
        total += v.abs();
    }
    total
}

// ---------------------------------------------------------------------------
// top-k threshold gather (stream compaction)
// ---------------------------------------------------------------------------

/// Left-pack permutation LUT: row `m` lists, in ascending order, the lanes
/// whose bit is set in the 8-bit movemask `m` (unused slots are 0 — their
/// output is never committed because only `popcount(m)` elements are kept).
static COMPRESS_LUT: [[u32; 8]; 256] = build_compress_lut();

const fn build_compress_lut() -> [[u32; 8]; 256] {
    let mut lut = [[0u32; 8]; 256];
    let mut m = 0usize;
    while m < 256 {
        let mut out_pos = 0usize;
        let mut lane = 0usize;
        while lane < 8 {
            if m & (1 << lane) != 0 {
                lut[m][out_pos] = lane as u32;
                out_pos += 1;
            }
            lane += 1;
        }
        m += 1;
    }
    lut
}

fn gather_above(data: &[f32], threshold: f32, indices: &mut Vec<u32>, values: &mut Vec<f32>) {
    // SAFETY: table installed only after AVX2+FMA runtime detection.
    unsafe { gather_above_avx2(data, threshold, indices, values) }
}

// SAFETY: caller must guarantee AVX2+FMA are present. The over-wide
// stores below land in capacity reserved immediately beforehand
// (`reserve(8)`), and `set_len` only commits the `cnt` initialized slots.
#[target_feature(enable = "avx2,fma")]
unsafe fn gather_above_avx2(
    data: &[f32],
    threshold: f32,
    indices: &mut Vec<u32>,
    values: &mut Vec<f32>,
) {
    let absmask = _mm256_castsi256_ps(_mm256_set1_epi32(ABS_MASK));
    let tv = _mm256_set1_ps(threshold);
    let eight = _mm256_set1_epi32(8);
    let mut idx = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
    let full = data.len() / 8;
    for blk in 0..full {
        let v = _mm256_loadu_ps(data.as_ptr().add(blk * 8));
        // Ordered > : NaNs compare false, matching the scalar `abs() > t`.
        let m = _mm256_cmp_ps::<_CMP_GT_OQ>(_mm256_and_ps(v, absmask), tv);
        let mask = _mm256_movemask_ps(m) as usize & 0xff;
        if mask != 0 {
            let cnt = mask.count_ones() as usize;
            let perm = _mm256_loadu_si256(COMPRESS_LUT[mask].as_ptr() as *const __m256i);
            let packed_idx = _mm256_permutevar8x32_epi32(idx, perm);
            let packed_val = _mm256_permutevar8x32_ps(v, perm);
            // Store a full 8-wide vector past `len`, then commit only the
            // `cnt` matching entries.
            let il = indices.len();
            indices.reserve(8);
            _mm256_storeu_si256(indices.as_mut_ptr().add(il) as *mut __m256i, packed_idx);
            indices.set_len(il + cnt);
            let vl = values.len();
            values.reserve(8);
            _mm256_storeu_ps(values.as_mut_ptr().add(vl), packed_val);
            values.set_len(vl + cnt);
        }
        idx = _mm256_add_epi32(idx, eight);
    }
    scalar::gather_above_from(
        &data[full * 8..],
        (full * 8) as u32,
        threshold,
        indices,
        values,
    );
}
