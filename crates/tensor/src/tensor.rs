//! The dense tensor type.

use crate::Shape;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::error::Error;
use std::fmt;

/// Error type for tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two tensors (or a tensor and a buffer) had incompatible shapes.
    ShapeMismatch {
        /// Shape (or length) expected by the operation.
        expected: String,
        /// Shape (or length) actually supplied.
        actual: String,
    },
    /// A reshape asked for a different number of elements.
    InvalidReshape {
        /// Element count of the source tensor.
        from: usize,
        /// Element count the requested shape implies.
        to: usize,
    },
    /// An index was out of bounds.
    IndexOutOfBounds {
        /// Offending index.
        index: usize,
        /// Number of elements in the tensor.
        len: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { expected, actual } => {
                write!(f, "shape mismatch: expected {expected}, got {actual}")
            }
            TensorError::InvalidReshape { from, to } => {
                write!(f, "invalid reshape: {from} elements cannot become {to}")
            }
            TensorError::IndexOutOfBounds { index, len } => {
                write!(
                    f,
                    "index {index} out of bounds for tensor of {len} elements"
                )
            }
        }
    }
}

impl Error for TensorError {}

/// A contiguous, row-major dense `f32` tensor.
///
/// This is the value type gradients are represented with throughout the
/// study. It is intentionally simple — contiguous storage, eager
/// elementwise ops — because the compression kernels built on top of it
/// (power iteration, top-k selection, sign packing) only need flat access
/// and matrix views.
///
/// # Example
///
/// ```
/// use gcs_tensor::Tensor;
///
/// let mut g = Tensor::from_vec(vec![1.0, -2.0, 3.0]);
/// g.scale(0.5);
/// assert_eq!(g.data(), &[0.5, -1.0, 1.5]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    /// Creates a tensor of zeros with the given shape.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        Tensor {
            data: vec![0.0; shape.numel()],
            shape,
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        Tensor {
            data: vec![value; shape.numel()],
            shape,
        }
    }

    /// Creates a 1-D tensor owning `data`.
    pub fn from_vec(data: Vec<f32>) -> Self {
        let shape = Shape::new(vec![data.len()]);
        Tensor { data, shape }
    }

    /// Creates a tensor from `data` with an explicit shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `data.len()` does not equal
    /// `shape.numel()`.
    pub fn from_shape_vec(shape: impl Into<Shape>, data: Vec<f32>) -> crate::Result<Self> {
        let shape = shape.into();
        if data.len() != shape.numel() {
            return Err(TensorError::ShapeMismatch {
                expected: format!("{} elements", shape.numel()),
                actual: format!("{} elements", data.len()),
            });
        }
        Ok(Tensor { data, shape })
    }

    /// Creates a tensor with i.i.d. standard-normal entries drawn from a
    /// seeded RNG (Box–Muller over uniform draws; deterministic per seed).
    pub fn randn(shape: impl Into<Shape>, seed: u64) -> Self {
        let shape = shape.into();
        let mut rng = StdRng::seed_from_u64(seed);
        let n = shape.numel();
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            // Box–Muller transform: two uniforms -> two normals.
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos());
            if data.len() < n {
                data.push(r * theta.sin());
            }
        }
        Tensor { data, shape }
    }

    /// Creates a tensor with entries uniform in `[lo, hi)` from a seeded RNG.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn rand_uniform(shape: impl Into<Shape>, lo: f32, hi: f32, seed: u64) -> Self {
        assert!(lo < hi, "rand_uniform requires lo < hi");
        let shape = shape.into();
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..shape.numel()).map(|_| rng.gen_range(lo..hi)).collect();
        Tensor { data, shape }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the underlying buffer (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns a copy with a new shape over the same elements.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidReshape`] if element counts differ.
    pub fn reshaped(&self, shape: impl Into<Shape>) -> crate::Result<Tensor> {
        let shape = shape.into();
        if shape.numel() != self.numel() {
            return Err(TensorError::InvalidReshape {
                from: self.numel(),
                to: shape.numel(),
            });
        }
        Ok(Tensor {
            data: self.data.clone(),
            shape,
        })
    }

    /// In-place scalar multiply.
    pub fn scale(&mut self, s: f32) {
        crate::kernels::scale(&mut self.data, s);
    }

    /// Returns `self * s` as a new tensor.
    pub fn scaled(&self, s: f32) -> Tensor {
        let mut out = self.clone();
        out.scale(s);
        out
    }

    /// In-place elementwise addition: `self += other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) -> crate::Result<()> {
        self.check_same_shape(other)?;
        crate::kernels::add_assign(&mut self.data, &other.data);
        Ok(())
    }

    /// In-place elementwise subtraction: `self -= other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn sub_assign(&mut self, other: &Tensor) -> crate::Result<()> {
        self.check_same_shape(other)?;
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a -= b;
        }
        Ok(())
    }

    /// In-place fused multiply-add: `self += alpha * other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) -> crate::Result<()> {
        self.check_same_shape(other)?;
        crate::kernels::axpy(&mut self.data, alpha, &other.data);
        Ok(())
    }

    /// Returns `self + other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn add(&self, other: &Tensor) -> crate::Result<Tensor> {
        let mut out = self.clone();
        out.add_assign(other)?;
        Ok(out)
    }

    /// Returns `self - other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn sub(&self, other: &Tensor) -> crate::Result<Tensor> {
        let mut out = self.clone();
        out.sub_assign(other)?;
        Ok(out)
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Dot product of two tensors viewed as flat vectors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if element counts differ.
    pub fn dot(&self, other: &Tensor) -> crate::Result<f32> {
        if self.numel() != other.numel() {
            return Err(TensorError::ShapeMismatch {
                expected: format!("{} elements", self.numel()),
                actual: format!("{} elements", other.numel()),
            });
        }
        Ok(self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum())
    }

    /// Euclidean (Frobenius) norm.
    pub fn l2_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Sum of absolute values (lane-striped association order — see
    /// [`crate::kernels::sum_abs`] — identical under scalar and SIMD
    /// dispatch).
    pub fn l1_norm(&self) -> f32 {
        crate::kernels::sum_abs(&self.data)
    }

    /// Maximum absolute value (0 for an empty tensor).
    pub fn linf_norm(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, x| m.max(x.abs()))
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Element at flat index `i`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if `i >= numel()`.
    pub fn get(&self, i: usize) -> crate::Result<f32> {
        self.data
            .get(i)
            .copied()
            .ok_or(TensorError::IndexOutOfBounds {
                index: i,
                len: self.data.len(),
            })
    }

    fn check_same_shape(&self, other: &Tensor) -> crate::Result<()> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                expected: self.shape.to_string(),
                actual: other.shape.to_string(),
            });
        }
        Ok(())
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::from_vec(Vec::new())
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{}(", self.shape)?;
        let show = self.data.len().min(8);
        for (i, v) in self.data[..show].iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.4}")?;
        }
        if self.data.len() > show {
            write!(f, ", …")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_full() {
        let z = Tensor::zeros([2, 3]);
        assert_eq!(z.numel(), 6);
        assert!(z.data().iter().all(|&x| x == 0.0));
        let f = Tensor::full([4], 2.5);
        assert!(f.data().iter().all(|&x| x == 2.5));
    }

    #[test]
    fn from_shape_vec_validates_len() {
        assert!(Tensor::from_shape_vec([2, 2], vec![1.0; 4]).is_ok());
        let err = Tensor::from_shape_vec([2, 2], vec![1.0; 3]).unwrap_err();
        assert!(matches!(err, TensorError::ShapeMismatch { .. }));
    }

    #[test]
    fn randn_is_deterministic_per_seed() {
        let a = Tensor::randn([100], 7);
        let b = Tensor::randn([100], 7);
        let c = Tensor::randn([100], 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn randn_has_roughly_standard_moments() {
        let t = Tensor::randn([100_000], 1);
        assert!(t.mean().abs() < 0.02, "mean {}", t.mean());
        let var = t.data().iter().map(|x| x * x).sum::<f32>() / t.numel() as f32;
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn rand_uniform_respects_bounds() {
        let t = Tensor::rand_uniform([1000], -2.0, 3.0, 5);
        assert!(t.data().iter().all(|&x| (-2.0..3.0).contains(&x)));
    }

    #[test]
    fn arithmetic_roundtrip() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0]);
        let b = Tensor::from_vec(vec![0.5, 0.5, 0.5]);
        let mut c = a.add(&b).unwrap();
        c.sub_assign(&b).unwrap();
        assert_eq!(c, a);
        c.axpy(2.0, &b).unwrap();
        assert_eq!(c.data(), &[2.0, 3.0, 4.0]);
    }

    #[test]
    fn shape_mismatch_errors() {
        let a = Tensor::zeros([2]);
        let b = Tensor::zeros([3]);
        assert!(a.add(&b).is_err());
        assert!(a.dot(&b).is_err());
    }

    #[test]
    fn norms() {
        let t = Tensor::from_vec(vec![3.0, -4.0]);
        assert!((t.l2_norm() - 5.0).abs() < 1e-6);
        assert!((t.l1_norm() - 7.0).abs() < 1e-6);
        assert!((t.linf_norm() - 4.0).abs() < 1e-6);
        assert_eq!(Tensor::default().linf_norm(), 0.0);
        assert_eq!(Tensor::default().mean(), 0.0);
    }

    #[test]
    fn reshape_checks_numel() {
        let t = Tensor::zeros([6]);
        assert!(t.reshaped([2, 3]).is_ok());
        assert!(matches!(
            t.reshaped([4, 2]),
            Err(TensorError::InvalidReshape { from: 6, to: 8 })
        ));
    }

    #[test]
    fn get_bounds() {
        let t = Tensor::from_vec(vec![1.0]);
        assert_eq!(t.get(0).unwrap(), 1.0);
        assert!(t.get(1).is_err());
    }

    #[test]
    fn display_truncates() {
        let t = Tensor::zeros([100]);
        let s = t.to_string();
        assert!(s.contains('…'));
        assert!(s.starts_with("Tensor[100]("));
    }

    #[test]
    fn error_display_nonempty() {
        let e = TensorError::IndexOutOfBounds { index: 5, len: 2 };
        assert!(!e.to_string().is_empty());
    }
}
