//! Matrix views and the linear-algebra kernels used by low-rank
//! compressors.
//!
//! PowerSGD's encode step is one power iteration:
//! `P = M Q; orthonormalize(P); Q = Mᵀ P` — so the only kernels needed are
//! the three matmul variants and a modified Gram–Schmidt. ATOMO additionally
//! needs a truncated SVD, implemented in [`svd_truncated`] via subspace
//! iteration on top of the same kernels.

use crate::autotune::GemmTile;
use crate::{Result, Tensor, TensorError};

/// An immutable matrix view over a flat `f32` slice (row-major).
///
/// # Example
///
/// ```
/// use gcs_tensor::matrix::MatrixRef;
///
/// let data = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
/// let m = MatrixRef::new(&data, 2, 3).unwrap();
/// assert_eq!(m.get(1, 2), 6.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct MatrixRef<'a> {
    data: &'a [f32],
    rows: usize,
    cols: usize,
}

impl<'a> MatrixRef<'a> {
    /// Wraps `data` as a `rows x cols` row-major matrix.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn new(data: &'a [f32], rows: usize, cols: usize) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(TensorError::ShapeMismatch {
                expected: format!("{} elements", rows * cols),
                actual: format!("{} elements", data.len()),
            });
        }
        Ok(MatrixRef { data, rows, cols })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        self.data[r * self.cols + c]
    }

    /// The underlying row-major slice.
    pub fn as_slice(&self) -> &[f32] {
        self.data
    }
}

/// Checks that the output buffer has the expected size.
fn check_out(out: &[f32], rows: usize, cols: usize) -> Result<()> {
    if out.len() != rows * cols {
        return Err(TensorError::ShapeMismatch {
            expected: format!("{} elements", rows * cols),
            actual: format!("{} elements", out.len()),
        });
    }
    Ok(())
}

/// `out = A · B` where `A` is `m x k` and `B` is `k x n`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if inner dimensions or the output
/// buffer size do not line up.
pub fn matmul(a: MatrixRef<'_>, b: MatrixRef<'_>, out: &mut [f32]) -> Result<()> {
    matmul_with_tile(active_tile(), a, b, out)
}

/// The register tile the dispatched entry points run: the autotuned
/// choice when SIMD is active, scalar otherwise.
fn active_tile() -> GemmTile {
    if crate::kernels::simd_active() {
        crate::autotune::choice().gemm_tile
    } else {
        GemmTile::Scalar
    }
}

/// [`matmul`] with the SIMD-tile dispatch pinned by the caller — exposed
/// for the dispatch property tests and the datapath benchmark, which
/// compare both paths explicitly. `true` means the *widest supported*
/// tile, bypassing the autotuner. Everyone else wants [`matmul`].
///
/// # Errors
///
/// Same shape errors as [`matmul`].
#[doc(hidden)]
pub fn matmul_with_dispatch(
    use_simd: bool,
    a: MatrixRef<'_>,
    b: MatrixRef<'_>,
    out: &mut [f32],
) -> Result<()> {
    let tile = if use_simd {
        crate::autotune::best_supported_tile()
    } else {
        GemmTile::Scalar
    };
    matmul_with_tile(tile, a, b, out)
}

/// [`matmul`] with an explicit register tile — what the autotuner
/// benchmarks and the property tests sweep. The caller must only pass
/// tiles in [`crate::autotune::supported_tiles`]; every supported tile
/// produces bit-identical output.
///
/// # Errors
///
/// Same shape errors as [`matmul`].
#[doc(hidden)]
pub fn matmul_with_tile(
    tile: GemmTile,
    a: MatrixRef<'_>,
    b: MatrixRef<'_>,
    out: &mut [f32],
) -> Result<()> {
    if a.cols() != b.rows() {
        return Err(TensorError::ShapeMismatch {
            expected: format!("inner dim {}", a.cols()),
            actual: format!("inner dim {}", b.rows()),
        });
    }
    check_out(out, a.rows(), b.cols())?;
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let a_s = a.as_slice();
    let b_s = b.as_slice();
    // Register-tiled kernel: a 4 x T accumulator tile lives in registers
    // across the entire k loop, so each output element is stored exactly
    // once (the streaming loop re-loads and re-stores `out` on every k
    // step, which caps it at one FMA per store). Each streamed B vector
    // feeds four rows, so B loads amortize 4x as well.
    let mut i = 0;
    // 8-row x 32-col AVX-512 macro-block first: 16 zmm accumulators per
    // block, so each streamed B vector feeds eight rows instead of four —
    // half the B memory traffic, which is what bounds the skinny PowerSGD
    // shapes. Per-output-element FMA chains stay l-ordered, so the block
    // height is invisible in the output bits.
    #[cfg(target_arch = "x86_64")]
    if tile == GemmTile::Avx512x32 && m >= 8 && n >= 32 {
        // k-panel blocking: the outer loop walks `k` in panels sized so a
        // B panel (`kc x n`) stays L2-resident while every 8-row block
        // streams over it — without it, skinny shapes (PowerSGD's
        // 512 x 4608 x 64) re-stream all of B from memory once per row
        // block. Later panels resume each accumulator from `out`; an f32
        // store/load roundtrip is exact (NaN bits included), so the
        // per-element chain — and therefore the result bits — are
        // identical to the unblocked loop.
        let kc = (131072 / n).max(64).min(k);
        let m8 = m - m % 8;
        let n32 = n - n % 32;
        let mut kb = 0;
        while kb < k {
            let kh = (kb + kc).min(k);
            let first = kb == 0;
            let mut bi = 0;
            while bi + 8 <= m8 {
                let rows: [&[f32]; 8] =
                    std::array::from_fn(|r| &a_s[(bi + r) * k + kb..(bi + r) * k + kh]);
                let mut j = 0;
                while j + 32 <= n32 {
                    // SAFETY: the `Avx512x32` tile is only handed out after
                    // runtime AVX-512F detection (see `matmul_with_tile`'s
                    // caller contract); tile bounds are maintained by the
                    // loop and the B panel covers rows `kb..kh`.
                    unsafe {
                        mm_tile32x8_avx512(
                            first,
                            rows,
                            &b_s[kb * n..kh * n],
                            (kh - kb, n),
                            bi,
                            j,
                            out,
                        )
                    };
                    j += 32;
                }
                bi += 8;
            }
            kb = kh;
        }
        // Column remainder of the blocked rows via the 4-row tiles
        // (full-`k` register chains — same bits, see above).
        if n32 < n {
            while i + 4 <= m8 {
                let a_rows: [&[f32]; 4] =
                    std::array::from_fn(|r| &a_s[(i + r) * k..(i + r + 1) * k]);
                mm_cols_from(tile, n32, a_rows, b_s, (k, n), i, out);
                i += 4;
            }
        }
        i = m8;
    }
    while i + 4 <= m {
        let c0 = &a_s[i * k..(i + 1) * k];
        let c1 = &a_s[(i + 1) * k..(i + 2) * k];
        let c2 = &a_s[(i + 2) * k..(i + 3) * k];
        let c3 = &a_s[(i + 3) * k..(i + 4) * k];
        let a_rows = [c0, c1, c2, c3];
        let mut j = 0;
        #[cfg(target_arch = "x86_64")]
        if tile == GemmTile::Avx512x32 {
            while j + 32 <= n {
                // SAFETY: the `Avx512x32` tile is only handed out after
                // runtime AVX-512F detection (see `matmul_with_tile`'s
                // caller contract); tile bounds are maintained by the loop.
                unsafe { mm_tile32_avx512(a_rows, b_s, (k, n), i, j, out) };
                j += 32;
            }
        }
        mm_cols_from(tile, j, a_rows, b_s, (k, n), i, out);
        i += 4;
    }
    // Remainder rows (m % 4) with the plain streaming loop.
    for i in i..m {
        let orow = &mut out[i * n..(i + 1) * n];
        orow.fill(0.0);
        for l in 0..k {
            let aik = a_s[i * k + l];
            let brow = &b_s[l * n..(l + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o = aik.mul_add(bv, *o);
            }
        }
    }
    Ok(())
}

/// Columns `j0..n` of a 4-row block of `A · B`, via the 16/4/1-wide tiles
/// (the 32-wide AVX-512 panel, when active, is consumed by the caller).
#[inline(always)]
fn mm_cols_from(
    tile: GemmTile,
    j0: usize,
    a_rows: [&[f32]; 4],
    b_s: &[f32],
    (k, n): (usize, usize),
    i: usize,
    out: &mut [f32],
) {
    let mut j = j0;
    while j + 16 <= n {
        mm_tile16(tile.uses_simd(), a_rows, b_s, (k, n), i, j, out);
        j += 16;
    }
    while j + 4 <= n {
        mm_tile::<4>(a_rows, b_s, k, n, i, j, out);
        j += 4;
    }
    for j in j..n {
        let mut s = [0.0f32; 4];
        for l in 0..k {
            let bv = b_s[l * n + j];
            for (sr, ar) in s.iter_mut().zip(a_rows) {
                *sr = ar[l].mul_add(bv, *sr);
            }
        }
        for (r, sr) in s.into_iter().enumerate() {
            out[(i + r) * n + j] = sr;
        }
    }
}

/// One 4 x T output tile of `A · B`: accumulates over the full shared
/// dimension in register-resident arrays, then stores each row once.
///
/// Accumulation is `mul_add` (one rounding per step) so the scalar tile is
/// bit-identical to the AVX2 `vfmadd` tile — both are the same l-ordered
/// fused chain per output element.
#[inline(always)]
fn mm_tile<const T: usize>(
    a_rows: [&[f32]; 4],
    b_s: &[f32],
    k: usize,
    n: usize,
    i: usize,
    j: usize,
    out: &mut [f32],
) {
    let mut acc = [[0.0f32; T]; 4];
    for l in 0..k {
        let brow: &[f32; T] = b_s[l * n + j..l * n + j + T]
            .try_into()
            .expect("tile width");
        for (accr, ar) in acc.iter_mut().zip(a_rows) {
            let c = ar[l];
            for (av, &bv) in accr.iter_mut().zip(brow) {
                *av = c.mul_add(bv, *av);
            }
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        out[(i + r) * n + j..(i + r) * n + j + T].copy_from_slice(accr);
    }
}

/// The hot 4 x 16 `A · B` tile, dispatched: explicit AVX2+FMA lanes when
/// the caller saw [`crate::kernels::simd_active`], scalar `mul_add`
/// otherwise. Both orders are identical, so the choice is invisible in the
/// output bits.
#[inline(always)]
fn mm_tile16(
    use_simd: bool,
    a_rows: [&[f32]; 4],
    b_s: &[f32],
    (k, n): (usize, usize),
    i: usize,
    j: usize,
    out: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if use_simd {
        // SAFETY: `use_simd` is only ever true after runtime AVX2+FMA
        // detection (kernels::simd_active / an explicit dispatch test).
        unsafe { mm_tile16_avx2(a_rows, b_s, k, n, i, j, out) };
        return;
    }
    let _ = use_simd;
    mm_tile::<16>(a_rows, b_s, k, n, i, j, out);
}

/// AVX2+FMA 4 x 16 tile: two ymm accumulators per row, one broadcast per
/// A element, `vfmadd231ps` over the shared dimension — the same fused
/// l-ordered chain as the scalar `mul_add` tile.
// SAFETY: caller must guarantee AVX2+FMA are present and that the tile
// `[i..i+4) x [j..j+16)` lies fully inside `out` (rows of length `n`),
// with `a_rows`/`b_s` covering the shared dimension `k`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn mm_tile16_avx2(
    a_rows: [&[f32]; 4],
    b_s: &[f32],
    k: usize,
    n: usize,
    i: usize,
    j: usize,
    out: &mut [f32],
) {
    use std::arch::x86_64::*;
    let mut acc = [[_mm256_setzero_ps(); 2]; 4];
    for l in 0..k {
        let p = b_s.as_ptr().add(l * n + j);
        let b0 = _mm256_loadu_ps(p);
        let b1 = _mm256_loadu_ps(p.add(8));
        for (accr, ar) in acc.iter_mut().zip(a_rows) {
            let c = _mm256_set1_ps(ar[l]);
            accr[0] = _mm256_fmadd_ps(c, b0, accr[0]);
            accr[1] = _mm256_fmadd_ps(c, b1, accr[1]);
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        let p = out.as_mut_ptr().add((i + r) * n + j);
        _mm256_storeu_ps(p, accr[0]);
        _mm256_storeu_ps(p.add(8), accr[1]);
    }
}

/// AVX-512 4 x 32 `A · B` tile: two zmm accumulators per row, one
/// broadcast per A element — the same fused l-ordered chain as the
/// scalar `mul_add` tile, so the wider registers are invisible in the
/// output bits.
// SAFETY: caller must guarantee AVX-512F is present and that the tile
// `[i..i+4) x [j..j+32)` lies fully inside `out` (rows of length `n`),
// with `a_rows`/`b_s` covering the shared dimension `k`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn mm_tile32_avx512(
    a_rows: [&[f32]; 4],
    b_s: &[f32],
    (k, n): (usize, usize),
    i: usize,
    j: usize,
    out: &mut [f32],
) {
    use std::arch::x86_64::*;
    let mut acc = [[_mm512_setzero_ps(); 2]; 4];
    for l in 0..k {
        let p = b_s.as_ptr().add(l * n + j);
        let b0 = _mm512_loadu_ps(p);
        let b1 = _mm512_loadu_ps(p.add(16));
        for (accr, ar) in acc.iter_mut().zip(a_rows) {
            let c = _mm512_set1_ps(ar[l]);
            accr[0] = _mm512_fmadd_ps(c, b0, accr[0]);
            accr[1] = _mm512_fmadd_ps(c, b1, accr[1]);
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        let p = out.as_mut_ptr().add((i + r) * n + j);
        _mm512_storeu_ps(p, accr[0]);
        _mm512_storeu_ps(p.add(16), accr[1]);
    }
}

/// AVX-512 8 x 32 `A · B` macro-block: 16 zmm accumulators (half the
/// register file) so each streamed B vector is reused across eight rows.
/// `first` selects zero-initialized accumulators (first k panel) vs.
/// resuming from `out` (later panels); both keep every per-element chain
/// identical to [`mm_tile32_avx512`] — only the number of rows in flight
/// and where the running sum parks between panels differ, neither of
/// which touches the arithmetic.
// SAFETY: caller must guarantee AVX-512F is present and that the block
// `[i..i+8) x [j..j+32)` lies fully inside `out` (rows of length `n`),
// with `a_rows`/`b_s` covering the shared (panel) dimension `k`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn mm_tile32x8_avx512(
    first: bool,
    a_rows: [&[f32]; 8],
    b_s: &[f32],
    (k, n): (usize, usize),
    i: usize,
    j: usize,
    out: &mut [f32],
) {
    use std::arch::x86_64::*;
    let mut acc = [[_mm512_setzero_ps(); 2]; 8];
    if !first {
        for (r, accr) in acc.iter_mut().enumerate() {
            let p = out.as_ptr().add((i + r) * n + j);
            accr[0] = _mm512_loadu_ps(p);
            accr[1] = _mm512_loadu_ps(p.add(16));
        }
    }
    for l in 0..k {
        let p = b_s.as_ptr().add(l * n + j);
        let b0 = _mm512_loadu_ps(p);
        let b1 = _mm512_loadu_ps(p.add(16));
        for (accr, ar) in acc.iter_mut().zip(a_rows) {
            let c = _mm512_set1_ps(ar[l]);
            accr[0] = _mm512_fmadd_ps(c, b0, accr[0]);
            accr[1] = _mm512_fmadd_ps(c, b1, accr[1]);
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        let p = out.as_mut_ptr().add((i + r) * n + j);
        _mm512_storeu_ps(p, accr[0]);
        _mm512_storeu_ps(p.add(16), accr[1]);
    }
}

/// `out = Aᵀ · B` where `A` is `k x m` and `B` is `k x n` (no explicit
/// transpose is materialized).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if row counts or the output buffer
/// size do not line up.
pub fn at_mul_b(a: MatrixRef<'_>, b: MatrixRef<'_>, out: &mut [f32]) -> Result<()> {
    at_mul_b_with_tile(active_tile(), a, b, out)
}

/// [`at_mul_b`] with the SIMD-tile dispatch pinned by the caller — see
/// [`matmul_with_dispatch`].
///
/// # Errors
///
/// Same shape errors as [`at_mul_b`].
#[doc(hidden)]
pub fn at_mul_b_with_dispatch(
    use_simd: bool,
    a: MatrixRef<'_>,
    b: MatrixRef<'_>,
    out: &mut [f32],
) -> Result<()> {
    let tile = if use_simd {
        crate::autotune::best_supported_tile()
    } else {
        GemmTile::Scalar
    };
    at_mul_b_with_tile(tile, a, b, out)
}

/// [`at_mul_b`] with an explicit register tile — see [`matmul_with_tile`]
/// for the caller contract.
///
/// # Errors
///
/// Same shape errors as [`at_mul_b`].
#[doc(hidden)]
pub fn at_mul_b_with_tile(
    tile: GemmTile,
    a: MatrixRef<'_>,
    b: MatrixRef<'_>,
    out: &mut [f32],
) -> Result<()> {
    if a.rows() != b.rows() {
        return Err(TensorError::ShapeMismatch {
            expected: format!("shared rows {}", a.rows()),
            actual: format!("shared rows {}", b.rows()),
        });
    }
    check_out(out, a.cols(), b.cols())?;
    let (k, m, n) = (a.rows(), a.cols(), b.cols());
    atb_rows(tile, a.as_slice(), b.as_slice(), (k, m, n), 0, m, out);
    Ok(())
}

/// Output rows `[i0, i1)` of `Aᵀ · B` into `out_band` (`(i1 - i0) x n`).
///
/// Row `i` of the output is a function of A column `i` and all of B only,
/// and every element is accumulated as an l-ordered FMA chain in both the
/// tiled and remainder paths below, so computing a band in isolation is
/// bit-identical to the same rows of the full product — the property the
/// pooled variant relies on.
fn atb_rows(
    tile: GemmTile,
    a_s: &[f32],
    b_s: &[f32],
    (k, m, n): (usize, usize, usize),
    i0: usize,
    i1: usize,
    out_band: &mut [f32],
) {
    // Same register tiling as [`matmul`]: both A and B are streamed
    // row-major over the shared dimension while a 4 x T accumulator tile
    // stays in registers, so `out_band` is stored exactly once per element.
    let mut i = i0;
    while i + 4 <= i1 {
        let mut j = 0;
        #[cfg(target_arch = "x86_64")]
        if tile == GemmTile::Avx512x32 {
            while j + 32 <= n {
                // SAFETY: the `Avx512x32` tile is only handed out after
                // runtime AVX-512F detection; tile bounds are maintained
                // by the loop.
                unsafe { atb_tile32_avx512(a_s, b_s, (k, m, n), (i, i - i0, j), out_band) };
                j += 32;
            }
        }
        while j + 16 <= n {
            atb_tile16(
                tile.uses_simd(),
                a_s,
                b_s,
                (k, m, n),
                (i, i - i0, j),
                out_band,
            );
            j += 16;
        }
        while j + 4 <= n {
            atb_tile::<4>(a_s, b_s, (k, m, n), i, i - i0, j, out_band);
            j += 4;
        }
        for j in j..n {
            let mut s = [0.0f32; 4];
            for l in 0..k {
                let av: &[f32; 4] = a_s[l * m + i..l * m + i + 4].try_into().expect("row block");
                let bv = b_s[l * n + j];
                for (sr, &ar) in s.iter_mut().zip(av) {
                    *sr = ar.mul_add(bv, *sr);
                }
            }
            for (r, sr) in s.into_iter().enumerate() {
                out_band[(i - i0 + r) * n + j] = sr;
            }
        }
        i += 4;
    }
    // Remainder rows stream l-outer over zeroed output rows.
    if i < i1 {
        out_band[(i - i0) * n..].fill(0.0);
        for l in 0..k {
            let brow = &b_s[l * n..(l + 1) * n];
            for r in i..i1 {
                let av = a_s[l * m + r];
                let orow = &mut out_band[(r - i0) * n..(r - i0 + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o = av.mul_add(bv, *o);
                }
            }
        }
    }
}

/// One 4 x T output tile of `Aᵀ · B` (`A` stored `k x m`): accumulates over
/// the shared dimension in registers, then stores each row once.  `i` is
/// the absolute A column of the tile's first row; `oi` is the row it lands
/// on inside `out` (they differ when computing a band).
#[inline(always)]
fn atb_tile<const T: usize>(
    a_s: &[f32],
    b_s: &[f32],
    (k, m, n): (usize, usize, usize),
    i: usize,
    oi: usize,
    j: usize,
    out: &mut [f32],
) {
    let mut acc = [[0.0f32; T]; 4];
    for l in 0..k {
        let av: &[f32; 4] = a_s[l * m + i..l * m + i + 4].try_into().expect("row block");
        let brow: &[f32; T] = b_s[l * n + j..l * n + j + T]
            .try_into()
            .expect("tile width");
        for (accr, &c) in acc.iter_mut().zip(av) {
            for (accv, &bv) in accr.iter_mut().zip(brow) {
                *accv = c.mul_add(bv, *accv);
            }
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        out[(oi + r) * n + j..(oi + r) * n + j + T].copy_from_slice(accr);
    }
}

/// The hot 4 x 16 `Aᵀ · B` tile, dispatched like [`mm_tile16`].
/// `(i, oi, j)` are the absolute A column, the output-band row, and the
/// output column of the tile corner.
#[inline(always)]
fn atb_tile16(
    use_simd: bool,
    a_s: &[f32],
    b_s: &[f32],
    (k, m, n): (usize, usize, usize),
    (i, oi, j): (usize, usize, usize),
    out: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if use_simd {
        // SAFETY: `use_simd` is only ever true after runtime AVX2+FMA
        // detection (kernels::simd_active / an explicit dispatch test).
        unsafe { atb_tile16_avx2(a_s, b_s, (k, m, n), (i, oi, j), out) };
        return;
    }
    let _ = use_simd;
    atb_tile::<16>(a_s, b_s, (k, m, n), i, oi, j, out);
}

/// AVX2+FMA 4 x 16 `Aᵀ · B` tile — same fused l-ordered chain as the
/// scalar `mul_add` tile.
// SAFETY: caller must guarantee AVX2+FMA are present and that the tile
// `[oi..oi+4) x [j..j+16)` lies fully inside `out` (rows of length `n`),
// with column block `i..i+4` valid in `a_s` (rows of length `m`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn atb_tile16_avx2(
    a_s: &[f32],
    b_s: &[f32],
    (k, m, n): (usize, usize, usize),
    (i, oi, j): (usize, usize, usize),
    out: &mut [f32],
) {
    use std::arch::x86_64::*;
    let mut acc = [[_mm256_setzero_ps(); 2]; 4];
    for l in 0..k {
        let ap = a_s.as_ptr().add(l * m + i);
        let bp = b_s.as_ptr().add(l * n + j);
        let b0 = _mm256_loadu_ps(bp);
        let b1 = _mm256_loadu_ps(bp.add(8));
        for (r, accr) in acc.iter_mut().enumerate() {
            let c = _mm256_set1_ps(*ap.add(r));
            accr[0] = _mm256_fmadd_ps(c, b0, accr[0]);
            accr[1] = _mm256_fmadd_ps(c, b1, accr[1]);
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        let p = out.as_mut_ptr().add((oi + r) * n + j);
        _mm256_storeu_ps(p, accr[0]);
        _mm256_storeu_ps(p.add(8), accr[1]);
    }
}

/// AVX-512 4 x 32 `Aᵀ · B` tile — same fused l-ordered chain as the
/// scalar `mul_add` tile.
// SAFETY: caller must guarantee AVX-512F is present and that the tile
// `[oi..oi+4) x [j..j+32)` lies fully inside `out` (rows of length `n`),
// with column block `i..i+4` valid in `a_s` (rows of length `m`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn atb_tile32_avx512(
    a_s: &[f32],
    b_s: &[f32],
    (k, m, n): (usize, usize, usize),
    (i, oi, j): (usize, usize, usize),
    out: &mut [f32],
) {
    use std::arch::x86_64::*;
    let mut acc = [[_mm512_setzero_ps(); 2]; 4];
    for l in 0..k {
        let ap = a_s.as_ptr().add(l * m + i);
        let bp = b_s.as_ptr().add(l * n + j);
        let b0 = _mm512_loadu_ps(bp);
        let b1 = _mm512_loadu_ps(bp.add(16));
        for (r, accr) in acc.iter_mut().enumerate() {
            let c = _mm512_set1_ps(*ap.add(r));
            accr[0] = _mm512_fmadd_ps(c, b0, accr[0]);
            accr[1] = _mm512_fmadd_ps(c, b1, accr[1]);
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        let p = out.as_mut_ptr().add((oi + r) * n + j);
        _mm512_storeu_ps(p, accr[0]);
        _mm512_storeu_ps(p.add(16), accr[1]);
    }
}

/// `out = A · Bᵀ` where `A` is `m x k` and `B` is `n x k`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if column counts or the output
/// buffer size do not line up.
pub fn a_mul_bt(a: MatrixRef<'_>, b: MatrixRef<'_>, out: &mut [f32]) -> Result<()> {
    if a.cols() != b.cols() {
        return Err(TensorError::ShapeMismatch {
            expected: format!("shared cols {}", a.cols()),
            actual: format!("shared cols {}", b.cols()),
        });
    }
    check_out(out, a.rows(), b.rows())?;
    let (m, k, n) = (a.rows(), a.cols(), b.rows());
    let a_s = a.as_slice();
    let b_s = b.as_slice();
    // Four independent dot-product accumulators per A row: each loaded A
    // element multiplies against four B rows at once. The shared dimension
    // k is the PowerSGD rank (small), so all four B rows stay in cache.
    for i in 0..m {
        let arow = &a_s[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        let mut j = 0;
        while j + 4 <= n {
            let b0 = &b_s[j * k..(j + 1) * k];
            let b1 = &b_s[(j + 1) * k..(j + 2) * k];
            let b2 = &b_s[(j + 2) * k..(j + 3) * k];
            let b3 = &b_s[(j + 3) * k..(j + 4) * k];
            let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            for (l, &av) in arow.iter().enumerate() {
                s0 += av * b0[l];
                s1 += av * b1[l];
                s2 += av * b2[l];
                s3 += av * b3[l];
            }
            orow[j] = s0;
            orow[j + 1] = s1;
            orow[j + 2] = s2;
            orow[j + 3] = s3;
            j += 4;
        }
        for j in j..n {
            let brow = &b_s[j * k..(j + 1) * k];
            orow[j] = arow.iter().zip(brow).map(|(x, y)| x * y).sum();
        }
    }
    Ok(())
}

/// Minimum FMAs a band must amortize before forking is worth ~10 µs of
/// scoped-spawn overhead.
const MIN_BAND_FLOPS: usize = 1 << 16;

/// Rows per band so that each band performs at least [`MIN_BAND_FLOPS`]
/// multiply-adds (`row_cost` = FMAs per output row).
fn band_rows(row_cost: usize) -> usize {
    MIN_BAND_FLOPS.div_ceil(row_cost.max(1))
}

/// [`matmul`] with output rows banded across `pool`.
///
/// Row `i` of `A · B` depends only on row `i` of A, so each band is a
/// complete `matmul` of an A sub-view — the per-element FMA order is
/// unchanged and the result is **bit-identical** to the serial kernel.
///
/// # Errors
///
/// Same shape errors as [`matmul`].
pub fn matmul_pooled(
    pool: &crate::pool::Pool,
    a: MatrixRef<'_>,
    b: MatrixRef<'_>,
    out: &mut [f32],
) -> Result<()> {
    if a.cols() != b.rows() {
        return Err(TensorError::ShapeMismatch {
            expected: format!("inner dim {}", a.cols()),
            actual: format!("inner dim {}", b.rows()),
        });
    }
    check_out(out, a.rows(), b.cols())?;
    let (k, n) = (a.cols(), b.cols());
    let a_s = a.as_slice();
    pool.for_rows(out, n, band_rows(k * n), |row_lo, band| {
        let rows = band.len() / n;
        let sub =
            MatrixRef::new(&a_s[row_lo * k..(row_lo + rows) * k], rows, k).expect("band sub-view");
        matmul(sub, b, band).expect("validated dims");
    });
    Ok(())
}

/// [`at_mul_b`] with output rows banded across `pool`.
///
/// Output row `i` comes from A *column* `i` (not contiguous in A), so the
/// bands run the shared [`atb_rows`] kernel over `[i0, i1)` directly;
/// per-element FMA order is unchanged → bit-identical to the serial
/// kernel.
///
/// # Errors
///
/// Same shape errors as [`at_mul_b`].
pub fn at_mul_b_pooled(
    pool: &crate::pool::Pool,
    a: MatrixRef<'_>,
    b: MatrixRef<'_>,
    out: &mut [f32],
) -> Result<()> {
    if a.rows() != b.rows() {
        return Err(TensorError::ShapeMismatch {
            expected: format!("shared rows {}", a.rows()),
            actual: format!("shared rows {}", b.rows()),
        });
    }
    check_out(out, a.cols(), b.cols())?;
    let (k, m, n) = (a.rows(), a.cols(), b.cols());
    let a_s = a.as_slice();
    let b_s = b.as_slice();
    let tile = active_tile();
    pool.for_rows(out, n, band_rows(k * n), |row_lo, band| {
        let rows = band.len() / n;
        atb_rows(tile, a_s, b_s, (k, m, n), row_lo, row_lo + rows, band);
    });
    Ok(())
}

/// [`a_mul_bt`] with output rows banded across `pool`.
///
/// Row `i` of `A · Bᵀ` depends only on row `i` of A; each band is a
/// complete `a_mul_bt` of an A sub-view, bit-identical to the serial
/// kernel.
///
/// # Errors
///
/// Same shape errors as [`a_mul_bt`].
pub fn a_mul_bt_pooled(
    pool: &crate::pool::Pool,
    a: MatrixRef<'_>,
    b: MatrixRef<'_>,
    out: &mut [f32],
) -> Result<()> {
    if a.cols() != b.cols() {
        return Err(TensorError::ShapeMismatch {
            expected: format!("shared cols {}", a.cols()),
            actual: format!("shared cols {}", b.cols()),
        });
    }
    check_out(out, a.rows(), b.rows())?;
    let (k, n) = (a.cols(), b.rows());
    let a_s = a.as_slice();
    pool.for_rows(out, n, band_rows(k * n), |row_lo, band| {
        let rows = band.len() / n;
        let sub =
            MatrixRef::new(&a_s[row_lo * k..(row_lo + rows) * k], rows, k).expect("band sub-view");
        a_mul_bt(sub, b, band).expect("validated dims");
    });
    Ok(())
}

/// Orthonormalizes the columns of an `rows x cols` row-major matrix in place
/// using modified Gram–Schmidt — the same `orthogonalize` step PowerSGD
/// applies to `P` between the two matmuls of a power iteration.
///
/// Columns that become numerically zero (norm < 1e-12) are replaced by a
/// deterministic pseudo-random unit direction re-orthogonalized against the
/// previous columns, so the result always has orthonormal columns.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `m.len() != rows * cols`.
pub fn orthonormalize_columns(m: &mut [f32], rows: usize, cols: usize) -> Result<()> {
    check_out(m, rows, cols)?;
    for c in 0..cols {
        let pre_norm = (0..rows)
            .map(|r| m[r * cols + c] * m[r * cols + c])
            .sum::<f32>()
            .sqrt();
        // Subtract projections on previous columns.
        for prev in 0..c {
            let mut dot = 0.0f32;
            for r in 0..rows {
                dot += m[r * cols + c] * m[r * cols + prev];
            }
            for r in 0..rows {
                m[r * cols + c] -= dot * m[r * cols + prev];
            }
        }
        let mut norm = (0..rows)
            .map(|r| m[r * cols + c] * m[r * cols + c])
            .sum::<f32>()
            .sqrt();
        // Degenerate when the residual is swamped by f32 cancellation noise
        // relative to the column's original magnitude.
        if norm <= pre_norm * 1e-5 || norm < 1e-30 {
            // Degenerate column: replace with a deterministic direction and
            // re-orthogonalize once.
            for r in 0..rows {
                // Simple deterministic hash -> [-1, 1).
                let h = (r.wrapping_mul(2654435761).wrapping_add(c * 97) & 0xffff) as f32;
                m[r * cols + c] = h / 32768.0 - 1.0;
            }
            for prev in 0..c {
                let mut dot = 0.0f32;
                for r in 0..rows {
                    dot += m[r * cols + c] * m[r * cols + prev];
                }
                for r in 0..rows {
                    m[r * cols + c] -= dot * m[r * cols + prev];
                }
            }
            norm = (0..rows)
                .map(|r| m[r * cols + c] * m[r * cols + c])
                .sum::<f32>()
                .sqrt()
                .max(1e-12);
        }
        let inv = 1.0 / norm;
        for r in 0..rows {
            m[r * cols + c] *= inv;
        }
    }
    Ok(())
}

/// Result of a truncated SVD: `M ≈ U · diag(S) · Vᵀ`.
#[derive(Debug, Clone)]
pub struct TruncatedSvd {
    /// `rows x rank`, orthonormal columns.
    pub u: Vec<f32>,
    /// `rank` singular values, non-increasing.
    pub s: Vec<f32>,
    /// `cols x rank`, orthonormal columns (i.e. rows of Vᵀ stored
    /// column-major by singular vector).
    pub v: Vec<f32>,
    /// Number of retained singular triplets.
    pub rank: usize,
}

/// Computes a rank-`rank` truncated SVD of an `rows x cols` matrix by
/// subspace (block power) iteration.
///
/// This is the kernel ATOMO-style compressors need. `iters` controls the
/// number of subspace iterations; 8–15 is plenty for gradient matrices whose
/// spectra decay quickly.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `m.len() != rows * cols`.
///
/// # Panics
///
/// Panics if `rank == 0`.
pub fn svd_truncated(
    m: &[f32],
    rows: usize,
    cols: usize,
    rank: usize,
    iters: usize,
) -> Result<TruncatedSvd> {
    assert!(rank > 0, "svd rank must be positive");
    let rank = rank.min(rows).min(cols);
    let a = MatrixRef::new(m, rows, cols)?;
    // Q: cols x rank, deterministic init.
    let mut q = Tensor::randn([cols, rank], 0x5eed_cafe).into_vec();
    orthonormalize_columns(&mut q, cols, rank)?;
    let mut p = vec![0.0f32; rows * rank];
    for _ in 0..iters.max(1) {
        // P = A Q
        matmul(a, MatrixRef::new(&q, cols, rank)?, &mut p)?;
        orthonormalize_columns(&mut p, rows, rank)?;
        // Q = Aᵀ P
        at_mul_b(a, MatrixRef::new(&p, rows, rank)?, &mut q)?;
        orthonormalize_columns(&mut q, cols, rank)?;
    }
    // Final sweep: P = A Q gives (non-orthogonal) U * diag(S) estimate.
    matmul(a, MatrixRef::new(&q, cols, rank)?, &mut p)?;
    // Column norms of P are the singular value estimates.
    let mut s = vec![0.0f32; rank];
    for c in 0..rank {
        let norm: f32 = (0..rows)
            .map(|r| p[r * rank + c] * p[r * rank + c])
            .sum::<f32>()
            .sqrt();
        s[c] = norm;
        let inv = if norm > 1e-12 { 1.0 / norm } else { 0.0 };
        for r in 0..rows {
            p[r * rank + c] *= inv;
        }
    }
    // Sort triplets by singular value, descending.
    let mut order: Vec<usize> = (0..rank).collect();
    order.sort_by(|&i, &j| s[j].total_cmp(&s[i]));
    let mut u = vec![0.0f32; rows * rank];
    let mut v = vec![0.0f32; cols * rank];
    let mut s_sorted = vec![0.0f32; rank];
    for (new_c, &old_c) in order.iter().enumerate() {
        s_sorted[new_c] = s[old_c];
        for r in 0..rows {
            u[r * rank + new_c] = p[r * rank + old_c];
        }
        for r in 0..cols {
            v[r * rank + new_c] = q[r * rank + old_c];
        }
    }
    Ok(TruncatedSvd {
        u,
        s: s_sorted,
        v,
        rank,
    })
}

impl TruncatedSvd {
    /// Reconstructs the rank-`rank` approximation `U · diag(S) · Vᵀ` into a
    /// `rows x cols` buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `out.len() != rows * cols`.
    pub fn reconstruct(&self, rows: usize, cols: usize, out: &mut [f32]) -> Result<()> {
        check_out(out, rows, cols)?;
        // Scale U columns by S, then multiply by Vᵀ.
        let mut us = self.u.clone();
        for r in 0..rows {
            for c in 0..self.rank {
                us[r * self.rank + c] *= self.s[c];
            }
        }
        a_mul_bt(
            MatrixRef::new(&us, rows, self.rank)?,
            MatrixRef::new(&self.v, cols, self.rank)?,
            out,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx_eq(a: &[f32], b: &[f32], tol: f32) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < tol)
    }

    #[test]
    fn matmul_small() {
        // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut out = [0.0; 4];
        matmul(
            MatrixRef::new(&a, 2, 2).unwrap(),
            MatrixRef::new(&b, 2, 2).unwrap(),
            &mut out,
        )
        .unwrap();
        assert_eq!(out, [19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_dimension_errors() {
        let a = [0.0; 6];
        let b = [0.0; 6];
        let mut out = [0.0; 4];
        assert!(matmul(
            MatrixRef::new(&a, 2, 3).unwrap(),
            MatrixRef::new(&b, 2, 3).unwrap(),
            &mut out
        )
        .is_err());
    }

    #[test]
    fn transpose_variants_agree_with_explicit_transpose() {
        let a = Tensor::randn([4, 3], 1).into_vec();
        let b = Tensor::randn([4, 5], 2).into_vec();
        // at_mul_b: (3x4)·(4x5) = 3x5
        let mut out1 = vec![0.0; 15];
        at_mul_b(
            MatrixRef::new(&a, 4, 3).unwrap(),
            MatrixRef::new(&b, 4, 5).unwrap(),
            &mut out1,
        )
        .unwrap();
        // Explicit transpose then matmul.
        let mut at = vec![0.0; 12];
        for r in 0..4 {
            for c in 0..3 {
                at[c * 4 + r] = a[r * 3 + c];
            }
        }
        let mut out2 = vec![0.0; 15];
        matmul(
            MatrixRef::new(&at, 3, 4).unwrap(),
            MatrixRef::new(&b, 4, 5).unwrap(),
            &mut out2,
        )
        .unwrap();
        assert!(approx_eq(&out1, &out2, 1e-4));
    }

    #[test]
    fn a_mul_bt_agrees() {
        let a = Tensor::randn([2, 6], 3).into_vec();
        let b = Tensor::randn([4, 6], 4).into_vec();
        let mut out1 = vec![0.0; 8];
        a_mul_bt(
            MatrixRef::new(&a, 2, 6).unwrap(),
            MatrixRef::new(&b, 4, 6).unwrap(),
            &mut out1,
        )
        .unwrap();
        let mut bt = vec![0.0; 24];
        for r in 0..4 {
            for c in 0..6 {
                bt[c * 4 + r] = b[r * 6 + c];
            }
        }
        let mut out2 = vec![0.0; 8];
        matmul(
            MatrixRef::new(&a, 2, 6).unwrap(),
            MatrixRef::new(&bt, 6, 4).unwrap(),
            &mut out2,
        )
        .unwrap();
        assert!(approx_eq(&out1, &out2, 1e-4));
    }

    #[test]
    fn gram_schmidt_produces_orthonormal_columns() {
        let mut m = Tensor::randn([20, 4], 9).into_vec();
        orthonormalize_columns(&mut m, 20, 4).unwrap();
        for c1 in 0..4 {
            for c2 in 0..4 {
                let dot: f32 = (0..20).map(|r| m[r * 4 + c1] * m[r * 4 + c2]).sum();
                let expected = if c1 == c2 { 1.0 } else { 0.0 };
                assert!((dot - expected).abs() < 1e-4, "col {c1}.{c2} dot={dot}");
            }
        }
    }

    #[test]
    fn gram_schmidt_handles_dependent_columns() {
        // Two identical columns: second must be replaced, not NaN.
        let mut m = vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0];
        orthonormalize_columns(&mut m, 3, 2).unwrap();
        assert!(m.iter().all(|x| x.is_finite()));
        let dot: f32 = (0..3).map(|r| m[r * 2] * m[r * 2 + 1]).sum();
        assert!(dot.abs() < 1e-4);
    }

    #[test]
    fn svd_recovers_low_rank_matrix_exactly() {
        // Build an exactly rank-2 matrix M = u1 v1ᵀ * 5 + u2 v2ᵀ * 2.
        let rows = 16;
        let cols = 24;
        let u = Tensor::randn([rows, 2], 11).into_vec();
        let v = Tensor::randn([cols, 2], 12).into_vec();
        let mut m = vec![0.0f32; rows * cols];
        for r in 0..rows {
            for c in 0..cols {
                m[r * cols + c] = 5.0 * u[r * 2] * v[c * 2] + 2.0 * u[r * 2 + 1] * v[c * 2 + 1];
            }
        }
        let svd = svd_truncated(&m, rows, cols, 2, 20).unwrap();
        let mut rec = vec![0.0f32; rows * cols];
        svd.reconstruct(rows, cols, &mut rec).unwrap();
        let err: f32 = m
            .iter()
            .zip(&rec)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt();
        let norm: f32 = m.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!(err / norm < 1e-2, "relative error {}", err / norm);
    }

    #[test]
    fn svd_singular_values_descend() {
        let m = Tensor::randn([30, 20], 13).into_vec();
        let svd = svd_truncated(&m, 30, 20, 5, 15).unwrap();
        for w in svd.s.windows(2) {
            assert!(
                w[0] >= w[1] - 1e-4,
                "singular values not sorted: {:?}",
                svd.s
            );
        }
    }

    #[test]
    fn svd_rank_clamped_to_min_dim() {
        let m = Tensor::randn([3, 8], 14).into_vec();
        let svd = svd_truncated(&m, 3, 8, 10, 10).unwrap();
        assert_eq!(svd.rank, 3);
    }

    #[test]
    fn pooled_kernels_are_bit_identical_to_serial() {
        use crate::pool::Pool;
        let pool = Pool::new(3);
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        // The large case actually fans out (row cost k*n = 64 FMAs, so
        // bands of ~1024 rows → 3 bands at width 3); the odd small sizes
        // run inline but exercise the remainder paths of the sub-view
        // kernels.
        for (m, k, n) in [
            (4099usize, 4usize, 16usize),
            (33, 4, 29),
            (8, 8, 8),
            (5, 3, 2),
            (70, 6, 1),
        ] {
            let a = Tensor::randn([m, k], (m * 31 + n) as u64).into_vec();
            let b = Tensor::randn([k, n], (k * 7 + n) as u64).into_vec();
            let mut serial = vec![0.0f32; m * n];
            let mut pooled = vec![0.0f32; m * n];
            matmul(
                MatrixRef::new(&a, m, k).unwrap(),
                MatrixRef::new(&b, k, n).unwrap(),
                &mut serial,
            )
            .unwrap();
            matmul_pooled(
                &pool,
                MatrixRef::new(&a, m, k).unwrap(),
                MatrixRef::new(&b, k, n).unwrap(),
                &mut pooled,
            )
            .unwrap();
            assert_eq!(bits(&serial), bits(&pooled), "matmul {m}x{k}x{n}");

            // Aᵀ·B: A is k x m (shared dim first).
            let at = Tensor::randn([k, m], (m + 977) as u64).into_vec();
            let mut serial2 = vec![0.0f32; m * n];
            let mut pooled2 = vec![0.0f32; m * n];
            at_mul_b(
                MatrixRef::new(&at, k, m).unwrap(),
                MatrixRef::new(&b, k, n).unwrap(),
                &mut serial2,
            )
            .unwrap();
            at_mul_b_pooled(
                &pool,
                MatrixRef::new(&at, k, m).unwrap(),
                MatrixRef::new(&b, k, n).unwrap(),
                &mut pooled2,
            )
            .unwrap();
            assert_eq!(bits(&serial2), bits(&pooled2), "at_mul_b {m}x{k}x{n}");

            // A·Bᵀ: B is n x k.
            let bt = Tensor::randn([n, k], (n + 55) as u64).into_vec();
            let mut serial3 = vec![0.0f32; m * n];
            let mut pooled3 = vec![0.0f32; m * n];
            a_mul_bt(
                MatrixRef::new(&a, m, k).unwrap(),
                MatrixRef::new(&bt, n, k).unwrap(),
                &mut serial3,
            )
            .unwrap();
            a_mul_bt_pooled(
                &pool,
                MatrixRef::new(&a, m, k).unwrap(),
                MatrixRef::new(&bt, n, k).unwrap(),
                &mut pooled3,
            )
            .unwrap();
            assert_eq!(bits(&serial3), bits(&pooled3), "a_mul_bt {m}x{k}x{n}");
        }
    }

    #[test]
    fn pooled_kernels_validate_shapes() {
        use crate::pool::Pool;
        let pool = Pool::new(2);
        let a = [0.0f32; 6];
        let b = [0.0f32; 6];
        let mut out = [0.0f32; 4];
        assert!(matmul_pooled(
            &pool,
            MatrixRef::new(&a, 2, 3).unwrap(),
            MatrixRef::new(&b, 2, 3).unwrap(),
            &mut out
        )
        .is_err());
        assert!(at_mul_b_pooled(
            &pool,
            MatrixRef::new(&a, 2, 3).unwrap(),
            MatrixRef::new(&b, 3, 2).unwrap(),
            &mut out
        )
        .is_err());
        assert!(a_mul_bt_pooled(
            &pool,
            MatrixRef::new(&a, 2, 3).unwrap(),
            MatrixRef::new(&b, 3, 2).unwrap(),
            &mut out
        )
        .is_err());
    }

    #[test]
    fn matrixref_validates_len() {
        let d = [0.0; 5];
        assert!(MatrixRef::new(&d, 2, 3).is_err());
        assert!(MatrixRef::new(&d, 1, 5).is_ok());
    }
}
