//! Runtime autotuner for the kernel layer.
//!
//! Two knobs are worth measuring rather than hard-coding:
//!
//! * **GEMM tile shape** — the matmul j-loop can run the 4x32 AVX-512
//!   tile, the 4x16 AVX2 tile, or the scalar `mul_add` tile. All three
//!   produce bit-identical output (every element is the same l-ordered
//!   fused chain), so the choice is purely a performance question — and
//!   on some parts (e.g. client cores that downclock under 512-bit
//!   load) the widest tile is *not* the fastest.
//! * **Wire chunk size** — the pooled byte/float kernels split buffers
//!   into bands of at least this many elements; it bounds fork overhead
//!   and doubles as the cache-blocking unit for the streaming wire
//!   paths.
//!
//! The tuner benchmarks the supported candidates once at first use,
//! caches the decision in a process-wide [`OnceLock`], and persists it
//! to `results/autotune.json` (or `GCS_AUTOTUNE_CACHE`) so later runs on
//! the same machine skip the measurement. The cache records the CPU
//! model, kernel table, and pool width it was measured under and is
//! ignored on any mismatch.
//!
//! Knobs:
//!
//! * `GCS_NO_AUTOTUNE=1` — skip measurement *and* cache IO; use the
//!   widest supported tile and the default chunk size.
//! * `GCS_FORCE_SCALAR=1` — scalar tile, default chunk, no IO (the
//!   autotuner must not observe SIMD timings the dispatcher will never
//!   use).
//! * `GCS_AUTOTUNE_CACHE=<path>` — cache file location override.

use std::sync::OnceLock;
use std::time::Instant;

use crate::matrix::{self, MatrixRef};

/// Register-tile shape used by the matmul j-loops. Every tile computes
/// the identical l-ordered FMA chain per output element, so switching
/// tiles never changes output bits — only speed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GemmTile {
    /// Scalar `mul_add` tiles only.
    Scalar,
    /// 4x16 AVX2+FMA tile (two ymm accumulators per row).
    Avx2x16,
    /// 4x32 AVX-512 tile (two zmm accumulators per row).
    Avx512x32,
}

impl GemmTile {
    /// Stable identifier used in the cache file and bench metadata.
    pub fn name(self) -> &'static str {
        match self {
            GemmTile::Scalar => "scalar",
            GemmTile::Avx2x16 => "avx2x16",
            GemmTile::Avx512x32 => "avx512x32",
        }
    }

    /// Inverse of [`GemmTile::name`].
    pub fn from_name(name: &str) -> Option<GemmTile> {
        match name {
            "scalar" => Some(GemmTile::Scalar),
            "avx2x16" => Some(GemmTile::Avx2x16),
            "avx512x32" => Some(GemmTile::Avx512x32),
            _ => None,
        }
    }

    /// Whether this tile runs vector code (needs the matching runtime
    /// feature detection before use).
    pub fn uses_simd(self) -> bool {
        !matches!(self, GemmTile::Scalar)
    }
}

/// Default minimum elements per pooled wire band when no measurement is
/// available: 64 Ki floats = 256 KiB, comfortably above fork overhead.
pub const DEFAULT_WIRE_CHUNK: usize = 1 << 16;

/// The tuner's decision for this process.
#[derive(Clone, Debug)]
pub struct Choice {
    /// Tile the dispatched matmuls run when SIMD is active.
    pub gemm_tile: GemmTile,
    /// Minimum elements per band for the pooled wire kernels.
    pub wire_chunk_elems: usize,
    /// How the decision was reached: `"measured"`, `"cache"`,
    /// `"static-default"`, or `"forced-scalar"`.
    pub provenance: &'static str,
}

static CHOICE: OnceLock<Choice> = OnceLock::new();

/// The process-wide tuning decision, measuring (or loading the cache)
/// on first call.
pub fn choice() -> &'static Choice {
    CHOICE.get_or_init(resolve)
}

/// Widest tile the running CPU supports — the static fallback when
/// measurement is disabled, and the tile [`matrix::matmul_with_dispatch`]
/// pins when its caller asks for SIMD.
pub fn best_supported_tile() -> GemmTile {
    if crate::kernels::avx512_supported() {
        GemmTile::Avx512x32
    } else if crate::kernels::avx2_supported() {
        GemmTile::Avx2x16
    } else {
        GemmTile::Scalar
    }
}

/// Every tile the running CPU can execute, narrowest first.
pub fn supported_tiles() -> Vec<GemmTile> {
    let mut tiles = vec![GemmTile::Scalar];
    if crate::kernels::avx2_supported() {
        tiles.push(GemmTile::Avx2x16);
    }
    if crate::kernels::avx512_supported() {
        tiles.push(GemmTile::Avx512x32);
    }
    tiles
}

fn env_flag(name: &str) -> bool {
    std::env::var(name).is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true"))
}

fn resolve() -> Choice {
    if crate::kernels::force_scalar() {
        return Choice {
            gemm_tile: GemmTile::Scalar,
            wire_chunk_elems: DEFAULT_WIRE_CHUNK,
            provenance: "forced-scalar",
        };
    }
    if env_flag("GCS_NO_AUTOTUNE") {
        return Choice {
            gemm_tile: best_supported_tile(),
            wire_chunk_elems: DEFAULT_WIRE_CHUNK,
            provenance: "static-default",
        };
    }
    if let Some(rec) = cache_path().and_then(|p| load_cache(&p)) {
        return Choice {
            gemm_tile: rec.gemm_tile,
            wire_chunk_elems: rec.wire_chunk_elems,
            provenance: "cache",
        };
    }
    let (gemm_tile, wire_chunk_elems) = measure();
    if let Some(path) = cache_path() {
        let rec = CacheRecord {
            cpu_model: cpu_model(),
            kernel_table: crate::kernels::active().name.to_string(),
            threads: crate::pool::global().width(),
            gemm_tile,
            wire_chunk_elems,
        };
        store_cache(&path, &rec);
    }
    Choice {
        gemm_tile,
        wire_chunk_elems,
        provenance: "measured",
    }
}

// ---------------------------------------------------------------------------
// Measurement
// ---------------------------------------------------------------------------

/// Deterministic pseudo-random fill so measurement inputs are stable
/// without touching the seeded experiment RNGs.
fn fill_pattern(buf: &mut [f32], mut seed: u32) {
    for v in buf {
        seed = seed.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
        *v = (seed >> 8) as f32 / (1 << 24) as f32 - 0.5;
    }
}

fn bench_ns(iters: usize, mut f: impl FnMut()) -> u128 {
    f(); // warm caches and page in buffers
    let mut best = u128::MAX;
    for _ in 0..iters {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_nanos());
    }
    best
}

/// Benchmark the supported GEMM tiles and the wire chunk candidates,
/// returning the fastest of each. A few tens of milliseconds, paid once
/// per process (or once per machine with the cache).
fn measure() -> (GemmTile, usize) {
    // GEMM: a PowerSGD-shaped product, n divisible by 32 so every tile
    // runs its full-width path.
    let (m, k, n) = (128, 384, 96);
    let mut a = vec![0.0f32; m * k];
    let mut b = vec![0.0f32; k * n];
    let mut out = vec![0.0f32; m * n];
    fill_pattern(&mut a, 1);
    fill_pattern(&mut b, 2);
    let av = MatrixRef::new(&a, m, k).expect("tuner shape");
    let bv = MatrixRef::new(&b, k, n).expect("tuner shape");
    let mut best_tile = (GemmTile::Scalar, u128::MAX);
    for tile in supported_tiles() {
        let ns = bench_ns(3, || {
            matrix::matmul_with_tile(tile, av, bv, &mut out).expect("tuner dims");
        });
        if ns < best_tile.1 {
            best_tile = (tile, ns);
        }
    }

    // Wire chunk: stream an out-of-cache buffer through the accumulate
    // kernel in chunks of each candidate size.
    let elems = 1 << 19;
    let mut xs = vec![0.0f32; elems];
    fill_pattern(&mut xs, 3);
    let mut bytes = vec![0u8; elems * 4];
    let mut best_chunk = (DEFAULT_WIRE_CHUNK, u128::MAX);
    for chunk in [1usize << 14, 1 << 16, 1 << 18] {
        let ns = bench_ns(2, || {
            for lo in (0..elems).step_by(chunk) {
                let hi = (lo + chunk).min(elems);
                crate::kernels::add_into_bytes(&xs[lo..hi], &mut bytes[lo * 4..hi * 4]);
            }
        });
        if ns < best_chunk.1 {
            best_chunk = (chunk, ns);
        }
    }
    (best_tile.0, best_chunk.0)
}

// ---------------------------------------------------------------------------
// Cache persistence (hand-rolled JSON — the tensor crate stays dep-free)
// ---------------------------------------------------------------------------

/// What the cache file records. A file measured under a different CPU,
/// kernel table, or pool width is stale and ignored.
#[derive(Clone, Debug, PartialEq, Eq)]
struct CacheRecord {
    cpu_model: String,
    kernel_table: String,
    threads: usize,
    gemm_tile: GemmTile,
    wire_chunk_elems: usize,
}

/// Cache location: the env override, else `results/autotune.json` when a
/// `results/` directory already exists in the working directory (so test
/// runs inside `crates/*` never scatter cache files), else nowhere.
fn cache_path() -> Option<std::path::PathBuf> {
    if let Ok(p) = std::env::var("GCS_AUTOTUNE_CACHE") {
        if !p.is_empty() {
            return Some(std::path::PathBuf::from(p));
        }
    }
    let dir = std::path::Path::new("results");
    dir.is_dir().then(|| dir.join("autotune.json"))
}

/// `model name` from `/proc/cpuinfo`, or `"unknown"` off Linux.
fn cpu_model() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|v| sanitize(v.trim()))
        })
        .unwrap_or_else(|| "unknown".to_string())
}

/// Strips characters that would break the naive JSON writer/parser.
fn sanitize(s: &str) -> String {
    s.chars()
        .filter(|c| !matches!(c, '"' | '\\' | ',' | '{' | '}' | '\n' | '\r'))
        .collect()
}

fn render_cache(rec: &CacheRecord) -> String {
    format!(
        "{{\n  \"version\": 1,\n  \"cpu_model\": \"{}\",\n  \"kernel_table\": \"{}\",\n  \
         \"threads\": {},\n  \"gemm_tile\": \"{}\",\n  \"wire_chunk_elems\": {}\n}}\n",
        sanitize(&rec.cpu_model),
        sanitize(&rec.kernel_table),
        rec.threads,
        rec.gemm_tile.name(),
        rec.wire_chunk_elems,
    )
}

/// Pulls the raw text of `"key": <value>` from a flat JSON object —
/// enough structure for the fixed shape [`render_cache`] writes.
fn field<'a>(text: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\"");
    let after = &text[text.find(&pat)? + pat.len()..];
    let val = after.trim_start().strip_prefix(':')?.trim_start();
    let end = val.find([',', '\n', '}']).unwrap_or(val.len());
    Some(val[..end].trim().trim_matches('"'))
}

fn parse_cache(text: &str) -> Option<CacheRecord> {
    if field(text, "version")? != "1" {
        return None;
    }
    let wire_chunk_elems: usize = field(text, "wire_chunk_elems")?.parse().ok()?;
    if !(1 << 10..=1 << 22).contains(&wire_chunk_elems) {
        return None;
    }
    Some(CacheRecord {
        cpu_model: field(text, "cpu_model")?.to_string(),
        kernel_table: field(text, "kernel_table")?.to_string(),
        threads: field(text, "threads")?.parse().ok()?,
        gemm_tile: GemmTile::from_name(field(text, "gemm_tile")?)?,
        wire_chunk_elems,
    })
}

/// Loads and validates the cache; any mismatch with the running machine
/// (CPU, kernel table, pool width, unsupported tile) discards it.
fn load_cache(path: &std::path::Path) -> Option<CacheRecord> {
    let rec = parse_cache(&std::fs::read_to_string(path).ok()?)?;
    let valid = rec.cpu_model == cpu_model()
        && rec.kernel_table == crate::kernels::active().name
        && rec.threads == crate::pool::global().width()
        && supported_tiles().contains(&rec.gemm_tile);
    valid.then_some(rec)
}

/// Best-effort atomic write (temp file + rename); concurrent test
/// binaries may race, but each writes a complete file.
fn store_cache(path: &std::path::Path, rec: &CacheRecord) {
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    if std::fs::write(&tmp, render_cache(rec)).is_ok() {
        let _ = std::fs::rename(&tmp, path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_names_round_trip() {
        for tile in [GemmTile::Scalar, GemmTile::Avx2x16, GemmTile::Avx512x32] {
            assert_eq!(GemmTile::from_name(tile.name()), Some(tile));
        }
        assert_eq!(GemmTile::from_name("avx1024x64"), None);
    }

    #[test]
    fn cache_round_trips_through_render_and_parse() {
        let rec = CacheRecord {
            cpu_model: "Engineering Sample @ 2.10GHz".to_string(),
            kernel_table: "avx512".to_string(),
            threads: 4,
            gemm_tile: GemmTile::Avx512x32,
            wire_chunk_elems: 1 << 16,
        };
        assert_eq!(parse_cache(&render_cache(&rec)).as_ref(), Some(&rec));
    }

    #[test]
    fn parse_rejects_garbage_and_bad_versions() {
        assert_eq!(parse_cache(""), None);
        assert_eq!(parse_cache("not json at all"), None);
        let rec = CacheRecord {
            cpu_model: "x".to_string(),
            kernel_table: "scalar".to_string(),
            threads: 1,
            gemm_tile: GemmTile::Scalar,
            wire_chunk_elems: 1 << 16,
        };
        let v2 = render_cache(&rec).replace("\"version\": 1", "\"version\": 2");
        assert_eq!(parse_cache(&v2), None);
        let wild = render_cache(&rec).replace(
            &format!("\"wire_chunk_elems\": {}", 1 << 16),
            "\"wire_chunk_elems\": 7",
        );
        assert_eq!(parse_cache(&wild), None, "implausible chunk rejected");
    }

    #[test]
    fn sanitizer_strips_structural_characters() {
        assert_eq!(sanitize("a\"b\\c,d{e}f\ng"), "abcdefg");
    }

    #[test]
    fn choice_is_computed_once_and_supported() {
        let c = choice();
        assert!(std::ptr::eq(c, choice()));
        assert!(supported_tiles().contains(&c.gemm_tile));
        assert!(c.wire_chunk_elems >= 1 << 10);
        if crate::kernels::force_scalar() {
            assert_eq!(c.gemm_tile, GemmTile::Scalar);
            assert_eq!(c.provenance, "forced-scalar");
        }
    }

    #[test]
    fn best_supported_tile_matches_kernel_tables() {
        let best = best_supported_tile();
        match crate::kernels::simd().map(|k| k.name) {
            Some("avx512") => assert_eq!(best, GemmTile::Avx512x32),
            Some("avx2") => assert_eq!(best, GemmTile::Avx2x16),
            _ => assert_eq!(best, GemmTile::Scalar),
        }
    }
}
