//! The §4 analytic performance model.
//!
//! Unlike the discrete-event simulator in `gcs_ddp::sim` (which plays out
//! bucket-by-bucket ready times), this module evaluates the paper's
//! closed-form expressions:
//!
//! * **syncSGD** (§4.1):
//!   `T_obs ≈ max(γ·T_comp, (k−1)·T_comm(b, p, BW)) + T_comm(b̂, p, BW)`
//!   where the model is split into `k` buckets, `k−1` of size `b` and a
//!   final bucket `b̂` that cannot be overlapped;
//! * **PowerSGD** (§4.2):
//!   `T_obs ≈ T_comp + T_encdec + T_comm(P) + T_comm(Q)`;
//! * **Top-K**: `T_obs ≈ T_comp + T_encdec + T_comm(ĝ) + T_comm(î)` with
//!   all-gather cost `ĝ(p−1)/BW`;
//! * **SignSGD**: `T_obs ≈ T_comp + T_encdec + T_comm(ĝ)` with all-gather
//!   cost and `ĝ = g/32`;
//! * every other catalogue method follows the generic compressed model
//!   with its own wire plan.
//!
//! Figure 8 of the paper validates this model against testbed
//! measurements; here the `study` module validates it against the event
//! simulator (median deviation asserted in tests).

use gcs_compress::registry::MethodConfig;
use gcs_ddp::sim::{AllReduceAlgo, SimConfig};
use gcs_ddp::wire::{wire_plan, Collective};
use gcs_models::buckets::partition;
use gcs_models::encode_cost::encode_cost;

/// Output of the analytic model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Backward-pass time `T_comp`.
    pub t_comp_s: f64,
    /// Encode/decode time (0 for syncSGD).
    pub t_encdec_s: f64,
    /// Communication term of the closed form.
    pub t_comm_s: f64,
    /// Predicted iteration time.
    pub total_s: f64,
}

fn comm_time(cfg: &SimConfig, bytes: usize, collective: Collective) -> f64 {
    match collective {
        Collective::AllReduce => match cfg.allreduce {
            AllReduceAlgo::Ring => cfg.network.ring_all_reduce(bytes, cfg.workers),
            AllReduceAlgo::DoubleTree => cfg.network.tree_all_reduce(bytes, cfg.workers),
        },
        Collective::AllGather => cfg.network.all_gather(bytes, cfg.workers),
    }
}

/// The paper's bucketed-overlap closed form:
/// `max(γ·T_comp + T_enc, (k−1)·T_comm(b·s)) + T_comm(b̂·s)` where `s`
/// scales bucket bytes (1 for syncSGD, ½ for the FP16 hook).
fn predict_bucketed(cfg: &SimConfig, t_comp: f64, byte_scale: f64, encode_s: f64) -> Prediction {
    let buckets = partition(&cfg.model, cfg.bucket_bytes);
    let k = buckets.len();
    let scaled = |bytes: usize| (bytes as f64 * byte_scale) as usize;
    let overlapped: f64 = buckets[..k - 1]
        .iter()
        .map(|b| comm_time(cfg, scaled(b.bytes), Collective::AllReduce))
        .sum();
    let last = comm_time(cfg, scaled(buckets[k - 1].bytes), Collective::AllReduce);
    let total = (cfg.device.gamma * t_comp + encode_s).max(overlapped) + last;
    Prediction {
        t_comp_s: t_comp,
        t_encdec_s: encode_s,
        t_comm_s: overlapped + last,
        total_s: total,
    }
}

/// Evaluates the closed-form §4 model for `cfg`.
pub fn predict_iteration(cfg: &SimConfig) -> Prediction {
    let t_comp = cfg.device.backward_seconds(&cfg.model, cfg.batch);
    if cfg.workers == 1 {
        return Prediction {
            t_comp_s: t_comp,
            t_encdec_s: 0.0,
            t_comm_s: 0.0,
            total_s: t_comp,
        };
    }
    match &cfg.method {
        MethodConfig::SyncSgd => predict_bucketed(cfg, t_comp, 1.0, 0.0),
        // FP16 uses the DDP bucket pipeline with half the bytes — the fp16
        // comm hook casts buckets in place and overlaps like syncSGD.
        MethodConfig::Fp16 => {
            let enc = encode_cost(&MethodConfig::Fp16, &cfg.model);
            let t_cast = cfg
                .device
                .scale_encode_seconds(enc.total_with_integration(cfg.workers));
            predict_bucketed(cfg, t_comp, 0.5, t_cast)
        }
        method => {
            let enc = encode_cost(method, &cfg.model);
            let t_encdec = cfg
                .device
                .scale_encode_seconds(enc.total_with_integration(cfg.workers));
            let plan = wire_plan(method, &cfg.model);
            let t_comm: f64 = plan
                .rounds
                .iter()
                .map(|r| comm_time(cfg, r.bytes, r.collective))
                .sum();
            let compute = if cfg.overlap_compression {
                cfg.device.compression_contention * (t_comp + t_encdec)
            } else {
                t_comp + t_encdec
            };
            Prediction {
                t_comp_s: t_comp,
                t_encdec_s: t_encdec,
                t_comm_s: t_comm,
                total_s: compute + t_comm,
            }
        }
    }
}

/// §4.2's *generic* compressed model with compression and communication
/// overlapped against the backward pass:
///
/// `T_obs ≈ max(γ·T_comp + T_encdec, (c−1)·T_comm(b, p, BW)) + T_comm(b̂, p, BW)`
///
/// This is the hypothetical best case the paper's formula admits —
/// §3.1 shows real GPUs cannot deliver it (compression contends with
/// backward) — so it serves as an *upper bound on what overlap could
/// ever buy* a compression scheme. The compressed payload is split into
/// `c` buckets of `cfg.bucket_bytes`; all but the last are assumed to
/// hide under compute. Payloads smaller than one bucket are streamed in 8
/// per-layer pipeline chunks.
pub fn predict_generic_overlapped(cfg: &SimConfig) -> Prediction {
    let t_comp = cfg.device.backward_seconds(&cfg.model, cfg.batch);
    if cfg.workers == 1 || matches!(cfg.method, MethodConfig::SyncSgd) {
        return predict_iteration(cfg);
    }
    let enc = encode_cost(&cfg.method, &cfg.model);
    let t_encdec = cfg
        .device
        .scale_encode_seconds(enc.total_with_integration(cfg.workers));
    let plan = wire_plan(&cfg.method, &cfg.model);
    // Split the compressed payload into c buckets; the collective of the
    // (single logical) round applies to each bucket.
    let total_bytes = plan.total_bytes();
    let collective = if plan.is_all_reducible() {
        Collective::AllReduce
    } else {
        Collective::AllGather
    };
    // At least 8 pipeline chunks so payloads smaller than one DDP bucket
    // can still stream against the backward pass (per-layer pipelining).
    let c = total_bytes.div_ceil(cfg.bucket_bytes).max(8);
    let bucket = total_bytes / c;
    let last = total_bytes - bucket * (c - 1);
    let overlapped: f64 = (0..c - 1).map(|_| comm_time(cfg, bucket, collective)).sum();
    let t_last = comm_time(cfg, last, collective);
    let compute = cfg.device.gamma * t_comp + t_encdec;
    let total = compute.max(overlapped) + t_last;
    Prediction {
        t_comp_s: t_comp,
        t_encdec_s: t_encdec,
        t_comm_s: overlapped + t_last,
        total_s: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_ddp::sim::simulate_iteration;
    use gcs_models::presets;

    #[test]
    fn single_worker_is_pure_compute() {
        let cfg = SimConfig::new(presets::resnet50(), 1);
        let p = predict_iteration(&cfg);
        assert_eq!(p.total_s, p.t_comp_s);
    }

    #[test]
    fn syncsgd_prediction_tracks_simulator_within_10pc() {
        // Figure 8a: median error 1.8% between model and measurement; our
        // "measurement" is the event simulator. Same order of fidelity.
        let mut errors = Vec::new();
        for model in presets::paper_models() {
            let batch = if model.name.starts_with("BERT") {
                12
            } else {
                64
            };
            for p in [8usize, 16, 32, 64, 96] {
                let cfg = SimConfig::new(model.clone(), p).batch_per_worker(batch);
                let predicted = predict_iteration(&cfg).total_s;
                let simulated = simulate_iteration(&cfg).total_s;
                errors.push(((predicted - simulated) / simulated).abs());
            }
        }
        let median = gcs_tensor::stats::median(&errors);
        assert!(median < 0.10, "median model-vs-sim deviation {median}");
    }

    #[test]
    fn compressed_predictions_match_simulator_exactly() {
        // For non-overlapped compressed methods the closed form and the
        // event simulator share the same structure, so they must agree to
        // numerical noise.
        for method in [
            MethodConfig::PowerSgd { rank: 4 },
            MethodConfig::TopK { ratio: 0.01 },
            MethodConfig::SignSgd,
        ] {
            let cfg = SimConfig::new(presets::resnet101(), 32).method(method.clone());
            let predicted = predict_iteration(&cfg).total_s;
            let simulated = simulate_iteration(&cfg).total_s;
            assert!(
                (predicted - simulated).abs() / simulated < 1e-9,
                "{method:?}: {predicted} vs {simulated}"
            );
        }
    }

    #[test]
    fn generic_overlap_saves_at_most_the_comm_and_costs_at_most_gamma() {
        // Overlap can hide at most the communication time, and its only
        // cost is the γ backward slowdown — so the overlapped prediction
        // is bracketed by [sequential − comm, sequential + (γ−1)·T_comp].
        for method in [
            MethodConfig::PowerSgd { rank: 4 },
            MethodConfig::TopK { ratio: 0.01 },
            MethodConfig::SignSgd,
        ] {
            let cfg = SimConfig::new(presets::resnet101(), 64).method(method.clone());
            let seq = predict_iteration(&cfg);
            let ovl = predict_generic_overlapped(&cfg).total_s;
            let gamma_cost = (cfg.device.gamma - 1.0) * seq.t_comp_s;
            assert!(
                ovl <= seq.total_s + gamma_cost + 1e-12,
                "{method:?}: {ovl} vs {} + γ {gamma_cost}",
                seq.total_s
            );
            assert!(
                ovl >= seq.total_s - seq.t_comm_s - 1e-12,
                "{method:?}: cannot hide more than comm"
            );
        }
        // For a comm-dominated method the hypothetical overlap is a real
        // win over sequential.
        let gather = SimConfig::new(presets::resnet101(), 96).method(MethodConfig::SignSgd);
        assert!(
            predict_generic_overlapped(&gather).total_s < predict_iteration(&gather).total_s,
            "overlap must help when communication dominates"
        );
    }

    #[test]
    fn even_free_overlap_does_not_save_topk() {
        // §5's strongest form: grant Top-K the perfect overlap §3.1 shows
        // is physically unavailable — it still loses to syncSGD, because
        // its encode time alone exceeds the opportunity window.
        for model in presets::paper_models() {
            let batch = if model.name.starts_with("BERT") {
                12
            } else {
                64
            };
            let sync =
                predict_iteration(&SimConfig::new(model.clone(), 64).batch_per_worker(batch))
                    .total_s;
            let topk = predict_generic_overlapped(
                &SimConfig::new(model.clone(), 64)
                    .batch_per_worker(batch)
                    .method(MethodConfig::TopK { ratio: 0.01 }),
            )
            .total_s;
            assert!(topk > sync, "{}: topk {topk} sync {sync}", model.name);
        }
    }

    #[test]
    fn fp16_halves_exposed_communication() {
        // Finding 1's mechanism: FP16 overlaps like syncSGD with half the
        // bytes, so in a comm-bound regime it cuts the iteration time.
        let model = presets::bert_base();
        let sync = predict_iteration(&SimConfig::new(model.clone(), 96).batch_per_worker(12));
        let fp16 = predict_iteration(
            &SimConfig::new(model, 96)
                .batch_per_worker(12)
                .method(MethodConfig::Fp16),
        );
        assert!(
            fp16.total_s < sync.total_s,
            "fp16 {} sync {}",
            fp16.total_s,
            sync.total_s
        );
        assert!(fp16.t_comm_s < 0.6 * sync.t_comm_s);
    }

    #[test]
    fn signsgd_model_matches_paper_formula() {
        // T_comm(ĝ) = ĝ(p−1)/BW with ĝ = g/32 (+ latency + sign scale
        // metadata, negligible here).
        let model = presets::resnet50();
        let cfg = SimConfig::new(model.clone(), 16).method(MethodConfig::SignSgd);
        let pred = predict_iteration(&cfg);
        let g_hat = model.size_bytes() as f64 / 32.0;
        let expected = g_hat * 15.0 / cfg.network.bandwidth + cfg.network.alpha * 15.0;
        assert!(
            (pred.t_comm_s - expected).abs() / expected < 0.02,
            "comm {} vs formula {expected}",
            pred.t_comm_s
        );
    }

    #[test]
    fn powersgd_pays_two_latency_terms() {
        // §4.2: PowerSGD sends P and Q separately — twice the α(p−1).
        let model = presets::resnet50();
        let p = 64usize;
        let cfg = SimConfig::new(model, p).method(MethodConfig::PowerSgd { rank: 4 });
        let pred = predict_iteration(&cfg);
        let latency_two_rounds = 2.0 * cfg.network.alpha * (p as f64 - 1.0);
        assert!(pred.t_comm_s > latency_two_rounds, "comm {}", pred.t_comm_s);
    }

    #[test]
    fn topk_comm_includes_values_and_indices() {
        // Top-K sends ĝ and î: equal byte counts, so the all-gather bytes
        // are 2 * k * 4.
        let model = presets::resnet50();
        let cfg = SimConfig::new(model.clone(), 8).method(MethodConfig::TopK { ratio: 0.01 });
        let pred = predict_iteration(&cfg);
        let k = (model.total_params() as f64 * 0.01).round();
        let bytes = 8.0 * k;
        let expected = bytes * 7.0 / cfg.network.bandwidth + cfg.network.alpha * 7.0;
        assert!(
            (pred.t_comm_s - expected).abs() / expected < 0.05,
            "comm {} vs {expected}",
            pred.t_comm_s
        );
    }
}
