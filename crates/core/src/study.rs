//! Scalability-study orchestration: the data behind Figures 4–8.

use crate::perf::predict_iteration;
use gcs_compress::registry::MethodConfig;
use gcs_ddp::sim::{measured_mean_std, SimConfig};
use gcs_models::ModelSpec;

/// One measured/modelled point of a scalability study.
#[derive(Debug, Clone, PartialEq)]
pub struct StudyRow {
    /// Model name.
    pub model: String,
    /// Method name (human readable).
    pub method: String,
    /// Worker (GPU) count.
    pub workers: usize,
    /// Per-worker batch size.
    pub batch: usize,
    /// Mean simulated ("measured") iteration time, seconds.
    pub measured_s: f64,
    /// Standard deviation of the simulated samples.
    pub std_s: f64,
    /// Analytic model prediction, seconds.
    pub predicted_s: f64,
}

impl StudyRow {
    /// |predicted − measured| / measured.
    pub fn model_error(&self) -> f64 {
        ((self.predicted_s - self.measured_s) / self.measured_s).abs()
    }
}

/// Configuration of a scalability study over worker counts × methods.
#[derive(Debug, Clone)]
pub struct Study {
    /// Model under test.
    pub model: ModelSpec,
    /// Per-worker batch size.
    pub batch: usize,
    /// Worker counts to sweep (the paper uses 8–96 in steps of 8 GPUs /
    /// 2 instances).
    pub worker_counts: Vec<usize>,
    /// Methods to compare (syncSGD is usually the first entry).
    pub methods: Vec<MethodConfig>,
    /// Iterations sampled per point (paper: 100 after 10 warm-up).
    pub iterations: usize,
    /// Jitter seed.
    pub seed: u64,
}

impl Study {
    /// A study with the paper's defaults: 100 sampled iterations, worker
    /// counts {8, 16, 24, 32, 48, 64, 96}.
    pub fn new(model: ModelSpec, batch: usize) -> Self {
        Study {
            model,
            batch,
            worker_counts: vec![8, 16, 24, 32, 48, 64, 96],
            methods: vec![MethodConfig::SyncSgd],
            iterations: 100,
            seed: 0x0005_70d7,
        }
    }

    /// Replaces the method list.
    pub fn methods(mut self, methods: Vec<MethodConfig>) -> Self {
        self.methods = methods;
        self
    }

    /// Replaces the worker counts.
    pub fn worker_counts(mut self, counts: Vec<usize>) -> Self {
        self.worker_counts = counts;
        self
    }

    /// Runs the study: one row per (method, worker count).
    pub fn run(&self) -> Vec<StudyRow> {
        let mut rows = Vec::new();
        for method in &self.methods {
            let method_name = method
                .build()
                .map(|c| c.properties().name)
                .unwrap_or_else(|_| format!("{method:?}"));
            for (i, &workers) in self.worker_counts.iter().enumerate() {
                let cfg = SimConfig::new(self.model.clone(), workers)
                    .batch_per_worker(self.batch)
                    .method(method.clone());
                let (mean, std) = measured_mean_std(
                    &cfg,
                    self.iterations,
                    self.seed.wrapping_add(i as u64 * 131),
                );
                let predicted = predict_iteration(&cfg).total_s;
                rows.push(StudyRow {
                    model: self.model.name.clone(),
                    method: method_name.clone(),
                    workers,
                    batch: self.batch,
                    measured_s: mean,
                    std_s: std,
                    predicted_s: predicted,
                });
            }
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_models::presets;

    #[test]
    fn study_produces_methods_times_counts_rows() {
        let rows = Study::new(presets::resnet50(), 64)
            .methods(vec![MethodConfig::SyncSgd, MethodConfig::SignSgd])
            .worker_counts(vec![8, 16])
            .run();
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| r.measured_s > 0.0 && r.std_s >= 0.0));
    }

    #[test]
    fn model_error_is_small_for_syncsgd() {
        // Figure 8a: median error 1.8%. Our jittered simulator should stay
        // within a few percent of the analytic model on average.
        let rows = Study::new(presets::resnet50(), 64)
            .worker_counts(vec![8, 32, 96])
            .run();
        let errors: Vec<f64> = rows.iter().map(StudyRow::model_error).collect();
        let median = gcs_tensor::stats::median(&errors);
        assert!(median < 0.10, "median error {median}");
    }

    #[test]
    fn figure4_shape_bert_powersgd_wins_resnet_loses() {
        let psgd = MethodConfig::PowerSgd { rank: 4 };
        let bert_rows = Study::new(presets::bert_base(), 12)
            .methods(vec![MethodConfig::SyncSgd, psgd.clone()])
            .worker_counts(vec![96])
            .run();
        assert!(
            bert_rows[1].measured_s < bert_rows[0].measured_s,
            "PowerSGD should win on BERT at 96 GPUs"
        );
        let r50_rows = Study::new(presets::resnet50(), 64)
            .methods(vec![MethodConfig::SyncSgd, psgd])
            .worker_counts(vec![96])
            .run();
        assert!(
            r50_rows[1].measured_s > r50_rows[0].measured_s,
            "PowerSGD should lose on ResNet-50 at batch 64"
        );
    }
}
