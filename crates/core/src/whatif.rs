//! §6 what-if analyses: the reason the performance model exists.
//!
//! "It becomes impossible to perform what-if analyses to study how does
//! the performance get affected under 100Gbps bandwidth or an 8× faster
//! GPU" — so the model answers instead. Three sweeps, one per figure:
//! bandwidth (Figure 11), compute speedup (Figure 12), and the
//! encode-time-vs-compression-ratio tradeoff (Figure 13).

use crate::perf::predict_iteration;
use gcs_cluster::cost::NetworkModel;
use gcs_compress::registry::MethodConfig;
use gcs_ddp::sim::SimConfig;
use gcs_ddp::wire::{wire_plan, Collective};
use gcs_models::encode_cost::encode_cost;
use gcs_models::{DeviceSpec, ModelSpec};

/// One point of a two-method comparison sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// The swept variable (Gbps, speedup factor, or `k`).
    pub x: f64,
    /// syncSGD iteration time at this point (seconds).
    pub sync_s: f64,
    /// Compressed-method iteration time at this point (seconds).
    pub method_s: f64,
}

impl SweepPoint {
    /// Speedup of the method over syncSGD (>1 means the method wins).
    pub fn speedup(&self) -> f64 {
        self.sync_s / self.method_s
    }
}

/// Figure 11: sweep network bandwidth and compare syncSGD with `method`.
///
/// # Panics
///
/// Panics if any bandwidth is non-positive.
pub fn bandwidth_sweep(
    model: &ModelSpec,
    device: &DeviceSpec,
    workers: usize,
    batch: usize,
    method: &MethodConfig,
    gbps: &[f64],
    alpha: f64,
) -> Vec<SweepPoint> {
    gbps.iter()
        .map(|&g| {
            let net = NetworkModel::from_gbps(alpha, g);
            let base = SimConfig::new(model.clone(), workers)
                .batch_per_worker(batch)
                .device(device.clone())
                .network(net);
            let sync = predict_iteration(&base).total_s;
            let comp = predict_iteration(&base.clone().method(method.clone())).total_s;
            SweepPoint {
                x: g,
                sync_s: sync,
                method_s: comp,
            }
        })
        .collect()
}

/// Figure 12: sweep compute speedup (bandwidth fixed) and compare syncSGD
/// with `method`. Encode/decode time scales down with compute, as the
/// paper assumes.
pub fn compute_sweep(
    model: &ModelSpec,
    network: &NetworkModel,
    workers: usize,
    batch: usize,
    method: &MethodConfig,
    speedups: &[f64],
) -> Vec<SweepPoint> {
    speedups
        .iter()
        .map(|&k| {
            let device = DeviceSpec::v100().with_speedup(k);
            let base = SimConfig::new(model.clone(), workers)
                .batch_per_worker(batch)
                .device(device)
                .network(*network);
            let sync = predict_iteration(&base).total_s;
            let comp = predict_iteration(&base.clone().method(method.clone())).total_s;
            SweepPoint {
                x: k,
                sync_s: sync,
                method_s: comp,
            }
        })
        .collect()
}

/// One point of the Figure 13 tradeoff grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TradeoffPoint {
    /// Encode-time reduction factor `k` (encode/decode runs `k`× faster).
    pub k: f64,
    /// Coupling factor `l`: shrinking encode time by `k` inflates the
    /// communicated bytes by `l·k`.
    pub l: f64,
    /// Iteration time of the hypothetical scheme (seconds).
    pub total_s: f64,
    /// Iteration time of the unmodified baseline scheme (seconds).
    pub baseline_s: f64,
}

/// Figure 13: hypothetical schemes derived from `base` (the paper uses
/// PowerSGD rank 4) where encode/decode time is divided by `k` and wire
/// bytes are multiplied by `l·k`. The paper's conclusion — "any reduction
/// in encode-decode time even at the expense of increased communication
/// helps" — falls out of the returned grid.
#[allow(clippy::too_many_arguments)] // mirrors the experiment's parameter grid
pub fn tradeoff_sweep(
    model: &ModelSpec,
    device: &DeviceSpec,
    network: &NetworkModel,
    workers: usize,
    batch: usize,
    base: &MethodConfig,
    ks: &[f64],
    ls: &[f64],
) -> Vec<TradeoffPoint> {
    let t_comp = device.backward_seconds(model, batch);
    let enc = encode_cost(base, model);
    let base_encdec = device.scale_encode_seconds(enc.total_with_integration(workers));
    let plan = wire_plan(base, model);
    let comm_of = |multiplier: f64| -> f64 {
        plan.rounds
            .iter()
            .map(|r| {
                let bytes = (r.bytes as f64 * multiplier) as usize;
                match r.collective {
                    Collective::AllReduce => network.ring_all_reduce(bytes, workers),
                    Collective::AllGather => network.all_gather(bytes, workers),
                }
            })
            .sum()
    };
    let baseline_s = t_comp + base_encdec + comm_of(1.0);
    let mut out = Vec::with_capacity(ks.len() * ls.len());
    for &k in ks {
        for &l in ls {
            let total = t_comp + base_encdec / k + comm_of(l * k);
            out.push(TradeoffPoint {
                k,
                l,
                total_s: total,
                baseline_s,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_models::presets;

    const ALPHA: f64 = 15e-6;

    #[test]
    fn resnet50_crossover_near_9gbps() {
        // Figure 11: PowerSGD rank 4 wins at low bandwidth, loses above
        // ~9 Gbps for ResNet-50.
        let pts = bandwidth_sweep(
            &presets::resnet50(),
            &DeviceSpec::v100(),
            64,
            64,
            &MethodConfig::PowerSgd { rank: 4 },
            &[1.0, 3.0, 9.0, 15.0, 30.0],
            ALPHA,
        );
        assert!(
            pts[0].speedup() > 1.5,
            "1 Gbps speedup {}",
            pts[0].speedup()
        );
        assert!(
            pts.last().unwrap().speedup() < 1.0,
            "30 Gbps speedup {}",
            pts.last().unwrap().speedup()
        );
        // Speedup decreases monotonically with bandwidth.
        for w in pts.windows(2) {
            assert!(w[0].speedup() >= w[1].speedup() - 1e-9);
        }
    }

    #[test]
    fn bert_crossover_at_higher_bandwidth_than_resnet() {
        // Figure 11: the heavier the communication, the higher the
        // bandwidth at which syncSGD catches up (paper: ~9 vs ~15 Gbps).
        let cross = |model: &ModelSpec, batch| {
            let gbps: Vec<f64> = (1..=40).map(|g| g as f64).collect();
            let pts = bandwidth_sweep(
                model,
                &DeviceSpec::v100(),
                64,
                batch,
                &MethodConfig::PowerSgd { rank: 4 },
                &gbps,
                ALPHA,
            );
            pts.iter()
                .find(|p| p.speedup() < 1.0)
                .map_or(f64::INFINITY, |p| p.x)
        };
        let r50 = cross(&presets::resnet50(), 64);
        let bert = cross(&presets::bert_base(), 12);
        assert!(bert > r50, "bert cross {bert} vs r50 {r50}");
        assert!((5.0..20.0).contains(&r50), "r50 crossover {r50}");
    }

    #[test]
    fn faster_compute_helps_compression() {
        // Figure 12: with bandwidth pinned at 10 Gbps, compute speedups
        // make PowerSGD increasingly attractive (paper: ~1.75x at 3.5x).
        let pts = compute_sweep(
            &presets::resnet50(),
            &NetworkModel::from_gbps(ALPHA, 10.0),
            64,
            64,
            &MethodConfig::PowerSgd { rank: 4 },
            &[1.0, 2.0, 3.0, 4.0],
        );
        for w in pts.windows(2) {
            assert!(
                w[1].speedup() > w[0].speedup(),
                "speedup must grow with compute: {pts:?}"
            );
        }
        let last = pts.last().unwrap();
        assert!(
            last.speedup() > 1.2,
            "4x compute speedup {}",
            last.speedup()
        );
    }

    #[test]
    fn syncsgd_saturates_under_faster_compute() {
        // Figure 12's mechanism: syncSGD becomes communication-bound, so
        // its iteration time stops improving.
        let pts = compute_sweep(
            &presets::bert_base(),
            &NetworkModel::from_gbps(ALPHA, 10.0),
            64,
            12,
            &MethodConfig::PowerSgd { rank: 4 },
            &[1.0, 4.0],
        );
        let improvement = pts[0].sync_s / pts[1].sync_s;
        assert!(improvement < 1.6, "syncSGD should saturate: {improvement}");
    }

    #[test]
    fn reducing_encode_time_always_helps() {
        // Figure 13: for every l, k > 1 beats the baseline.
        let grid = tradeoff_sweep(
            &presets::resnet50(),
            &DeviceSpec::v100(),
            &NetworkModel::from_gbps(ALPHA, 10.0),
            64,
            64,
            &MethodConfig::PowerSgd { rank: 4 },
            &[1.0, 2.0, 3.0, 4.0],
            &[1.0, 2.0, 3.0],
        );
        for pt in &grid {
            if pt.k > 1.0 {
                assert!(
                    pt.total_s < pt.baseline_s,
                    "k={} l={} should beat baseline: {} vs {}",
                    pt.k,
                    pt.l,
                    pt.total_s,
                    pt.baseline_s
                );
            }
        }
        // And k=1, l=1 *is* the baseline.
        let id = grid.iter().find(|p| p.k == 1.0 && p.l == 1.0).unwrap();
        assert!((id.total_s - id.baseline_s).abs() < 1e-12);
    }

    #[test]
    fn tradeoff_monotone_in_k_for_fixed_l() {
        let grid = tradeoff_sweep(
            &presets::resnet101(),
            &DeviceSpec::v100(),
            &NetworkModel::from_gbps(ALPHA, 10.0),
            32,
            64,
            &MethodConfig::PowerSgd { rank: 4 },
            &[1.0, 2.0, 4.0],
            &[2.0],
        );
        for w in grid.windows(2) {
            assert!(w[1].total_s < w[0].total_s, "{grid:?}");
        }
    }
}
