//! The analytic performance model and what-if engine of *"On the Utility
//! of Gradient Compression in Distributed Training Systems"*.
//!
//! This crate is the paper's primary contribution, reimplemented as a
//! library:
//!
//! * [`perf`] — the §4 performance model:
//!   `T_obs ≈ max(γ·T_comp, (k−1)·T_comm(b, p, BW)) + T_comm(b̂, p, BW)`
//!   for bucketed syncSGD, and the specialized models for PowerSGD, Top-K
//!   and SignSGD (plus every other method in the catalogue);
//! * [`ideal`] — §5: how much compression would be needed for near-linear
//!   scaling (Figure 9) and how far syncSGD already is from ideal
//!   (Figure 10), which bounds the encode budget any useful scheme must
//!   fit in;
//! * [`whatif`] — §6: bandwidth sweeps (Figure 11), compute-speedup
//!   sweeps (Figure 12) and the encode-time-vs-compression tradeoff
//!   (Figure 13);
//! * [`study`] — scalability-study orchestration producing the rows behind
//!   Figures 4–6 and the model-validation comparison of Figure 8.
//!
//! # Example
//!
//! ```
//! use gcs_core::perf::predict_iteration;
//! use gcs_ddp::sim::SimConfig;
//!
//! let cfg = SimConfig::new(gcs_models::presets::bert_base(), 64).batch_per_worker(12);
//! let t = predict_iteration(&cfg);
//! assert!(t.total_s > 0.0);
//! ```

#![forbid(unsafe_code)]

pub mod accuracy;
pub mod ideal;
pub mod perf;
pub mod study;
pub mod whatif;
