//! Accuracy-aware performance analysis — the future-work direction §7
//! calls out ("developing methods that can reason about accuracy along
//! with performance is an avenue for future work").
//!
//! The paper's timing analysis is *generous* to compression: it compares
//! per-iteration times only. A lossy scheme that needs more iterations to
//! reach the same loss can lose end-to-end even where it wins
//! per-iteration. This module combines:
//!
//! * the *real* convergence trajectory of a method on a task (from
//!   `gcs-train`, using the actual compression kernels), and
//! * the per-iteration wall-clock predicted by the §4 performance model,
//!
//! into a **time-to-target-loss** comparison.

use crate::perf::predict_iteration;
use gcs_compress::registry::MethodConfig;
use gcs_compress::Result;
use gcs_ddp::sim::SimConfig;
use gcs_train::harness::{train_distributed, TrainConfig};
use gcs_train::task::Task;

/// Outcome of a time-to-loss analysis for one method.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeToLoss {
    /// Method name.
    pub method: String,
    /// Steps needed to first reach the target loss (`None` if the budget
    /// ran out before reaching it).
    pub steps_to_target: Option<usize>,
    /// Modelled per-iteration wall-clock time, seconds.
    pub per_step_s: f64,
    /// Wall-clock seconds to the target (`None` if never reached).
    pub seconds_to_target: Option<f64>,
    /// Loss at the end of the step budget.
    pub final_loss: f64,
}

impl TimeToLoss {
    /// Whether the target was reached within the budget.
    pub fn reached(&self) -> bool {
        self.steps_to_target.is_some()
    }
}

/// Trains `task` through `method`'s real compression and combines the
/// steps-to-`target_loss` with the per-iteration time predicted for
/// `sim_cfg` (which carries the model/cluster the analysis is *about* —
/// the synthetic task only supplies the optimization dynamics).
///
/// # Errors
///
/// Propagates compression-protocol errors from training.
pub fn time_to_loss<T: Task>(
    task: &T,
    method: &MethodConfig,
    train_cfg: &TrainConfig,
    target_loss: f64,
    sim_cfg: &SimConfig,
) -> Result<TimeToLoss> {
    let mut cfg = train_cfg.clone();
    cfg.eval_every = cfg.eval_every.clamp(1, 10);
    let report = train_distributed(task, method, &cfg)?;
    let steps = report
        .losses
        .iter()
        .find(|&&(_, l)| l <= target_loss)
        .map(|&(s, _)| s);
    let per_step = predict_iteration(&sim_cfg.clone().method(method.clone())).total_s;
    let final_loss = report.final_loss();
    Ok(TimeToLoss {
        method: report.method,
        steps_to_target: steps,
        per_step_s: per_step,
        seconds_to_target: steps.map(|s| s as f64 * per_step),
        final_loss,
    })
}

/// Runs [`time_to_loss`] for several methods and returns them sorted by
/// wall-clock-to-target (unreached methods last, by final loss).
///
/// # Errors
///
/// Propagates compression-protocol errors from training.
pub fn rank_methods_by_time_to_loss<T: Task>(
    task: &T,
    methods: &[MethodConfig],
    train_cfg: &TrainConfig,
    target_loss: f64,
    sim_cfg: &SimConfig,
) -> Result<Vec<TimeToLoss>> {
    let mut out = Vec::with_capacity(methods.len());
    for m in methods {
        out.push(time_to_loss(task, m, train_cfg, target_loss, sim_cfg)?);
    }
    out.sort_by(|a, b| match (a.seconds_to_target, b.seconds_to_target) {
        (Some(x), Some(y)) => x.partial_cmp(&y).expect("finite"),
        (Some(_), None) => std::cmp::Ordering::Less,
        (None, Some(_)) => std::cmp::Ordering::Greater,
        (None, None) => a
            .final_loss
            .partial_cmp(&b.final_loss)
            .expect("finite losses"),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_models::presets;
    use gcs_train::task::LinearRegression;

    fn setup() -> (LinearRegression, TrainConfig, SimConfig) {
        let task = LinearRegression::new(8, 128, 0.01, 31);
        let train_cfg = TrainConfig::new().workers(4).steps(200).lr(0.05).seed(3);
        let sim_cfg = SimConfig::new(presets::resnet101(), 64).batch_per_worker(32);
        (task, train_cfg, sim_cfg)
    }

    #[test]
    fn syncsgd_reaches_target_on_convex_task() {
        let (task, tc, sc) = setup();
        let init = task.full_loss(&task.init_params(tc.seed));
        let t = time_to_loss(&task, &MethodConfig::SyncSgd, &tc, init * 0.05, &sc).unwrap();
        assert!(t.reached(), "{t:?}");
        assert!(t.seconds_to_target.expect("reached") > 0.0);
    }

    #[test]
    fn unreachable_target_reports_none() {
        let (task, tc, sc) = setup();
        let t = time_to_loss(&task, &MethodConfig::SyncSgd, &tc, 1e-30, &sc).unwrap();
        assert!(!t.reached());
        assert!(t.seconds_to_target.is_none());
        assert!(t.final_loss.is_finite());
    }

    #[test]
    fn lossy_method_can_lose_end_to_end_despite_faster_iterations() {
        // Plain SignSGD: ~32x less traffic, but on this convex task it
        // cannot hit a tight target at all — the accuracy-aware ranking
        // must place it after syncSGD even if its iterations were free.
        let (task, tc, sc) = setup();
        let init = task.full_loss(&task.init_params(tc.seed));
        let ranked = rank_methods_by_time_to_loss(
            &task,
            &[MethodConfig::SignSgd, MethodConfig::SyncSgd],
            &tc,
            init * 0.01,
            &sc,
        )
        .unwrap();
        assert_eq!(ranked[0].method, "syncSGD");
    }

    #[test]
    fn ranking_orders_reached_before_unreached() {
        let (task, tc, sc) = setup();
        let init = task.full_loss(&task.init_params(tc.seed));
        let ranked = rank_methods_by_time_to_loss(
            &task,
            &[
                MethodConfig::SyncSgd,
                MethodConfig::PowerSgd { rank: 2 },
                MethodConfig::SignSgd,
            ],
            &tc,
            init * 0.02,
            &sc,
        )
        .unwrap();
        // All reached entries precede unreached ones.
        let first_unreached = ranked.iter().position(|t| !t.reached());
        if let Some(i) = first_unreached {
            assert!(ranked[i..].iter().all(|t| !t.reached()));
        }
    }
}
