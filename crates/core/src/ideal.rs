//! §5: towards ideal gradient compression.
//!
//! Two quantities bound what any compression scheme can usefully do:
//!
//! * [`required_compression`] (Figure 9) — the compression ratio at which
//!   communication fully hides under computation (`T_comp =
//!   T_comm(ĝ, p, BW)` for an all-reducible scheme), i.e. anything beyond
//!   this ratio is *over*-compression with no speedup left to buy;
//! * [`ideal_gap`] (Figure 10) — how far optimized syncSGD already is from
//!   perfect weak scaling; this gap is the **entire** budget available for
//!   a scheme's encode/decode plus residual communication.

use crate::perf::predict_iteration;
use gcs_cluster::cost::NetworkModel;
use gcs_ddp::sim::SimConfig;
use gcs_models::{DeviceSpec, ModelSpec};

/// Result of the required-compression analysis for one configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RequiredCompression {
    /// Compressing to `bytes` (ratio `ratio`) suffices for ideal scaling.
    Achievable {
        /// Compressed gradient size in bytes that exactly hides under
        /// `T_comp`.
        bytes: f64,
        /// Full size / compressed size.
        ratio: f64,
    },
    /// Even zero-byte gradients cannot reach ideal scaling: the latency
    /// term alone exceeds the computation time.
    LatencyBound,
}

/// Solves `T_comp = T_comm(ĝ, p, BW)` for the compressed size `ĝ` under
/// the ring-all-reduce cost model (the paper's §5 assumes the scheme is
/// all-reducible and fully overlappable), and reports the corresponding
/// compression ratio.
///
/// # Panics
///
/// Panics if `workers < 2` (no communication to hide) or `batch == 0`.
pub fn required_compression(
    model: &ModelSpec,
    device: &DeviceSpec,
    network: &NetworkModel,
    workers: usize,
    batch: usize,
) -> RequiredCompression {
    assert!(workers >= 2, "required compression needs ≥ 2 workers");
    let t_comp = device.backward_seconds(model, batch);
    let p = workers as f64;
    let latency = network.alpha * (p - 1.0);
    if latency >= t_comp {
        return RequiredCompression::LatencyBound;
    }
    // T_comp = α(p−1) + 2ĝ(p−1)/(p·BW)  ⇒  ĝ = (T_comp − α(p−1))·p·BW / (2(p−1))
    let g_hat = (t_comp - latency) * p * network.bandwidth / (2.0 * (p - 1.0));
    let full = model.size_bytes() as f64;
    if g_hat >= full {
        // No compression needed at all.
        return RequiredCompression::Achievable {
            bytes: full,
            ratio: 1.0,
        };
    }
    RequiredCompression::Achievable {
        bytes: g_hat,
        ratio: full / g_hat,
    }
}

/// The gap between optimized syncSGD and perfect weak scaling (`T_comp`),
/// in seconds — Figure 10. This is the upper bound on the time a
/// compression scheme may spend (encode + decode + its own communication)
/// while still being a net win.
pub fn ideal_gap(
    model: &ModelSpec,
    device: &DeviceSpec,
    network: &NetworkModel,
    workers: usize,
    batch: usize,
) -> f64 {
    let cfg = SimConfig::new(model.clone(), workers)
        .batch_per_worker(batch)
        .device(device.clone())
        .network(*network);
    let sync = predict_iteration(&cfg).total_s;
    let ideal = device.backward_seconds(model, batch);
    (sync - ideal).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_models::presets;

    fn net10() -> NetworkModel {
        NetworkModel::datacenter_10gbps()
    }

    #[test]
    fn paper_finding_less_than_7x_needed_at_10gbps() {
        // Figure 9: at 10 Gbps even small batches need at most ~7x
        // compression for near-linear scaling at 64 GPUs.
        let device = DeviceSpec::v100();
        for model in presets::paper_models() {
            let batch = if model.name.starts_with("BERT") {
                8
            } else {
                16
            };
            match required_compression(&model, &device, &net10(), 64, batch) {
                RequiredCompression::Achievable { ratio, .. } => {
                    assert!(ratio <= 8.0, "{}: ratio {ratio}", model.name);
                }
                RequiredCompression::LatencyBound => {
                    panic!("{} should not be latency bound at 10 Gbps", model.name)
                }
            }
        }
    }

    #[test]
    fn bert_needs_less_than_2x_at_large_batch() {
        // Paper: "a large model like BERT requires less than 2x
        // compression to achieve near linear scaling".
        let r = required_compression(&presets::bert_base(), &DeviceSpec::v100(), &net10(), 64, 12);
        match r {
            RequiredCompression::Achievable { ratio, .. } => {
                assert!(ratio < 2.5, "ratio {ratio}");
            }
            RequiredCompression::LatencyBound => panic!("unexpected latency bound"),
        }
    }

    #[test]
    fn lower_bandwidth_needs_more_compression() {
        let d = DeviceSpec::v100();
        let m = presets::resnet50();
        let ratio = |gbps: f64| match required_compression(
            &m,
            &d,
            &NetworkModel::from_gbps(15e-6, gbps),
            64,
            32,
        ) {
            RequiredCompression::Achievable { ratio, .. } => ratio,
            RequiredCompression::LatencyBound => f64::INFINITY,
        };
        assert!(ratio(1.0) > ratio(10.0));
        assert!(ratio(10.0) >= ratio(25.0));
    }

    #[test]
    fn larger_batch_needs_less_compression() {
        let d = DeviceSpec::v100();
        let m = presets::resnet101();
        let get = |batch| match required_compression(&m, &d, &net10(), 64, batch) {
            RequiredCompression::Achievable { ratio, .. } => ratio,
            RequiredCompression::LatencyBound => f64::INFINITY,
        };
        assert!(get(16) >= get(64));
    }

    #[test]
    fn latency_bound_when_alpha_dominates() {
        // Extreme latency: even zero bytes cannot hide under T_comp.
        let slow_net = NetworkModel::new(0.1, 1e12);
        let r = required_compression(&presets::resnet50(), &DeviceSpec::v100(), &slow_net, 64, 16);
        assert_eq!(r, RequiredCompression::LatencyBound);
    }

    #[test]
    fn huge_compute_means_no_compression_needed() {
        // Slow device / big batch: full gradients already hide.
        let slow = DeviceSpec::v100().with_speedup(0.05);
        let r = required_compression(&presets::resnet50(), &slow, &net10(), 8, 64);
        match r {
            RequiredCompression::Achievable { ratio, .. } => {
                assert!((ratio - 1.0).abs() < 1e-12, "ratio {ratio}");
            }
            RequiredCompression::LatencyBound => panic!("not latency bound"),
        }
    }

    #[test]
    fn ideal_gap_small_at_10gbps() {
        // Figure 10: the gap between syncSGD and perfect scaling is small
        // (≈50 ms ResNet-50, ≈100 ms ResNet-101, ≈200 ms BERT). BERT's gap
        // is batch-sensitive (the paper does not state Figure 10's batch);
        // at batch 16 it lands in the ~200 ms regime.
        let d = DeviceSpec::v100();
        for model in presets::paper_models() {
            let (batch, bound) = if model.name.starts_with("BERT") {
                (16, 0.25)
            } else {
                (64, 0.2)
            };
            for p in [16usize, 64, 150] {
                let gap = ideal_gap(&model, &d, &net10(), p, batch);
                assert!(gap < bound, "{} p={p}: gap {gap}", model.name);
            }
        }
    }

    #[test]
    fn ideal_gap_ordering_follows_model_size() {
        // Figure 10: the gap grows with model size (ResNet-50 ≈ 50 ms,
        // ResNet-101 ≈ 100 ms, BERT ≈ 200 ms at 150 machines).
        let d = DeviceSpec::v100();
        let gap = |m: &ModelSpec, batch| ideal_gap(m, &d, &net10(), 150, batch);
        let g50 = gap(&presets::resnet50(), 64);
        let g101 = gap(&presets::resnet101(), 64);
        let gbert = gap(&presets::bert_base(), 12);
        assert!(g50 < g101, "r50 {g50} r101 {g101}");
        assert!(g101 < gbert, "r101 {g101} bert {gbert}");
    }

    #[test]
    fn gap_never_negative() {
        let d = DeviceSpec::v100().with_speedup(0.01); // compute-bound
        let gap = ideal_gap(&presets::resnet50(), &d, &net10(), 8, 64);
        assert!(gap >= 0.0);
    }
}
