//! Native chunked encodes must reproduce the monolithic payload bit for
//! bit: for every scheme with a native `encode_chunk` override, streaming
//! the payload as ordered spans and concatenating them must equal the
//! whole-payload (default) path exactly — same header, same image — for
//! ragged chunk counts and awkward tensor sizes.

use gcs_compress::chunked::{chunk_spans, ChunkData, ChunkSink, ChunkedDecode, ChunkedEncode};
use gcs_compress::fp16::Fp16;
use gcs_compress::powersgd::PowerSgd;
use gcs_compress::qsgd::Qsgd;
use gcs_compress::randomk::RandomK;
use gcs_compress::signsgd::SignSgd;
use gcs_compress::terngrad::TernGrad;
use gcs_compress::topk::TopK;
use gcs_compress::{Compressor, Payload};
use gcs_tensor::Tensor;

/// The chunk counts every equivalence case is exercised at: monolithic,
/// small, prime, and far more chunks than the image has grains.
const CHUNK_COUNTS: [usize; 5] = [1, 2, 7, 16, 64];

/// Streams a begun encode through `chunks` spans and concatenates the
/// emitted image (f32 content for summable payloads, wire bytes for
/// gather payloads; the f32 image is compared through its bit pattern).
fn drain<C: Compressor + ?Sized>(
    c: &mut C,
    layer: usize,
    enc: &mut ChunkedEncode,
    chunks: usize,
) -> Vec<u8> {
    let header = enc.header().clone();
    let spans = chunk_spans(&header, chunks);
    assert_eq!(spans.len(), chunks);
    assert_eq!(spans[0].0, 0);
    assert_eq!(spans.last().unwrap().1, header.image_len());
    let mut image = Vec::new();
    for &(lo, hi) in &spans {
        match &header {
            gcs_compress::chunked::ChunkedHeader::Summable { .. } => {
                let mut chunk = Vec::new();
                c.encode_chunk(layer, enc, lo, hi, ChunkSink::F32(&mut chunk))
                    .unwrap();
                assert_eq!(chunk.len(), hi - lo, "span [{lo}, {hi})");
                for x in chunk {
                    image.extend_from_slice(&x.to_le_bytes());
                }
            }
            gcs_compress::chunked::ChunkedHeader::Gather { .. } => {
                let mut chunk = Vec::new();
                c.encode_chunk(layer, enc, lo, hi, ChunkSink::Bytes(&mut chunk))
                    .unwrap();
                assert_eq!(chunk.len(), hi - lo, "span [{lo}, {hi})");
                image.extend_from_slice(&chunk);
            }
        }
    }
    image
}

/// Asserts that `native`'s chunked encode of `grad` equals `reference`'s
/// monolithic encode routed through the default whole-payload splitter,
/// at every chunk count. Both compressors must be freshly built with
/// identical configuration/seeds per call (RNG schemes advance state).
fn assert_encode_equivalent<A, B, FA, FB>(make_native: FA, make_reference: FB, grad: &Tensor)
where
    A: Compressor,
    B: Compressor,
    FA: Fn() -> A,
    FB: Fn() -> B,
{
    for chunks in CHUNK_COUNTS {
        let mut native = make_native();
        let mut reference = make_reference();
        let mut enc = native.begin_chunked_encode(0, 0, Some(grad)).unwrap();
        assert!(enc.is_native(), "scheme should opt into native chunking");
        let payload = reference.encode(0, grad).unwrap();
        let mut whole = ChunkedEncode::whole(payload);
        assert_eq!(
            enc.header(),
            whole.header(),
            "native and whole headers disagree at {chunks} chunks"
        );
        let native_image = drain(&mut native, 0, &mut enc, chunks);
        let whole_image = drain(&mut reference, 0, &mut whole, chunks);
        assert_eq!(
            native_image, whole_image,
            "chunked image diverges at {chunks} chunks"
        );
    }
}

#[test]
fn fp16_chunks_match_monolithic() {
    for n in [1usize, 97, 1000] {
        let g = Tensor::randn([n], 7);
        assert_encode_equivalent(Fp16::new, Fp16::new, &g);
    }
}

#[test]
fn signsgd_chunks_match_monolithic() {
    for n in [1usize, 31, 97, 1024] {
        let g = Tensor::randn([n], 11);
        assert_encode_equivalent(SignSgd::new, SignSgd::new, &g);
    }
}

#[test]
fn ef_signsgd_chunks_match_monolithic_and_residual() {
    let g = Tensor::randn([257], 13);
    assert_encode_equivalent(
        SignSgd::with_error_feedback,
        SignSgd::with_error_feedback,
        &g,
    );
    // The residual written at begin must equal the monolithic one.
    let mut a = SignSgd::with_error_feedback();
    let mut b = SignSgd::with_error_feedback();
    let _ = a.begin_chunked_encode(0, 0, Some(&g)).unwrap();
    let _ = b.encode(0, &g).unwrap();
    assert_eq!(
        a.take_residual(0).unwrap().data(),
        b.take_residual(0).unwrap().data()
    );
}

#[test]
fn qsgd_chunks_match_monolithic() {
    for n in [1usize, 97, 1000] {
        let g = Tensor::randn([n], 17);
        let make = || Qsgd::new(15).unwrap().with_seed(42);
        assert_encode_equivalent(make, make, &g);
    }
}

#[test]
fn qsgd_zero_gradient_never_touches_rng() {
    let g = Tensor::zeros([64]);
    let make = || Qsgd::new(15).unwrap().with_seed(9);
    assert_encode_equivalent(make, make, &g);
}

#[test]
fn qsgd_rejects_out_of_order_chunks() {
    let g = Tensor::randn([100], 3);
    let mut c = Qsgd::new(15).unwrap();
    let mut enc = c.begin_chunked_encode(0, 0, Some(&g)).unwrap();
    let spans = chunk_spans(enc.header(), 4);
    let mut sink = Vec::new();
    // Skipping the first span must be rejected: the RNG stream is
    // positional.
    let (lo, hi) = spans[1];
    assert!(c
        .encode_chunk(0, &mut enc, lo, hi, ChunkSink::Bytes(&mut sink))
        .is_err());
}

#[test]
fn terngrad_chunks_match_monolithic() {
    for n in [1usize, 5, 97, 1024] {
        let g = Tensor::randn([n], 19);
        let make = || TernGrad::new().with_seed(7);
        assert_encode_equivalent(make, make, &g);
    }
}

#[test]
fn terngrad_zero_gradient_never_touches_rng() {
    let g = Tensor::zeros([33]);
    let make = || TernGrad::new().with_seed(1);
    assert_encode_equivalent(make, make, &g);
}

#[test]
fn topk_chunks_match_monolithic() {
    for n in [10usize, 97, 2000] {
        let g = Tensor::randn([n], 23);
        let make = || TopK::new(0.1).unwrap();
        assert_encode_equivalent(make, make, &g);
    }
}

#[test]
fn ef_topk_chunks_match_monolithic() {
    let g = Tensor::randn([500], 29);
    let make = || TopK::new(0.05).unwrap().error_feedback(true);
    assert_encode_equivalent(make, make, &g);
}

#[test]
fn randomk_chunks_match_monolithic() {
    for n in [4usize, 97, 1000] {
        let g = Tensor::randn([n], 31);
        let make = || RandomK::new(0.25).unwrap();
        assert_encode_equivalent(make, make, &g);
    }
}

#[test]
fn ef_randomk_chunks_match_monolithic() {
    let g = Tensor::randn([300], 37);
    let make = || RandomK::new(0.1).unwrap().error_feedback(true);
    assert_encode_equivalent(make, make, &g);
}

#[test]
fn powersgd_round0_chunks_match_monolithic() {
    for (m, n) in [(8usize, 12usize), (33, 17), (64, 64)] {
        let g = Tensor::randn([m, n], 41);
        let make = || PowerSgd::new(4).unwrap();
        assert_encode_equivalent(make, make, &g);
    }
}

#[test]
fn powersgd_full_protocol_streams_both_rounds_bitwise() {
    // Drive the complete two-round protocol on a single worker through the
    // chunked surface and through the monolithic surface; every wire image
    // and the final decoded tensor must agree bitwise.
    let g = Tensor::randn([24, 36], 43);
    for chunks in CHUNK_COUNTS {
        let mut a = PowerSgd::new(4).unwrap();
        let mut b = PowerSgd::new(4).unwrap();

        // Round 0.
        let mut enc_a = a.begin_chunked_encode(0, 0, Some(&g)).unwrap();
        let p_b = b.encode(0, &g).unwrap();
        let image_a = drain(&mut a, 0, &mut enc_a, chunks);
        let mut whole_b = ChunkedEncode::whole(p_b.clone());
        assert_eq!(enc_a.header(), whole_b.header());
        assert_eq!(image_a, drain(&mut b, 0, &mut whole_b, chunks));

        // Feed the reduced image back through the chunked decode.
        let header = enc_a.header().clone();
        let mut dec = a.begin_chunked_decode(0, 0, &header, 1).unwrap();
        let floats: Vec<f32> = image_a
            .chunks_exact(4)
            .map(|w| f32::from_le_bytes([w[0], w[1], w[2], w[3]]))
            .collect();
        for &(lo, hi) in &chunk_spans(&header, chunks) {
            a.decode_chunk(0, &mut dec, lo, hi, ChunkData::F32(&floats[lo..hi]))
                .unwrap();
        }
        a.finish_chunked_decode(0, 0, dec).unwrap();
        let agg_b = b.aggregate(0, std::slice::from_ref(&p_b)).unwrap();
        b.absorb(0, 0, agg_b).unwrap();

        // Round 1 (streams from the whole payload: the Q GEMM ran at
        // begin).
        let mut enc_a1 = a.begin_chunked_encode(0, 1, None).unwrap();
        let q_b = b.encode_round(0, 1).unwrap();
        let mut whole_b1 = ChunkedEncode::whole(q_b.clone());
        assert_eq!(enc_a1.header(), whole_b1.header());
        let image_a1 = drain(&mut a, 0, &mut enc_a1, chunks);
        assert_eq!(image_a1, drain(&mut b, 0, &mut whole_b1, chunks));

        let header1 = enc_a1.header().clone();
        let mut dec1 = a.begin_chunked_decode(0, 1, &header1, 1).unwrap();
        let floats1: Vec<f32> = image_a1
            .chunks_exact(4)
            .map(|w| f32::from_le_bytes([w[0], w[1], w[2], w[3]]))
            .collect();
        for &(lo, hi) in &chunk_spans(&header1, chunks) {
            a.decode_chunk(0, &mut dec1, lo, hi, ChunkData::F32(&floats1[lo..hi]))
                .unwrap();
        }
        a.finish_chunked_decode(0, 1, dec1).unwrap();
        let agg_b1 = b.aggregate(1, std::slice::from_ref(&q_b)).unwrap();
        b.absorb(0, 1, agg_b1).unwrap();

        assert_eq!(
            a.finish(0, g.shape()).unwrap().data(),
            b.finish(0, g.shape()).unwrap().data(),
            "decoded gradients diverge at {chunks} chunks"
        );
    }
}

#[test]
fn fp16_native_decode_matches_monolithic_absorb() {
    let g = Tensor::randn([97], 47);
    let reduced: Vec<f32> = g
        .data()
        .iter()
        .map(|&x| gcs_tensor::f16::f16_bits_to_f32(gcs_tensor::f16::f32_to_f16_bits(x)) * 0.5)
        .collect();
    for chunks in CHUNK_COUNTS {
        let mut a = Fp16::new();
        let mut b = Fp16::new();
        let enc = a.begin_chunked_encode(0, 0, Some(&g)).unwrap();
        let header = enc.header().clone();
        let mut dec = a.begin_chunked_decode(0, 0, &header, 2).unwrap();
        for &(lo, hi) in &chunk_spans(&header, chunks) {
            a.decode_chunk(0, &mut dec, lo, hi, ChunkData::F32(&reduced[lo..hi]))
                .unwrap();
        }
        a.finish_chunked_decode(0, 0, dec).unwrap();
        b.absorb(0, 0, Payload::Half(gcs_tensor::f16::encode_f16(&reduced)))
            .unwrap();
        assert_eq!(
            a.finish(0, g.shape()).unwrap().data(),
            b.finish(0, g.shape()).unwrap().data()
        );
    }
}

#[test]
fn gather_decode_reassembles_ragged_per_rank_frames() {
    // Two ranks with different actual byte counts (value-dependent
    // payloads) must still pair up chunk for chunk: the spans are computed
    // per rank, frames may be empty, and the concatenation per rank must
    // reproduce each rank's wire image exactly.
    let g0 = Tensor::randn([50], 53);
    let g1 = Tensor::randn([50], 59);
    let mut w0 = TopK::new(0.1).unwrap();
    let mut w1 = TopK::new(0.1).unwrap();
    let chunks = 9;
    let mut enc0 = w0.begin_chunked_encode(0, 0, Some(&g0)).unwrap();
    let mut enc1 = w1.begin_chunked_encode(0, 0, Some(&g1)).unwrap();
    let spans0 = chunk_spans(enc0.header(), chunks);
    let spans1 = chunk_spans(enc1.header(), chunks);
    let header = enc0.header().clone();
    let mut dec = w0.begin_chunked_decode(0, 0, &header, 2).unwrap();
    for j in 0..chunks {
        let mut c0 = Vec::new();
        let mut c1 = Vec::new();
        w0.encode_chunk(
            0,
            &mut enc0,
            spans0[j].0,
            spans0[j].1,
            ChunkSink::Bytes(&mut c0),
        )
        .unwrap();
        w1.encode_chunk(
            0,
            &mut enc1,
            spans1[j].0,
            spans1[j].1,
            ChunkSink::Bytes(&mut c1),
        )
        .unwrap();
        let frames: [&[u8]; 2] = [&c0, &c1];
        w0.decode_chunk(
            0,
            &mut dec,
            spans0[j].0,
            spans0[j].1,
            ChunkData::Frames(&frames),
        )
        .unwrap();
    }
    w0.finish_chunked_decode(0, 0, dec).unwrap();
    let decoded = w0.finish(0, g0.shape()).unwrap();

    // Reference: monolithic aggregate of both payloads.
    let mut r0 = TopK::new(0.1).unwrap();
    let mut r1 = TopK::new(0.1).unwrap();
    let p0 = r0.encode(0, &g0).unwrap();
    let p1 = r1.encode(0, &g1).unwrap();
    let agg = r0.aggregate(0, &[p0, p1]).unwrap();
    r0.absorb(0, 0, agg).unwrap();
    assert_eq!(decoded.data(), r0.finish(0, g0.shape()).unwrap().data());
}
