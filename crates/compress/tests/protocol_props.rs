//! Randomized (deterministically seeded) tests of the compressor protocol
//! across all methods. Formerly proptest-based; rewritten as seeded loops
//! for the offline build (case counts preserved).

use gcs_compress::driver::{all_reduce_compressed, round_trip};
use gcs_compress::registry::MethodConfig;
use gcs_compress::{Compressor, Payload};
use gcs_tensor::{stats, Shape, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// All single-parameter method configurations exercised by the suite.
fn all_methods() -> Vec<MethodConfig> {
    vec![
        MethodConfig::SyncSgd,
        MethodConfig::Fp16,
        MethodConfig::PowerSgd { rank: 2 },
        MethodConfig::TopK { ratio: 0.3 },
        MethodConfig::SignSgd,
        MethodConfig::EfSignSgd,
        MethodConfig::Qsgd { levels: 15 },
        MethodConfig::TernGrad,
        MethodConfig::RandomK { ratio: 0.3 },
        MethodConfig::Atomo { rank: 2 },
        MethodConfig::OneBit,
        MethodConfig::Sketch { block: 3 },
        MethodConfig::Dgc { ratio: 0.2 },
        MethodConfig::Variance { kappa: 1.0 },
        MethodConfig::Natural,
    ]
}

/// Every method: decoded output of a multi-worker exchange is identical on
/// all workers, shaped like the input, and finite.
#[test]
fn exchanges_are_consistent_and_finite() {
    let methods = all_methods();
    let mut rng = StdRng::seed_from_u64(0x201);
    for case in 0..24 {
        let method = methods[case % methods.len()].clone();
        let workers = rng.gen_range(2usize..5);
        let rows = rng.gen_range(1usize..6);
        let cols = rng.gen_range(1usize..8);
        let seed = rng.gen_range(0u64..200);
        let grads: Vec<Tensor> = (0..workers as u64)
            .map(|w| Tensor::randn([rows, cols], seed + w))
            .collect();
        let mut compressors: Vec<Box<dyn Compressor>> = (0..workers)
            .map(|_| method.build().expect("builds"))
            .collect();
        let outs = all_reduce_compressed(&mut compressors, 0, &grads).expect("protocol");
        for w in 1..workers {
            assert_eq!(&outs[0], &outs[w], "{method:?} diverged");
        }
        assert_eq!(outs[0].shape(), grads[0].shape());
        assert!(outs[0].data().iter().all(|x| x.is_finite()));
    }
}

/// Every method: `compressed_bytes` never exceeds the raw gradient size
/// plus small constant metadata (a "compressor" that inflates data would
/// break every downstream model).
#[test]
fn compressed_never_larger_than_raw() {
    let methods = all_methods();
    let mut rng = StdRng::seed_from_u64(0x202);
    for case in 0..24 {
        let method = methods[case % methods.len()].clone();
        let numel = rng.gen_range(64usize..4096);
        let c = method.build().expect("builds");
        let shape = Shape::new(vec![numel]);
        let bytes = c.compressed_bytes(&shape);
        assert!(
            bytes <= numel * 4 + 16,
            "{method:?}: {bytes} bytes for {numel} elements"
        );
    }
}

/// Every method: the wire payload round-trips through serialization.
#[test]
fn payload_serialization_roundtrips() {
    let methods = all_methods();
    let mut rng = StdRng::seed_from_u64(0x203);
    for case in 0..24 {
        let method = methods[case % methods.len()].clone();
        let numel = rng.gen_range(1usize..200);
        let seed = rng.gen_range(0u64..100);
        let mut c = method.build().expect("builds");
        let g = Tensor::randn([numel], seed);
        let p = c.encode(0, &g).expect("encode");
        let q = Payload::from_bytes(&p.to_bytes()).expect("decode");
        assert_eq!(p, q);
    }
}

/// `reset` fully clears per-layer state: a fresh encode after reset
/// behaves like a brand-new compressor (no stale error feedback or warm
/// starts leaking through).
#[test]
fn reset_restores_fresh_behaviour() {
    let methods = all_methods();
    let mut rng = StdRng::seed_from_u64(0x204);
    for case in 0..24 {
        let method = methods[case % methods.len()].clone();
        let numel = rng.gen_range(8usize..128);
        let seed = rng.gen_range(0u64..100);
        let g1 = Tensor::randn([numel], seed);
        let g2 = Tensor::randn([numel], seed + 1);
        // Path A: fresh compressor encodes g2.
        let mut fresh = method.build().expect("builds");
        let fresh_payload = fresh.encode(0, &g2).expect("encode");
        // Path B: used compressor (one full round on g1), then reset.
        let mut used = method.build().expect("builds");
        let _ = round_trip(&mut used, 0, &g1).expect("round trip");
        used.reset();
        let reset_payload = used.encode(0, &g2).expect("encode");
        // Stochastic methods advance their RNG during the first round, so
        // only compare deterministic ones payload-for-payload; for the
        // rest it suffices that the encode succeeds on clean state.
        let deterministic = !matches!(
            method,
            MethodConfig::Qsgd { .. }
                | MethodConfig::TernGrad
                | MethodConfig::Dgc { .. }
                | MethodConfig::RandomK { .. }
                | MethodConfig::Natural
        );
        if deterministic {
            assert_eq!(fresh_payload, reset_payload, "{method:?}");
        }
    }
}

/// Unbiased single-worker round trips keep decoded norm bounded by a
/// small multiple of the input norm (no explosion).
#[test]
fn decoded_norm_is_bounded() {
    let methods = all_methods();
    let mut rng = StdRng::seed_from_u64(0x205);
    for case in 0..24 {
        let method = methods[case % methods.len()].clone();
        let numel = rng.gen_range(8usize..256);
        let seed = rng.gen_range(0u64..100);
        let mut c = method.build().expect("builds");
        let g = Tensor::randn([numel], seed);
        let out = round_trip(&mut c, 0, &g).expect("round trip");
        // SignSGD decodes to ±1 per coordinate: norm = sqrt(n), which for a
        // standard normal input is ≈ ||g||. Allow generous headroom.
        assert!(
            out.l2_norm() <= 4.0 * g.l2_norm().max(1.0),
            "{method:?}: out {} vs in {}",
            out.l2_norm(),
            g.l2_norm()
        );
    }
}

/// All workers feeding the identical gradient through any method get
/// (approximately) that gradient's own compressed round-trip back —
/// aggregation of identical inputs must not distort beyond one worker's
/// quantization error.
#[test]
fn identical_inputs_aggregate_to_roundtrip() {
    let methods = all_methods();
    let mut rng = StdRng::seed_from_u64(0x206);
    for case in 0..24 {
        let method = methods[case % methods.len()].clone();
        // Stochastic methods (QSGD/TernGrad/DGC) share RNG seeds across
        // fresh instances, so their encodings of identical inputs agree.
        let numel = rng.gen_range(8usize..128);
        let seed = rng.gen_range(0u64..50);
        let g = Tensor::randn([numel], seed);
        let grads = vec![g.clone(), g.clone(), g.clone()];
        let mut multi: Vec<Box<dyn Compressor>> =
            (0..3).map(|_| method.build().expect("builds")).collect();
        let outs = all_reduce_compressed(&mut multi, 0, &grads).expect("protocol");
        let mut single = method.build().expect("builds");
        let solo = round_trip(&mut single, 0, &g).expect("round trip");
        let err = stats::relative_l2_error(&solo, &outs[0]);
        // FP16 re-rounds after averaging (sum/3 is not representable), so
        // allow half-precision ULP noise; everything else is f32-exact.
        let tol = if method == MethodConfig::Fp16 {
            1e-3
        } else {
            1e-4
        };
        assert!(err < tol || solo.l2_norm() == 0.0, "{method:?}: err {err}");
    }
}
