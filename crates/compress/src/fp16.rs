//! Half-precision gradient communication — the "often a 2x reduction is all
//! you need" baseline from the paper's takeaway #1.

use crate::chunked::{
    f32_sink, ChunkSink, ChunkedDecode, ChunkedEncode, ChunkedHeader, NativeEncode, PayloadShell,
};
use crate::{CompressError, Compressor, Payload, Properties, Result};
use gcs_tensor::f16::{decode_f16, encode_f16, f16_bits_to_f32, f32_to_f16_bits};
use gcs_tensor::{Shape, Tensor};
use std::collections::HashMap;

/// Communicates gradients as IEEE binary16, aggregated by an fp16-native
/// all-reduce (sums computed in `f32`, re-rounded to fp16 per hop —
/// matching NCCL's behaviour).
///
/// All-reducible, layer-wise, 2x compression, and near-zero encode cost —
/// the paper's Finding 1 notes that in >10 Gbps datacenters this is often
/// all the compression that is useful.
#[derive(Debug, Default)]
pub struct Fp16 {
    pending: HashMap<usize, Vec<u16>>,
}

impl Fp16 {
    /// Creates the half-precision compressor.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Compressor for Fp16 {
    fn properties(&self) -> Properties {
        Properties {
            name: "FP16".to_owned(),
            all_reducible: true,
            layerwise: true,
            rounds: 1,
        }
    }

    fn compressed_bytes(&self, shape: &Shape) -> usize {
        shape.numel() * 2
    }

    fn encode(&mut self, _layer: usize, grad: &Tensor) -> Result<Payload> {
        Ok(Payload::Half(encode_f16(grad.data())))
    }

    fn aggregate(&self, _round: usize, payloads: &[Payload]) -> Result<Payload> {
        let mut iter = payloads.iter();
        let first = iter.next().ok_or(CompressError::EmptyAggregate)?;
        let mut acc = first.clone();
        for p in iter {
            acc.add_assign(p)?;
        }
        acc.scale(1.0 / payloads.len() as f32)?;
        Ok(acc)
    }

    fn absorb(&mut self, layer: usize, round: usize, agg: Payload) -> Result<()> {
        if round != 0 {
            return Err(CompressError::Protocol(format!(
                "FP16 has a single round, got {round}"
            )));
        }
        match agg {
            Payload::Half(v) => {
                self.pending.insert(layer, v);
                Ok(())
            }
            other => Err(CompressError::PayloadKind {
                expected: "Half",
                actual: other.kind_name(),
            }),
        }
    }

    fn finish(&mut self, layer: usize, shape: &Shape) -> Result<Tensor> {
        let v = self.pending.remove(&layer).ok_or_else(|| {
            CompressError::Protocol(format!("finish before absorb for layer {layer}"))
        })?;
        Tensor::from_shape_vec(shape.clone(), decode_f16(&v)).map_err(Into::into)
    }

    fn reset(&mut self) {
        self.pending.clear();
    }

    // Streaming: the f16 conversion is element-wise, so both directions
    // chunk natively — each chunk round-trips (encode) or re-rounds
    // (decode) only its own span, bit-identical to the monolithic
    // `encode_f16`/`decode_f16` passes.
    fn begin_chunked_encode(
        &mut self,
        layer: usize,
        round: usize,
        grad: Option<&Tensor>,
    ) -> Result<ChunkedEncode> {
        let Some(g) = grad else {
            return Ok(ChunkedEncode::whole(self.encode_round(layer, round)?));
        };
        Ok(ChunkedEncode::native(
            ChunkedHeader::Summable {
                shell: PayloadShell::Half,
                elems: g.numel(),
            },
            NativeEncode {
                src: g.data().to_vec(),
                ..NativeEncode::default()
            },
        ))
    }

    fn encode_chunk(
        &mut self,
        _layer: usize,
        enc: &mut ChunkedEncode,
        lo: usize,
        hi: usize,
        sink: ChunkSink<'_>,
    ) -> Result<()> {
        if !enc.is_native() {
            // Whole-payload stage (e.g. constructed by the default
            // `begin_chunked_encode`): slice the materialized image.
            return enc.emit_staged(lo, hi, sink);
        }
        let state = enc.native_mut()?;
        let out = f32_sink(sink)?;
        // The wire image of FP16 under the f32-summing ring is the decoded
        // f16 value, i.e. one round trip per element.
        out.extend(
            state.src[lo..hi]
                .iter()
                .map(|&x| f16_bits_to_f32(f32_to_f16_bits(x))),
        );
        Ok(())
    }

    fn begin_chunked_decode(
        &mut self,
        _layer: usize,
        _round: usize,
        header: &ChunkedHeader,
        world: usize,
    ) -> Result<ChunkedDecode> {
        match header {
            ChunkedHeader::Summable { elems, .. } => Ok(ChunkedDecode::half(*elems)),
            other => Ok(ChunkedDecode::staged(other, world)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{all_reduce_compressed, round_trip};

    #[test]
    fn round_trip_error_is_half_precision_small() {
        let g = Tensor::randn([1000], 4);
        let mut c = Fp16::new();
        let out = round_trip(&mut c, 0, &g).unwrap();
        let err = gcs_tensor::stats::relative_l2_error(&g, &out);
        assert!(err < 1e-3, "relative error {err}");
    }

    #[test]
    fn multi_worker_mean_is_close_to_exact() {
        let grads: Vec<Tensor> = (0..4).map(|s| Tensor::randn([256], s)).collect();
        let mut exact = Tensor::zeros([256]);
        for g in &grads {
            exact.add_assign(g).unwrap();
        }
        exact.scale(0.25);
        let mut workers: Vec<Fp16> = (0..4).map(|_| Fp16::new()).collect();
        let outs = all_reduce_compressed(&mut workers, 0, &grads).unwrap();
        let err = gcs_tensor::stats::relative_l2_error(&exact, &outs[0]);
        assert!(err < 5e-3, "relative error {err}");
    }

    #[test]
    fn exactly_half_the_bytes() {
        let c = Fp16::new();
        assert_eq!(c.compressed_bytes(&Shape::new(vec![512])), 1024);
    }

    #[test]
    fn wrong_payload_kind_rejected() {
        let mut c = Fp16::new();
        assert!(c.absorb(0, 0, Payload::Dense(vec![1.0])).is_err());
    }
}
