//! ATOMO atomic-decomposition compression (Wang et al., 2018), SVD variant.
//!
//! Each layer's matricized gradient is decomposed with a truncated SVD and
//! the `(U, S, V)` triplet is transmitted. Because every worker's singular
//! basis differs, aggregation requires all-gather (Table 1: not
//! all-reducible), and the SVD itself is the expensive encode step the
//! paper contrasts with PowerSGD's cheaper power iteration.

use crate::{CompressError, Compressor, Payload, Properties, Result};
use gcs_tensor::matrix::svd_truncated;
use gcs_tensor::{Shape, Tensor};
use std::collections::HashMap;

/// ATOMO (SVD) compressor.
#[derive(Debug)]
pub struct Atomo {
    rank: usize,
    /// Subspace iterations for the truncated SVD.
    svd_iters: usize,
    pending: HashMap<usize, Vec<f32>>,
}

impl Atomo {
    /// Creates ATOMO with the given retained rank.
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::InvalidConfig`] if `rank == 0`.
    pub fn new(rank: usize) -> Result<Self> {
        if rank == 0 {
            return Err(CompressError::InvalidConfig(
                "ATOMO rank must be positive".into(),
            ));
        }
        Ok(Atomo {
            rank,
            svd_iters: 10,
            pending: HashMap::new(),
        })
    }

    /// Overrides the number of subspace iterations used by the SVD
    /// (more iterations: slower encode, more accurate factors).
    pub fn svd_iterations(mut self, iters: usize) -> Self {
        self.svd_iters = iters.max(1);
        self
    }

    /// The configured rank.
    pub fn rank(&self) -> usize {
        self.rank
    }
}

impl Compressor for Atomo {
    fn properties(&self) -> Properties {
        Properties {
            name: format!("ATOMO (rank {})", self.rank),
            all_reducible: false,
            layerwise: true,
            rounds: 1,
        }
    }

    fn compressed_bytes(&self, shape: &Shape) -> usize {
        let (m, n) = shape.matricized();
        let r = self.rank.min(m).min(n).max(1);
        (m * r + r + n * r) * 4
    }

    fn encode(&mut self, _layer: usize, grad: &Tensor) -> Result<Payload> {
        let (m, n) = grad.shape().matricized();
        let svd = svd_truncated(grad.data(), m, n, self.rank, self.svd_iters)?;
        Ok(Payload::Svd {
            rows: m,
            cols: n,
            rank: svd.rank,
            u: svd.u,
            s: svd.s,
            v: svd.v,
        })
    }

    fn aggregate(&self, _round: usize, payloads: &[Payload]) -> Result<Payload> {
        if payloads.is_empty() {
            return Err(CompressError::EmptyAggregate);
        }
        let mut acc: Option<Vec<f32>> = None;
        for p in payloads {
            match p {
                Payload::Svd {
                    rows,
                    cols,
                    rank,
                    u,
                    s,
                    v,
                } => {
                    let svd = gcs_tensor::matrix::TruncatedSvd {
                        u: u.clone(),
                        s: s.clone(),
                        v: v.clone(),
                        rank: *rank,
                    };
                    let mut dense = vec![0.0f32; rows * cols];
                    svd.reconstruct(*rows, *cols, &mut dense)?;
                    match &mut acc {
                        None => acc = Some(dense),
                        Some(a) => {
                            if a.len() != dense.len() {
                                return Err(CompressError::Protocol(
                                    "svd payloads disagree on shape".into(),
                                ));
                            }
                            gcs_tensor::kernels::add_assign(a, &dense);
                        }
                    }
                }
                other => {
                    return Err(CompressError::PayloadKind {
                        expected: "Svd",
                        actual: other.kind_name(),
                    });
                }
            }
        }
        let Some(mut a) = acc else {
            return Err(CompressError::EmptyAggregate);
        };
        let inv = 1.0 / payloads.len() as f32;
        for x in &mut a {
            *x *= inv;
        }
        Ok(Payload::Dense(a))
    }

    fn absorb(&mut self, layer: usize, round: usize, agg: Payload) -> Result<()> {
        if round != 0 {
            return Err(CompressError::Protocol(format!(
                "ATOMO has a single round, got {round}"
            )));
        }
        match agg {
            Payload::Dense(v) => {
                self.pending.insert(layer, v);
                Ok(())
            }
            other => Err(CompressError::PayloadKind {
                expected: "Dense",
                actual: other.kind_name(),
            }),
        }
    }

    fn finish(&mut self, layer: usize, shape: &Shape) -> Result<Tensor> {
        let v = self.pending.remove(&layer).ok_or_else(|| {
            CompressError::Protocol(format!("finish before absorb for layer {layer}"))
        })?;
        Tensor::from_shape_vec(shape.clone(), v).map_err(Into::into)
    }

    fn reset(&mut self) {
        self.pending.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::round_trip;
    use gcs_tensor::matrix::{matmul, MatrixRef};
    use gcs_tensor::stats::relative_l2_error;

    #[test]
    fn rejects_rank_zero() {
        assert!(Atomo::new(0).is_err());
    }

    #[test]
    fn low_rank_gradient_recovered_exactly() {
        let u = Tensor::randn([12, 2], 21).into_vec();
        let v = Tensor::randn([2, 18], 22).into_vec();
        let mut g = vec![0.0f32; 12 * 18];
        matmul(
            MatrixRef::new(&u, 12, 2).unwrap(),
            MatrixRef::new(&v, 2, 18).unwrap(),
            &mut g,
        )
        .unwrap();
        let g = Tensor::from_shape_vec([12, 18], g).unwrap();
        let mut c = Atomo::new(2).unwrap().svd_iterations(20);
        let out = round_trip(&mut c, 0, &g).unwrap();
        let err = relative_l2_error(&g, &out);
        assert!(err < 1e-2, "relative error {err}");
    }

    #[test]
    fn higher_rank_is_more_accurate() {
        let g = Tensor::randn([20, 30], 23);
        let err_at = |rank: usize| {
            let mut c = Atomo::new(rank).unwrap().svd_iterations(15);
            let out = round_trip(&mut c, 0, &g).unwrap();
            relative_l2_error(&g, &out)
        };
        let e2 = err_at(2);
        let e8 = err_at(8);
        let e20 = err_at(20);
        assert!(e8 < e2, "rank 8 ({e8}) should beat rank 2 ({e2})");
        assert!(e20 < 0.05, "full rank should be near exact: {e20}");
    }

    #[test]
    fn compressed_bytes_include_singular_values() {
        let c = Atomo::new(4).unwrap();
        let shape = Shape::new(vec![100, 200]);
        assert_eq!(c.compressed_bytes(&shape), (100 * 4 + 4 + 200 * 4) * 4);
    }

    #[test]
    fn table1_says_not_all_reducible_but_layerwise() {
        let p = Atomo::new(4).unwrap().properties();
        assert!(!p.all_reducible);
        assert!(p.layerwise);
    }

    #[test]
    fn multiworker_aggregate_averages_reconstructions() {
        let g1 = Tensor::randn([6, 6], 31);
        let g2 = g1.scaled(3.0);
        let mut workers = vec![
            Atomo::new(6).unwrap().svd_iterations(20),
            Atomo::new(6).unwrap().svd_iterations(20),
        ];
        // Full-rank SVD on both: mean should be (g1 + 3 g1)/2 = 2 g1.
        let outs =
            crate::driver::all_reduce_compressed(&mut workers, 0, &[g1.clone(), g2]).unwrap();
        let expected = g1.scaled(2.0);
        let err = relative_l2_error(&expected, &outs[0]);
        assert!(err < 0.05, "mean reconstruction error {err}");
    }
}
