//! Natural compression (Horváth et al., 2019 — citation \[30\] in the
//! paper's quantization survey).
//!
//! Each element is rounded to a signed power of two, *stochastically* so
//! the quantizer is unbiased: `x = ±2^e·(1+f)` rounds up to `±2^(e+1)`
//! with probability `f/1` (in log space: proportional split between the
//! bracketing powers). One sign bit + one exponent byte per element
//! (≈ 3.5–4x compression) and extremely cheap encode — the design point
//! the paper's Figure 13 argues for (minimal encode cost, moderate
//! compression).
//!
//! Exponent codes travel as `i8`: `code = 0` means zero, otherwise
//! `value = sign(code) * 2^(|code| - BIAS)` with `|code| in 1..=127`,
//! covering magnitudes from `2^-63` to `2^63`.

use crate::{CompressError, Compressor, Payload, Properties, Result};
use gcs_tensor::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Exponent bias: `|code| - BIAS` is the power of two.
const BIAS: i32 = 64;

/// Encodes one value to its stochastic power-of-two code.
fn encode_value(x: f32, rng: &mut StdRng) -> i8 {
    if x == 0.0 || !x.is_finite() {
        return 0;
    }
    let mag = x.abs();
    let e_low = mag.log2().floor();
    let low = 2.0f32.powf(e_low);
    let high = low * 2.0;
    // P(round up) chosen so E[decode] = mag: p*high + (1-p)*low = mag.
    let p_up = (mag - low) / (high - low);
    let e = if rng.gen::<f32>() < p_up {
        e_low + 1.0
    } else {
        e_low
    };
    let code = (e as i32 + BIAS).clamp(1, 127);
    if x >= 0.0 {
        code as i8
    } else {
        (-code) as i8
    }
}

/// Decodes one power-of-two code.
fn decode_value(code: i8) -> f32 {
    if code == 0 {
        return 0.0;
    }
    let sign = if code > 0 { 1.0f32 } else { -1.0 };
    let e = i32::from(code.unsigned_abs()) - BIAS;
    sign * 2.0f32.powi(e)
}

/// Natural (power-of-two) compression.
#[derive(Debug)]
pub struct NaturalCompression {
    rng: StdRng,
    pending: HashMap<usize, Vec<f32>>,
}

impl Default for NaturalCompression {
    fn default() -> Self {
        Self::new()
    }
}

impl NaturalCompression {
    /// Creates a natural-compression quantizer with a fixed default seed.
    pub fn new() -> Self {
        NaturalCompression {
            rng: StdRng::seed_from_u64(0x2a7a),
            pending: HashMap::new(),
        }
    }

    /// Reseeds the stochastic rounding RNG.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng = StdRng::seed_from_u64(seed);
        self
    }
}

impl Compressor for NaturalCompression {
    fn properties(&self) -> Properties {
        Properties {
            name: "Natural compression".to_owned(),
            all_reducible: false,
            layerwise: true,
            rounds: 1,
        }
    }

    fn compressed_bytes(&self, shape: &Shape) -> usize {
        shape.numel() + 4
    }

    fn encode(&mut self, _layer: usize, grad: &Tensor) -> Result<Payload> {
        let levels: Vec<i8> = grad
            .data()
            .iter()
            .map(|&x| encode_value(x, &mut self.rng))
            .collect();
        Ok(Payload::Quantized { scale: 1.0, levels })
    }

    fn aggregate(&self, _round: usize, payloads: &[Payload]) -> Result<Payload> {
        if payloads.is_empty() {
            return Err(CompressError::EmptyAggregate);
        }
        let mut acc: Option<Vec<f32>> = None;
        for p in payloads {
            match p {
                Payload::Quantized { levels, .. } => {
                    let a = acc.get_or_insert_with(|| vec![0.0; levels.len()]);
                    if a.len() != levels.len() {
                        return Err(CompressError::Protocol(
                            "natural payloads disagree on length".into(),
                        ));
                    }
                    for (x, &c) in a.iter_mut().zip(levels) {
                        // Fused decode-and-add: the addend is synthesized
                        // per element, so no bulk kernel applies.
                        *x += decode_value(c); // lint: allow(raw-f32-accumulation)
                    }
                }
                other => {
                    return Err(CompressError::PayloadKind {
                        expected: "Quantized",
                        actual: other.kind_name(),
                    });
                }
            }
        }
        let Some(mut a) = acc else {
            return Err(CompressError::EmptyAggregate);
        };
        let inv = 1.0 / payloads.len() as f32;
        for x in &mut a {
            *x *= inv;
        }
        Ok(Payload::Dense(a))
    }

    fn absorb(&mut self, layer: usize, round: usize, agg: Payload) -> Result<()> {
        if round != 0 {
            return Err(CompressError::Protocol(format!(
                "natural compression has a single round, got {round}"
            )));
        }
        match agg {
            Payload::Dense(v) => {
                self.pending.insert(layer, v);
                Ok(())
            }
            other => Err(CompressError::PayloadKind {
                expected: "Dense",
                actual: other.kind_name(),
            }),
        }
    }

    fn finish(&mut self, layer: usize, shape: &Shape) -> Result<Tensor> {
        let v = self.pending.remove(&layer).ok_or_else(|| {
            CompressError::Protocol(format!("finish before absorb for layer {layer}"))
        })?;
        Tensor::from_shape_vec(shape.clone(), v).map_err(Into::into)
    }

    fn reset(&mut self) {
        self.pending.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::round_trip;

    #[test]
    fn exact_powers_of_two_round_trip_exactly() {
        let g = Tensor::from_vec(vec![1.0, -2.0, 0.5, 4.0, -0.25, 0.0]);
        let mut c = NaturalCompression::new();
        let out = round_trip(&mut c, 0, &g).unwrap();
        assert_eq!(out.data(), g.data());
    }

    #[test]
    fn decoded_values_bracket_the_input() {
        let g = Tensor::from_vec(vec![0.3, -0.7, 1.5, -3.3, 100.0]);
        let mut c = NaturalCompression::new();
        let out = round_trip(&mut c, 0, &g).unwrap();
        for (x, y) in g.data().iter().zip(out.data()) {
            assert_eq!(x.signum(), y.signum(), "sign preserved");
            let r = y.abs() / x.abs();
            assert!(
                (0.5..=2.0).contains(&r),
                "decoded {y} not within a binade of {x}"
            );
        }
    }

    #[test]
    fn quantizer_is_unbiased_in_expectation() {
        let g = Tensor::from_vec(vec![0.3, -0.7, 1.5, 12.0]);
        let mut acc = [0.0f64; 4];
        let trials = 6000;
        let mut c = NaturalCompression::new().with_seed(5);
        for _ in 0..trials {
            let out = round_trip(&mut c, 0, &g).unwrap();
            for (a, &x) in acc.iter_mut().zip(out.data()) {
                *a += f64::from(x);
            }
        }
        for (a, &x) in acc.iter().zip(g.data()) {
            let mean = a / f64::from(trials as u32);
            assert!(
                (mean - f64::from(x)).abs() < 0.04 * f64::from(x.abs()).max(0.1),
                "expected {x}, got {mean}"
            );
        }
    }

    #[test]
    fn compression_is_about_4x() {
        let c = NaturalCompression::new();
        let n = 4096;
        let ratio = (n * 4) as f64 / c.compressed_bytes(&Shape::new(vec![n])) as f64;
        assert!(ratio > 3.9, "ratio {ratio}");
    }

    #[test]
    fn extreme_magnitudes_clamp_without_panicking() {
        let g = Tensor::from_vec(vec![1e30, -1e30, 1e-30, f32::MIN_POSITIVE]);
        let mut c = NaturalCompression::new();
        let out = round_trip(&mut c, 0, &g).unwrap();
        assert!(out.data().iter().all(|x| x.is_finite()));
    }
}
