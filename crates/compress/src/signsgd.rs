//! SignSGD with majority vote (Bernstein et al., 2018).
//!
//! Encode transmits one sign bit per 32-bit element (32x compression), and
//! aggregation is the per-coordinate majority `sign(Σᵢ sign(gᵢ))`. The
//! majority operator is **not associative**, so the method is not
//! all-reduce compatible — in the paper this is what makes its
//! communication grow linearly with worker count (Figure 6).

use crate::chunked::{
    byte_sink, emit_scalar_prefix, ChunkSink, ChunkedEncode, ChunkedHeader, NativeEncode,
};
use crate::payload::TAG_SIGNS;
use crate::{CompressError, Compressor, Payload, Properties, Result};
use gcs_tensor::bits::{MajorityVote, SignBits};
use gcs_tensor::{Shape, Tensor};
use std::collections::HashMap;

/// How decoded signs are scaled back to gradient magnitudes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SignScale {
    /// Decode to `±1` and let the learning rate carry the magnitude — the
    /// original SignSGD formulation.
    #[default]
    Unit,
    /// Decode to `± mean(|g|)` (the EF-SignSGD scaling of Karimireddy et
    /// al.), which preserves the gradient's L1 mass and is required for
    /// error feedback to converge.
    MeanAbs,
}

/// SignSGD with majority-vote aggregation and optional error feedback.
///
/// # Example
///
/// ```
/// use gcs_compress::signsgd::SignSgd;
/// use gcs_compress::{driver::round_trip, Compressor};
/// use gcs_tensor::Tensor;
///
/// # fn main() -> Result<(), gcs_compress::CompressError> {
/// let mut c = SignSgd::new();
/// let g = Tensor::from_vec(vec![0.3, -0.7]);
/// let out = round_trip(&mut c, 0, &g)?;
/// assert_eq!(out.data(), &[1.0, -1.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct SignSgd {
    scale: SignScale,
    error_feedback: bool,
    /// Error-feedback memory per layer.
    residual: HashMap<usize, Tensor>,
    /// Aggregated payload awaiting `finish`.
    pending: HashMap<usize, Payload>,
    /// Scratch for `gradient + residual`, reused across encodes.
    work: Vec<f32>,
}

impl SignSgd {
    /// Creates SignSGD with unit scaling and no error feedback (the variant
    /// benchmarked in the paper).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates EF-SignSGD: mean-absolute scaling plus error feedback.
    pub fn with_error_feedback() -> Self {
        SignSgd {
            scale: SignScale::MeanAbs,
            error_feedback: true,
            ..Self::default()
        }
    }

    /// Sets the decode scaling mode.
    pub fn scale_mode(mut self, scale: SignScale) -> Self {
        self.scale = scale;
        self
    }

    fn scale_for(&self, v: &Tensor) -> f32 {
        match self.scale {
            SignScale::Unit => 1.0,
            SignScale::MeanAbs => {
                if v.numel() == 0 {
                    0.0
                } else {
                    v.l1_norm() / v.numel() as f32
                }
            }
        }
    }
}

impl Compressor for SignSgd {
    fn properties(&self) -> Properties {
        Properties {
            name: if self.error_feedback {
                "EF-SignSGD".to_owned()
            } else {
                "SignSGD".to_owned()
            },
            all_reducible: false,
            layerwise: true,
            rounds: 1,
        }
    }

    fn compressed_bytes(&self, shape: &Shape) -> usize {
        shape.numel().div_ceil(32) * 4 + 4
    }

    fn encode(&mut self, layer: usize, grad: &Tensor) -> Result<Payload> {
        if !self.error_feedback {
            // Fast path: pack directly from the gradient, no copies.
            let bits = SignBits::pack(grad.data());
            let scale = self.scale_for(grad);
            return Ok(Payload::Signs {
                len: bits.len(),
                words: bits.into_words(),
                scale,
            });
        }
        // v = gradient + residual, built in the reusable scratch buffer.
        let numel = grad.numel();
        self.work.clear();
        self.work.extend_from_slice(grad.data());
        if let Some(e) = self.residual.get(&layer) {
            if e.numel() != numel {
                return Err(CompressError::Protocol(format!(
                    "residual shape mismatch for layer {layer}"
                )));
            }
            gcs_tensor::kernels::add_assign(&mut self.work, e.data());
        }
        let bits = SignBits::pack(&self.work);
        let scale = match self.scale {
            SignScale::Unit => 1.0,
            SignScale::MeanAbs => {
                if numel == 0 {
                    0.0
                } else {
                    gcs_tensor::kernels::sum_abs(&self.work) / numel as f32
                }
            }
        };
        // residual = v - decode(bits): decode is `+scale` exactly when
        // `v >= 0` (the pack convention), so it folds into one pass and the
        // old residual tensor's buffer is recycled in place.
        let mut res_vec = match self.residual.remove(&layer) {
            Some(t) if t.numel() == numel => t.into_vec(),
            _ => vec![0.0; numel],
        };
        for (r, &v) in res_vec.iter_mut().zip(&self.work) {
            *r = v - if v >= 0.0 { scale } else { -scale };
        }
        self.residual.insert(
            layer,
            Tensor::from_shape_vec(grad.shape().clone(), res_vec)?,
        );
        Ok(Payload::Signs {
            len: bits.len(),
            words: bits.into_words(),
            scale,
        })
    }

    fn aggregate(&self, _round: usize, payloads: &[Payload]) -> Result<Payload> {
        if payloads.is_empty() {
            return Err(CompressError::EmptyAggregate);
        }
        let mut vote: Option<MajorityVote> = None;
        let mut scale_sum = 0.0f32;
        for p in payloads {
            match p {
                Payload::Signs { words, len, scale } => {
                    let bits = SignBits::from_words(words.clone(), *len);
                    let v = vote.get_or_insert_with(|| MajorityVote::new(*len));
                    v.add(&bits);
                    scale_sum += scale;
                }
                other => {
                    return Err(CompressError::PayloadKind {
                        expected: "Signs",
                        actual: other.kind_name(),
                    });
                }
            }
        }
        let Some(vote) = vote else {
            return Err(CompressError::EmptyAggregate);
        };
        let bits = vote.majority_bits();
        Ok(Payload::Signs {
            len: bits.len(),
            words: bits.words().to_vec(),
            scale: scale_sum / payloads.len() as f32,
        })
    }

    fn absorb(&mut self, layer: usize, round: usize, agg: Payload) -> Result<()> {
        if round != 0 {
            return Err(CompressError::Protocol(format!(
                "SignSGD has a single round, got {round}"
            )));
        }
        match &agg {
            Payload::Signs { .. } => {
                self.pending.insert(layer, agg);
                Ok(())
            }
            other => Err(CompressError::PayloadKind {
                expected: "Signs",
                actual: other.kind_name(),
            }),
        }
    }

    fn finish(&mut self, layer: usize, shape: &Shape) -> Result<Tensor> {
        let agg = self.pending.remove(&layer).ok_or_else(|| {
            CompressError::Protocol(format!("finish before absorb for layer {layer}"))
        })?;
        let Payload::Signs { words, len, scale } = agg else {
            unreachable!("absorb validated the variant");
        };
        let bits = SignBits::from_words(words, len);
        Tensor::from_shape_vec(shape.clone(), bits.unpack(scale)).map_err(Into::into)
    }

    fn reset(&mut self) {
        self.residual.clear();
        self.pending.clear();
    }

    // Streaming: scale and (under EF) the residual fold are computed once
    // at begin; chunks then pack disjoint word-aligned element spans.
    // `SignBits::pack` on a 32-aligned subslice produces exactly the words
    // the monolithic pack would, so no cross-chunk state is needed.
    fn begin_chunked_encode(
        &mut self,
        layer: usize,
        round: usize,
        grad: Option<&Tensor>,
    ) -> Result<ChunkedEncode> {
        let Some(g) = grad else {
            return Ok(ChunkedEncode::whole(self.encode_round(layer, round)?));
        };
        let numel = g.numel();
        let (src, scale) = if !self.error_feedback {
            (g.data().to_vec(), self.scale_for(g))
        } else {
            // Mirror the monolithic EF encode: v = grad + residual, then
            // residual = v - decode(sign(v)) folded in one pass.
            let mut work = g.data().to_vec();
            if let Some(e) = self.residual.get(&layer) {
                if e.numel() != numel {
                    return Err(CompressError::Protocol(format!(
                        "residual shape mismatch for layer {layer}"
                    )));
                }
                gcs_tensor::kernels::add_assign(&mut work, e.data());
            }
            let scale = match self.scale {
                SignScale::Unit => 1.0,
                SignScale::MeanAbs => {
                    if numel == 0 {
                        0.0
                    } else {
                        gcs_tensor::kernels::sum_abs(&work) / numel as f32
                    }
                }
            };
            let mut res_vec = match self.residual.remove(&layer) {
                Some(t) if t.numel() == numel => t.into_vec(),
                _ => vec![0.0; numel],
            };
            for (r, &v) in res_vec.iter_mut().zip(&work) {
                *r = v - if v >= 0.0 { scale } else { -scale };
            }
            self.residual
                .insert(layer, Tensor::from_shape_vec(g.shape().clone(), res_vec)?);
            (work, scale)
        };
        Ok(ChunkedEncode::native(
            ChunkedHeader::Gather {
                bytes: 13 + numel.div_ceil(32) * 4,
                prefix: 13,
                grain: 4,
            },
            NativeEncode {
                src,
                param: scale,
                ..NativeEncode::default()
            },
        ))
    }

    fn encode_chunk(
        &mut self,
        _layer: usize,
        enc: &mut ChunkedEncode,
        lo: usize,
        hi: usize,
        sink: ChunkSink<'_>,
    ) -> Result<()> {
        if !enc.is_native() {
            // Whole-payload stage (e.g. constructed by the default
            // `begin_chunked_encode`): slice the materialized image.
            return enc.emit_staged(lo, hi, sink);
        }
        const PREFIX: usize = 13;
        let state = enc.native_mut()?;
        let out = byte_sink(sink)?;
        let len = state.src.len();
        emit_scalar_prefix(TAG_SIGNS, len as u64, state.param, lo, hi, out);
        let (blo, bhi) = (lo.max(PREFIX) - PREFIX, hi.max(PREFIX) - PREFIX);
        if blo % 4 != 0 || bhi % 4 != 0 {
            return Err(CompressError::Protocol(format!(
                "SignSGD chunk body [{blo}, {bhi}) is not word-aligned"
            )));
        }
        let (elo, ehi) = ((blo / 4) * 32, ((bhi / 4) * 32).min(len));
        for w in SignBits::pack(&state.src[elo..ehi]).into_words() {
            out.extend_from_slice(&w.to_le_bytes());
        }
        Ok(())
    }

    fn take_residual(&mut self, layer: usize) -> Option<Tensor> {
        if !self.error_feedback {
            return None;
        }
        self.residual.remove(&layer)
    }

    fn inject_residual(&mut self, layer: usize, residual: Tensor) -> Result<bool> {
        if !self.error_feedback {
            return Ok(false);
        }
        // Stored flat; `encode` adds by element count (a count mismatch
        // after a layer shape change is rejected there).
        self.residual
            .insert(layer, Tensor::from_vec(residual.into_vec()));
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::all_reduce_compressed;

    #[test]
    fn properties_not_all_reducible() {
        let p = SignSgd::new().properties();
        assert!(!p.all_reducible);
        assert!(p.layerwise);
    }

    #[test]
    fn compression_is_about_32x() {
        let c = SignSgd::new();
        let n = 32 * 1024;
        let bytes = c.compressed_bytes(&Shape::new(vec![n]));
        let ratio = (n * 4) as f64 / bytes as f64;
        assert!(ratio > 31.0 && ratio <= 32.0, "ratio {ratio}");
    }

    #[test]
    fn majority_vote_across_three_workers() {
        // Coordinate 0: 2/3 negative -> -1; coordinate 1: 2/3 positive -> +1.
        let grads = vec![
            Tensor::from_vec(vec![-1.0, 2.0]),
            Tensor::from_vec(vec![-0.5, -0.1]),
            Tensor::from_vec(vec![3.0, 0.4]),
        ];
        let mut workers: Vec<SignSgd> = (0..3).map(|_| SignSgd::new()).collect();
        let outs = all_reduce_compressed(&mut workers, 0, &grads).unwrap();
        for out in &outs {
            assert_eq!(out.data(), &[-1.0, 1.0]);
        }
    }

    #[test]
    fn mean_abs_scale_preserves_l1_mass() {
        let g = Tensor::from_vec(vec![2.0, -2.0, 2.0, -2.0]);
        let mut c = SignSgd::new().scale_mode(SignScale::MeanAbs);
        let out = crate::driver::round_trip(&mut c, 0, &g).unwrap();
        assert!((out.l1_norm() - g.l1_norm()).abs() < 1e-5);
    }

    #[test]
    fn error_feedback_accumulates_residual() {
        // A coordinate whose magnitude is below the mean keeps its residual;
        // compressing twice with EF must track it.
        let g = Tensor::from_vec(vec![0.1, -4.0]);
        let mut c = SignSgd::with_error_feedback();
        let _ = crate::driver::round_trip(&mut c, 0, &g).unwrap();
        let res = c.residual.get(&0).expect("residual stored");
        // residual = g - scale*sign(g), scale = (0.1+4)/2 = 2.05
        assert!((res.data()[0] - (0.1 - 2.05)).abs() < 1e-4);
        assert!((res.data()[1] - (-4.0 + 2.05)).abs() < 1e-4);
    }

    #[test]
    fn ef_residual_plus_decoded_equals_input() {
        let g = Tensor::randn([128], 9);
        let mut c = SignSgd::with_error_feedback();
        let p = c.encode(0, &g).unwrap();
        let agg = c.aggregate(0, std::slice::from_ref(&p)).unwrap();
        c.absorb(0, 0, agg).unwrap();
        let out = c.finish(0, g.shape()).unwrap();
        let res = c.residual.get(&0).unwrap();
        let sum = out.add(res).unwrap();
        let err = gcs_tensor::stats::relative_l2_error(&g, &sum);
        assert!(
            err < 1e-5,
            "decode + residual must reconstruct input: {err}"
        );
    }

    #[test]
    fn aggregate_rejects_foreign_payloads() {
        let c = SignSgd::new();
        assert!(c.aggregate(0, &[Payload::Dense(vec![1.0])]).is_err());
        assert!(c.aggregate(0, &[]).is_err());
    }
}
