//! Chunk-granular streaming payloads: the `ChunkedEncode` / `ChunkedDecode`
//! surface that lets a compressor emit and consume a payload as an ordered
//! sequence of wire chunks instead of one monolithic blob.
//!
//! The streaming engine in `gcs-ddp` drives the protocol per (bucket,
//! round):
//!
//! ```text
//! begin_chunked_encode(layer, round, grad)      -> ChunkedEncode + header
//! encode_chunk(layer, enc, lo, hi, sink)*       -> wire chunk [lo, hi)
//! begin_chunked_decode(layer, round, header, p) -> ChunkedDecode
//! decode_chunk(layer, dec, lo, hi, data)*       -> absorb reduced chunk
//! finish_chunked_decode(layer, round, dec)      -> Compressor::absorb
//! ```
//!
//! Chunk coordinates are **element offsets into the payload's f32 image**
//! for summable payloads (what the ring all-reduce sums) and **byte
//! offsets into the serialized wire image** for gather payloads. Spans are
//! contiguous, in order, and cover the image exactly — so concatenating
//! the chunks reproduces the monolithic payload bit for bit, which is what
//! makes the streaming datapath bit-identical to the monolithic one.
//!
//! Every [`Compressor`](crate::Compressor) gets a correct default: the
//! payload is materialized once at `begin_chunked_encode` and sliced into
//! spans. Schemes with element-wise codecs (SignSGD, QSGD, TernGrad, FP16,
//! Top-K, Random-K) override the surface to do the actual encode work
//! *inside* `encode_chunk`, so encoding chunk `i+1` genuinely overlaps the
//! wire time of chunk `i`; PowerSGD streams its `P` factor as row panels,
//! running the GEMM lazily as chunks are pulled.
//!
//! # Cross-rank pairing invariant
//!
//! All ranks must submit the same number of chunks per (bucket, round).
//! For summable payloads the chunk count derives from the header's element
//! count, which is shape-determined for every summable payload kind. For
//! gather payloads the engine derives the chunk count from the scheme's
//! analytic [`compressed_bytes`](crate::Compressor::compressed_bytes)
//! (also shape-determined) and each rank splits its *actual* wire image
//! into exactly that many grain-aligned spans — possibly empty or uneven,
//! which the all-gather tolerates because frames carry their own lengths.

use crate::{CompressError, Factor, Payload, Result};
use gcs_tensor::f16::{encode_f16, f16_bits_to_f32, f32_to_f16_bits};

/// The reassembly recipe for a summable payload: everything except the f32
/// content that actually rides the ring.
#[derive(Debug, Clone, PartialEq)]
pub enum PayloadShell {
    /// Rebuilds [`Payload::Dense`].
    Dense,
    /// Rebuilds [`Payload::Half`] by re-rounding the reduced f32 image.
    Half,
    /// Rebuilds [`Payload::Factor`].
    Factor {
        /// Which factor this is.
        which: Factor,
        /// Rows of the factor.
        rows: usize,
        /// Columns of the factor.
        cols: usize,
    },
    /// Rebuilds [`Payload::SharedSparse`].
    SharedSparse {
        /// Length of the underlying dense vector.
        len: usize,
        /// Seed identifying the shared coordinate set.
        seed: u64,
    },
}

impl PayloadShell {
    /// The shell of a summable payload, or `None` for gather payloads.
    pub fn of(payload: &Payload) -> Option<PayloadShell> {
        match payload {
            Payload::Dense(_) => Some(PayloadShell::Dense),
            Payload::Half(_) => Some(PayloadShell::Half),
            Payload::Factor {
                which, rows, cols, ..
            } => Some(PayloadShell::Factor {
                which: *which,
                rows: *rows,
                cols: *cols,
            }),
            Payload::SharedSparse { len, seed, .. } => Some(PayloadShell::SharedSparse {
                len: *len,
                seed: *seed,
            }),
            _ => None,
        }
    }

    /// Rebuilds the payload around a reduced f32 image — the inverse of the
    /// decomposition the pipelined engine performs before the ring.
    pub fn assemble(&self, data: Vec<f32>) -> Payload {
        match self {
            PayloadShell::Dense => Payload::Dense(data),
            PayloadShell::Half => Payload::Half(encode_f16(&data)),
            PayloadShell::Factor { which, rows, cols } => Payload::Factor {
                which: *which,
                rows: *rows,
                cols: *cols,
                data,
            },
            PayloadShell::SharedSparse { len, seed } => Payload::SharedSparse {
                len: *len,
                seed: *seed,
                values: data,
            },
        }
    }
}

/// What a chunked payload looks like on the wire — everything the engine
/// needs to schedule its chunks before any chunk exists.
#[derive(Debug, Clone, PartialEq)]
pub enum ChunkedHeader {
    /// A summable payload: `elems` f32 values ride the ring all-reduce in
    /// element-offset spans; `shell` rebuilds the payload on the far side.
    Summable {
        /// Reassembly recipe.
        shell: PayloadShell,
        /// Length of the f32 image (shape-determined for every summable
        /// payload kind, so all ranks agree on the chunk count).
        elems: usize,
    },
    /// A gather payload: `bytes` serialized bytes travel in byte-offset
    /// spans through the all-gather.
    Gather {
        /// Actual length of this rank's wire image.
        bytes: usize,
        /// Length of the scalar header prefix (tag + lengths + scales);
        /// chunk 0 always carries the whole prefix.
        prefix: usize,
        /// Alignment (in bytes) native emitters need for interior span
        /// boundaries (e.g. 4 for packed sign words). Decode concatenates,
        /// so it is grain-agnostic.
        grain: usize,
    },
}

impl ChunkedHeader {
    /// Number of f32 elements (summable) or bytes (gather) being streamed.
    pub fn image_len(&self) -> usize {
        match self {
            ChunkedHeader::Summable { elems, .. } => *elems,
            ChunkedHeader::Gather { bytes, .. } => *bytes,
        }
    }
}

/// Splits `[0, image_len)` into `chunks` in-order contiguous spans for a
/// chunked header: equal `chunk` element spans for summable payloads
/// (matching the segmented ring's schedule) and grain-aligned byte spans
/// for gather payloads (chunk 0 carries the prefix; spans may be empty
/// when the actual image is smaller than the agreed chunk count).
pub fn chunk_spans(header: &ChunkedHeader, chunks: usize) -> Vec<(usize, usize)> {
    let chunks = chunks.max(1);
    match *header {
        ChunkedHeader::Summable { elems, .. } => {
            let c = elems.div_ceil(chunks).max(1);
            (0..chunks)
                .map(|j| ((j * c).min(elems), ((j + 1) * c).min(elems)))
                .collect()
        }
        ChunkedHeader::Gather {
            bytes,
            prefix,
            grain,
        } => {
            let grain = grain.max(1);
            let body = bytes.saturating_sub(prefix);
            let bound = |j: usize| {
                if j == 0 {
                    0
                } else if j >= chunks {
                    bytes
                } else {
                    // Integer interpolation rounded down to the grain keeps
                    // boundaries monotone and rank-deterministic even when
                    // actual byte counts differ across ranks.
                    prefix + (body * j / chunks) / grain * grain
                }
            };
            (0..chunks).map(|j| (bound(j), bound(j + 1))).collect()
        }
    }
}

/// The engine-side split: spans sized by a chunk *size* rather than a
/// chunk count. Summable spans are exactly the staggered chunked ring's
/// segment schedule (`(g·c, min((g+1)·c, n))`) — submitting each span as
/// its own plain ring is therefore bit-identical to handing the whole
/// image to `ring_all_reduce_chunked` with `chunk_elems = c`. Gather
/// spans derive their count from the scheme's *analytic* byte size
/// (`compressed_bytes`, shape-determined) so every rank agrees on the
/// chunk count even when actual wire bytes differ (DGC, variance-based);
/// the spans themselves split this rank's actual image.
pub fn wire_chunk_spans(
    header: &ChunkedHeader,
    chunk_elems: usize,
    analytic_bytes: usize,
) -> Vec<(usize, usize)> {
    let c = chunk_elems.max(1);
    match *header {
        ChunkedHeader::Summable { elems, .. } => (0..elems.div_ceil(c).max(1))
            .map(|g| ((g * c).min(elems), ((g + 1) * c).min(elems)))
            .collect(),
        ChunkedHeader::Gather { .. } => {
            let count = analytic_bytes.div_ceil(c * 4).max(1);
            chunk_spans(header, count)
        }
    }
}

/// In-progress chunked encode state for one (layer, round).
#[derive(Debug)]
pub struct ChunkedEncode {
    header: ChunkedHeader,
    stage: EncodeStage,
}

#[derive(Debug)]
enum EncodeStage {
    /// Default path: the payload was materialized at begin and is sliced
    /// into spans (`wire` holds the serialization for gather payloads).
    Whole { payload: Payload, wire: Vec<u8> },
    /// Native path: the scheme encodes inside `encode_chunk`, staging
    /// whatever it needs here (meaning is scheme-defined).
    Native(NativeEncode),
}

/// Scheme-owned staging for a native chunked encode. The fields are
/// deliberately generic — each scheme documents its own meaning:
/// `src` is typically the (residual-corrected) f32 source, `aux` holds
/// u32 side data (Top-K/Random-K indices, sign-word scratch), `param` a
/// per-payload scalar (scale / norm), and `cursor` the number of elements
/// consumed so far (RNG-bearing schemes use it to enforce in-order spans).
#[derive(Debug, Default)]
pub struct NativeEncode {
    /// f32 source staging.
    pub src: Vec<f32>,
    /// u32 side data / scratch.
    pub aux: Vec<u32>,
    /// Pre-serialized wire prefix for schemes whose scalar header does not
    /// fit the 13-byte `emit_scalar_prefix` shape (Sparse's 17-byte one).
    pub prefix: Vec<u8>,
    /// Per-payload scalar (scale, norm, …).
    pub param: f32,
    /// Elements consumed so far.
    pub cursor: usize,
}

impl ChunkedEncode {
    /// Default construction: materialize `payload` now, slice spans later.
    /// Gather payloads are serialized here so `encode_chunk` is a memcpy.
    pub fn whole(payload: Payload) -> ChunkedEncode {
        match PayloadShell::of(&payload) {
            Some(shell) => {
                let elems = summable_elems(&payload);
                ChunkedEncode {
                    header: ChunkedHeader::Summable { shell, elems },
                    stage: EncodeStage::Whole {
                        payload,
                        wire: Vec::new(),
                    },
                }
            }
            None => {
                let mut wire = Vec::new();
                payload.write_bytes(&mut wire);
                let (prefix, grain) = gather_layout(&payload);
                ChunkedEncode {
                    header: ChunkedHeader::Gather {
                        bytes: wire.len(),
                        prefix,
                        grain,
                    },
                    stage: EncodeStage::Whole { payload, wire },
                }
            }
        }
    }

    /// Native construction: the scheme will produce spans on demand.
    pub fn native(header: ChunkedHeader, state: NativeEncode) -> ChunkedEncode {
        ChunkedEncode {
            header,
            stage: EncodeStage::Native(state),
        }
    }

    /// The wire header of this encode.
    pub fn header(&self) -> &ChunkedHeader {
        &self.header
    }

    /// Whether the scheme opted into native chunk emission.
    pub fn is_native(&self) -> bool {
        matches!(self.stage, EncodeStage::Native(_))
    }

    /// Mutable access to native staging (for scheme `encode_chunk`
    /// overrides).
    ///
    /// # Errors
    ///
    /// Protocol error when this encode is on the default whole-payload path.
    pub fn native_mut(&mut self) -> Result<&mut NativeEncode> {
        match &mut self.stage {
            EncodeStage::Native(n) => Ok(n),
            EncodeStage::Whole { .. } => Err(CompressError::Protocol(
                "chunked encode is not native".into(),
            )),
        }
    }

    /// Emits span `[lo, hi)` from a whole-payload stage — the default
    /// `encode_chunk` body.
    ///
    /// # Errors
    ///
    /// Protocol error on a native stage, out-of-range spans, or a sink
    /// kind that does not match the header.
    pub fn emit_staged(&mut self, lo: usize, hi: usize, sink: ChunkSink<'_>) -> Result<()> {
        let EncodeStage::Whole { payload, wire } = &self.stage else {
            return Err(CompressError::Protocol(
                "native chunked encode routed to the default emitter".into(),
            ));
        };
        check_span(lo, hi, self.header.image_len())?;
        match sink {
            ChunkSink::F32(out) => {
                let image: &[f32] = match payload {
                    Payload::Dense(v) => v,
                    Payload::Factor { data, .. } => data,
                    Payload::SharedSparse { values, .. } => values,
                    Payload::Half(h) => {
                        // The f32 image of a Half payload is its decode;
                        // element-wise, so a span decode matches a span of
                        // the full decode bitwise.
                        out.extend(h[lo..hi].iter().map(|&b| f16_bits_to_f32(b)));
                        return Ok(());
                    }
                    other => {
                        return Err(CompressError::PayloadKind {
                            expected: "summable payload for an f32 chunk sink",
                            actual: other.kind_name(),
                        });
                    }
                };
                out.extend_from_slice(&image[lo..hi]);
                Ok(())
            }
            ChunkSink::Bytes(out) => {
                out.extend_from_slice(&wire[lo..hi]);
                Ok(())
            }
        }
    }
}

/// Destination of one encoded chunk: f32 values for summable payloads,
/// raw wire bytes for gather payloads. The engine hands in a cleared
/// recycled buffer; emitters append.
pub enum ChunkSink<'a> {
    /// f32 span of a summable payload's image.
    F32(&'a mut Vec<f32>),
    /// Byte span of a gather payload's wire image.
    Bytes(&'a mut Vec<u8>),
}

/// Unwraps an f32 chunk sink (native emitters of summable schemes).
///
/// # Errors
///
/// Protocol error when the engine handed a byte sink instead.
pub fn f32_sink<'a>(sink: ChunkSink<'a>) -> Result<&'a mut Vec<f32>> {
    match sink {
        ChunkSink::F32(out) => Ok(out),
        ChunkSink::Bytes(_) => Err(CompressError::Protocol(
            "expected an f32 chunk sink for a summable payload".into(),
        )),
    }
}

/// Unwraps a byte chunk sink (native emitters of gather schemes).
///
/// # Errors
///
/// Protocol error when the engine handed an f32 sink instead.
pub fn byte_sink<'a>(sink: ChunkSink<'a>) -> Result<&'a mut Vec<u8>> {
    match sink {
        ChunkSink::Bytes(out) => Ok(out),
        ChunkSink::F32(_) => Err(CompressError::Protocol(
            "expected a byte chunk sink for a gather payload".into(),
        )),
    }
}

/// The reduced wire content of one chunk on the decode side.
pub enum ChunkData<'a> {
    /// Mean-reduced f32 span of a summable payload.
    F32(&'a [f32]),
    /// Per-rank byte spans of a gathered payload (rank order).
    Frames(&'a [&'a [u8]]),
}

/// In-progress chunked decode state for one (layer, round).
#[derive(Debug)]
pub struct ChunkedDecode {
    stage: DecodeStage,
}

#[derive(Debug)]
enum DecodeStage {
    /// Default path for summable payloads: assemble the reduced f32 image,
    /// rebuild the payload at finish.
    Summable { shell: PayloadShell, data: Vec<f32> },
    /// Default path for gather payloads: concatenate per-rank byte spans,
    /// deserialize + aggregate at finish.
    Gather { parts: Vec<Vec<u8>> },
    /// FP16 native: re-round each reduced span to f16 bits as it lands.
    Half { pending: Vec<u16> },
}

impl ChunkedDecode {
    /// Default construction from a header (`world` sizes the gather parts).
    pub fn staged(header: &ChunkedHeader, world: usize) -> ChunkedDecode {
        let stage = match header {
            ChunkedHeader::Summable { shell, elems } => DecodeStage::Summable {
                shell: shell.clone(),
                data: vec![0.0; *elems],
            },
            ChunkedHeader::Gather { bytes, .. } => DecodeStage::Gather {
                parts: (0..world).map(|_| Vec::with_capacity(*bytes)).collect(),
            },
        };
        ChunkedDecode { stage }
    }

    /// FP16 native construction: chunk-wise re-rounding into f16 bits.
    pub fn half(elems: usize) -> ChunkedDecode {
        ChunkedDecode {
            stage: DecodeStage::Half {
                pending: vec![0; elems],
            },
        }
    }

    /// Absorbs one reduced chunk — the default `decode_chunk` body.
    ///
    /// # Errors
    ///
    /// Protocol error on span/stage mismatches.
    pub fn absorb_staged(&mut self, lo: usize, hi: usize, data: ChunkData<'_>) -> Result<()> {
        match (&mut self.stage, data) {
            (DecodeStage::Summable { data: image, .. }, ChunkData::F32(span)) => {
                check_span(lo, hi, image.len())?;
                check_len(hi - lo, span.len())?;
                image[lo..hi].copy_from_slice(span);
                Ok(())
            }
            (DecodeStage::Half { pending }, ChunkData::F32(span)) => {
                check_span(lo, hi, pending.len())?;
                check_len(hi - lo, span.len())?;
                for (slot, &x) in pending[lo..hi].iter_mut().zip(span) {
                    *slot = f32_to_f16_bits(x);
                }
                Ok(())
            }
            (DecodeStage::Gather { parts }, ChunkData::Frames(frames)) => {
                check_len(parts.len(), frames.len())?;
                for (part, frame) in parts.iter_mut().zip(frames) {
                    part.extend_from_slice(frame);
                }
                Ok(())
            }
            _ => Err(CompressError::Protocol(
                "chunk data kind does not match the decode stage".into(),
            )),
        }
    }

    /// Finishes the default decode: rebuilds the payload (summable) or
    /// deserializes + aggregates (gather) and absorbs through `compressor`.
    ///
    /// # Errors
    ///
    /// Propagates wire, aggregate, and absorb errors.
    pub fn finish_staged<C: crate::Compressor + ?Sized>(
        self,
        compressor: &mut C,
        layer: usize,
        round: usize,
    ) -> Result<()> {
        match self.stage {
            DecodeStage::Summable { shell, data } => {
                compressor.absorb(layer, round, shell.assemble(data))
            }
            DecodeStage::Half { pending } => {
                compressor.absorb(layer, round, Payload::Half(pending))
            }
            DecodeStage::Gather { parts } => {
                let payloads: Vec<Payload> = parts
                    .iter()
                    .map(|b| Payload::from_bytes(b))
                    .collect::<Result<_>>()?;
                let agg = compressor.aggregate(round, &payloads)?;
                compressor.absorb(layer, round, agg)
            }
        }
    }
}

/// Length of a summable payload's f32 image.
fn summable_elems(payload: &Payload) -> usize {
    match payload {
        Payload::Dense(v) => v.len(),
        Payload::Half(h) => h.len(),
        Payload::Factor { data, .. } => data.len(),
        Payload::SharedSparse { values, .. } => values.len(),
        _ => 0,
    }
}

/// `(prefix, grain)` of a gather payload's wire image: the scalar header
/// length and the alignment native emitters need for interior boundaries.
fn gather_layout(payload: &Payload) -> (usize, usize) {
    match payload {
        // tag + len u64 + k u64; indices and values are 4-byte words.
        Payload::Sparse { .. } => (17, 4),
        // tag + len u64 + scale f32; packed sign words are 4-byte.
        Payload::Signs { .. } => (13, 4),
        // tag + len u64 + scale f32; one byte per element.
        Payload::Quantized { .. } => (13, 1),
        // tag + len u64 + scale f32; one byte per 4 elements.
        Payload::Ternary { .. } => (13, 1),
        // tag + rows/cols/rank u64s; f32 regions.
        Payload::Svd { .. } => (25, 4),
        // tag + len u64 + neg/pos f32s; packed words.
        Payload::TwoScale { .. } => (17, 4),
        // Summable kinds never take the gather path; a conservative layout
        // keeps the function total.
        _ => (0, 1),
    }
}

fn check_span(lo: usize, hi: usize, len: usize) -> Result<()> {
    if lo > hi || hi > len {
        return Err(CompressError::Protocol(format!(
            "chunk span [{lo}, {hi}) out of range for image of {len}"
        )));
    }
    Ok(())
}

fn check_len(a: usize, b: usize) -> Result<()> {
    if a != b {
        return Err(CompressError::Protocol(format!(
            "chunk length mismatch: {a} vs {b}"
        )));
    }
    Ok(())
}

/// Serializes the 13-byte Signs/Quantized/Ternary-style prefix
/// `tag · len:u64 · scale:f32` and appends the bytes of it that fall in
/// `[lo, hi)` to `out`. Native byte emitters call this for chunk 0 (and
/// it is a no-op for later chunks, whose `lo >= prefix`).
pub fn emit_scalar_prefix(tag: u8, len: u64, scale: f32, lo: usize, hi: usize, out: &mut Vec<u8>) {
    let mut prefix = [0u8; 13];
    prefix[0] = tag;
    prefix[1..9].copy_from_slice(&len.to_le_bytes());
    prefix[9..13].copy_from_slice(&scale.to_le_bytes());
    emit_prefix_span(&prefix, lo, hi, out);
}

/// Appends the bytes of `prefix` that fall in the wire span `[lo, hi)`.
pub fn emit_prefix_span(prefix: &[u8], lo: usize, hi: usize, out: &mut Vec<u8>) {
    if lo < prefix.len() {
        out.extend_from_slice(&prefix[lo..hi.min(prefix.len())]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whole_summable_spans_reassemble_bitwise() {
        let payload = Payload::Dense((0..97).map(|i| i as f32 * 0.5 - 3.0).collect());
        let mut enc = ChunkedEncode::whole(payload.clone());
        let spans = chunk_spans(enc.header(), 7);
        let mut image = Vec::new();
        for &(lo, hi) in &spans {
            let mut chunk = Vec::new();
            enc.emit_staged(lo, hi, ChunkSink::F32(&mut chunk)).unwrap();
            image.extend_from_slice(&chunk);
        }
        assert_eq!(Payload::Dense(image), payload);
    }

    #[test]
    fn whole_gather_spans_reassemble_wire_image() {
        let payload = Payload::Signs {
            words: (0..9).collect(),
            len: 270,
            scale: 0.25,
        };
        let wire = payload.to_bytes();
        for chunks in [1usize, 2, 3, 5, 50] {
            let mut enc = ChunkedEncode::whole(payload.clone());
            let spans = chunk_spans(enc.header(), chunks);
            assert_eq!(spans.len(), chunks.max(1));
            assert_eq!(spans[0].0, 0);
            assert_eq!(spans.last().unwrap().1, wire.len());
            let mut out = Vec::new();
            for &(lo, hi) in &spans {
                assert!(lo <= hi);
                let mut chunk = Vec::new();
                enc.emit_staged(lo, hi, ChunkSink::Bytes(&mut chunk))
                    .unwrap();
                out.extend_from_slice(&chunk);
            }
            assert_eq!(out, wire);
            assert_eq!(Payload::from_bytes(&out).unwrap(), payload);
        }
    }

    #[test]
    fn gather_spans_are_grain_aligned_after_prefix() {
        let header = ChunkedHeader::Gather {
            bytes: 13 + 4 * 11,
            prefix: 13,
            grain: 4,
        };
        let spans = chunk_spans(&header, 4);
        for &(lo, hi) in &spans[1..] {
            assert_eq!((lo - 13) % 4, 0, "interior boundary must be word-aligned");
            assert!(hi >= lo);
        }
    }

    #[test]
    fn gather_spans_tolerate_more_chunks_than_bytes() {
        let header = ChunkedHeader::Gather {
            bytes: 15,
            prefix: 13,
            grain: 1,
        };
        let spans = chunk_spans(&header, 8);
        assert_eq!(spans.len(), 8);
        assert_eq!(spans[0].0, 0);
        assert_eq!(spans.last().unwrap().1, 15);
        let covered: usize = spans.iter().map(|&(lo, hi)| hi - lo).sum();
        assert_eq!(covered, 15);
    }

    #[test]
    fn staged_decode_roundtrips_summable() {
        use crate::none::NoCompression;
        use crate::Compressor;
        let data: Vec<f32> = (0..40).map(|i| i as f32 - 20.0).collect();
        let header = ChunkedHeader::Summable {
            shell: PayloadShell::Dense,
            elems: data.len(),
        };
        let mut dec = ChunkedDecode::staged(&header, 3);
        for &(lo, hi) in &chunk_spans(&header, 3) {
            dec.absorb_staged(lo, hi, ChunkData::F32(&data[lo..hi]))
                .unwrap();
        }
        let mut c = NoCompression::new();
        dec.finish_staged(&mut c, 0, 0).unwrap();
        let out = c.finish(0, &gcs_tensor::Shape::new(vec![40])).unwrap();
        assert_eq!(out.data(), &data[..]);
    }

    #[test]
    fn prefix_span_emitter_is_exact() {
        let mut full = Vec::new();
        emit_scalar_prefix(5, 270, 0.25, 0, 13, &mut full);
        let reference = {
            let mut v = vec![5u8];
            v.extend_from_slice(&270u64.to_le_bytes());
            v.extend_from_slice(&0.25f32.to_le_bytes());
            v
        };
        assert_eq!(full, reference);
        // Split emission at every boundary must concatenate to the same.
        for cut in 0..=13 {
            let mut a = Vec::new();
            emit_scalar_prefix(5, 270, 0.25, 0, cut, &mut a);
            emit_scalar_prefix(5, 270, 0.25, cut, 13, &mut a);
            assert_eq!(a, reference);
        }
        // Past-prefix spans are no-ops.
        let mut b = Vec::new();
        emit_prefix_span(&full, 13, 40, &mut b);
        assert!(b.is_empty());
    }
}
