//! TernGrad ternary quantization (Wen et al., 2017).
//!
//! Elements are stochastically quantized to `{-1, 0, +1} · max|g|`,
//! transmitted 2 bits per element (16x compression). Per-worker scales make
//! the aggregation non-associative (Table 1: not all-reducible).

use crate::chunked::{
    byte_sink, emit_scalar_prefix, ChunkSink, ChunkedEncode, ChunkedHeader, NativeEncode,
};
use crate::payload::TAG_TERNARY;
use crate::{CompressError, Compressor, Payload, Properties, Result};
use gcs_tensor::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// 2-bit codes used in the packed representation.
const CODE_ZERO: u8 = 0b00;
const CODE_POS: u8 = 0b01;
const CODE_NEG: u8 = 0b10;

/// Packs ternary values (one of the `CODE_*` constants) four per byte.
fn pack_ternary(codes: &[u8]) -> Vec<u8> {
    let mut out = vec![0u8; codes.len().div_ceil(4)];
    for (i, &c) in codes.iter().enumerate() {
        out[i / 4] |= (c & 0b11) << ((i % 4) * 2);
    }
    out
}

/// Unpacks `len` ternary codes.
fn unpack_ternary(packed: &[u8], len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (packed[i / 4] >> ((i % 4) * 2)) & 0b11)
        .collect()
}

/// TernGrad compressor.
#[derive(Debug)]
pub struct TernGrad {
    rng: StdRng,
    pending: HashMap<usize, Vec<f32>>,
}

impl Default for TernGrad {
    fn default() -> Self {
        Self::new()
    }
}

impl TernGrad {
    /// Creates a TernGrad compressor with a fixed default RNG seed.
    pub fn new() -> Self {
        TernGrad {
            rng: StdRng::seed_from_u64(0x7e47),
            pending: HashMap::new(),
        }
    }

    /// Reseeds the stochastic quantization RNG (use the worker rank).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng = StdRng::seed_from_u64(seed);
        self
    }
}

impl Compressor for TernGrad {
    fn properties(&self) -> Properties {
        Properties {
            name: "TernGrad".to_owned(),
            all_reducible: false,
            layerwise: true,
            rounds: 1,
        }
    }

    fn compressed_bytes(&self, shape: &Shape) -> usize {
        shape.numel().div_ceil(4) + 4
    }

    fn encode(&mut self, _layer: usize, grad: &Tensor) -> Result<Payload> {
        let scale = grad.linf_norm();
        let len = grad.numel();
        if scale == 0.0 {
            return Ok(Payload::Ternary {
                len,
                scale: 0.0,
                packed: vec![0; len.div_ceil(4)],
            });
        }
        let codes: Vec<u8> = grad
            .data()
            .iter()
            .map(|&x| {
                // P(keep sign) = |x| / scale; unbiased: E = x.
                if self.rng.gen::<f32>() < x.abs() / scale {
                    if x >= 0.0 {
                        CODE_POS
                    } else {
                        CODE_NEG
                    }
                } else {
                    CODE_ZERO
                }
            })
            .collect();
        Ok(Payload::Ternary {
            len,
            scale,
            packed: pack_ternary(&codes),
        })
    }

    fn aggregate(&self, _round: usize, payloads: &[Payload]) -> Result<Payload> {
        if payloads.is_empty() {
            return Err(CompressError::EmptyAggregate);
        }
        let mut acc: Option<Vec<f32>> = None;
        for p in payloads {
            match p {
                Payload::Ternary { len, scale, packed } => {
                    let codes = unpack_ternary(packed, *len);
                    let a = acc.get_or_insert_with(|| vec![0.0; *len]);
                    if a.len() != *len {
                        return Err(CompressError::Protocol(
                            "ternary payloads disagree on length".into(),
                        ));
                    }
                    for (x, c) in a.iter_mut().zip(&codes) {
                        // Fused decode-and-add: the addend is synthesized
                        // per element, so no bulk kernel applies.
                        // lint: allow(raw-f32-accumulation)
                        *x += match *c {
                            CODE_POS => *scale,
                            CODE_NEG => -*scale,
                            _ => 0.0,
                        };
                    }
                }
                other => {
                    return Err(CompressError::PayloadKind {
                        expected: "Ternary",
                        actual: other.kind_name(),
                    });
                }
            }
        }
        let Some(mut a) = acc else {
            return Err(CompressError::EmptyAggregate);
        };
        let inv = 1.0 / payloads.len() as f32;
        for x in &mut a {
            *x *= inv;
        }
        Ok(Payload::Dense(a))
    }

    fn absorb(&mut self, layer: usize, round: usize, agg: Payload) -> Result<()> {
        if round != 0 {
            return Err(CompressError::Protocol(format!(
                "TernGrad has a single round, got {round}"
            )));
        }
        match agg {
            Payload::Dense(v) => {
                self.pending.insert(layer, v);
                Ok(())
            }
            other => Err(CompressError::PayloadKind {
                expected: "Dense",
                actual: other.kind_name(),
            }),
        }
    }

    fn finish(&mut self, layer: usize, shape: &Shape) -> Result<Tensor> {
        let v = self.pending.remove(&layer).ok_or_else(|| {
            CompressError::Protocol(format!("finish before absorb for layer {layer}"))
        })?;
        Tensor::from_shape_vec(shape.clone(), v).map_err(Into::into)
    }

    fn reset(&mut self) {
        self.pending.clear();
    }

    // Streaming: each wire byte packs an aligned group of 4 elements, so a
    // byte-granular chunk never splits an element. The RNG is consumed one
    // draw per element in stream order, which keeps the packed bytes
    // bit-identical to the monolithic encode — provided chunks arrive in
    // order (enforced by the cursor).
    fn begin_chunked_encode(
        &mut self,
        layer: usize,
        round: usize,
        grad: Option<&Tensor>,
    ) -> Result<ChunkedEncode> {
        let Some(g) = grad else {
            return Ok(ChunkedEncode::whole(self.encode_round(layer, round)?));
        };
        let scale = g.linf_norm();
        Ok(ChunkedEncode::native(
            ChunkedHeader::Gather {
                bytes: 13 + g.numel().div_ceil(4),
                prefix: 13,
                grain: 1,
            },
            NativeEncode {
                src: g.data().to_vec(),
                param: scale,
                ..NativeEncode::default()
            },
        ))
    }

    fn encode_chunk(
        &mut self,
        _layer: usize,
        enc: &mut ChunkedEncode,
        lo: usize,
        hi: usize,
        sink: ChunkSink<'_>,
    ) -> Result<()> {
        if !enc.is_native() {
            // Whole-payload stage (e.g. constructed by the default
            // `begin_chunked_encode`): slice the materialized image.
            return enc.emit_staged(lo, hi, sink);
        }
        const PREFIX: usize = 13;
        let state = enc.native_mut()?;
        let out = byte_sink(sink)?;
        let scale = state.param;
        let len = state.src.len();
        emit_scalar_prefix(TAG_TERNARY, len as u64, scale, lo, hi, out);
        let (blo, bhi) = (lo.max(PREFIX) - PREFIX, hi.max(PREFIX) - PREFIX);
        if state.cursor != blo {
            return Err(CompressError::Protocol(format!(
                "TernGrad chunks must stream in order: expected byte {}, got {blo}",
                state.cursor
            )));
        }
        for b in blo..bhi {
            let mut byte = 0u8;
            if scale != 0.0 {
                // Zero scale skips the RNG entirely, mirroring the
                // monolithic early return.
                for (slot, &x) in state.src[b * 4..len.min(b * 4 + 4)].iter().enumerate() {
                    let code = if self.rng.gen::<f32>() < x.abs() / scale {
                        if x >= 0.0 {
                            CODE_POS
                        } else {
                            CODE_NEG
                        }
                    } else {
                        CODE_ZERO
                    };
                    byte |= (code & 0b11) << (slot * 2);
                }
            }
            out.push(byte);
        }
        state.cursor = bhi;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::round_trip;

    #[test]
    fn pack_unpack_roundtrip() {
        let codes = vec![
            CODE_POS, CODE_NEG, CODE_ZERO, CODE_POS, CODE_NEG, CODE_NEG, CODE_ZERO,
        ];
        assert_eq!(unpack_ternary(&pack_ternary(&codes), codes.len()), codes);
    }

    #[test]
    fn zero_gradient_roundtrips_to_zero() {
        let g = Tensor::zeros([17]);
        let mut c = TernGrad::new();
        let out = round_trip(&mut c, 0, &g).unwrap();
        assert!(out.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn outputs_take_only_three_values() {
        let g = Tensor::randn([256], 11);
        let scale = g.linf_norm();
        let mut c = TernGrad::new();
        let out = round_trip(&mut c, 0, &g).unwrap();
        for &x in out.data() {
            let ok = x == 0.0 || (x - scale).abs() < 1e-6 || (x + scale).abs() < 1e-6;
            assert!(ok, "unexpected value {x}");
        }
    }

    #[test]
    fn quantizer_is_unbiased_in_expectation() {
        let g = Tensor::from_vec(vec![0.5, -0.25, 1.0, 0.0]);
        let mut acc = [0.0f64; 4];
        let trials = 4000;
        let mut c = TernGrad::new().with_seed(77);
        for _ in 0..trials {
            let out = round_trip(&mut c, 0, &g).unwrap();
            for (a, &x) in acc.iter_mut().zip(out.data()) {
                *a += x as f64;
            }
        }
        for (a, &x) in acc.iter().zip(g.data()) {
            let mean = a / trials as f64;
            assert!((mean - x as f64).abs() < 0.05, "expected {x}, got {mean}");
        }
    }

    #[test]
    fn compression_is_about_16x() {
        let c = TernGrad::new();
        let n = 4096;
        let bytes = c.compressed_bytes(&Shape::new(vec![n]));
        let ratio = (n * 4) as f64 / bytes as f64;
        assert!(ratio > 15.0 && ratio <= 16.0, "ratio {ratio}");
    }

    #[test]
    fn table1_says_not_all_reducible() {
        assert!(!TernGrad::new().properties().all_reducible);
    }
}
