//! PowerSGD low-rank compression (Vogels et al., 2019).
//!
//! Per layer, the gradient is matricized to `M ∈ R^{m x n}` and compressed
//! to rank-`r` factors with one warm-started power iteration:
//!
//! ```text
//! P = M · Q_prev          (round 0: all-reduce mean of P)
//! P̂ = orthonormalize(P̄)
//! Q = Mᵀ · P̂              (round 1: all-reduce mean of Q)
//! Ĝ = P̂ · Q̄ᵀ              error feedback: E ← M − Ĝ
//! ```
//!
//! Both all-reduces operate on linear images of the gradients, so the
//! aggregation is associative — PowerSGD is the all-reduce-compatible
//! method in the paper (Table 1) and the only one that ever beats syncSGD
//! in its experiments (BERT at 96 GPUs, Figure 4). The cost is the
//! per-layer encode/decode time (Table 2) and twice the latency term
//! (§4.2).

use crate::{CompressError, Compressor, Factor, Payload, Properties, Result};
use gcs_tensor::matrix::{
    a_mul_bt_pooled, at_mul_b_pooled, matmul_pooled, orthonormalize_columns, MatrixRef,
};
use gcs_tensor::pool;
use gcs_tensor::{Shape, Tensor};
use std::collections::HashMap;

/// Per-layer PowerSGD state.
#[derive(Debug)]
struct LayerState {
    /// `n x r` right factor, warm-started across iterations.
    q: Vec<f32>,
    /// Error-feedback memory, `m * n` (matricized layout).
    error: Vec<f32>,
    /// The matricized gradient + error of the in-flight iteration.
    m_work: Vec<f32>,
    /// Orthonormalized aggregated `P`, absorbed after round 0.
    p_hat: Option<Vec<f32>>,
    /// Aggregated `Q`, absorbed after round 1.
    q_agg: Option<Vec<f32>>,
    /// Recycled `m x r` buffer: the previous iteration's `p_hat` allocation,
    /// reused as the outgoing `P` of the next encode.
    p_scratch: Vec<f32>,
    /// Recycled `n x r` buffer, reused as the outgoing `Q` of round 1.
    q_scratch: Vec<f32>,
    rows: usize,
    cols: usize,
    rank: usize,
}

/// PowerSGD compressor.
///
/// # Example
///
/// ```
/// use gcs_compress::powersgd::PowerSgd;
/// use gcs_compress::{driver::round_trip, Compressor};
/// use gcs_tensor::Tensor;
///
/// # fn main() -> Result<(), gcs_compress::CompressError> {
/// let mut c = PowerSgd::new(4)?;
/// let g = Tensor::randn([32, 64], 0);
/// let approx = round_trip(&mut c, 0, &g)?;
/// assert_eq!(approx.shape(), g.shape());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct PowerSgd {
    rank: usize,
    error_feedback: bool,
    warm_start: bool,
    layers: HashMap<usize, LayerState>,
    /// Residuals injected via the scheme-switch contract before this layer
    /// has any state; reconciled (or dropped on shape change) at the next
    /// `encode`.
    injected: HashMap<usize, Vec<f32>>,
    seed: u64,
}

impl PowerSgd {
    /// Creates PowerSGD with the given target rank (the paper evaluates
    /// ranks 4, 8 and 16), error feedback and warm start enabled — the
    /// configuration of the reference implementation.
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::InvalidConfig`] if `rank == 0`.
    pub fn new(rank: usize) -> Result<Self> {
        if rank == 0 {
            return Err(CompressError::InvalidConfig(
                "PowerSGD rank must be positive".into(),
            ));
        }
        Ok(PowerSgd {
            rank,
            error_feedback: true,
            warm_start: true,
            layers: HashMap::new(),
            injected: HashMap::new(),
            seed: 0x9e37_79b9,
        })
    }

    /// Disables error feedback (ablation; hurts accuracy, not speed).
    pub fn error_feedback(mut self, on: bool) -> Self {
        self.error_feedback = on;
        self
    }

    /// Disables warm start: `Q` is re-initialized randomly every iteration
    /// (ablation; one power iteration from scratch approximates the
    /// gradient much less well).
    pub fn warm_start(mut self, on: bool) -> Self {
        self.warm_start = on;
        self
    }

    /// The configured rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Effective rank for a layer of matricized shape `(m, n)`.
    fn effective_rank(&self, m: usize, n: usize) -> usize {
        self.rank.min(m).min(n).max(1)
    }

    fn init_q(&self, layer: usize, n: usize, r: usize) -> Vec<f32> {
        let mut q =
            Tensor::randn([n, r], self.seed ^ (layer as u64).wrapping_mul(0x1000_0001)).into_vec();
        // Orthonormal start makes the first iteration a proper projection.
        let _ = orthonormalize_columns(&mut q, n, r);
        q
    }

    /// Everything `encode` does before the `P = M · Q` GEMM: state
    /// (re)initialization, injected-residual reconciliation, and the
    /// `M = grad (+ error)` working copy. Returns the matricized dims.
    fn prepare(&mut self, layer: usize, grad: &Tensor) -> Result<(usize, usize, usize)> {
        let (m, n) = grad.shape().matricized();
        let r = self.effective_rank(m, n);
        let numel = m * n;
        if grad.numel() != numel {
            return Err(CompressError::Protocol(format!(
                "gradient numel {} does not match matricized {m}x{n}",
                grad.numel()
            )));
        }

        // Fetch or create state; rebuild if the layer changed shape.
        let needs_init = !matches!(
            self.layers.get(&layer),
            Some(s) if s.rows == m && s.cols == n && s.rank == r
        );
        if needs_init {
            let q = self.init_q(layer, n, r);
            self.layers.insert(
                layer,
                LayerState {
                    q,
                    error: vec![0.0; numel],
                    m_work: vec![0.0; numel],
                    p_hat: None,
                    q_agg: None,
                    p_scratch: Vec::new(),
                    q_scratch: Vec::new(),
                    rows: m,
                    cols: n,
                    rank: r,
                },
            );
        }
        let warm = self.warm_start;
        let ef = self.error_feedback;
        let fresh_q = if warm {
            None
        } else {
            Some(self.init_q(layer, n, r))
        };
        let injected = self.injected.remove(&layer);
        let Some(state) = self.layers.get_mut(&layer) else {
            return Err(CompressError::Protocol(format!(
                "no per-layer state for layer {layer}"
            )));
        };
        if let Some(q) = fresh_q {
            state.q = q;
        }

        // A residual injected by a scheme switch replaces the layer's
        // error memory (dropped if the layer changed shape since).
        if let Some(injected) = injected {
            if injected.len() == numel {
                state.error.copy_from_slice(&injected);
            }
        }

        // M = grad (+ error feedback)
        state.m_work.copy_from_slice(grad.data());
        if ef {
            gcs_tensor::kernels::add_assign(&mut state.m_work, &state.error);
        }
        Ok((m, n, r))
    }
}

impl Compressor for PowerSgd {
    fn properties(&self) -> Properties {
        Properties {
            name: format!("PowerSGD (rank {})", self.rank),
            all_reducible: true,
            layerwise: true,
            rounds: 2,
        }
    }

    fn compressed_bytes(&self, shape: &Shape) -> usize {
        let (m, n) = shape.matricized();
        let r = self.effective_rank(m, n);
        (m * r + n * r) * 4
    }

    fn encode(&mut self, layer: usize, grad: &Tensor) -> Result<Payload> {
        let (m, n, r) = self.prepare(layer, grad)?;
        let Some(state) = self.layers.get_mut(&layer) else {
            return Err(CompressError::Protocol(format!(
                "no per-layer state for layer {layer}"
            )));
        };

        // P = M · Q, into the recycled buffer from the previous round's
        // finish (steady state: no allocation).
        let mut p = std::mem::take(&mut state.p_scratch);
        p.clear();
        p.resize(m * r, 0.0);
        matmul_pooled(
            pool::global(),
            MatrixRef::new(&state.m_work, m, n)?,
            MatrixRef::new(&state.q, n, r)?,
            &mut p,
        )?;
        Ok(Payload::Factor {
            which: Factor::P,
            rows: m,
            cols: r,
            data: p,
        })
    }

    fn encode_round(&mut self, layer: usize, round: usize) -> Result<Payload> {
        if round != 1 {
            return Err(CompressError::Protocol(format!(
                "PowerSGD has rounds 0 and 1, got {round}"
            )));
        }
        let state = self.layers.get_mut(&layer).ok_or_else(|| {
            CompressError::Protocol(format!("encode_round before encode for layer {layer}"))
        })?;
        let p_hat = state
            .p_hat
            .as_ref()
            .ok_or_else(|| CompressError::Protocol("round 1 before absorbing round 0".into()))?;
        // Q = Mᵀ · P̂, into the recycled buffer.
        let (m, n, r) = (state.rows, state.cols, state.rank);
        let mut q = std::mem::take(&mut state.q_scratch);
        q.clear();
        q.resize(n * r, 0.0);
        at_mul_b_pooled(
            pool::global(),
            MatrixRef::new(&state.m_work, m, n)?,
            MatrixRef::new(p_hat, m, r)?,
            &mut q,
        )?;
        Ok(Payload::Factor {
            which: Factor::Q,
            rows: n,
            cols: r,
            data: q,
        })
    }

    fn aggregate(&self, _round: usize, payloads: &[Payload]) -> Result<Payload> {
        let mut iter = payloads.iter();
        let first = iter.next().ok_or(CompressError::EmptyAggregate)?;
        let mut acc = first.clone();
        for p in iter {
            acc.add_assign(p)?;
        }
        acc.scale(1.0 / payloads.len() as f32)?;
        Ok(acc)
    }

    fn absorb(&mut self, layer: usize, round: usize, agg: Payload) -> Result<()> {
        let state = self.layers.get_mut(&layer).ok_or_else(|| {
            CompressError::Protocol(format!("absorb before encode for layer {layer}"))
        })?;
        match (round, agg) {
            (
                0,
                Payload::Factor {
                    which: Factor::P,
                    mut data,
                    rows,
                    cols,
                },
            ) => {
                if rows != state.rows || cols != state.rank {
                    return Err(CompressError::Protocol(
                        "aggregated P has wrong dimensions".into(),
                    ));
                }
                orthonormalize_columns(&mut data, rows, cols)?;
                state.p_hat = Some(data);
                Ok(())
            }
            (
                1,
                Payload::Factor {
                    which: Factor::Q,
                    data,
                    rows,
                    cols,
                },
            ) => {
                if rows != state.cols || cols != state.rank {
                    return Err(CompressError::Protocol(
                        "aggregated Q has wrong dimensions".into(),
                    ));
                }
                state.q_agg = Some(data);
                Ok(())
            }
            (r, p) => Err(CompressError::Protocol(format!(
                "unexpected round {r} payload {}",
                p.kind_name()
            ))),
        }
    }

    fn finish(&mut self, layer: usize, shape: &Shape) -> Result<Tensor> {
        let ef = self.error_feedback;
        let warm = self.warm_start;
        let state = self.layers.get_mut(&layer).ok_or_else(|| {
            CompressError::Protocol(format!("finish before encode for layer {layer}"))
        })?;
        let p_hat = state
            .p_hat
            .take()
            .ok_or_else(|| CompressError::Protocol("finish before absorbing round 0".into()))?;
        let q_agg = state
            .q_agg
            .take()
            .ok_or_else(|| CompressError::Protocol("finish before absorbing round 1".into()))?;
        let (m, n, r) = (state.rows, state.cols, state.rank);
        // Ĝ = P̂ · Q̄ᵀ
        let mut g_hat = vec![0.0f32; m * n];
        a_mul_bt_pooled(
            pool::global(),
            MatrixRef::new(&p_hat, m, r)?,
            MatrixRef::new(&q_agg, n, r)?,
            &mut g_hat,
        )?;
        if ef {
            // E ← M − Ĝ
            for ((e, w), g) in state.error.iter_mut().zip(&state.m_work).zip(&g_hat) {
                *e = w - g;
            }
        }
        if warm {
            // The displaced warm-start Q becomes next round's Q scratch.
            state.q_scratch = std::mem::replace(&mut state.q, q_agg);
        } else {
            state.q_scratch = q_agg;
        }
        // The spent P̂ allocation becomes the next encode's P buffer.
        state.p_scratch = p_hat;
        Tensor::from_shape_vec(shape.clone(), g_hat).map_err(Into::into)
    }

    fn reset(&mut self) {
        self.layers.clear();
        self.injected.clear();
    }

    // Streaming: round 0 defers the `P = M · Q` GEMM — begin only runs the
    // cheap prelude, and each chunk computes exactly the row panel of `P`
    // it needs before emitting it. The pooled GEMM partitions work by rows
    // and is pinned bit-identical to the serial kernel, so contiguous
    // row-panel calls reproduce the monolithic product bit for bit while
    // the first panels ride the wire ahead of the rest of the GEMM.
    // Round 1 cannot stream its GEMM (`Q = Mᵀ·P̂` has no column slicing),
    // so it materializes at begin and streams from the whole payload.
    fn begin_chunked_encode(
        &mut self,
        layer: usize,
        round: usize,
        grad: Option<&Tensor>,
    ) -> Result<crate::chunked::ChunkedEncode> {
        use crate::chunked::{ChunkedEncode, ChunkedHeader, NativeEncode, PayloadShell};
        let Some(g) = grad else {
            return Ok(ChunkedEncode::whole(self.encode_round(layer, round)?));
        };
        let (m, _n, r) = self.prepare(layer, g)?;
        let Some(state) = self.layers.get_mut(&layer) else {
            return Err(CompressError::Protocol(format!(
                "no per-layer state for layer {layer}"
            )));
        };
        let mut p = std::mem::take(&mut state.p_scratch);
        p.clear();
        p.resize(m * r, 0.0);
        Ok(ChunkedEncode::native(
            ChunkedHeader::Summable {
                shell: PayloadShell::Factor {
                    which: Factor::P,
                    rows: m,
                    cols: r,
                },
                elems: m * r,
            },
            NativeEncode {
                src: p,
                ..NativeEncode::default()
            },
        ))
    }

    fn encode_chunk(
        &mut self,
        layer: usize,
        enc: &mut crate::chunked::ChunkedEncode,
        lo: usize,
        hi: usize,
        sink: crate::chunked::ChunkSink<'_>,
    ) -> Result<()> {
        if !enc.is_native() {
            // Round 1's whole-payload stage: slice the materialized Q.
            return enc.emit_staged(lo, hi, sink);
        }
        let out = crate::chunked::f32_sink(sink)?;
        let st = enc.native_mut()?;
        let state = self.layers.get_mut(&layer).ok_or_else(|| {
            CompressError::Protocol(format!("encode_chunk before begin for layer {layer}"))
        })?;
        let (n, r) = (state.cols, state.rank);
        if hi > st.src.len() || lo > hi {
            return Err(CompressError::Protocol(format!(
                "chunk span [{lo}, {hi}) out of range for P of {}",
                st.src.len()
            )));
        }
        // `cursor` counts P rows already computed; a span ending mid-row
        // pulls the whole row in.
        let need = hi.div_ceil(r).min(state.rows);
        if need > st.cursor {
            matmul_pooled(
                pool::global(),
                MatrixRef::new(&state.m_work[st.cursor * n..need * n], need - st.cursor, n)?,
                MatrixRef::new(&state.q, n, r)?,
                &mut st.src[st.cursor * r..need * r],
            )?;
            st.cursor = need;
        }
        out.extend_from_slice(&st.src[lo..hi]);
        Ok(())
    }

    fn take_residual(&mut self, layer: usize) -> Option<Tensor> {
        if !self.error_feedback {
            return None;
        }
        if let Some(pending) = self.injected.remove(&layer) {
            return Some(Tensor::from_vec(pending));
        }
        let state = self.layers.get_mut(&layer)?;
        let numel = state.rows * state.cols;
        let out = std::mem::replace(&mut state.error, vec![0.0; numel]);
        Some(Tensor::from_vec(out))
    }

    fn inject_residual(&mut self, layer: usize, residual: Tensor) -> Result<bool> {
        if !self.error_feedback {
            return Ok(false);
        }
        match self.layers.get_mut(&layer) {
            Some(state) if state.error.len() == residual.numel() => {
                state.error.copy_from_slice(residual.data());
            }
            Some(_) => {
                return Err(CompressError::Protocol(format!(
                    "injected residual numel {} does not match layer {layer} state",
                    residual.numel()
                )));
            }
            // No state yet: stash until the first encode fixes the shape.
            None => {
                self.injected.insert(layer, residual.into_vec());
            }
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{all_reduce_compressed, round_trip};
    use gcs_tensor::matrix::matmul;
    use gcs_tensor::stats::relative_l2_error;

    #[test]
    fn rejects_rank_zero() {
        assert!(PowerSgd::new(0).is_err());
    }

    #[test]
    fn properties_match_table1() {
        let p = PowerSgd::new(4).unwrap().properties();
        assert!(p.all_reducible);
        assert!(p.layerwise);
        assert_eq!(p.rounds, 2);
    }

    #[test]
    fn recovers_exactly_low_rank_gradients() {
        // Rank-2 gradient compressed at rank 4: repeated warm-started power
        // iterations must converge to (near-)exact recovery.
        let u = Tensor::randn([24, 2], 1).into_vec();
        let v = Tensor::randn([2, 36], 2).into_vec();
        let mut g = vec![0.0f32; 24 * 36];
        matmul(
            MatrixRef::new(&u, 24, 2).unwrap(),
            MatrixRef::new(&v, 2, 36).unwrap(),
            &mut g,
        )
        .unwrap();
        let g = Tensor::from_shape_vec([24, 36], g).unwrap();
        let mut c = PowerSgd::new(4).unwrap();
        let mut err = f32::MAX;
        for _ in 0..5 {
            let out = round_trip(&mut c, 0, &g).unwrap();
            err = relative_l2_error(&g, &out);
        }
        assert!(err < 1e-3, "relative error after warm-up {err}");
    }

    #[test]
    fn compressed_bytes_match_formula() {
        let c = PowerSgd::new(4).unwrap();
        let shape = Shape::new(vec![512, 512, 3, 3]); // m=512, n=4608
        assert_eq!(c.compressed_bytes(&shape), (512 * 4 + 4608 * 4) * 4);
        // Compression ratio ~ mn / (r(m+n)) = 512*4608 / (4*5120) ≈ 115x.
        let ratio = (shape.numel() * 4) as f64 / c.compressed_bytes(&shape) as f64;
        assert!(ratio > 100.0, "ratio {ratio}");
    }

    #[test]
    fn rank_clamped_for_small_layers() {
        let c = PowerSgd::new(16).unwrap();
        // Bias vector: 1 x 64 matricization -> rank 1.
        assert_eq!(c.compressed_bytes(&Shape::new(vec![64])), (1 + 64) * 4);
    }

    #[test]
    fn error_feedback_preserves_total_gradient_mass() {
        // decoded + error must equal input (+ previous error) each step.
        let g = Tensor::randn([16, 16], 5);
        let mut c = PowerSgd::new(2).unwrap();
        let out = round_trip(&mut c, 0, &g).unwrap();
        let err_mem =
            Tensor::from_shape_vec([16, 16], c.layers.get(&0).unwrap().error.clone()).unwrap();
        let sum = out.add(&err_mem).unwrap();
        assert!(relative_l2_error(&g, &sum) < 1e-4);
    }

    #[test]
    fn multi_worker_aggregation_is_consistent_across_workers() {
        let grads: Vec<Tensor> = (0..3).map(|s| Tensor::randn([8, 12], 100 + s)).collect();
        let mut workers: Vec<PowerSgd> = (0..3).map(|_| PowerSgd::new(4).unwrap()).collect();
        let outs = all_reduce_compressed(&mut workers, 7, &grads).unwrap();
        assert_eq!(outs[0], outs[1]);
        assert_eq!(outs[1], outs[2]);
    }

    #[test]
    fn multi_worker_converges_to_mean_under_warm_start() {
        // With a *fixed* set of per-worker gradients, repeated compression
        // with error feedback must converge to the true mean.
        let grads: Vec<Tensor> = (0..2).map(|s| Tensor::randn([10, 10], 50 + s)).collect();
        let mut mean = Tensor::zeros([10, 10]);
        for g in &grads {
            mean.add_assign(g).unwrap();
        }
        mean.scale(0.5);
        let mut workers: Vec<PowerSgd> = (0..2).map(|_| PowerSgd::new(3).unwrap()).collect();
        // Accumulate what the optimizer would apply over many steps; EF
        // guarantees the *running total* tracks the true mean even though
        // each step is low rank.
        let mut applied = Tensor::zeros([10, 10]);
        let steps = 100;
        for _ in 0..steps {
            let outs = all_reduce_compressed(&mut workers, 0, &grads).unwrap();
            applied.add_assign(&outs[0]).unwrap();
        }
        applied.scale(1.0 / steps as f32);
        let err = relative_l2_error(&mean, &applied);
        assert!(err < 0.05, "running mean error {err}");
    }

    #[test]
    fn protocol_violations_are_errors() {
        let mut c = PowerSgd::new(2).unwrap();
        let g = Tensor::randn([4, 4], 0);
        assert!(c.encode_round(0, 1).is_err()); // before encode
        let p = c.encode(0, &g).unwrap();
        assert!(c.encode_round(0, 1).is_err()); // before absorb round 0
        assert!(c.finish(0, g.shape()).is_err());
        let agg = c.aggregate(0, std::slice::from_ref(&p)).unwrap();
        c.absorb(0, 0, agg).unwrap();
        let q = c.encode_round(0, 1).unwrap();
        let qagg = c.aggregate(1, std::slice::from_ref(&q)).unwrap();
        c.absorb(0, 1, qagg).unwrap();
        assert!(c.finish(0, g.shape()).is_ok());
        // Second finish without new rounds fails.
        assert!(c.finish(0, g.shape()).is_err());
    }

    #[test]
    fn shape_change_reinitializes_layer_state() {
        let mut c = PowerSgd::new(2).unwrap();
        let g1 = Tensor::randn([4, 4], 1);
        let _ = round_trip(&mut c, 0, &g1).unwrap();
        let g2 = Tensor::randn([8, 8], 2);
        let out = round_trip(&mut c, 0, &g2).unwrap();
        assert_eq!(out.shape(), g2.shape());
    }

    #[test]
    fn no_warm_start_still_roundtrips() {
        let g = Tensor::randn([12, 12], 3);
        let mut c = PowerSgd::new(4).unwrap().warm_start(false);
        let out = round_trip(&mut c, 0, &g).unwrap();
        assert_eq!(out.shape(), g.shape());
        assert!(out.l2_norm() > 0.0);
    }
}
