//! Centralized reference driver for the compression protocol.
//!
//! Runs the full multi-round exchange across a set of in-process workers
//! with zero concurrency — the executable specification that the real
//! threaded engine in `gcs-ddp` is validated against.

use crate::{Compressor, Result};
use gcs_tensor::Tensor;

/// Runs one full compression round-trip for `layer` across `workers`, where
/// worker `i` contributes `grads[i]`. Returns each worker's decoded view of
/// the aggregated gradient (identical for every worker for deterministic
/// schemes).
///
/// # Errors
///
/// Propagates any protocol or tensor error from the compressors.
///
/// # Panics
///
/// Panics if `workers` and `grads` have different lengths or are empty.
pub fn all_reduce_compressed<C: Compressor>(
    workers: &mut [C],
    layer: usize,
    grads: &[Tensor],
) -> Result<Vec<Tensor>> {
    assert_eq!(
        workers.len(),
        grads.len(),
        "one gradient per worker required"
    );
    assert!(!workers.is_empty(), "at least one worker required");
    let rounds = workers[0].properties().rounds;
    let shape = grads[0].shape().clone();

    for round in 0..rounds {
        let mut payloads = Vec::with_capacity(workers.len());
        for (w, g) in workers.iter_mut().zip(grads) {
            let p = if round == 0 {
                w.encode(layer, g)?
            } else {
                w.encode_round(layer, round)?
            };
            payloads.push(p);
        }
        let agg = workers[0].aggregate(round, &payloads)?;
        for w in workers.iter_mut() {
            w.absorb(layer, round, agg.clone())?;
        }
    }
    workers
        .iter_mut()
        .map(|w| w.finish(layer, &shape))
        .collect()
}

/// Convenience wrapper for single-worker (local) compression: encodes,
/// "aggregates" the single payload and decodes. Useful for measuring pure
/// encode/decode cost and for round-trip accuracy tests.
///
/// # Errors
///
/// Propagates any protocol or tensor error from the compressor.
pub fn round_trip<C: Compressor>(worker: &mut C, layer: usize, grad: &Tensor) -> Result<Tensor> {
    let rounds = worker.properties().rounds;
    for round in 0..rounds {
        let p = if round == 0 {
            worker.encode(layer, grad)?
        } else {
            worker.encode_round(layer, round)?
        };
        let agg = worker.aggregate(round, std::slice::from_ref(&p))?;
        worker.absorb(layer, round, agg)?;
    }
    worker.finish(layer, grad.shape())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::none::NoCompression;

    #[test]
    fn no_compression_all_reduce_is_exact_mean() {
        let grads = vec![
            Tensor::from_vec(vec![1.0, 2.0]),
            Tensor::from_vec(vec![3.0, 6.0]),
        ];
        let mut workers = vec![NoCompression::new(), NoCompression::new()];
        let out = all_reduce_compressed(&mut workers, 0, &grads).unwrap();
        assert_eq!(out[0].data(), &[2.0, 4.0]);
        assert_eq!(out[1].data(), &[2.0, 4.0]);
    }

    #[test]
    fn round_trip_identity_for_no_compression() {
        let g = Tensor::randn([64], 3);
        let mut c = NoCompression::new();
        let out = round_trip(&mut c, 0, &g).unwrap();
        assert_eq!(out, g);
    }

    #[test]
    #[should_panic(expected = "one gradient per worker")]
    fn mismatched_worker_count_panics() {
        let grads = vec![Tensor::zeros([2])];
        let mut workers = vec![NoCompression::new(), NoCompression::new()];
        let _ = all_reduce_compressed(&mut workers, 0, &grads);
    }
}
