//! Centralized reference driver for the compression protocol.
//!
//! Runs the full multi-round exchange across a set of in-process workers
//! with zero concurrency — the executable specification that the real
//! threaded engine in `gcs-ddp` is validated against.

use crate::{Compressor, Result};
use gcs_tensor::Tensor;

/// Runs one full compression round-trip for `layer` across `workers`, where
/// worker `i` contributes `grads[i]`. Returns each worker's decoded view of
/// the aggregated gradient (identical for every worker for deterministic
/// schemes).
///
/// # Errors
///
/// Propagates any protocol or tensor error from the compressors.
///
/// # Panics
///
/// Panics if `workers` and `grads` have different lengths or are empty.
pub fn all_reduce_compressed<C: Compressor>(
    workers: &mut [C],
    layer: usize,
    grads: &[Tensor],
) -> Result<Vec<Tensor>> {
    assert_eq!(
        workers.len(),
        grads.len(),
        "one gradient per worker required"
    );
    assert!(!workers.is_empty(), "at least one worker required");
    let rounds = workers[0].properties().rounds;
    let shape = grads[0].shape().clone();

    for round in 0..rounds {
        let mut payloads = Vec::with_capacity(workers.len());
        for (w, g) in workers.iter_mut().zip(grads) {
            let p = if round == 0 {
                w.encode(layer, g)?
            } else {
                w.encode_round(layer, round)?
            };
            payloads.push(p);
        }
        let agg = workers[0].aggregate(round, &payloads)?;
        for w in workers.iter_mut() {
            w.absorb(layer, round, agg.clone())?;
        }
    }
    workers
        .iter_mut()
        .map(|w| w.finish(layer, &shape))
        .collect()
}

/// What to do with the old scheme's error-feedback residual when a layer
/// (or bucket) switches compressors mid-run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResidualPolicy {
    /// Carry the residual across: extract it from the old compressor and
    /// inject it into the new one, so unsent gradient mass survives the
    /// switch. Falls back to a reset when either side has no
    /// error-feedback memory.
    #[default]
    Carry,
    /// Drop the residual: both compressors start the next step with zero
    /// error memory. Safe for any scheme pair; loses at most one step's
    /// compression error.
    Reset,
}

/// Outcome of a [`switch_scheme`] call — the typed contract the adaptive
/// data plane tests against.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchOutcome {
    /// Whether the residual actually moved into the new compressor
    /// (`false` under [`ResidualPolicy::Reset`] or when either scheme
    /// keeps no error-feedback memory — the documented reset semantics).
    pub carried: bool,
    /// L2 norm of the residual at the switch point (0.0 when there was
    /// none). Carried or not, this bounds the one-step mass at stake.
    pub residual_norm: f64,
}

/// Moves `layer` from compressor `old` to compressor `new` under the given
/// residual policy, returning what happened to the error-feedback state.
///
/// The old compressor's residual for `layer` is always *removed* (so
/// continued use of `old` on other layers never double-counts mass); under
/// [`ResidualPolicy::Carry`] it is offered to `new` via
/// [`Compressor::inject_residual`], which accepts it only if the new
/// scheme maintains error feedback. The caller is responsible for only
/// switching at a bucket boundary — i.e. after `finish` and before the
/// next `encode` — when neither compressor holds in-flight round state
/// for `layer`.
///
/// # Errors
///
/// Propagates a protocol error if the new compressor cannot reconcile the
/// injected residual (element-count mismatch against existing state).
pub fn switch_scheme<A, B>(
    old: &mut A,
    new: &mut B,
    layer: usize,
    policy: ResidualPolicy,
) -> Result<SwitchOutcome>
where
    A: Compressor + ?Sized,
    B: Compressor + ?Sized,
{
    let residual = old.take_residual(layer);
    let residual_norm = residual.as_ref().map_or(0.0, |r| f64::from(r.l2_norm()));
    let carried = match (policy, residual) {
        (ResidualPolicy::Carry, Some(r)) => new.inject_residual(layer, r)?,
        _ => false,
    };
    Ok(SwitchOutcome {
        carried,
        residual_norm,
    })
}

/// Convenience wrapper for single-worker (local) compression: encodes,
/// "aggregates" the single payload and decodes. Useful for measuring pure
/// encode/decode cost and for round-trip accuracy tests.
///
/// # Errors
///
/// Propagates any protocol or tensor error from the compressor.
pub fn round_trip<C: Compressor>(worker: &mut C, layer: usize, grad: &Tensor) -> Result<Tensor> {
    let rounds = worker.properties().rounds;
    for round in 0..rounds {
        let p = if round == 0 {
            worker.encode(layer, grad)?
        } else {
            worker.encode_round(layer, round)?
        };
        let agg = worker.aggregate(round, std::slice::from_ref(&p))?;
        worker.absorb(layer, round, agg)?;
    }
    worker.finish(layer, grad.shape())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::none::NoCompression;

    #[test]
    fn no_compression_all_reduce_is_exact_mean() {
        let grads = vec![
            Tensor::from_vec(vec![1.0, 2.0]),
            Tensor::from_vec(vec![3.0, 6.0]),
        ];
        let mut workers = vec![NoCompression::new(), NoCompression::new()];
        let out = all_reduce_compressed(&mut workers, 0, &grads).unwrap();
        assert_eq!(out[0].data(), &[2.0, 4.0]);
        assert_eq!(out[1].data(), &[2.0, 4.0]);
    }

    #[test]
    fn round_trip_identity_for_no_compression() {
        let g = Tensor::randn([64], 3);
        let mut c = NoCompression::new();
        let out = round_trip(&mut c, 0, &g).unwrap();
        assert_eq!(out, g);
    }

    #[test]
    #[should_panic(expected = "one gradient per worker")]
    fn mismatched_worker_count_panics() {
        let grads = vec![Tensor::zeros([2])];
        let mut workers = vec![NoCompression::new(), NoCompression::new()];
        let _ = all_reduce_compressed(&mut workers, 0, &grads);
    }

    #[test]
    fn switch_carries_residual_between_ef_schemes() {
        use crate::topk::TopK;
        // Build residual mass in a 25%-Top-K: 3 of 4 coordinates dropped.
        let mut old = TopK::new(0.25).unwrap().error_feedback(true);
        let g = Tensor::from_vec(vec![10.0, 1.0, 2.0, 3.0]);
        let _ = round_trip(&mut old, 0, &g).unwrap();
        let expected_norm = (1.0f64 + 4.0 + 9.0).sqrt();

        let mut new = TopK::new(1.0).unwrap().error_feedback(true);
        let out =
            super::switch_scheme(&mut old, &mut new, 0, super::ResidualPolicy::Carry).unwrap();
        assert!(out.carried);
        assert!((out.residual_norm - expected_norm).abs() < 1e-6);
        // The old compressor's residual is gone either way.
        assert!(old.take_residual(0).is_none());
        // The carried mass is re-sent by the new scheme on a zero gradient.
        let sent = round_trip(&mut new, 0, &Tensor::zeros([4])).unwrap();
        assert_eq!(sent.data(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn switch_into_no_ef_scheme_is_a_documented_reset() {
        use crate::topk::TopK;
        let mut old = TopK::new(0.25).unwrap().error_feedback(true);
        let g = Tensor::from_vec(vec![10.0, 1.0, 2.0, 3.0]);
        let _ = round_trip(&mut old, 0, &g).unwrap();
        let mut new = NoCompression::new();
        let out =
            super::switch_scheme(&mut old, &mut new, 0, super::ResidualPolicy::Carry).unwrap();
        assert!(!out.carried, "no-EF target cannot carry");
        assert!(out.residual_norm > 0.0, "norm is still reported");
        assert!(old.take_residual(0).is_none(), "old residual is cleared");
    }

    #[test]
    fn switch_reset_policy_drops_residual_but_reports_norm() {
        use crate::topk::TopK;
        let mut old = TopK::new(0.25).unwrap().error_feedback(true);
        let g = Tensor::from_vec(vec![10.0, 1.0, 2.0, 3.0]);
        let _ = round_trip(&mut old, 0, &g).unwrap();
        let mut new = TopK::new(1.0).unwrap().error_feedback(true);
        let out =
            super::switch_scheme(&mut old, &mut new, 0, super::ResidualPolicy::Reset).unwrap();
        assert!(!out.carried);
        assert!(out.residual_norm > 0.0);
        let sent = round_trip(&mut new, 0, &Tensor::zeros([4])).unwrap();
        assert_eq!(sent.data(), &[0.0; 4], "reset must not re-send mass");
    }

    #[test]
    fn switch_into_powersgd_defers_residual_to_first_encode() {
        use crate::powersgd::PowerSgd;
        use crate::topk::TopK;
        let mut old = TopK::new(0.25).unwrap().error_feedback(true);
        let g = Tensor::randn([4, 4], 3);
        let _ = round_trip(&mut old, 0, &g).unwrap();
        let mut new = PowerSgd::new(4).unwrap();
        let out =
            super::switch_scheme(&mut old, &mut new, 0, super::ResidualPolicy::Carry).unwrap();
        assert!(out.carried, "PowerSGD has EF memory");
        // The injected residual is reconciled at the next encode; rank-4 on
        // a 4x4 matrix is exact, so (zero grad + residual) round-trips to
        // approximately the residual itself.
        let sent = round_trip(&mut new, 0, &Tensor::zeros([4, 4])).unwrap();
        assert!(sent.data().iter().any(|x| x.abs() > 1e-6));
        assert!(sent.data().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn switch_norm_zero_when_old_scheme_has_no_residual() {
        let mut old = NoCompression::new();
        let mut new = NoCompression::new();
        let out =
            super::switch_scheme(&mut old, &mut new, 0, super::ResidualPolicy::Carry).unwrap();
        assert_eq!(
            out,
            super::SwitchOutcome {
                carried: false,
                residual_norm: 0.0
            }
        );
    }
}
