//! DoubleSqueeze (Tang et al., 2019 — citation \[59\]): error-compensated
//! compression in *both* directions of a parameter-server exchange.
//!
//! Workers compress their gradients (with worker-side error feedback); the
//! server decompresses, averages, then compresses the *aggregate* (with
//! server-side error feedback) before broadcasting it back. This is the
//! protocol that makes compression viable on parameter-server topologies,
//! where the downlink is as scarce as the uplink.
//!
//! Implemented as a centralized reference driver over any pair of
//! [`Compressor`]s (worker side and server side), mirroring
//! [`crate::driver::all_reduce_compressed`].

use crate::{Compressor, Payload, Result};
use gcs_tensor::Tensor;

/// Runs one DoubleSqueeze round for `layer`: worker gradients are
/// compressed by `workers[i]`, averaged via the worker compressor's
/// aggregation semantics, then the mean is re-compressed by `server`
/// before every worker decodes it. Returns each worker's decoded view.
///
/// Error feedback on both sides lives inside the compressors (enable it
/// when constructing them, e.g. [`crate::topk::TopK::error_feedback`]).
///
/// # Errors
///
/// Propagates protocol and tensor errors from either compressor.
///
/// # Panics
///
/// Panics if `workers` and `grads` lengths differ or are empty, or if a
/// multi-round compressor (PowerSGD) is used — DoubleSqueeze is defined
/// for single-round quantizers/sparsifiers.
pub fn double_squeeze_round<W: Compressor, S: Compressor>(
    workers: &mut [W],
    server: &mut S,
    layer: usize,
    grads: &[Tensor],
) -> Result<Vec<Tensor>> {
    assert_eq!(workers.len(), grads.len(), "one gradient per worker");
    assert!(!workers.is_empty(), "at least one worker required");
    assert_eq!(
        workers[0].properties().rounds,
        1,
        "DoubleSqueeze needs a single-round worker compressor"
    );
    assert_eq!(
        server.properties().rounds,
        1,
        "DoubleSqueeze needs a single-round server compressor"
    );
    let shape = grads[0].shape().clone();

    // Uplink: workers compress, the server aggregates their payloads.
    let mut payloads: Vec<Payload> = Vec::with_capacity(workers.len());
    for (w, g) in workers.iter_mut().zip(grads) {
        payloads.push(w.encode(layer, g)?);
    }
    let agg = workers[0].aggregate(0, &payloads)?;
    // Decode the aggregate on the server: run it through worker 0's
    // absorb/finish on a scratch layer id so worker state is untouched.
    // Simplest faithful route: a fresh decode via the server-side of the
    // worker compressor type is not available generically, so we require
    // the aggregated payload to decode through absorb/finish of a
    // dedicated scratch instance owned by the caller — here we reuse
    // worker 0 with a reserved layer key.
    let scratch_layer = usize::MAX - layer;
    workers[0].absorb(scratch_layer, 0, agg)?;
    let mean = workers[0].finish(scratch_layer, &shape)?;

    // Downlink: the server compresses the mean (its own error feedback
    // accumulates what the downlink compression drops).
    let down = server.encode(layer, &mean)?;
    let down_agg = server.aggregate(0, std::slice::from_ref(&down))?;

    // Every worker decodes the downlink payload.
    let mut outs = Vec::with_capacity(workers.len());
    for w in workers.iter_mut() {
        w.absorb(layer, 0, down_agg.clone())?;
        outs.push(w.finish(layer, &shape)?);
    }
    Ok(outs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topk::TopK;
    use gcs_tensor::stats::cosine_similarity;

    #[test]
    fn double_squeeze_converges_with_bidirectional_error_feedback() {
        // Fixed per-worker gradients; the running average of applied
        // updates must converge to the true mean even though BOTH links
        // drop 75 % of coordinates each round.
        let grads: Vec<Tensor> = (0..3).map(|s| Tensor::randn([40], 60 + s)).collect();
        let mut mean = Tensor::zeros([40]);
        for g in &grads {
            mean.add_assign(g).unwrap();
        }
        mean.scale(1.0 / 3.0);

        let mut workers: Vec<TopK> = (0..3)
            .map(|_| TopK::new(0.25).unwrap().error_feedback(true))
            .collect();
        let mut server = TopK::new(0.25).unwrap().error_feedback(true);
        let mut applied = Tensor::zeros([40]);
        let steps = 80;
        for _ in 0..steps {
            let outs = double_squeeze_round(&mut workers, &mut server, 0, &grads).unwrap();
            applied.add_assign(&outs[0]).unwrap();
        }
        applied.scale(1.0 / steps as f32);
        let cos = cosine_similarity(&mean, &applied);
        assert!(cos > 0.93, "cosine {cos}");
    }

    #[test]
    fn without_error_feedback_the_downlink_bias_persists() {
        // Same setup, EF off everywhere: the applied mean keeps missing
        // the dropped coordinates, so it tracks the true mean worse than
        // the EF variant.
        let grads: Vec<Tensor> = (0..3).map(|s| Tensor::randn([40], 60 + s)).collect();
        let mut mean = Tensor::zeros([40]);
        for g in &grads {
            mean.add_assign(g).unwrap();
        }
        mean.scale(1.0 / 3.0);
        let run = |ef: bool| {
            let mut workers: Vec<TopK> = (0..3)
                .map(|_| TopK::new(0.25).unwrap().error_feedback(ef))
                .collect();
            let mut server = TopK::new(0.25).unwrap().error_feedback(ef);
            let mut applied = Tensor::zeros([40]);
            for _ in 0..80 {
                let outs = double_squeeze_round(&mut workers, &mut server, 0, &grads).unwrap();
                applied.add_assign(&outs[0]).unwrap();
            }
            applied.scale(1.0 / 80.0);
            cosine_similarity(&mean, &applied)
        };
        assert!(run(true) > run(false), "EF must strictly help");
    }

    #[test]
    fn workers_receive_identical_downlink() {
        let grads: Vec<Tensor> = (0..4).map(|s| Tensor::randn([16], s)).collect();
        let mut workers: Vec<TopK> = (0..4)
            .map(|_| TopK::new(0.5).unwrap().error_feedback(true))
            .collect();
        let mut server = TopK::new(0.5).unwrap().error_feedback(true);
        let outs = double_squeeze_round(&mut workers, &mut server, 0, &grads).unwrap();
        for w in 1..4 {
            assert_eq!(outs[0], outs[w]);
        }
    }

    #[test]
    #[should_panic(expected = "single-round worker compressor")]
    fn rejects_multi_round_compressors() {
        let grads = vec![Tensor::zeros([4])];
        let mut workers = vec![crate::powersgd::PowerSgd::new(2).unwrap()];
        let mut server = TopK::new(0.5).unwrap();
        let _ = double_squeeze_round(&mut workers, &mut server, 0, &grads);
    }
}
