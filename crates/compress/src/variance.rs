//! Variance-based sparsification (Tsuzuku et al., 2018 — §2.1 of the
//! paper: "recent work tracks the variance of each coordinate and only
//! communicates the gradient coordinates which have a variance less than
//! a specified threshold").
//!
//! Each worker maintains per-coordinate exponential moving estimates of
//! the gradient mean and second moment. A coordinate is *ambiguous* when
//! its magnitude is small relative to its estimated standard deviation —
//! such coordinates are deferred (accumulated in error-feedback memory)
//! and only confident coordinates are transmitted. Coordinate sets differ
//! per worker, so aggregation requires all-gather.

use crate::{CompressError, Compressor, Payload, Properties, Result};
use gcs_tensor::{Shape, Tensor};
use std::collections::HashMap;

/// Per-layer running statistics.
#[derive(Debug)]
struct LayerStats {
    ema_mean: Vec<f32>,
    ema_sq: Vec<f32>,
    residual: Vec<f32>,
    steps: u64,
}

/// Variance-based sparsifier with error feedback.
#[derive(Debug)]
pub struct VarianceSparsifier {
    /// Confidence multiplier κ: transmit when `|g| ≥ κ·σ`.
    kappa: f32,
    /// EMA decay for the moment estimates.
    beta: f32,
    layers: HashMap<usize, LayerStats>,
    pending: HashMap<usize, Vec<f32>>,
}

impl VarianceSparsifier {
    /// Creates a sparsifier transmitting coordinates whose magnitude is at
    /// least `kappa` estimated standard deviations.
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::InvalidConfig`] unless `kappa > 0`.
    pub fn new(kappa: f64) -> Result<Self> {
        if !(kappa.is_finite() && kappa > 0.0) {
            return Err(CompressError::InvalidConfig(format!(
                "variance kappa must be positive, got {kappa}"
            )));
        }
        Ok(VarianceSparsifier {
            kappa: kappa as f32,
            beta: 0.9,
            layers: HashMap::new(),
            pending: HashMap::new(),
        })
    }

    /// The confidence multiplier.
    pub fn kappa(&self) -> f64 {
        f64::from(self.kappa)
    }
}

impl Compressor for VarianceSparsifier {
    fn properties(&self) -> Properties {
        Properties {
            name: format!("Variance-based (κ={:.1})", self.kappa),
            all_reducible: false,
            layerwise: true,
            rounds: 1,
        }
    }

    fn compressed_bytes(&self, shape: &Shape) -> usize {
        // Data dependent; for planning purposes assume ~10% survive (the
        // regime the original paper reports for κ≈1-2).
        ((shape.numel() as f64 * 0.10).round() as usize).max(1) * 8
    }

    fn encode(&mut self, layer: usize, grad: &Tensor) -> Result<Payload> {
        let n = grad.numel();
        crate::payload::check_sparse_index_space(n)?;
        let state = self.layers.entry(layer).or_insert_with(|| LayerStats {
            ema_mean: vec![0.0; n],
            ema_sq: vec![0.0; n],
            residual: vec![0.0; n],
            steps: 0,
        });
        if state.ema_mean.len() != n {
            *state = LayerStats {
                ema_mean: vec![0.0; n],
                ema_sq: vec![0.0; n],
                residual: vec![0.0; n],
                steps: 0,
            };
        }
        state.steps += 1;
        // Bias-corrected EMA updates on the raw gradient.
        let beta = self.beta;
        let corr = 1.0 - beta.powi(state.steps as i32);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for (i, &g) in grad.data().iter().enumerate() {
            state.ema_mean[i] = beta * state.ema_mean[i] + (1.0 - beta) * g;
            state.ema_sq[i] = beta * state.ema_sq[i] + (1.0 - beta) * g * g;
            let mean = state.ema_mean[i] / corr;
            let var = (state.ema_sq[i] / corr - mean * mean).max(0.0);
            let candidate = g + state.residual[i];
            if candidate.abs() >= self.kappa * var.sqrt() && candidate != 0.0 {
                indices.push(i as u32);
                values.push(candidate);
                state.residual[i] = 0.0;
            } else {
                state.residual[i] = candidate;
            }
        }
        if indices.is_empty() {
            // Always make progress: send the largest accumulated value.
            if let Some((i, &v)) = state
                .residual
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
            {
                if v != 0.0 {
                    indices.push(i as u32);
                    values.push(v);
                    state.residual[i] = 0.0;
                }
            }
        }
        Ok(Payload::Sparse {
            len: n,
            indices,
            values,
        })
    }

    fn aggregate(&self, _round: usize, payloads: &[Payload]) -> Result<Payload> {
        if payloads.is_empty() {
            return Err(CompressError::EmptyAggregate);
        }
        let mut dense: Option<Vec<f32>> = None;
        for p in payloads {
            match p {
                Payload::Sparse {
                    len,
                    indices,
                    values,
                } => {
                    let d = dense.get_or_insert_with(|| vec![0.0; *len]);
                    if d.len() != *len {
                        return Err(CompressError::Protocol(
                            "sparse payloads disagree on dense length".into(),
                        ));
                    }
                    for (&i, &v) in indices.iter().zip(values) {
                        let slot = d.get_mut(i as usize).ok_or_else(|| {
                            CompressError::Protocol(format!("index {i} out of bounds"))
                        })?;
                        // Bounds-checked sparse scatter-add; no bulk kernel
                        // applies to indexed single-element updates.
                        *slot += v; // lint: allow(raw-f32-accumulation)
                    }
                }
                other => {
                    return Err(CompressError::PayloadKind {
                        expected: "Sparse",
                        actual: other.kind_name(),
                    });
                }
            }
        }
        let Some(mut d) = dense else {
            return Err(CompressError::EmptyAggregate);
        };
        let inv = 1.0 / payloads.len() as f32;
        for x in &mut d {
            *x *= inv;
        }
        Ok(Payload::Dense(d))
    }

    fn absorb(&mut self, layer: usize, round: usize, agg: Payload) -> Result<()> {
        if round != 0 {
            return Err(CompressError::Protocol(format!(
                "variance sparsifier has a single round, got {round}"
            )));
        }
        match agg {
            Payload::Dense(v) => {
                self.pending.insert(layer, v);
                Ok(())
            }
            other => Err(CompressError::PayloadKind {
                expected: "Dense",
                actual: other.kind_name(),
            }),
        }
    }

    fn finish(&mut self, layer: usize, shape: &Shape) -> Result<Tensor> {
        let v = self.pending.remove(&layer).ok_or_else(|| {
            CompressError::Protocol(format!("finish before absorb for layer {layer}"))
        })?;
        Tensor::from_shape_vec(shape.clone(), v).map_err(Into::into)
    }

    fn reset(&mut self) {
        self.layers.clear();
        self.pending.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::round_trip;

    #[test]
    fn rejects_bad_kappa() {
        assert!(VarianceSparsifier::new(0.0).is_err());
        assert!(VarianceSparsifier::new(-1.0).is_err());
        assert!(VarianceSparsifier::new(f64::NAN).is_err());
        assert!(VarianceSparsifier::new(1.5).is_ok());
    }

    #[test]
    fn stable_coordinates_are_transmitted_noisy_ones_deferred() {
        // Coordinate 0 is constant (zero variance -> always confident);
        // coordinate 1 alternates sign (high variance, tiny mean).
        let mut c = VarianceSparsifier::new(1.5).unwrap();
        let mut sent_stable = 0usize;
        let mut sent_noisy = 0usize;
        for step in 0..40 {
            let noisy = if step % 2 == 0 { 1.0 } else { -1.0 };
            let g = Tensor::from_vec(vec![0.5, noisy]);
            let p = c.encode(0, &g).unwrap();
            let Payload::Sparse { indices, .. } = &p else {
                panic!("wrong payload")
            };
            sent_stable += usize::from(indices.contains(&0));
            sent_noisy += usize::from(indices.contains(&1));
            // Drive the protocol to completion so state stays consistent.
            let agg = c.aggregate(0, std::slice::from_ref(&p)).unwrap();
            c.absorb(0, 0, agg).unwrap();
            let _ = c.finish(0, g.shape()).unwrap();
        }
        assert!(sent_stable > 30, "stable coordinate sent {sent_stable}/40");
        assert!(
            sent_noisy < sent_stable,
            "noisy ({sent_noisy}) should be deferred more than stable ({sent_stable})"
        );
    }

    #[test]
    fn error_feedback_conserves_mass_on_constant_gradient() {
        let g = Tensor::from_vec(vec![0.2, -0.1, 0.7, 0.0]);
        let mut c = VarianceSparsifier::new(2.0).unwrap();
        let mut applied = Tensor::zeros([4]);
        let steps = 60;
        for _ in 0..steps {
            let out = round_trip(&mut c, 0, &g).unwrap();
            applied.add_assign(&out).unwrap();
        }
        applied.scale(1.0 / steps as f32);
        let cos = gcs_tensor::stats::cosine_similarity(&g, &applied);
        assert!(cos > 0.95, "cosine {cos}");
    }

    #[test]
    fn zero_gradient_yields_valid_payload() {
        let g = Tensor::zeros([8]);
        let mut c = VarianceSparsifier::new(1.0).unwrap();
        let out = round_trip(&mut c, 0, &g).unwrap();
        assert!(out.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn table_row_is_gathered_layerwise() {
        let p = VarianceSparsifier::new(1.0).unwrap().properties();
        assert!(!p.all_reducible);
        assert!(p.layerwise);
    }
}
