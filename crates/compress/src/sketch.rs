//! GradiVeq-style linear sketch compression (Yu et al., 2018),
//! simplified.
//!
//! GradiVeq compresses gradients with a *linear* projection onto a learned
//! PCA basis; linearity is what makes it all-reduce compatible (Table 1).
//! This module implements the same communication structure with a fixed
//! orthogonal projection — block averaging with `√c` scaling — instead of
//! the learned basis: every worker projects with the *same* matrix, the
//! projections sum associatively, and decode is the transpose. The wire
//! cost, aggregation semantics and scalability behaviour (the aspects the
//! paper's performance analysis needs) are identical to GradiVeq's; only
//! the approximation quality of the basis differs, which we document as a
//! substitution in DESIGN.md.

use crate::{CompressError, Compressor, Payload, Properties, Result};
use gcs_tensor::{Shape, Tensor};
use std::collections::HashMap;

/// Linear sketch compressor: project onto disjoint blocks of size `c`
/// (`y_j = Σ_{i∈block j} x_i / √c`), decode by transpose.
#[derive(Debug)]
pub struct LinearSketch {
    /// Block size = compression factor.
    block: usize,
    error_feedback: bool,
    residual: HashMap<usize, Tensor>,
    pending: HashMap<usize, Vec<f32>>,
    lens: HashMap<usize, usize>,
}

impl LinearSketch {
    /// Creates a sketch with compression factor `block` (each `block`
    /// consecutive coordinates collapse to one transmitted value).
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::InvalidConfig`] if `block == 0`.
    pub fn new(block: usize) -> Result<Self> {
        if block == 0 {
            return Err(CompressError::InvalidConfig(
                "sketch block size must be positive".into(),
            ));
        }
        Ok(LinearSketch {
            block,
            error_feedback: false,
            residual: HashMap::new(),
            pending: HashMap::new(),
            lens: HashMap::new(),
        })
    }

    /// Enables error feedback.
    pub fn error_feedback(mut self, on: bool) -> Self {
        self.error_feedback = on;
        self
    }

    fn sketch_len(&self, numel: usize) -> usize {
        numel.div_ceil(self.block)
    }

    fn project(&self, data: &[f32]) -> Vec<f32> {
        let scale = 1.0 / (self.block as f32).sqrt();
        data.chunks(self.block)
            .map(|c| c.iter().sum::<f32>() * scale)
            .collect()
    }

    fn lift(&self, sketch: &[f32], numel: usize) -> Vec<f32> {
        let scale = 1.0 / (self.block as f32).sqrt();
        let mut out = vec![0.0f32; numel];
        for (j, &y) in sketch.iter().enumerate() {
            let start = j * self.block;
            let end = (start + self.block).min(numel);
            for x in &mut out[start..end] {
                *x = y * scale;
            }
        }
        out
    }
}

impl Compressor for LinearSketch {
    fn properties(&self) -> Properties {
        Properties {
            name: format!("GradiVeq-sketch (c={})", self.block),
            all_reducible: true,
            layerwise: true,
            rounds: 1,
        }
    }

    fn compressed_bytes(&self, shape: &Shape) -> usize {
        self.sketch_len(shape.numel()) * 4
    }

    fn encode(&mut self, layer: usize, grad: &Tensor) -> Result<Payload> {
        let v = if self.error_feedback {
            match self.residual.get(&layer) {
                Some(e) => grad.add(e)?,
                None => grad.clone(),
            }
        } else {
            grad.clone()
        };
        self.lens.insert(layer, v.numel());
        let sketch = self.project(v.data());
        if self.error_feedback {
            let own = self.lift(&sketch, v.numel());
            let own = Tensor::from_shape_vec(v.shape().clone(), own)?;
            self.residual.insert(layer, v.sub(&own)?);
        }
        Ok(Payload::Dense(sketch))
    }

    fn aggregate(&self, _round: usize, payloads: &[Payload]) -> Result<Payload> {
        let mut iter = payloads.iter();
        let first = iter.next().ok_or(CompressError::EmptyAggregate)?;
        let mut acc = first.clone();
        for p in iter {
            acc.add_assign(p)?;
        }
        acc.scale(1.0 / payloads.len() as f32)?;
        Ok(acc)
    }

    fn absorb(&mut self, layer: usize, round: usize, agg: Payload) -> Result<()> {
        if round != 0 {
            return Err(CompressError::Protocol(format!(
                "sketch has a single round, got {round}"
            )));
        }
        match agg {
            Payload::Dense(v) => {
                self.pending.insert(layer, v);
                Ok(())
            }
            other => Err(CompressError::PayloadKind {
                expected: "Dense",
                actual: other.kind_name(),
            }),
        }
    }

    fn finish(&mut self, layer: usize, shape: &Shape) -> Result<Tensor> {
        let sketch = self.pending.remove(&layer).ok_or_else(|| {
            CompressError::Protocol(format!("finish before absorb for layer {layer}"))
        })?;
        let numel = shape.numel();
        if self.sketch_len(numel) != sketch.len() {
            return Err(CompressError::Protocol(format!(
                "sketch length {} does not match shape {shape}",
                sketch.len()
            )));
        }
        Tensor::from_shape_vec(shape.clone(), self.lift(&sketch, numel)).map_err(Into::into)
    }

    fn reset(&mut self) {
        self.residual.clear();
        self.pending.clear();
        self.lens.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{all_reduce_compressed, round_trip};

    #[test]
    fn rejects_zero_block() {
        assert!(LinearSketch::new(0).is_err());
    }

    #[test]
    fn block_one_is_identity() {
        let g = Tensor::randn([33], 61);
        let mut c = LinearSketch::new(1).unwrap();
        let out = round_trip(&mut c, 0, &g).unwrap();
        let err = gcs_tensor::stats::relative_l2_error(&g, &out);
        assert!(err < 1e-6, "err {err}");
    }

    #[test]
    fn constant_blocks_are_exact() {
        // Piecewise-constant gradients live in the sketch's range space.
        let g = Tensor::from_vec(vec![2.0, 2.0, 2.0, 2.0, -1.0, -1.0, -1.0, -1.0]);
        let mut c = LinearSketch::new(4).unwrap();
        let out = round_trip(&mut c, 0, &g).unwrap();
        let err = gcs_tensor::stats::relative_l2_error(&g, &out);
        assert!(err < 1e-6, "err {err}");
    }

    #[test]
    fn linearity_makes_aggregation_exact() {
        // mean(sketch(g_i)) decoded == sketch-decode of mean(g_i):
        // the all-reduce result must equal compressing the mean directly.
        let grads: Vec<Tensor> = (0..3).map(|s| Tensor::randn([64], 70 + s)).collect();
        let mut mean = Tensor::zeros([64]);
        for g in &grads {
            mean.add_assign(g).unwrap();
        }
        mean.scale(1.0 / 3.0);
        let mut workers: Vec<LinearSketch> =
            (0..3).map(|_| LinearSketch::new(4).unwrap()).collect();
        let outs = all_reduce_compressed(&mut workers, 0, &grads).unwrap();
        let mut single = LinearSketch::new(4).unwrap();
        let direct = round_trip(&mut single, 0, &mean).unwrap();
        let err = gcs_tensor::stats::relative_l2_error(&direct, &outs[0]);
        assert!(err < 1e-5, "err {err}");
    }

    #[test]
    fn compression_factor_matches_block() {
        let c = LinearSketch::new(8).unwrap();
        assert_eq!(c.compressed_bytes(&Shape::new(vec![800])), 100 * 4);
    }

    #[test]
    fn ef_residual_is_orthogonal_to_sketch_range() {
        // With a *fixed* linear projector the residual lives entirely in
        // the null space: re-projecting it must give (numerically) zero.
        // This is why GradiVeq needs to *learn* its basis — a fixed one can
        // never recover the complement, with or without error feedback.
        let g = Tensor::randn([32], 62);
        let mut c = LinearSketch::new(8).unwrap().error_feedback(true);
        let _ = round_trip(&mut c, 0, &g).unwrap();
        let res = c.residual.get(&0).unwrap().clone();
        let re_projected = c.project(res.data());
        let norm: f32 = re_projected.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!(norm < 1e-4 * res.l2_norm().max(1.0), "norm {norm}");
    }

    #[test]
    fn ragged_tail_roundtrips() {
        let g = Tensor::randn([10], 63); // block 4 -> sketch len 3, tail of 2
        let mut c = LinearSketch::new(4).unwrap();
        let out = round_trip(&mut c, 0, &g).unwrap();
        assert_eq!(out.numel(), 10);
    }
}
