//! Gradient compression schemes evaluated by *"On the Utility of Gradient
//! Compression in Distributed Training Systems"* (MLSys 2022).
//!
//! Every method is implemented for real — encode, aggregate and decode all
//! operate on actual gradient data — so the crate can both (a) measure true
//! encode/decode costs (the paper's Table 2) and (b) validate that the
//! optimizer-visible semantics (majority vote, error feedback, warm-started
//! power iteration) behave as published.
//!
//! # Protocol model
//!
//! A compression scheme is a [`Compressor`]: a small state machine driven
//! once per layer per iteration through
//! `encode → (aggregate → absorb)+ → finish`. Single-round methods
//! (SignSGD, Top-K, QSGD, …) use one aggregate step; PowerSGD uses two
//! (all-reduce of `P`, then of `Q`). The [`driver`] module runs the protocol
//! across a set of in-process workers and is the reference implementation
//! the distributed engine in `gcs-ddp` is tested against.
//!
//! # Example
//!
//! ```
//! use gcs_compress::{driver::all_reduce_compressed, signsgd::SignSgd, Compressor};
//! use gcs_tensor::Tensor;
//!
//! # fn main() -> Result<(), gcs_compress::CompressError> {
//! let grads = vec![
//!     Tensor::from_vec(vec![-0.5, 1.0, 2.0]),
//!     Tensor::from_vec(vec![-0.1, -3.0, 1.0]),
//!     Tensor::from_vec(vec![-1.7, 4.0, -0.2]),
//! ];
//! let mut workers: Vec<SignSgd> = (0..3).map(|_| SignSgd::new()).collect();
//! let out = all_reduce_compressed(&mut workers, 0, &grads)?;
//! // Majority vote: coordinate 0 is negative on all workers.
//! assert!(out[0].data()[0] < 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod adaptive;
pub mod atomo;
pub mod chunked;
pub mod dgc;
pub mod double_squeeze;
pub mod driver;
mod error;
pub mod fp16;
pub mod natural;
pub mod none;
pub mod onebit;
mod payload;
pub mod powersgd;
pub mod qsgd;
pub mod randomk;
pub mod registry;
pub mod signsgd;
pub mod sketch;
pub mod terngrad;
pub mod topk;
mod traits;
pub mod variance;

pub use error::CompressError;
pub use payload::{Factor, Payload};
pub use traits::{Compressor, Properties};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CompressError>;
