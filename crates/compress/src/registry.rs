//! Construction of compressors by name/config, and the catalogue used to
//! regenerate the paper's Table 1.

use crate::atomo::Atomo;
use crate::dgc::Dgc;
use crate::fp16::Fp16;
use crate::natural::NaturalCompression;
use crate::none::NoCompression;
use crate::onebit::OneBitSgd;
use crate::powersgd::PowerSgd;
use crate::qsgd::Qsgd;
use crate::randomk::RandomK;
use crate::signsgd::SignSgd;
use crate::sketch::LinearSketch;
use crate::terngrad::TernGrad;
use crate::topk::TopK;
use crate::variance::VarianceSparsifier;
use crate::{CompressError, Compressor, Result};

/// Configuration of a compression method — a serializable recipe for
/// constructing a [`Compressor`]. Used by the benchmark harness to sweep
/// methods and by `gcs-ddp` to hand every worker an identical instance.
#[derive(Debug, Clone, PartialEq)]
pub enum MethodConfig {
    /// Uncompressed baseline.
    SyncSgd,
    /// Half-precision communication.
    Fp16,
    /// PowerSGD with the given rank.
    PowerSgd {
        /// Low-rank factor rank (paper uses 4, 8, 16).
        rank: usize,
    },
    /// Top-K with the given keep-fraction.
    TopK {
        /// Fraction of coordinates kept (paper uses 0.01, 0.10, 0.20).
        ratio: f64,
    },
    /// SignSGD with majority vote.
    SignSgd,
    /// EF-SignSGD (mean-abs scale + error feedback).
    EfSignSgd,
    /// QSGD with the given level count.
    Qsgd {
        /// Quantization levels (≤ 127).
        levels: u8,
    },
    /// TernGrad.
    TernGrad,
    /// Random-K with the given keep-fraction.
    RandomK {
        /// Fraction of coordinates kept.
        ratio: f64,
    },
    /// ATOMO (SVD) with the given rank.
    Atomo {
        /// Retained rank.
        rank: usize,
    },
    /// 1-bit SGD.
    OneBit,
    /// GradiVeq-style linear sketch with the given block size.
    Sketch {
        /// Compression factor.
        block: usize,
    },
    /// Deep Gradient Compression with the given keep-fraction.
    Dgc {
        /// Target surviving fraction.
        ratio: f64,
    },
    /// Variance-based sparsification (Tsuzuku et al.) with confidence
    /// multiplier κ.
    Variance {
        /// Transmit when `|g| >= kappa * sigma`.
        kappa: f64,
    },
    /// Natural (stochastic power-of-two) compression.
    Natural,
}

impl MethodConfig {
    /// Builds a boxed compressor from this configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::InvalidConfig`] for out-of-range
    /// parameters.
    pub fn build(&self) -> Result<Box<dyn Compressor>> {
        Ok(match self {
            MethodConfig::SyncSgd => Box::new(NoCompression::new()),
            MethodConfig::Fp16 => Box::new(Fp16::new()),
            MethodConfig::PowerSgd { rank } => Box::new(PowerSgd::new(*rank)?),
            MethodConfig::TopK { ratio } => Box::new(TopK::new(*ratio)?),
            MethodConfig::SignSgd => Box::new(SignSgd::new()),
            MethodConfig::EfSignSgd => Box::new(SignSgd::with_error_feedback()),
            MethodConfig::Qsgd { levels } => Box::new(Qsgd::new(*levels)?),
            MethodConfig::TernGrad => Box::new(TernGrad::new()),
            MethodConfig::RandomK { ratio } => Box::new(RandomK::new(*ratio)?),
            MethodConfig::Atomo { rank } => Box::new(Atomo::new(*rank)?),
            MethodConfig::OneBit => Box::new(OneBitSgd::new()),
            MethodConfig::Sketch { block } => Box::new(LinearSketch::new(*block)?),
            MethodConfig::Dgc { ratio } => Box::new(Dgc::new(*ratio)?),
            MethodConfig::Variance { kappa } => Box::new(VarianceSparsifier::new(*kappa)?),
            MethodConfig::Natural => Box::new(NaturalCompression::new()),
        })
    }

    /// Parses a method from a compact string such as `"powersgd:4"`,
    /// `"topk:0.01"`, `"signsgd"`, `"qsgd:15"`.
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::InvalidConfig`] for unknown names or
    /// unparsable parameters.
    pub fn parse(spec: &str) -> Result<Self> {
        let (name, arg) = match spec.split_once(':') {
            Some((n, a)) => (n, Some(a)),
            None => (spec, None),
        };
        let need_f64 = |what: &str| -> Result<f64> {
            arg.ok_or_else(|| {
                CompressError::InvalidConfig(format!("{name} requires a {what} argument"))
            })?
            .parse()
            .map_err(|e| CompressError::InvalidConfig(format!("bad {what} for {name}: {e}")))
        };
        let need_usize = |what: &str| -> Result<usize> {
            arg.ok_or_else(|| {
                CompressError::InvalidConfig(format!("{name} requires a {what} argument"))
            })?
            .parse()
            .map_err(|e| CompressError::InvalidConfig(format!("bad {what} for {name}: {e}")))
        };
        Ok(match name.to_ascii_lowercase().as_str() {
            "syncsgd" | "none" => MethodConfig::SyncSgd,
            "fp16" | "half" => MethodConfig::Fp16,
            "powersgd" => MethodConfig::PowerSgd {
                rank: need_usize("rank")?,
            },
            "topk" => MethodConfig::TopK {
                ratio: need_f64("ratio")?,
            },
            "signsgd" => MethodConfig::SignSgd,
            "efsignsgd" => MethodConfig::EfSignSgd,
            "qsgd" => MethodConfig::Qsgd {
                levels: need_usize("levels")? as u8,
            },
            "terngrad" => MethodConfig::TernGrad,
            "randomk" => MethodConfig::RandomK {
                ratio: need_f64("ratio")?,
            },
            "atomo" => MethodConfig::Atomo {
                rank: need_usize("rank")?,
            },
            "onebit" | "1bit" => MethodConfig::OneBit,
            "sketch" | "gradiveq" => MethodConfig::Sketch {
                block: need_usize("block")?,
            },
            "dgc" => MethodConfig::Dgc {
                ratio: need_f64("ratio")?,
            },
            "variance" => MethodConfig::Variance {
                kappa: need_f64("kappa")?,
            },
            "natural" => MethodConfig::Natural,
            other => {
                return Err(CompressError::InvalidConfig(format!(
                    "unknown compression method '{other}'"
                )));
            }
        })
    }
}

impl std::fmt::Display for MethodConfig {
    /// The compact spec form accepted by [`MethodConfig::parse`], so a
    /// config can ride a text control plane and round-trip exactly
    /// (Rust's `f64` Display prints the shortest round-tripping form).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MethodConfig::SyncSgd => write!(f, "syncsgd"),
            MethodConfig::Fp16 => write!(f, "fp16"),
            MethodConfig::PowerSgd { rank } => write!(f, "powersgd:{rank}"),
            MethodConfig::TopK { ratio } => write!(f, "topk:{ratio}"),
            MethodConfig::SignSgd => write!(f, "signsgd"),
            MethodConfig::EfSignSgd => write!(f, "efsignsgd"),
            MethodConfig::Qsgd { levels } => write!(f, "qsgd:{levels}"),
            MethodConfig::TernGrad => write!(f, "terngrad"),
            MethodConfig::RandomK { ratio } => write!(f, "randomk:{ratio}"),
            MethodConfig::Atomo { rank } => write!(f, "atomo:{rank}"),
            MethodConfig::OneBit => write!(f, "onebit"),
            MethodConfig::Sketch { block } => write!(f, "sketch:{block}"),
            MethodConfig::Dgc { ratio } => write!(f, "dgc:{ratio}"),
            MethodConfig::Variance { kappa } => write!(f, "variance:{kappa}"),
            MethodConfig::Natural => write!(f, "natural"),
        }
    }
}

/// The method catalogue in the order of the paper's Table 1, with
/// representative parameters.
pub fn table1_methods() -> Vec<MethodConfig> {
    vec![
        MethodConfig::SyncSgd,
        MethodConfig::Sketch { block: 16 }, // GradiVeq-style
        MethodConfig::PowerSgd { rank: 4 },
        MethodConfig::RandomK { ratio: 0.01 },
        MethodConfig::Atomo { rank: 4 },
        MethodConfig::SignSgd,
        MethodConfig::TernGrad,
        MethodConfig::Qsgd { levels: 15 },
        MethodConfig::Dgc { ratio: 0.001 },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_catalogue_entry_builds() {
        for cfg in table1_methods() {
            let c = cfg.build().expect("catalogue entries must build");
            assert!(!c.properties().name.is_empty());
        }
    }

    #[test]
    fn table1_classification_matches_paper() {
        // (all_reducible, layerwise) per catalogue row, as in Table 1.
        let expected = [
            (true, true),  // syncSGD
            (true, true),  // GradiVeq
            (true, true),  // PowerSGD
            (true, false), // Random-K
            (false, true), // ATOMO
            (false, true), // SignSGD
            (false, true), // TernGrad
            (false, true), // QSGD
            (false, true), // DGC
        ];
        for (cfg, (ar, lw)) in table1_methods().iter().zip(expected) {
            let p = cfg.build().unwrap().properties();
            assert_eq!(p.all_reducible, ar, "{} all-reduce", p.name);
            assert_eq!(p.layerwise, lw, "{} layer-wise", p.name);
        }
    }

    #[test]
    fn parse_round_trips_common_specs() {
        assert_eq!(
            MethodConfig::parse("syncsgd").unwrap(),
            MethodConfig::SyncSgd
        );
        assert_eq!(
            MethodConfig::parse("powersgd:8").unwrap(),
            MethodConfig::PowerSgd { rank: 8 }
        );
        assert_eq!(
            MethodConfig::parse("topk:0.01").unwrap(),
            MethodConfig::TopK { ratio: 0.01 }
        );
        assert_eq!(
            MethodConfig::parse("qsgd:15").unwrap(),
            MethodConfig::Qsgd { levels: 15 }
        );
        assert_eq!(
            MethodConfig::parse("TERNGRAD").unwrap(),
            MethodConfig::TernGrad
        );
    }

    #[test]
    fn natural_method_builds_and_parses() {
        assert_eq!(
            MethodConfig::parse("natural").unwrap(),
            MethodConfig::Natural
        );
        assert!(MethodConfig::Natural.build().is_ok());
    }

    #[test]
    fn variance_method_builds_and_parses() {
        assert_eq!(
            MethodConfig::parse("variance:1.5").unwrap(),
            MethodConfig::Variance { kappa: 1.5 }
        );
        assert!(MethodConfig::Variance { kappa: 1.5 }.build().is_ok());
        assert!(MethodConfig::Variance { kappa: -1.0 }.build().is_err());
    }

    #[test]
    fn parse_rejects_unknown_and_malformed() {
        assert!(MethodConfig::parse("nope").is_err());
        assert!(MethodConfig::parse("powersgd").is_err());
        assert!(MethodConfig::parse("topk:abc").is_err());
    }

    #[test]
    fn build_propagates_invalid_parameters() {
        assert!(MethodConfig::PowerSgd { rank: 0 }.build().is_err());
        assert!(MethodConfig::TopK { ratio: 2.0 }.build().is_err());
        assert!(MethodConfig::Qsgd { levels: 200 }.build().is_err());
    }
}
