//! Adaptive compression controller: an online Equation-1 cost model that
//! picks the compression scheme per bucket.
//!
//! The paper's headline observation is that no fixed scheme wins
//! everywhere: syncSGD is optimal on fast interconnects, aggressive
//! compression on slow ones, and the crossover moves with bucket size and
//! worker count. This module closes the loop: a [`Controller`] holds a set
//! of candidate schemes (*arms*, [`MethodConfig`] recipes), estimates each
//! arm's per-bucket iteration cost with the α–β model of Equation 1, and
//! re-tunes the assignment at step boundaries under a hysteresis policy so
//! the data plane converges instead of thrashing.
//!
//! # Cost estimate
//!
//! For bucket `b` on arm `a` the estimated step share is
//!
//! ```text
//! T(b, a) = T_encdec(b, a) + Σ_rounds T_coll(bytes_r, p)
//! ```
//!
//! where `T_coll` is Equation 1 for ring all-reducible schemes
//! (`α(p−1) + 2·bytes·(p−1)/(p·BW)`) and the all-gather formula
//! (`α(p−1) + bytes·(p−1)/BW_eff`) otherwise — exactly the formulas of
//! `gcs_cluster::cost::NetworkModel`, mirrored here as [`LinkModel`]
//! because the dependency points the other way (a `gcs-ddp` test pins the
//! two models equal).
//!
//! # Modelled vs measured inputs
//!
//! [`DecisionInputs::Modelled`] evaluates the estimate from static
//! encode/decode priors and the configured link — fully deterministic, so
//! decision traces are bit-identical across runs (what the benchmark
//! gates). [`DecisionInputs::Measured`] replaces the priors with per-arm
//! EWMAs of observed encode/decode time and inverts Equation 1 on observed
//! exchange time to estimate the *effective* bandwidth — this is what
//! steers the controller toward higher compression when the fault plane
//! delays links.
//!
//! # Cross-rank consistency
//!
//! Every rank must run the same scheme for the same bucket or the
//! collective exchange deadlocks on mismatched payload kinds. The engine
//! therefore computes decisions on rank 0 only ([`Controller::end_step`]),
//! serializes them with [`encode_decisions`], broadcasts, and followers
//! replay them via [`Controller::apply`].

use crate::registry::MethodConfig;
use crate::{CompressError, Result};
use gcs_tensor::Shape;

/// Weight of a new observation in the encode/decode and bandwidth EWMAs.
const EWMA_WEIGHT: f64 = 0.3;

/// α–β link model — a dependency-free mirror of
/// `gcs_cluster::cost::NetworkModel` (same fields, same formulas; the
/// `gcs-ddp` test `link_model_matches_network_model` pins them equal).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    /// Per-message latency α in seconds.
    pub alpha_s: f64,
    /// Link bandwidth in **bytes per second**.
    pub bytes_per_sec: f64,
    /// Incast severity `c ≥ 0`: gathers see `BW / (1 + c·ln p)`.
    pub incast: f64,
}

impl LinkModel {
    /// Creates a link model from latency (seconds) and bandwidth (bytes/s).
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::InvalidConfig`] for non-finite or
    /// non-positive parameters.
    pub fn new(alpha_s: f64, bytes_per_sec: f64) -> Result<Self> {
        if !(alpha_s.is_finite() && alpha_s >= 0.0) {
            return Err(CompressError::InvalidConfig(format!(
                "link alpha must be >= 0, got {alpha_s}"
            )));
        }
        if !(bytes_per_sec.is_finite() && bytes_per_sec > 0.0) {
            return Err(CompressError::InvalidConfig(format!(
                "link bandwidth must be positive, got {bytes_per_sec}"
            )));
        }
        Ok(LinkModel {
            alpha_s,
            bytes_per_sec,
            incast: 0.0,
        })
    }

    /// Convenience constructor from Gbps.
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::InvalidConfig`] for non-positive `gbps`.
    pub fn from_gbps(alpha_s: f64, gbps: f64) -> Result<Self> {
        if !(gbps.is_finite() && gbps > 0.0) {
            return Err(CompressError::InvalidConfig(format!(
                "gbps must be positive, got {gbps}"
            )));
        }
        Self::new(alpha_s, gbps * 1e9 / 8.0)
    }

    /// Ring all-reduce of `bytes` across `p` workers — Equation 1:
    /// `α(p−1) + 2·b·(p−1)/(p·BW)`.
    pub fn ring_all_reduce(&self, bytes: f64, p: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let pf = p as f64;
        self.alpha_s * (pf - 1.0) + 2.0 * bytes * (pf - 1.0) / (pf * self.bytes_per_sec)
    }

    /// All-gather where each worker contributes `bytes`:
    /// `α(p−1) + b·(p−1)/BW_eff` with `BW_eff = BW / (1 + c·ln p)`.
    pub fn all_gather(&self, bytes: f64, p: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let pf = p as f64;
        let bw_eff = self.bytes_per_sec / (1.0 + self.incast * pf.ln());
        self.alpha_s * (pf - 1.0) + bytes * (pf - 1.0) / bw_eff
    }

    /// Overlap-aware Equation 1, mirroring
    /// `NetworkModel::streamed`: a compute stage overlapped with a wire
    /// stage through `chunks` ordered wire chunks costs
    /// `max(compute, comm) + min(compute, comm)/chunks`; `chunks <= 1`
    /// is the serial `compute + comm` of the monolithic datapath.
    pub fn streamed(&self, compute_s: f64, comm_s: f64, chunks: usize) -> f64 {
        if chunks <= 1 {
            return compute_s + comm_s;
        }
        compute_s.max(comm_s) + compute_s.min(comm_s) / chunks as f64
    }
}

/// Which collective a payload round rides on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectiveKind {
    /// Summable payload: ring all-reduce (Equation 1).
    Ring,
    /// Non-summable payload: serialized all-gather.
    Gather,
}

/// One modelled communication round of an (arm, bucket) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
struct RoundCost {
    bytes: f64,
    kind: CollectiveKind,
}

/// What the controller optimizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// Minimize estimated iteration time: every bucket takes the arm with
    /// the smallest Equation-1 estimate (ties break toward the
    /// lowest-index — least aggressive — arm).
    FastestIteration,
    /// Stay under a per-step communication budget while compressing as
    /// little as possible: each bucket gets a share of the budget
    /// proportional to its element count and takes the *lowest-index* arm
    /// whose estimate fits that share (arms are conventionally ordered
    /// least → most aggressive). Falls back to the fastest arm when none
    /// fits.
    Budget {
        /// Target seconds per step for the whole exchange.
        per_step_s: f64,
    },
}

/// Where the controller's cost estimates come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionInputs {
    /// Static encode/decode priors + configured link model. Fully
    /// deterministic: decision traces are bit-identical across runs.
    Modelled,
    /// EWMA of observed encode/decode seconds per (bucket, arm), plus an
    /// effective-bandwidth estimate inverted from observed exchange time
    /// via Equation 1. Warm-up steps round-robin the arms so every EWMA
    /// is seeded before steady-state decisions begin.
    Measured,
}

/// Configuration of the adaptive controller.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveConfig {
    /// Candidate schemes. Index 0 is the initial assignment for every
    /// bucket; order least → most aggressive so [`Objective::Budget`]
    /// prefers lighter compression.
    pub arms: Vec<MethodConfig>,
    /// What to optimize.
    pub objective: Objective,
    /// Modelled or measured estimates.
    pub inputs: DecisionInputs,
    /// The α–β link model used for modelled estimates (and as the
    /// bandwidth prior before any measurement).
    pub link: LinkModel,
    /// Relative improvement required before switching away from the
    /// current arm (e.g. `0.15` = the challenger must be ≥15 % faster).
    pub hysteresis: f64,
    /// Minimum steps on an arm before it may be switched again.
    pub dwell_steps: usize,
    /// Measured-input warm-up: steps `1..=warmup_steps` round-robin the
    /// arms (`arm = (step + bucket) mod |arms|`) to seed every EWMA.
    pub warmup_steps: usize,
    /// Wire chunks per bucket the engine streams (`stream_chunk_elems`
    /// datapath): estimates use the overlap-aware Equation 1
    /// ([`LinkModel::streamed`]) instead of the serial `encdec + comm`
    /// sum. `1` (default) models the monolithic datapath.
    pub streaming_chunks: usize,
    /// Static encode+decode prior in nanoseconds per element, one per arm
    /// (filled from [`default_encdec_prior_ns`] by
    /// [`AdaptiveConfig::new`]).
    pub priors_ns_per_elem: Vec<f64>,
}

/// Static encode+decode cost prior for `method`, in nanoseconds per
/// gradient element on one core. Calibrated once against this repo's
/// kernel benchmarks (Table 2 reproduces the same ordering: Top-K's
/// selection dominates, PowerSGD scales with rank, casts are cheap) and
/// then *frozen* so modelled decision traces stay bit-identical across
/// machines. [`DecisionInputs::Measured`] replaces these with live EWMAs.
pub fn default_encdec_prior_ns(method: &MethodConfig) -> f64 {
    match method {
        MethodConfig::SyncSgd => 0.25,
        MethodConfig::Fp16 => 2.0,
        MethodConfig::PowerSgd { rank } => 4.0 * (*rank as f64).max(1.0),
        MethodConfig::TopK { .. } => 25.0,
        MethodConfig::SignSgd => 1.5,
        MethodConfig::EfSignSgd => 2.5,
        MethodConfig::Qsgd { .. } => 6.0,
        MethodConfig::TernGrad => 4.0,
        MethodConfig::RandomK { .. } => 5.0,
        MethodConfig::Atomo { rank } => 40.0 * (*rank as f64).max(1.0),
        MethodConfig::OneBit => 3.0,
        MethodConfig::Sketch { .. } => 10.0,
        MethodConfig::Dgc { .. } => 30.0,
        MethodConfig::Variance { .. } => 12.0,
        MethodConfig::Natural => 4.0,
    }
}

impl AdaptiveConfig {
    /// Creates a config with the given arms and defaults: fastest-iteration
    /// objective, modelled inputs, the paper's 10 Gbps datacenter link,
    /// 15 % hysteresis, 2-step dwell, and one warm-up round per arm.
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::InvalidConfig`] when `arms` is empty.
    pub fn new(arms: Vec<MethodConfig>) -> Result<Self> {
        if arms.is_empty() {
            return Err(CompressError::InvalidConfig(
                "adaptive controller needs at least one arm".into(),
            ));
        }
        let priors = arms.iter().map(default_encdec_prior_ns).collect();
        let warmup = arms.len();
        Ok(AdaptiveConfig {
            arms,
            objective: Objective::FastestIteration,
            inputs: DecisionInputs::Modelled,
            link: LinkModel {
                alpha_s: 15e-6,
                bytes_per_sec: 10e9 / 8.0,
                incast: 0.0,
            },
            hysteresis: 0.15,
            dwell_steps: 2,
            warmup_steps: warmup,
            streaming_chunks: 1,
            priors_ns_per_elem: priors,
        })
    }

    /// Sets the number of streamed wire chunks the engine uses (1 =
    /// monolithic datapath, serial `encdec + comm` estimates).
    #[must_use]
    pub fn streaming_chunks(mut self, chunks: usize) -> Self {
        self.streaming_chunks = chunks.max(1);
        self
    }

    /// Sets the objective.
    #[must_use]
    pub fn objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Sets the estimate inputs.
    #[must_use]
    pub fn inputs(mut self, inputs: DecisionInputs) -> Self {
        self.inputs = inputs;
        self
    }

    /// Sets the link model.
    #[must_use]
    pub fn link(mut self, link: LinkModel) -> Self {
        self.link = link;
        self
    }

    /// Sets the hysteresis threshold.
    #[must_use]
    pub fn hysteresis(mut self, hysteresis: f64) -> Self {
        self.hysteresis = hysteresis;
        self
    }

    /// Sets the dwell requirement.
    #[must_use]
    pub fn dwell_steps(mut self, dwell: usize) -> Self {
        self.dwell_steps = dwell;
        self
    }

    /// Sets the measured-input warm-up length.
    #[must_use]
    pub fn warmup_steps(mut self, warmup: usize) -> Self {
        self.warmup_steps = warmup;
        self
    }
}

/// One scheme switch, as computed on rank 0 and replayed on followers.
/// The full ordered decision list is the controller's *trace* — recording
/// it and re-running under [`Controller::scripted`] reproduces the exact
/// arm assignment sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// The step this decision takes effect for (the exchange *after* it
    /// was made; initial-assignment decisions carry step 0).
    pub step: u32,
    /// Bucket index.
    pub bucket: u32,
    /// Previous arm index.
    pub from: u32,
    /// New arm index.
    pub to: u32,
    /// Estimated per-step seconds of the previous arm at decision time.
    pub est_from_s: f64,
    /// Estimated per-step seconds of the new arm at decision time.
    pub est_to_s: f64,
    /// Whether this was a warm-up probe rather than a policy switch.
    pub probe: bool,
}

/// Bytes per serialized [`Decision`] on the broadcast wire.
const DECISION_WIRE_BYTES: usize = 4 * 4 + 8 * 2 + 1;

/// Serializes decisions for the rank-0 → followers broadcast.
///
/// # Errors
///
/// Returns [`CompressError::Wire`] if the decision count overflows the
/// `u32` wire count field (narrowing must fail loudly, never truncate).
pub fn encode_decisions(decisions: &[Decision]) -> Result<Vec<u8>> {
    let count = u32::try_from(decisions.len()).map_err(|_| {
        CompressError::Wire(format!(
            "{} decisions exceed the u32 wire count field",
            decisions.len()
        ))
    })?;
    let mut out = Vec::with_capacity(4 + decisions.len() * DECISION_WIRE_BYTES);
    out.extend_from_slice(&count.to_le_bytes());
    for d in decisions {
        out.extend_from_slice(&d.step.to_le_bytes());
        out.extend_from_slice(&d.bucket.to_le_bytes());
        out.extend_from_slice(&d.from.to_le_bytes());
        out.extend_from_slice(&d.to.to_le_bytes());
        out.extend_from_slice(&d.est_from_s.to_bits().to_le_bytes());
        out.extend_from_slice(&d.est_to_s.to_bits().to_le_bytes());
        out.push(u8::from(d.probe));
    }
    Ok(out)
}

/// Deserializes a decision list produced by [`encode_decisions`].
///
/// # Errors
///
/// Returns [`CompressError::Protocol`] on a truncated or malformed buffer.
pub fn decode_decisions(bytes: &[u8]) -> Result<Vec<Decision>> {
    let malformed = || CompressError::Protocol("malformed decision broadcast".into());
    let head: [u8; 4] = bytes
        .get(..4)
        .and_then(|s| s.try_into().ok())
        .ok_or_else(malformed)?;
    let count = u32::from_le_bytes(head) as usize;
    let body = &bytes[4..];
    if body.len() != count * DECISION_WIRE_BYTES {
        return Err(malformed());
    }
    let mut out = Vec::with_capacity(count);
    for chunk in body.chunks_exact(DECISION_WIRE_BYTES) {
        let u32_at = |i: usize| -> Result<u32> {
            chunk
                .get(i..i + 4)
                .and_then(|s| s.try_into().ok())
                .map(u32::from_le_bytes)
                .ok_or_else(malformed)
        };
        let f64_at = |i: usize| -> Result<f64> {
            chunk
                .get(i..i + 8)
                .and_then(|s| s.try_into().ok())
                .map(|b| f64::from_bits(u64::from_le_bytes(b)))
                .ok_or_else(malformed)
        };
        out.push(Decision {
            step: u32_at(0)?,
            bucket: u32_at(4)?,
            from: u32_at(8)?,
            to: u32_at(12)?,
            est_from_s: f64_at(16)?,
            est_to_s: f64_at(24)?,
            probe: chunk.get(32).copied().ok_or_else(malformed)? != 0,
        });
    }
    Ok(out)
}

/// One instrumented bucket exchange, fed back via [`Controller::observe`].
/// Byte/round counts let the controller invert Equation 1 for an effective
/// bandwidth; when a bucket's rounds mix ring and gather traffic the
/// inversion is skipped (no single-collective formula applies).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// Bucket index.
    pub bucket: usize,
    /// Arm the bucket ran on.
    pub arm: usize,
    /// Seconds spent encoding (all rounds).
    pub encode_s: f64,
    /// Seconds spent in the collective exchange (all rounds).
    pub comm_s: f64,
    /// Seconds spent decoding/absorbing.
    pub decode_s: f64,
    /// Total bytes moved over ring all-reduce rounds.
    pub ring_bytes: u64,
    /// Number of ring rounds.
    pub ring_rounds: u32,
    /// Total per-worker bytes contributed to all-gather rounds.
    pub gather_bytes: u64,
    /// Number of gather rounds.
    pub gather_rounds: u32,
}

/// Per-bucket controller state.
#[derive(Debug, Clone)]
struct BucketState {
    arm: usize,
    steps_on_arm: usize,
    /// EWMA of observed encode+decode seconds, one slot per arm.
    encdec_ewma: Vec<Option<f64>>,
}

/// The adaptive compression controller (see the module docs).
#[derive(Debug)]
pub struct Controller {
    cfg: AdaptiveConfig,
    world: usize,
    elems: Vec<usize>,
    total_elems: usize,
    /// `rounds[arm][bucket]` — the modelled communication rounds.
    rounds: Vec<Vec<Vec<RoundCost>>>,
    buckets: Vec<BucketState>,
    /// EWMA of the effective link bandwidth inverted from observations.
    bw_estimate: Option<f64>,
    step: u32,
    trace: Vec<Decision>,
    script: Option<Vec<Decision>>,
}

impl Controller {
    /// Creates a controller for `bucket_shapes` (the matricized shapes of
    /// the engine's `BucketPlan`) across a `world`-worker ring. Every
    /// bucket starts on arm 0.
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::InvalidConfig`] when `bucket_shapes` is
    /// empty, `world` is zero, or an arm fails to build.
    pub fn new(cfg: AdaptiveConfig, bucket_shapes: &[Shape], world: usize) -> Result<Self> {
        if bucket_shapes.is_empty() {
            return Err(CompressError::InvalidConfig(
                "adaptive controller needs at least one bucket".into(),
            ));
        }
        if world == 0 {
            return Err(CompressError::InvalidConfig(
                "adaptive controller needs at least one worker".into(),
            ));
        }
        if cfg.priors_ns_per_elem.len() != cfg.arms.len() {
            return Err(CompressError::InvalidConfig(format!(
                "{} priors for {} arms",
                cfg.priors_ns_per_elem.len(),
                cfg.arms.len()
            )));
        }
        let mut rounds = Vec::with_capacity(cfg.arms.len());
        for method in &cfg.arms {
            let compressor = method.build()?;
            let props = compressor.properties();
            let mut per_bucket = Vec::with_capacity(bucket_shapes.len());
            for shape in bucket_shapes {
                per_bucket.push(model_rounds(method, compressor.as_ref(), &props, shape));
            }
            rounds.push(per_bucket);
        }
        let elems: Vec<usize> = bucket_shapes.iter().map(Shape::numel).collect();
        let total_elems = elems.iter().sum::<usize>().max(1);
        let buckets = bucket_shapes
            .iter()
            .map(|_| BucketState {
                arm: 0,
                steps_on_arm: 0,
                encdec_ewma: vec![None; cfg.arms.len()],
            })
            .collect();
        Ok(Controller {
            cfg,
            world,
            elems,
            total_elems,
            rounds,
            buckets,
            bw_estimate: None,
            step: 0,
            trace: Vec::new(),
            script: None,
        })
    }

    /// Creates a controller that replays a recorded decision trace instead
    /// of running the policy: [`tune_initial`](Controller::tune_initial)
    /// applies the script's step-0 entries, and each
    /// [`end_step`](Controller::end_step) applies the entries stamped with
    /// the new step. Replaying a live run's [`trace`](Controller::trace)
    /// reproduces its arm assignments exactly.
    ///
    /// # Errors
    ///
    /// Propagates [`Controller::new`] errors, or
    /// [`CompressError::Protocol`] when a script entry references an arm
    /// or bucket out of range.
    pub fn scripted(
        cfg: AdaptiveConfig,
        bucket_shapes: &[Shape],
        world: usize,
        script: Vec<Decision>,
    ) -> Result<Self> {
        let mut c = Self::new(cfg, bucket_shapes, world)?;
        for d in &script {
            if d.bucket as usize >= c.buckets.len() || d.to as usize >= c.cfg.arms.len() {
                return Err(CompressError::Protocol(format!(
                    "scripted decision out of range: bucket {} arm {}",
                    d.bucket, d.to
                )));
            }
        }
        c.script = Some(script);
        Ok(c)
    }

    /// Number of buckets under control.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Number of candidate arms.
    pub fn num_arms(&self) -> usize {
        self.cfg.arms.len()
    }

    /// The candidate schemes.
    pub fn arms(&self) -> &[MethodConfig] {
        &self.cfg.arms
    }

    /// Current arm index of `bucket`.
    ///
    /// # Panics
    ///
    /// Panics if `bucket` is out of range.
    pub fn arm_of(&self, bucket: usize) -> usize {
        self.buckets[bucket].arm
    }

    /// Current scheme of `bucket`.
    ///
    /// # Panics
    ///
    /// Panics if `bucket` is out of range.
    pub fn method_of(&self, bucket: usize) -> &MethodConfig {
        &self.cfg.arms[self.buckets[bucket].arm]
    }

    /// Every decision made (or applied) so far, in order.
    pub fn trace(&self) -> &[Decision] {
        &self.trace
    }

    /// The EWMA effective-bandwidth estimate (bytes/s), if any
    /// observation has been inverted yet.
    pub fn bandwidth_estimate(&self) -> Option<f64> {
        self.bw_estimate
    }

    /// The link model decisions currently use: the configured link, with
    /// its bandwidth replaced by the measured estimate under
    /// [`DecisionInputs::Measured`].
    fn decision_link(&self) -> LinkModel {
        match (self.cfg.inputs, self.bw_estimate) {
            (DecisionInputs::Measured, Some(bw)) => LinkModel {
                bytes_per_sec: bw,
                ..self.cfg.link
            },
            _ => self.cfg.link,
        }
    }

    /// Estimated per-step seconds for `bucket` on `arm` (encode + decode
    /// + Equation-1 communication).
    ///
    /// # Panics
    ///
    /// Panics if `bucket` or `arm` is out of range.
    pub fn estimate(&self, bucket: usize, arm: usize) -> f64 {
        let prior = self.cfg.priors_ns_per_elem[arm] * 1e-9 * self.elems[bucket] as f64;
        let encdec = match self.cfg.inputs {
            DecisionInputs::Modelled => prior,
            DecisionInputs::Measured => self.buckets[bucket].encdec_ewma[arm].unwrap_or(prior),
        };
        let link = self.decision_link();
        let mut comm = 0.0;
        for r in &self.rounds[arm][bucket] {
            comm += match r.kind {
                CollectiveKind::Ring => link.ring_all_reduce(r.bytes, self.world),
                CollectiveKind::Gather => link.all_gather(r.bytes, self.world),
            };
        }
        // With a streaming engine the exposed cost is the overlap-aware
        // Equation 1; streaming_chunks = 1 recovers the serial sum.
        link.streamed(encdec, comm, self.cfg.streaming_chunks)
    }

    /// Estimated seconds for one full exchange under the current arm
    /// assignment.
    pub fn step_estimate(&self) -> f64 {
        (0..self.buckets.len())
            .map(|b| self.estimate(b, self.buckets[b].arm))
            .sum()
    }

    /// Feeds one instrumented bucket exchange back into the controller.
    /// Out-of-range indices are ignored (a follower replaying foreign
    /// decisions may momentarily disagree with local instrumentation).
    pub fn observe(&mut self, obs: Observation) {
        if obs.arm >= self.cfg.arms.len() {
            return;
        }
        let world = self.world;
        let Some(state) = self.buckets.get_mut(obs.bucket) else {
            return;
        };
        let encdec = obs.encode_s + obs.decode_s;
        let slot = &mut state.encdec_ewma[obs.arm];
        *slot = Some(match *slot {
            Some(prev) => (1.0 - EWMA_WEIGHT) * prev + EWMA_WEIGHT * encdec,
            None => encdec,
        });
        if let Some(bw) = invert_bandwidth(&self.cfg.link, world, &obs) {
            self.bw_estimate = Some(match self.bw_estimate {
                Some(prev) => (1.0 - EWMA_WEIGHT) * prev + EWMA_WEIGHT * bw,
                None => bw,
            });
        }
    }

    /// Computes the initial per-bucket assignment before the first
    /// exchange (step 0). Under modelled inputs this applies the policy
    /// immediately — there is nothing to measure, so waiting a step would
    /// only pay one exchange on a known-suboptimal arm. Under measured
    /// inputs the warm-up probing owns the early steps and this is a
    /// no-op. Scripted controllers apply the script's step-0 entries.
    ///
    /// Rank 0 calls this; the returned decisions must be broadcast and
    /// [`apply`](Controller::apply)-ed on followers.
    pub fn tune_initial(&mut self) -> Vec<Decision> {
        if self.script.is_some() {
            return self.apply_script(0);
        }
        if self.cfg.inputs == DecisionInputs::Measured {
            return Vec::new();
        }
        let mut decisions = Vec::new();
        for b in 0..self.buckets.len() {
            let cur = self.buckets[b].arm;
            let target = self.policy_target(b);
            if target != cur {
                decisions.push(self.switch(0, b, target, false));
            }
        }
        decisions
    }

    /// Ends a step: advances the step counter and computes the switches
    /// that take effect for the *next* exchange. Rank 0 calls this after
    /// every exchange; the returned decisions must be broadcast (even
    /// when empty, so every rank's collective schedule stays aligned) and
    /// [`apply`](Controller::apply)-ed on followers.
    pub fn end_step(&mut self) -> Vec<Decision> {
        self.step += 1;
        let next = self.step;
        if self.script.is_some() {
            return self.apply_script(next);
        }
        let mut decisions = Vec::new();
        for b in 0..self.buckets.len() {
            let cur = self.buckets[b].arm;
            // Measured warm-up: deterministic round-robin probing so every
            // (bucket, arm) EWMA is seeded before steady state.
            if self.cfg.inputs == DecisionInputs::Measured
                && (next as usize) <= self.cfg.warmup_steps
            {
                let target = (next as usize + b) % self.cfg.arms.len();
                if target != cur {
                    decisions.push(self.switch(next, b, target, true));
                } else {
                    self.buckets[b].steps_on_arm += 1;
                }
                continue;
            }
            let target = self.policy_target(b);
            if target != cur
                && self.buckets[b].steps_on_arm >= self.cfg.dwell_steps
                && self.switch_justified(b, cur, target)
            {
                decisions.push(self.switch(next, b, target, false));
            } else {
                self.buckets[b].steps_on_arm += 1;
            }
        }
        decisions
    }

    /// Applies decisions computed on another rank (the follower half of
    /// the broadcast protocol). Also records them in the local trace, so
    /// follower traces match rank 0's.
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::Protocol`] when a decision references a
    /// bucket or arm out of range.
    pub fn apply(&mut self, decisions: &[Decision]) -> Result<()> {
        self.step += 1;
        for b in 0..self.buckets.len() {
            self.buckets[b].steps_on_arm += 1;
        }
        for d in decisions {
            let bucket = d.bucket as usize;
            let to = d.to as usize;
            if bucket >= self.buckets.len() || to >= self.cfg.arms.len() {
                return Err(CompressError::Protocol(format!(
                    "broadcast decision out of range: bucket {} arm {}",
                    d.bucket, d.to
                )));
            }
            self.buckets[bucket].arm = to;
            self.buckets[bucket].steps_on_arm = 0;
            self.trace.push(d.clone());
        }
        Ok(())
    }

    /// Applies the follower protocol for the initial assignment (no step
    /// advance — pairs with [`tune_initial`](Controller::tune_initial)).
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::Protocol`] on out-of-range decisions.
    pub fn apply_initial(&mut self, decisions: &[Decision]) -> Result<()> {
        for d in decisions {
            let bucket = d.bucket as usize;
            let to = d.to as usize;
            if bucket >= self.buckets.len() || to >= self.cfg.arms.len() {
                return Err(CompressError::Protocol(format!(
                    "broadcast decision out of range: bucket {} arm {}",
                    d.bucket, d.to
                )));
            }
            self.buckets[bucket].arm = to;
            self.buckets[bucket].steps_on_arm = 0;
            self.trace.push(d.clone());
        }
        Ok(())
    }

    /// The arm the objective would assign `bucket` right now, ignoring
    /// hysteresis and dwell.
    fn policy_target(&self, bucket: usize) -> usize {
        let fastest = (0..self.cfg.arms.len())
            .min_by(|&a, &b| {
                self.estimate(bucket, a)
                    .total_cmp(&self.estimate(bucket, b))
            })
            .unwrap_or(0); // lint: allow(panic-in-data-plane) — arms is non-empty by construction
        match self.cfg.objective {
            Objective::FastestIteration => fastest,
            Objective::Budget { per_step_s } => {
                let share = per_step_s * self.elems[bucket] as f64 / self.total_elems as f64;
                (0..self.cfg.arms.len())
                    .find(|&a| self.estimate(bucket, a) <= share)
                    .unwrap_or(fastest) // lint: allow(panic-in-data-plane) — Option::unwrap_or is total
            }
        }
    }

    /// Hysteresis gate: is moving `bucket` from `cur` to `target` worth
    /// it *now*?
    fn switch_justified(&self, bucket: usize, cur: usize, target: usize) -> bool {
        let est_cur = self.estimate(bucket, cur);
        let est_target = self.estimate(bucket, target);
        match self.cfg.objective {
            Objective::FastestIteration => est_target < (1.0 - self.cfg.hysteresis) * est_cur,
            Objective::Budget { per_step_s } => {
                let share = per_step_s * self.elems[bucket] as f64 / self.total_elems as f64;
                // Tighten whenever the current arm blows the share; relax
                // only when the lighter arm fits with hysteresis margin.
                est_cur > share || est_target <= (1.0 - self.cfg.hysteresis) * share
            }
        }
    }

    fn switch(&mut self, step: u32, bucket: usize, to: usize, probe: bool) -> Decision {
        let from = self.buckets[bucket].arm;
        // `bucket` indexes self.buckets and `from`/`to` index the arm
        // ladder — both collections are bounded far below u32::MAX by
        // construction, so these narrowings cannot truncate.
        let d = Decision {
            step,
            bucket: bucket as u32,
            from: from as u32,
            to: to as u32,
            est_from_s: self.estimate(bucket, from),
            est_to_s: self.estimate(bucket, to),
            probe,
        };
        self.buckets[bucket].arm = to;
        self.buckets[bucket].steps_on_arm = 0;
        self.trace.push(d.clone());
        d
    }

    fn apply_script(&mut self, step: u32) -> Vec<Decision> {
        let Some(script) = &self.script else {
            return Vec::new();
        };
        let due: Vec<Decision> = script.iter().filter(|d| d.step == step).cloned().collect();
        for b in 0..self.buckets.len() {
            self.buckets[b].steps_on_arm += 1;
        }
        for d in &due {
            self.buckets[d.bucket as usize].arm = d.to as usize;
            self.buckets[d.bucket as usize].steps_on_arm = 0;
            self.trace.push(d.clone());
        }
        due
    }
}

/// Models the communication rounds of `method` on a bucket of `shape`.
fn model_rounds(
    method: &MethodConfig,
    compressor: &dyn crate::Compressor,
    props: &crate::Properties,
    shape: &Shape,
) -> Vec<RoundCost> {
    if !props.all_reducible {
        // Non-summable payloads are serialized and all-gathered whole.
        return vec![RoundCost {
            bytes: compressor.compressed_bytes(shape) as f64,
            kind: CollectiveKind::Gather,
        }];
    }
    match method {
        // PowerSGD rings P then Q, paying the latency term twice
        // (Properties::rounds == 2).
        MethodConfig::PowerSgd { rank } => {
            let (m, n) = shape.matricized();
            let r = (*rank).min(m).min(n).max(1);
            vec![
                RoundCost {
                    bytes: (m * r * 4) as f64,
                    kind: CollectiveKind::Ring,
                },
                RoundCost {
                    bytes: (n * r * 4) as f64,
                    kind: CollectiveKind::Ring,
                },
            ]
        }
        // The data plane's mean-summable path decodes Half payloads to
        // f32 *before* the ring (Payload::add_assign needs f32), so FP16
        // buys encode-side quantization but zero wire bytes there — the
        // model must charge the full f32 image or the controller would
        // believe in a 2x win that the plane never delivers.
        MethodConfig::Fp16 => vec![RoundCost {
            bytes: (shape.numel() * 4) as f64,
            kind: CollectiveKind::Ring,
        }],
        _ => {
            // Generic all-reducible scheme: analytic bytes, split evenly
            // across its rounds.
            let rounds = props.rounds.max(1);
            let per = compressor.compressed_bytes(shape) as f64 / rounds as f64;
            (0..rounds)
                .map(|_| RoundCost {
                    bytes: per,
                    kind: CollectiveKind::Ring,
                })
                .collect()
        }
    }
}

/// Inverts Equation 1 (or the all-gather formula) on an observed exchange
/// to recover the effective link bandwidth. Returns `None` when the
/// observation mixes collective classes, moved no bytes, or the timing is
/// swamped by the latency term.
fn invert_bandwidth(link: &LinkModel, world: usize, obs: &Observation) -> Option<f64> {
    if world <= 1 {
        return None;
    }
    let pf = world as f64;
    let hops = pf - 1.0;
    match (obs.ring_rounds, obs.gather_rounds) {
        (r, 0) if r > 0 && obs.ring_bytes > 0 => {
            let t_bw = obs.comm_s - f64::from(r) * link.alpha_s * hops;
            if t_bw <= 1e-9 {
                return None;
            }
            Some(2.0 * obs.ring_bytes as f64 * hops / (pf * t_bw))
        }
        (0, g) if g > 0 && obs.gather_bytes > 0 => {
            let t_bw = obs.comm_s - f64::from(g) * link.alpha_s * hops;
            if t_bw <= 1e-9 {
                return None;
            }
            let bw_eff = obs.gather_bytes as f64 * hops / t_bw;
            Some(bw_eff * (1.0 + link.incast * pf.ln()))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arms() -> Vec<MethodConfig> {
        vec![
            MethodConfig::SyncSgd,
            MethodConfig::PowerSgd { rank: 4 },
            MethodConfig::TopK { ratio: 0.01 },
        ]
    }

    fn shapes() -> Vec<Shape> {
        vec![Shape::new(vec![256, 256]), Shape::new(vec![128, 512])]
    }

    fn link_gbps(gbps: f64) -> LinkModel {
        LinkModel::from_gbps(15e-6, gbps).unwrap()
    }

    #[test]
    fn link_model_matches_equation_one_exactly() {
        // Same numeric case as gcs_cluster::cost's equation_one_exact_value:
        // b = 125 MB at 1.25e9 B/s, p = 4, alpha = 0 -> 0.15 s.
        let l = LinkModel::new(0.0, 1.25e9).unwrap();
        assert!((l.ring_all_reduce(125e6, 4) - 0.15).abs() < 1e-9);
        // All-gather: b(p-1)/BW with alpha = 0 and no incast.
        assert!((l.all_gather(1e6, 4) - 3e6 / 1.25e9).abs() < 1e-12);
        // Degenerate worlds cost nothing.
        assert_eq!(l.ring_all_reduce(1e6, 1), 0.0);
        assert_eq!(l.all_gather(1e6, 0), 0.0);
    }

    #[test]
    fn link_model_rejects_bad_parameters() {
        assert!(LinkModel::new(-1.0, 1e9).is_err());
        assert!(LinkModel::new(0.0, 0.0).is_err());
        assert!(LinkModel::from_gbps(0.0, -5.0).is_err());
    }

    #[test]
    fn fast_network_prefers_syncsgd() {
        let cfg = AdaptiveConfig::new(arms()).unwrap().link(link_gbps(10.0));
        let mut c = Controller::new(cfg, &shapes(), 4).unwrap();
        let initial = c.tune_initial();
        assert!(initial.is_empty(), "syncSGD is already arm 0: {initial:?}");
        for b in 0..c.num_buckets() {
            assert_eq!(c.arm_of(b), 0);
            let est0 = c.estimate(b, 0);
            assert!(
                est0 < c.estimate(b, 1),
                "syncSGD must beat PowerSGD at 10 Gbps"
            );
            assert!(
                est0 < c.estimate(b, 2),
                "syncSGD must beat Top-K at 10 Gbps"
            );
        }
    }

    #[test]
    fn slow_network_switches_to_powersgd_at_init() {
        let cfg = AdaptiveConfig::new(arms()).unwrap().link(link_gbps(0.05));
        let mut c = Controller::new(cfg, &shapes(), 4).unwrap();
        let initial = c.tune_initial();
        assert_eq!(initial.len(), 2, "both buckets re-assigned");
        for d in &initial {
            assert_eq!(d.step, 0);
            assert_eq!(d.from, 0);
            assert_eq!(d.to, 1, "PowerSGD rank 4 wins at 50 Mbps");
            assert!(d.est_to_s < d.est_from_s);
            assert!(!d.probe);
        }
        assert_eq!(c.trace().len(), 2);
        // Steady state: no further switches, and the trace is stable.
        for _ in 0..5 {
            assert!(c.end_step().is_empty());
        }
        assert_eq!(c.trace().len(), 2);
    }

    #[test]
    fn modelled_traces_are_bit_identical_across_runs() {
        let build = || {
            let cfg = AdaptiveConfig::new(arms()).unwrap().link(link_gbps(0.5));
            let mut c = Controller::new(cfg, &shapes(), 4).unwrap();
            let mut all = c.tune_initial();
            for _ in 0..10 {
                all.extend(c.end_step());
            }
            (all, c.step_estimate())
        };
        let (a, ea) = build();
        let (b, eb) = build();
        assert_eq!(a, b);
        assert_eq!(ea.to_bits(), eb.to_bits());
    }

    #[test]
    fn hysteresis_blocks_marginal_improvement() {
        // Measured inputs with no warmup/dwell so only the hysteresis
        // margin gates the switch. World size 1 zeroes the comm term, so
        // the estimates are exactly the encode/decode EWMAs.
        let cfg = AdaptiveConfig::new(vec![MethodConfig::SyncSgd, MethodConfig::Fp16])
            .unwrap()
            .inputs(DecisionInputs::Measured)
            .warmup_steps(0)
            .dwell_steps(0)
            .hysteresis(0.15);
        let shapes = vec![Shape::new(vec![1024])];
        let mut c = Controller::new(cfg, &shapes, 1).unwrap();
        let est0 = c.estimate(0, 0);
        let observe = |c: &mut Controller, arm: usize, encdec: f64| {
            c.observe(Observation {
                bucket: 0,
                arm,
                encode_s: encdec,
                decode_s: 0.0,
                comm_s: 0.0,
                ring_bytes: 0,
                ring_rounds: 0,
                gather_bytes: 0,
                gather_rounds: 0,
            });
        };
        // Arm 1 observed only 5% faster: within the 15% band, no switch.
        observe(&mut c, 1, 0.95 * est0);
        assert!(c.end_step().is_empty(), "5% is inside the 15% band");
        // Arm 1 observed at ~zero cost: EWMA drops well below the band.
        observe(&mut c, 1, 0.0);
        let decisions = c.end_step();
        assert_eq!(decisions.len(), 1);
        assert_eq!(decisions[0].to, 1);
        assert!(decisions[0].est_to_s < (1.0 - 0.15) * decisions[0].est_from_s);
    }

    #[test]
    fn dwell_defers_switch_until_enough_steps_on_arm() {
        let cfg = AdaptiveConfig::new(vec![MethodConfig::SyncSgd, MethodConfig::Fp16])
            .unwrap()
            .inputs(DecisionInputs::Measured)
            .warmup_steps(0)
            .dwell_steps(3)
            .hysteresis(0.1)
            .link(link_gbps(10.0));
        let shapes = vec![Shape::new(vec![1024])];
        let mut c = Controller::new(cfg, &shapes, 2).unwrap();
        // Arm 0 observed catastrophically slow from the start.
        c.observe(Observation {
            bucket: 0,
            arm: 0,
            encode_s: 1.0,
            decode_s: 0.0,
            comm_s: 0.0,
            ring_bytes: 0,
            ring_rounds: 0,
            gather_bytes: 0,
            gather_rounds: 0,
        });
        assert!(c.end_step().is_empty(), "dwell 3: step 1 blocked");
        assert!(c.end_step().is_empty(), "dwell 3: step 2 blocked");
        assert!(c.end_step().is_empty(), "dwell 3: step 3 blocked");
        assert_eq!(c.end_step().len(), 1, "dwell satisfied on step 4");
    }

    #[test]
    fn warmup_probes_round_robin_deterministically() {
        let build = || {
            let cfg = AdaptiveConfig::new(arms())
                .unwrap()
                .inputs(DecisionInputs::Measured)
                .warmup_steps(3)
                .link(link_gbps(1.0));
            let mut c = Controller::new(cfg, &shapes(), 4).unwrap();
            let mut all = c.tune_initial();
            for _ in 0..3 {
                all.extend(c.end_step());
            }
            all
        };
        let a = build();
        let b = build();
        assert_eq!(a, b);
        assert!(a.iter().all(|d| d.probe), "warmup decisions are probes");
        // Bucket 0 probes arm (step + 0) % 3 at steps 1..=3.
        let bucket0: Vec<u32> = a.iter().filter(|d| d.bucket == 0).map(|d| d.to).collect();
        assert_eq!(bucket0, vec![1, 2, 0]);
    }

    #[test]
    fn budget_objective_takes_lightest_arm_that_fits() {
        // One bucket; generous budget: syncSGD fits, stays (lowest index).
        let shapes = vec![Shape::new(vec![256, 256])];
        let mk = |per_step_s: f64| {
            AdaptiveConfig::new(arms())
                .unwrap()
                .objective(Objective::Budget { per_step_s })
                .link(link_gbps(0.5))
        };
        let mut generous = Controller::new(mk(1.0), &shapes, 4).unwrap();
        assert!(generous.tune_initial().is_empty());
        assert_eq!(generous.arm_of(0), 0);
        // Tight budget: syncSGD blows it, PowerSGD fits.
        let mut tight = Controller::new(mk(1e-3), &shapes, 4).unwrap();
        let d = tight.tune_initial();
        assert_eq!(d.len(), 1);
        assert_eq!(tight.arm_of(0), 1);
        // Impossible budget: falls back to the fastest arm overall.
        let mut impossible = Controller::new(mk(1e-12), &shapes, 4).unwrap();
        let _ = impossible.tune_initial();
        let fastest = (0..3)
            .min_by(|&a, &b| {
                impossible
                    .estimate(0, a)
                    .total_cmp(&impossible.estimate(0, b))
            })
            .unwrap();
        assert_eq!(impossible.arm_of(0), fastest);
    }

    #[test]
    fn decision_wire_round_trips_and_rejects_truncation() {
        let ds = vec![
            Decision {
                step: 3,
                bucket: 1,
                from: 0,
                to: 2,
                est_from_s: 0.125,
                est_to_s: 0.0625,
                probe: false,
            },
            Decision {
                step: 4,
                bucket: 0,
                from: 2,
                to: 1,
                est_from_s: 1e-9,
                est_to_s: f64::MIN_POSITIVE,
                probe: true,
            },
        ];
        let wire = encode_decisions(&ds).unwrap();
        assert_eq!(decode_decisions(&wire).unwrap(), ds);
        assert_eq!(
            decode_decisions(&encode_decisions(&[]).unwrap()).unwrap(),
            vec![]
        );
        assert!(decode_decisions(&wire[..wire.len() - 1]).is_err());
        assert!(decode_decisions(&[1, 2]).is_err());
    }

    #[test]
    fn scripted_replay_reproduces_live_assignments() {
        let mk_cfg = || AdaptiveConfig::new(arms()).unwrap().link(link_gbps(0.05));
        let mut live = Controller::new(mk_cfg(), &shapes(), 4).unwrap();
        let mut live_assignments = Vec::new();
        let _ = live.tune_initial();
        live_assignments.push((live.arm_of(0), live.arm_of(1)));
        for _ in 0..4 {
            let _ = live.end_step();
            live_assignments.push((live.arm_of(0), live.arm_of(1)));
        }
        let script = live.trace().to_vec();

        let mut replay = Controller::scripted(mk_cfg(), &shapes(), 4, script).unwrap();
        let mut replay_assignments = Vec::new();
        let _ = replay.tune_initial();
        replay_assignments.push((replay.arm_of(0), replay.arm_of(1)));
        for _ in 0..4 {
            let _ = replay.end_step();
            replay_assignments.push((replay.arm_of(0), replay.arm_of(1)));
        }
        assert_eq!(live_assignments, replay_assignments);
        assert_eq!(live.trace(), replay.trace());
    }

    #[test]
    fn scripted_rejects_out_of_range_entries() {
        let cfg = AdaptiveConfig::new(arms()).unwrap();
        let bad = Decision {
            step: 0,
            bucket: 99,
            from: 0,
            to: 1,
            est_from_s: 0.0,
            est_to_s: 0.0,
            probe: false,
        };
        assert!(Controller::scripted(cfg, &shapes(), 4, vec![bad]).is_err());
    }

    #[test]
    fn follower_apply_tracks_leader_state() {
        let mk_cfg = || AdaptiveConfig::new(arms()).unwrap().link(link_gbps(0.05));
        let mut leader = Controller::new(mk_cfg(), &shapes(), 4).unwrap();
        let mut follower = Controller::new(mk_cfg(), &shapes(), 4).unwrap();
        let init = leader.tune_initial();
        follower
            .apply_initial(&decode_decisions(&encode_decisions(&init).unwrap()).unwrap())
            .unwrap();
        for _ in 0..3 {
            let ds = leader.end_step();
            follower
                .apply(&decode_decisions(&encode_decisions(&ds).unwrap()).unwrap())
                .unwrap();
        }
        for b in 0..leader.num_buckets() {
            assert_eq!(leader.arm_of(b), follower.arm_of(b));
        }
        assert_eq!(leader.trace(), follower.trace());
        // A decision for a nonexistent bucket is a protocol error.
        let bogus = Decision {
            step: 9,
            bucket: 42,
            from: 0,
            to: 0,
            est_from_s: 0.0,
            est_to_s: 0.0,
            probe: false,
        };
        assert!(follower.apply(&[bogus]).is_err());
    }

    #[test]
    fn bandwidth_inversion_recovers_configured_link() {
        let link = link_gbps(1.0);
        let cfg = AdaptiveConfig::new(arms())
            .unwrap()
            .inputs(DecisionInputs::Measured)
            .link(link);
        let mut c = Controller::new(cfg, &shapes(), 4).unwrap();
        // Synthesize a ring observation whose time is exactly Equation 1.
        let bytes = 1_000_000u64;
        let t = link.ring_all_reduce(bytes as f64, 4);
        c.observe(Observation {
            bucket: 0,
            arm: 0,
            encode_s: 0.0,
            decode_s: 0.0,
            comm_s: t,
            ring_bytes: bytes,
            ring_rounds: 1,
            gather_bytes: 0,
            gather_rounds: 0,
        });
        let bw = c.bandwidth_estimate().unwrap();
        assert!(
            (bw - link.bytes_per_sec).abs() / link.bytes_per_sec < 1e-9,
            "inverted {bw}, configured {}",
            link.bytes_per_sec
        );
        // And a gather observation on a second controller.
        let mut cg = Controller::new(
            AdaptiveConfig::new(arms())
                .unwrap()
                .inputs(DecisionInputs::Measured)
                .link(link),
            &shapes(),
            4,
        )
        .unwrap();
        let tg = link.all_gather(bytes as f64, 4);
        cg.observe(Observation {
            bucket: 0,
            arm: 2,
            encode_s: 0.0,
            decode_s: 0.0,
            comm_s: tg,
            ring_bytes: 0,
            ring_rounds: 0,
            gather_bytes: bytes,
            gather_rounds: 1,
        });
        let bwg = cg.bandwidth_estimate().unwrap();
        assert!((bwg - link.bytes_per_sec).abs() / link.bytes_per_sec < 1e-9);
        // Mixed-class observations are skipped.
        let before = cg.bandwidth_estimate();
        cg.observe(Observation {
            bucket: 0,
            arm: 0,
            encode_s: 0.0,
            decode_s: 0.0,
            comm_s: 1.0,
            ring_bytes: 10,
            ring_rounds: 1,
            gather_bytes: 10,
            gather_rounds: 1,
        });
        assert_eq!(cg.bandwidth_estimate(), before);
    }

    #[test]
    fn fp16_is_charged_full_f32_wire_bytes() {
        // The mean-summable path rings the f32 image of Half payloads, so
        // the model must not credit FP16 with a wire win.
        let cfg = AdaptiveConfig::new(vec![MethodConfig::SyncSgd, MethodConfig::Fp16])
            .unwrap()
            .link(link_gbps(0.05));
        let c = Controller::new(cfg, &[Shape::new(vec![4096])], 4).unwrap();
        // Same comm cost; FP16 only adds encode overhead.
        assert!(c.estimate(0, 1) > c.estimate(0, 0));
    }

    #[test]
    fn powersgd_pays_the_latency_term_twice() {
        // On a latency-dominated link (tiny bucket, high alpha) PowerSGD's
        // two rounds must cost ~2x the one-round alpha term.
        let link = LinkModel::new(1e-3, 1e12).unwrap();
        let cfg = AdaptiveConfig::new(arms()).unwrap().link(link);
        let c = Controller::new(cfg, &[Shape::new(vec![8, 8])], 4).unwrap();
        let one_round_alpha = link.ring_all_reduce(0.0, 4);
        let ps = c.estimate(0, 1);
        assert!(
            ps > 1.9 * one_round_alpha && ps < 2.5 * one_round_alpha,
            "PowerSGD alpha cost {ps} vs single-round {one_round_alpha}"
        );
    }

    #[test]
    fn config_validation() {
        assert!(AdaptiveConfig::new(vec![]).is_err());
        let cfg = AdaptiveConfig::new(arms()).unwrap();
        assert!(Controller::new(cfg.clone(), &[], 4).is_err());
        assert!(Controller::new(cfg, &shapes(), 0).is_err());
    }
}
