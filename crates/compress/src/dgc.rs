//! Deep Gradient Compression (Lin et al., 2017), threshold sparsification.
//!
//! DGC communicates coordinates whose magnitude exceeds a threshold chosen
//! so that roughly a target fraction survives. The threshold is estimated
//! from a random sample of the gradient (as in the reference
//! implementation) rather than a full sort, and dropped coordinates
//! accumulate locally (error feedback). *Momentum correction* — the
//! original paper's fix for stale sparse updates — is available via
//! [`Dgc::momentum_correction`]: momentum is applied **locally before**
//! sparsification, so the accumulated residual carries velocity rather
//! than raw gradients. Like Top-K it is not all-reduce compatible.

use crate::{CompressError, Compressor, Payload, Properties, Result};
use gcs_tensor::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Deep Gradient Compression: sampled-threshold sparsification with error
/// feedback.
#[derive(Debug)]
pub struct Dgc {
    ratio: f64,
    sample_fraction: f64,
    /// Local momentum factor applied before sparsification (0 = off).
    momentum: f32,
    rng: StdRng,
    residual: HashMap<usize, Tensor>,
    /// Velocity state per layer (momentum correction).
    velocity: HashMap<usize, Tensor>,
    pending: HashMap<usize, Vec<f32>>,
}

impl Dgc {
    /// Creates DGC targeting `ratio` surviving coordinates (e.g. `0.001`
    /// for the paper's 0.1% operating point).
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::InvalidConfig`] unless `0 < ratio <= 1`.
    pub fn new(ratio: f64) -> Result<Self> {
        if !(ratio > 0.0 && ratio <= 1.0) {
            return Err(CompressError::InvalidConfig(format!(
                "DGC ratio must be in (0, 1], got {ratio}"
            )));
        }
        Ok(Dgc {
            ratio,
            sample_fraction: 0.01,
            momentum: 0.0,
            rng: StdRng::seed_from_u64(0xd9c0),
            residual: HashMap::new(),
            velocity: HashMap::new(),
            pending: HashMap::new(),
        })
    }

    /// Enables momentum correction with factor `m` in `[0, 1)`: the
    /// velocity `v ← m·v + g` is sparsified instead of the raw gradient,
    /// as in the original DGC.
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::InvalidConfig`] unless `0 <= m < 1`.
    pub fn momentum_correction(mut self, m: f32) -> Result<Self> {
        if !(0.0..1.0).contains(&m) {
            return Err(CompressError::InvalidConfig(format!(
                "DGC momentum must be in [0, 1), got {m}"
            )));
        }
        self.momentum = m;
        Ok(self)
    }

    /// Sets the fraction of coordinates sampled when estimating the
    /// threshold (reference implementation uses 1%).
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::InvalidConfig`] unless `0 < fraction <= 1`.
    pub fn sample_fraction(mut self, fraction: f64) -> Result<Self> {
        if !(fraction > 0.0 && fraction <= 1.0) {
            return Err(CompressError::InvalidConfig(format!(
                "sample fraction must be in (0, 1], got {fraction}"
            )));
        }
        self.sample_fraction = fraction;
        Ok(self)
    }

    /// Estimates the magnitude threshold whose survivors are ≈ `ratio` of
    /// the vector, from a random sample.
    fn estimate_threshold(&mut self, data: &[f32]) -> f32 {
        let n = data.len();
        if n == 0 {
            return 0.0;
        }
        let sample_n = ((n as f64 * self.sample_fraction) as usize)
            .clamp(1, n)
            .min(10_000);
        let mut sample: Vec<f32> = (0..sample_n)
            .map(|_| data[self.rng.gen_range(0..n)].abs())
            .collect();
        // NaN-total descending order: a NaN gradient must not scramble
        // the sampled threshold between runs.
        sample.sort_by(|a, b| b.total_cmp(a));
        let k = ((sample_n as f64 * self.ratio).round() as usize).clamp(1, sample_n);
        sample[k - 1]
    }
}

impl Compressor for Dgc {
    fn properties(&self) -> Properties {
        Properties {
            name: format!("DGC ({:.2}%)", self.ratio * 100.0),
            all_reducible: false,
            layerwise: true,
            rounds: 1,
        }
    }

    fn compressed_bytes(&self, shape: &Shape) -> usize {
        let k = ((shape.numel() as f64 * self.ratio).round() as usize).max(1);
        k * 8
    }

    fn encode(&mut self, layer: usize, grad: &Tensor) -> Result<Payload> {
        crate::payload::check_sparse_index_space(grad.numel())?;
        // Momentum correction: sparsify the velocity, not the gradient.
        let input = if self.momentum > 0.0 {
            let vel = self
                .velocity
                .entry(layer)
                .or_insert_with(|| Tensor::zeros(grad.shape().clone()));
            if vel.shape() != grad.shape() {
                *vel = Tensor::zeros(grad.shape().clone());
            }
            vel.scale(self.momentum);
            vel.add_assign(grad)?;
            vel.clone()
        } else {
            grad.clone()
        };
        let v = match self.residual.get(&layer) {
            Some(e) => input.add(e)?,
            None => input,
        };
        let threshold = self.estimate_threshold(v.data());
        let mut indices = Vec::new();
        let mut values = Vec::new();
        let mut res = v.clone();
        for (i, &x) in v.data().iter().enumerate() {
            if x.abs() >= threshold && threshold > 0.0 {
                indices.push(i as u32);
                values.push(x);
                res.data_mut()[i] = 0.0;
            }
        }
        if indices.is_empty() {
            // Degenerate (all-zero sample): fall back to the single largest
            // coordinate so progress is always made.
            let sel = gcs_tensor::select::top_k_abs(v.data(), 1);
            for (&i, &x) in sel.indices.iter().zip(&sel.values) {
                indices.push(i);
                values.push(x);
                res.data_mut()[i as usize] = 0.0;
            }
        }
        self.residual.insert(layer, res);
        Ok(Payload::Sparse {
            len: v.numel(),
            indices,
            values,
        })
    }

    fn aggregate(&self, _round: usize, payloads: &[Payload]) -> Result<Payload> {
        if payloads.is_empty() {
            return Err(CompressError::EmptyAggregate);
        }
        let mut dense: Option<Vec<f32>> = None;
        for p in payloads {
            match p {
                Payload::Sparse {
                    len,
                    indices,
                    values,
                } => {
                    let d = dense.get_or_insert_with(|| vec![0.0; *len]);
                    if d.len() != *len {
                        return Err(CompressError::Protocol(
                            "sparse payloads disagree on dense length".into(),
                        ));
                    }
                    for (&i, &v) in indices.iter().zip(values) {
                        let slot = d.get_mut(i as usize).ok_or_else(|| {
                            CompressError::Protocol(format!("index {i} out of bounds"))
                        })?;
                        // Bounds-checked sparse scatter-add; no bulk kernel
                        // applies to indexed single-element updates.
                        *slot += v; // lint: allow(raw-f32-accumulation)
                    }
                }
                other => {
                    return Err(CompressError::PayloadKind {
                        expected: "Sparse",
                        actual: other.kind_name(),
                    });
                }
            }
        }
        let Some(mut d) = dense else {
            return Err(CompressError::EmptyAggregate);
        };
        let inv = 1.0 / payloads.len() as f32;
        for x in &mut d {
            *x *= inv;
        }
        Ok(Payload::Dense(d))
    }

    fn absorb(&mut self, layer: usize, round: usize, agg: Payload) -> Result<()> {
        if round != 0 {
            return Err(CompressError::Protocol(format!(
                "DGC has a single round, got {round}"
            )));
        }
        match agg {
            Payload::Dense(v) => {
                self.pending.insert(layer, v);
                Ok(())
            }
            other => Err(CompressError::PayloadKind {
                expected: "Dense",
                actual: other.kind_name(),
            }),
        }
    }

    fn finish(&mut self, layer: usize, shape: &Shape) -> Result<Tensor> {
        let v = self.pending.remove(&layer).ok_or_else(|| {
            CompressError::Protocol(format!("finish before absorb for layer {layer}"))
        })?;
        Tensor::from_shape_vec(shape.clone(), v).map_err(Into::into)
    }

    fn reset(&mut self) {
        self.residual.clear();
        self.velocity.clear();
        self.pending.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::round_trip;

    #[test]
    fn nan_gradient_keeps_threshold_deterministic() {
        // The sampled-threshold sort runs under f32::total_cmp: a NaN
        // coordinate must neither panic nor make the kept set run-to-run
        // noise (two encoders with identical state and input must agree).
        let mut data: Vec<f32> = (0..2048)
            .map(|i| ((i * 37 % 101) as f32 - 50.0) * 0.1)
            .collect();
        data[100] = f32::NAN;
        data[1999] = -f32::NAN;
        let g = Tensor::from_vec(data);
        let mut a = Dgc::new(0.05).unwrap();
        let mut b = Dgc::new(0.05).unwrap();
        let pa = a.encode(0, &g).unwrap();
        let pb = b.encode(0, &g).unwrap();
        let (
            Payload::Sparse {
                indices: ia,
                values: va,
                ..
            },
            Payload::Sparse {
                indices: ib,
                values: vb,
                ..
            },
        ) = (pa, pb)
        else {
            panic!("wrong payload")
        };
        assert_eq!(ia, ib, "kept coordinates must be deterministic");
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&va), bits(&vb));
    }

    #[test]
    fn rejects_bad_config() {
        assert!(Dgc::new(0.0).is_err());
        assert!(Dgc::new(1.1).is_err());
        assert!(Dgc::new(0.5).unwrap().sample_fraction(0.0).is_err());
    }

    #[test]
    fn keeps_roughly_ratio_of_coordinates() {
        let g = Tensor::randn([20_000], 51);
        let mut c = Dgc::new(0.01).unwrap();
        let p = c.encode(0, &g).unwrap();
        let Payload::Sparse { indices, .. } = p else {
            panic!("wrong payload")
        };
        let frac = indices.len() as f64 / 20_000.0;
        assert!(frac > 0.002 && frac < 0.05, "kept fraction {frac}");
    }

    #[test]
    fn surviving_coordinates_dominate_dropped_ones() {
        let g = Tensor::randn([5000], 52);
        let mut c = Dgc::new(0.05).unwrap();
        let p = c.encode(0, &g).unwrap();
        let Payload::Sparse {
            indices, values, ..
        } = p
        else {
            panic!("wrong payload")
        };
        let min_kept = values.iter().map(|v| v.abs()).fold(f32::MAX, f32::min);
        let kept: std::collections::HashSet<u32> = indices.iter().copied().collect();
        // Sampled threshold is approximate: allow a slack factor of 2, but
        // the bulk of dropped coordinates must sit below the kept minimum.
        let violations = g
            .data()
            .iter()
            .enumerate()
            .filter(|(i, x)| !kept.contains(&(*i as u32)) && x.abs() > min_kept * 2.0)
            .count();
        assert_eq!(violations, 0);
    }

    #[test]
    fn error_feedback_reinjects_dropped_mass() {
        let g = Tensor::randn([1000], 53);
        let mut c = Dgc::new(0.02).unwrap();
        let mut applied = Tensor::zeros([1000]);
        for _ in 0..80 {
            let out = round_trip(&mut c, 0, &g).unwrap();
            applied.add_assign(&out).unwrap();
        }
        applied.scale(1.0 / 80.0);
        let cos = gcs_tensor::stats::cosine_similarity(&g, &applied);
        assert!(cos > 0.9, "cosine {cos}");
    }

    #[test]
    fn momentum_correction_validates_range() {
        assert!(Dgc::new(0.1).unwrap().momentum_correction(1.0).is_err());
        assert!(Dgc::new(0.1).unwrap().momentum_correction(-0.1).is_err());
        assert!(Dgc::new(0.1).unwrap().momentum_correction(0.9).is_ok());
    }

    #[test]
    fn momentum_correction_accumulates_velocity() {
        // A constant gradient with momentum m: applied updates approach
        // g / (1 - m) in steady state (velocity accumulation survives the
        // sparsifier thanks to error feedback).
        let g = Tensor::from_vec(vec![0.4, -0.2, 0.1, 0.0]);
        let mut c = Dgc::new(0.5).unwrap().momentum_correction(0.5).unwrap();
        // Sparse release is bursty (error feedback releases several
        // accumulated velocities at once), so check the *mean* applied
        // update over a window: it must approach v = g/(1-m) = 2g.
        let mut applied = Tensor::zeros([4]);
        let window = 80;
        for _ in 0..40 {
            let _ = round_trip(&mut c, 0, &g).unwrap(); // warm up
        }
        for _ in 0..window {
            let out = round_trip(&mut c, 0, &g).unwrap();
            applied.add_assign(&out).unwrap();
        }
        applied.scale(1.0 / window as f32);
        for (o, &x) in applied.data().iter().zip(g.data()) {
            assert!(
                (o - 2.0 * x).abs() < 0.25 * x.abs().max(0.05),
                "mean applied {o} vs {}",
                2.0 * x
            );
        }
    }

    #[test]
    fn zero_gradient_still_produces_valid_payload() {
        let g = Tensor::zeros([16]);
        let mut c = Dgc::new(0.1).unwrap();
        let out = round_trip(&mut c, 0, &g).unwrap();
        assert!(out.data().iter().all(|&x| x == 0.0));
    }
}
