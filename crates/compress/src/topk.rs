//! Top-K sparsification (Aji & Heafield, 2017).
//!
//! Keeps only the K% largest-magnitude coordinates and transmits
//! (index, value) pairs. The union of per-worker coordinate sets differs
//! across workers, so aggregation is not associative — the paper's Figure 5
//! shows the resulting all-gather traffic plus the very high encode time
//! (Table 2: ~240–295 ms on ResNet-50) make Top-K slower than syncSGD at
//! every scale it measured.

use crate::chunked::{
    byte_sink, emit_prefix_span, ChunkSink, ChunkedEncode, ChunkedHeader, NativeEncode,
};
use crate::payload::TAG_SPARSE;
use crate::{CompressError, Compressor, Payload, Properties, Result};
use gcs_tensor::pool;
use gcs_tensor::select::{top_k_abs_pooled, SparseSelection};
use gcs_tensor::{Shape, Tensor};
use std::collections::HashMap;

/// Top-K sparsification with optional error feedback.
#[derive(Debug)]
pub struct TopK {
    /// Fraction of coordinates kept, in `(0, 1]`.
    ratio: f64,
    error_feedback: bool,
    residual: HashMap<usize, Tensor>,
    pending: HashMap<usize, Vec<f32>>,
    /// Magnitude scratch for the quickselect, reused across encodes (the
    /// selection itself is the dominant cost of Top-K — Table 2).
    mags: Vec<f32>,
}

impl TopK {
    /// Creates Top-K keeping `ratio` of the coordinates (e.g. `0.01` for
    /// the paper's Top-K 1%).
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::InvalidConfig`] unless `0 < ratio <= 1`.
    pub fn new(ratio: f64) -> Result<Self> {
        if !(ratio > 0.0 && ratio <= 1.0) {
            return Err(CompressError::InvalidConfig(format!(
                "top-k ratio must be in (0, 1], got {ratio}"
            )));
        }
        Ok(TopK {
            ratio,
            error_feedback: false,
            residual: HashMap::new(),
            pending: HashMap::new(),
            mags: Vec::new(),
        })
    }

    /// Enables error feedback (residual accumulation of dropped
    /// coordinates).
    pub fn error_feedback(mut self, on: bool) -> Self {
        self.error_feedback = on;
        self
    }

    /// The configured keep-fraction.
    pub fn ratio(&self) -> f64 {
        self.ratio
    }

    /// Number of coordinates kept for an `n`-element gradient (at least 1).
    pub fn k_for(&self, numel: usize) -> usize {
        ((numel as f64 * self.ratio).round() as usize).clamp(1, numel.max(1))
    }
}

impl Compressor for TopK {
    fn properties(&self) -> Properties {
        Properties {
            name: format!("TopK ({:.0}%)", self.ratio * 100.0),
            all_reducible: false,
            layerwise: true,
            rounds: 1,
        }
    }

    fn compressed_bytes(&self, shape: &Shape) -> usize {
        // 4-byte index + 4-byte value per kept coordinate.
        self.k_for(shape.numel()) * 8
    }

    fn encode(&mut self, layer: usize, grad: &Tensor) -> Result<Payload> {
        crate::payload::check_sparse_index_space(grad.numel())?;
        let k = self.k_for(grad.numel());
        if !self.error_feedback {
            // Fast path: select straight from the gradient; the only
            // steady-state allocations are the k-sized output arrays.
            let sel = top_k_abs_pooled(pool::global(), grad.data(), k, &mut self.mags);
            return Ok(Payload::Sparse {
                len: grad.numel(),
                indices: sel.indices,
                values: sel.values,
            });
        }
        // The residual is matched by element count, not shape: a
        // scheme-switch injection arrives flat while the bucket may be
        // matricized. A count mismatch (layer changed shape) drops it.
        let v = match self.residual.get(&layer) {
            Some(e) if e.numel() == grad.numel() => {
                let mut v = grad.clone();
                gcs_tensor::kernels::add_assign(v.data_mut(), e.data());
                v
            }
            _ => grad.clone(),
        };
        let sel = top_k_abs_pooled(pool::global(), v.data(), k, &mut self.mags);
        // Residual keeps exactly the dropped coordinates.
        let mut res = v;
        for &i in &sel.indices {
            res.data_mut()[i as usize] = 0.0;
        }
        let len = res.numel();
        self.residual.insert(layer, res);
        Ok(Payload::Sparse {
            len,
            indices: sel.indices,
            values: sel.values,
        })
    }

    fn aggregate(&self, _round: usize, payloads: &[Payload]) -> Result<Payload> {
        if payloads.is_empty() {
            return Err(CompressError::EmptyAggregate);
        }
        let mut dense: Option<Vec<f32>> = None;
        for p in payloads {
            match p {
                Payload::Sparse {
                    len,
                    indices,
                    values,
                } => {
                    let d = dense.get_or_insert_with(|| vec![0.0; *len]);
                    if d.len() != *len {
                        return Err(CompressError::Protocol(
                            "sparse payloads disagree on dense length".into(),
                        ));
                    }
                    SparseSelection {
                        indices: indices.clone(),
                        values: values.clone(),
                    }
                    .scatter_add(d);
                }
                other => {
                    return Err(CompressError::PayloadKind {
                        expected: "Sparse",
                        actual: other.kind_name(),
                    });
                }
            }
        }
        let Some(mut d) = dense else {
            return Err(CompressError::EmptyAggregate);
        };
        gcs_tensor::kernels::scale(&mut d, 1.0 / payloads.len() as f32);
        Ok(Payload::Dense(d))
    }

    fn absorb(&mut self, layer: usize, round: usize, agg: Payload) -> Result<()> {
        if round != 0 {
            return Err(CompressError::Protocol(format!(
                "TopK has a single round, got {round}"
            )));
        }
        match agg {
            Payload::Dense(v) => {
                self.pending.insert(layer, v);
                Ok(())
            }
            other => Err(CompressError::PayloadKind {
                expected: "Dense",
                actual: other.kind_name(),
            }),
        }
    }

    fn finish(&mut self, layer: usize, shape: &Shape) -> Result<Tensor> {
        let v = self.pending.remove(&layer).ok_or_else(|| {
            CompressError::Protocol(format!("finish before absorb for layer {layer}"))
        })?;
        Tensor::from_shape_vec(shape.clone(), v).map_err(Into::into)
    }

    fn reset(&mut self) {
        self.residual.clear();
        self.pending.clear();
    }

    fn take_residual(&mut self, layer: usize) -> Option<Tensor> {
        if !self.error_feedback {
            return None;
        }
        self.residual.remove(&layer)
    }

    // Streaming: the selection (the dominant Top-K cost) runs once at
    // begin; chunks then serialize word-aligned spans of the
    // `indices ++ values` wire body straight from the selection arrays —
    // no intermediate whole-wire buffer.
    fn begin_chunked_encode(
        &mut self,
        layer: usize,
        round: usize,
        grad: Option<&Tensor>,
    ) -> Result<ChunkedEncode> {
        let Some(g) = grad else {
            return Ok(ChunkedEncode::whole(self.encode_round(layer, round)?));
        };
        let Payload::Sparse {
            len,
            indices,
            values,
        } = self.encode(layer, g)?
        else {
            unreachable!("TopK::encode returns Sparse");
        };
        let k = indices.len();
        let mut prefix = vec![TAG_SPARSE];
        prefix.extend_from_slice(&(len as u64).to_le_bytes());
        prefix.extend_from_slice(&(k as u64).to_le_bytes());
        Ok(ChunkedEncode::native(
            ChunkedHeader::Gather {
                bytes: 17 + k * 8,
                prefix: 17,
                grain: 4,
            },
            NativeEncode {
                src: values,
                aux: indices,
                prefix,
                ..NativeEncode::default()
            },
        ))
    }

    fn encode_chunk(
        &mut self,
        _layer: usize,
        enc: &mut ChunkedEncode,
        lo: usize,
        hi: usize,
        sink: ChunkSink<'_>,
    ) -> Result<()> {
        if !enc.is_native() {
            // Whole-payload stage (e.g. constructed by the default
            // `begin_chunked_encode`): slice the materialized image.
            return enc.emit_staged(lo, hi, sink);
        }
        const PREFIX: usize = 17;
        let state = enc.native_mut()?;
        let out = byte_sink(sink)?;
        emit_prefix_span(&state.prefix, lo, hi, out);
        let (blo, bhi) = (lo.max(PREFIX) - PREFIX, hi.max(PREFIX) - PREFIX);
        if blo % 4 != 0 || bhi % 4 != 0 {
            return Err(CompressError::Protocol(format!(
                "Top-K chunk body [{blo}, {bhi}) is not word-aligned"
            )));
        }
        let k = state.aux.len();
        for p in blo / 4..bhi / 4 {
            // The body is the index region followed by the value region;
            // a span may straddle the seam.
            if p < k {
                out.extend_from_slice(&state.aux[p].to_le_bytes());
            } else {
                out.extend_from_slice(&state.src[p - k].to_le_bytes());
            }
        }
        Ok(())
    }

    fn inject_residual(&mut self, layer: usize, residual: Tensor) -> Result<bool> {
        if !self.error_feedback {
            return Ok(false);
        }
        // The residual participates as `grad + residual` at the next
        // encode; only the element count matters, so reshape to flat.
        self.residual
            .insert(layer, Tensor::from_vec(residual.into_vec()));
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{all_reduce_compressed, round_trip};

    #[test]
    fn rejects_bad_ratio() {
        assert!(TopK::new(0.0).is_err());
        assert!(TopK::new(1.5).is_err());
        assert!(TopK::new(-0.1).is_err());
        assert!(TopK::new(1.0).is_ok());
    }

    #[test]
    fn keeps_only_largest_coordinates() {
        let g = Tensor::from_vec(vec![0.1, -5.0, 0.2, 4.0, 0.05]);
        let mut c = TopK::new(0.4).unwrap(); // k = 2
        let out = round_trip(&mut c, 0, &g).unwrap();
        assert_eq!(out.data(), &[0.0, -5.0, 0.0, 4.0, 0.0]);
    }

    #[test]
    fn k_is_at_least_one() {
        let c = TopK::new(0.001).unwrap();
        assert_eq!(c.k_for(10), 1);
        assert_eq!(c.k_for(0), 1); // degenerate, clamped
    }

    #[test]
    fn compressed_bytes_scale_with_ratio() {
        let shape = Shape::new(vec![10_000]);
        let one = TopK::new(0.01).unwrap().compressed_bytes(&shape);
        let ten = TopK::new(0.10).unwrap().compressed_bytes(&shape);
        assert_eq!(one, 100 * 8);
        assert_eq!(ten, 1000 * 8);
    }

    #[test]
    fn aggregation_averages_union_of_supports() {
        // Worker A keeps coord 0, worker B keeps coord 1.
        let grads = vec![
            Tensor::from_vec(vec![4.0, 0.1]),
            Tensor::from_vec(vec![0.1, -6.0]),
        ];
        let mut workers = vec![TopK::new(0.5).unwrap(), TopK::new(0.5).unwrap()];
        let outs = all_reduce_compressed(&mut workers, 0, &grads).unwrap();
        assert_eq!(outs[0].data(), &[2.0, -3.0]);
    }

    #[test]
    fn error_feedback_reinjects_dropped_mass() {
        let g = Tensor::from_vec(vec![1.0, 0.4, 0.0, 0.0]);
        let mut c = TopK::new(0.25).unwrap().error_feedback(true);
        // Iteration 1 sends coord 0, residual keeps 0.4 at coord 1.
        let _ = round_trip(&mut c, 0, &g).unwrap();
        // Iteration 2 input zero: the residual alone must now win.
        let zero = Tensor::zeros([4]);
        let out = round_trip(&mut c, 0, &zero).unwrap();
        assert_eq!(out.data(), &[0.0, 0.4, 0.0, 0.0]);
    }

    #[test]
    fn aggregate_validates_lengths_and_kinds() {
        let c = TopK::new(0.5).unwrap();
        let a = Payload::Sparse {
            len: 4,
            indices: vec![0],
            values: vec![1.0],
        };
        let b = Payload::Sparse {
            len: 5,
            indices: vec![0],
            values: vec![1.0],
        };
        assert!(c.aggregate(0, &[a.clone(), b]).is_err());
        assert!(c.aggregate(0, &[Payload::Dense(vec![])]).is_err());
        assert!(c.aggregate(0, &[]).is_err());
        assert!(c.aggregate(0, &[a]).is_ok());
    }
}
