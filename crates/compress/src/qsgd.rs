//! QSGD stochastic quantization (Alistarh et al., 2017).
//!
//! Each element is quantized to one of `s` levels of `‖g‖₂` with stochastic
//! rounding, which makes the quantizer unbiased: `E[decode(encode(g))] = g`.
//! Per-worker scales differ, so the aggregation is not associative and the
//! method falls in the all-gather column of Table 1.

use crate::chunked::{
    byte_sink, emit_scalar_prefix, ChunkSink, ChunkedEncode, ChunkedHeader, NativeEncode,
};
use crate::payload::TAG_QUANTIZED;
use crate::{CompressError, Compressor, Payload, Properties, Result};
use gcs_tensor::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Byte length of the Quantized wire prefix (`tag · len:u64 · scale:f32`).
const PREFIX: usize = 13;

/// QSGD quantizer with `s` levels (at most 127 so levels fit in `i8`).
#[derive(Debug)]
pub struct Qsgd {
    levels: u8,
    rng: StdRng,
    pending: HashMap<usize, Vec<f32>>,
}

impl Qsgd {
    /// Creates a QSGD quantizer with `levels` quantization levels
    /// (`s` in the paper's notation; 4-bit QSGD ≈ 15 levels).
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::InvalidConfig`] if `levels` is 0 or above
    /// 127.
    pub fn new(levels: u8) -> Result<Self> {
        if levels == 0 || levels > 127 {
            return Err(CompressError::InvalidConfig(format!(
                "QSGD levels must be in 1..=127, got {levels}"
            )));
        }
        Ok(Qsgd {
            levels,
            rng: StdRng::seed_from_u64(0x515d),
            pending: HashMap::new(),
        })
    }

    /// Reseeds the stochastic-rounding RNG (give each worker its rank for
    /// independent rounding noise).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng = StdRng::seed_from_u64(seed);
        self
    }

    /// Quantizes a dense vector into levels plus scale.
    fn quantize(&mut self, data: &[f32]) -> (f32, Vec<i8>) {
        let norm: f32 = data.iter().map(|x| x * x).sum::<f32>().sqrt();
        if norm == 0.0 {
            return (0.0, vec![0; data.len()]);
        }
        let s = self.levels as f32;
        let levels = data
            .iter()
            .map(|&x| {
                let t = x.abs() / norm * s; // in [0, s]
                let low = t.floor();
                let frac = t - low;
                let level = if self.rng.gen::<f32>() < frac {
                    low + 1.0
                } else {
                    low
                };
                let signed = level * x.signum();
                signed.clamp(-127.0, 127.0) as i8
            })
            .collect();
        (norm / s, levels)
    }
}

fn dequantize(scale: f32, levels: &[i8]) -> Vec<f32> {
    levels.iter().map(|&l| l as f32 * scale).collect()
}

impl Compressor for Qsgd {
    fn properties(&self) -> Properties {
        Properties {
            name: format!("QSGD ({} levels)", self.levels),
            all_reducible: false,
            layerwise: true,
            rounds: 1,
        }
    }

    fn compressed_bytes(&self, shape: &Shape) -> usize {
        // One i8 level per element + scale. (The original paper Elias-codes
        // levels; we charge the simpler fixed-width layout we actually use.)
        shape.numel() + 4
    }

    fn encode(&mut self, _layer: usize, grad: &Tensor) -> Result<Payload> {
        let (scale, levels) = self.quantize(grad.data());
        Ok(Payload::Quantized { scale, levels })
    }

    fn aggregate(&self, _round: usize, payloads: &[Payload]) -> Result<Payload> {
        if payloads.is_empty() {
            return Err(CompressError::EmptyAggregate);
        }
        let mut acc: Option<Vec<f32>> = None;
        for p in payloads {
            match p {
                Payload::Quantized { scale, levels } => {
                    let dense = dequantize(*scale, levels);
                    match &mut acc {
                        None => acc = Some(dense),
                        Some(a) => {
                            if a.len() != dense.len() {
                                return Err(CompressError::Protocol(
                                    "quantized payloads disagree on length".into(),
                                ));
                            }
                            gcs_tensor::kernels::add_assign(a, &dense);
                        }
                    }
                }
                other => {
                    return Err(CompressError::PayloadKind {
                        expected: "Quantized",
                        actual: other.kind_name(),
                    });
                }
            }
        }
        let Some(mut a) = acc else {
            return Err(CompressError::EmptyAggregate);
        };
        let inv = 1.0 / payloads.len() as f32;
        for x in &mut a {
            *x *= inv;
        }
        Ok(Payload::Dense(a))
    }

    fn absorb(&mut self, layer: usize, round: usize, agg: Payload) -> Result<()> {
        if round != 0 {
            return Err(CompressError::Protocol(format!(
                "QSGD has a single round, got {round}"
            )));
        }
        match agg {
            Payload::Dense(v) => {
                self.pending.insert(layer, v);
                Ok(())
            }
            other => Err(CompressError::PayloadKind {
                expected: "Dense",
                actual: other.kind_name(),
            }),
        }
    }

    fn finish(&mut self, layer: usize, shape: &Shape) -> Result<Tensor> {
        let v = self.pending.remove(&layer).ok_or_else(|| {
            CompressError::Protocol(format!("finish before absorb for layer {layer}"))
        })?;
        Tensor::from_shape_vec(shape.clone(), v).map_err(Into::into)
    }

    fn reset(&mut self) {
        self.pending.clear();
    }

    // Streaming: the norm is a cheap pre-pass at begin; the per-element
    // stochastic rounding — the expensive part, one RNG draw per element —
    // happens inside `encode_chunk`. Spans must arrive in order so the RNG
    // stream matches the monolithic `quantize` draw for draw.
    fn begin_chunked_encode(
        &mut self,
        layer: usize,
        round: usize,
        grad: Option<&Tensor>,
    ) -> Result<ChunkedEncode> {
        let Some(g) = grad else {
            return Ok(ChunkedEncode::whole(self.encode_round(layer, round)?));
        };
        let data = g.data();
        let norm: f32 = data.iter().map(|x| x * x).sum::<f32>().sqrt();
        Ok(ChunkedEncode::native(
            ChunkedHeader::Gather {
                bytes: PREFIX + data.len(),
                prefix: PREFIX,
                grain: 1,
            },
            NativeEncode {
                src: data.to_vec(),
                param: norm,
                ..NativeEncode::default()
            },
        ))
    }

    fn encode_chunk(
        &mut self,
        _layer: usize,
        enc: &mut ChunkedEncode,
        lo: usize,
        hi: usize,
        sink: ChunkSink<'_>,
    ) -> Result<()> {
        if !enc.is_native() {
            // Whole-payload stage (e.g. constructed by the default
            // `begin_chunked_encode`): slice the materialized image.
            return enc.emit_staged(lo, hi, sink);
        }
        let s = self.levels as f32;
        let state = enc.native_mut()?;
        let out = byte_sink(sink)?;
        let norm = state.param;
        let scale = if norm == 0.0 { 0.0 } else { norm / s };
        emit_scalar_prefix(TAG_QUANTIZED, state.src.len() as u64, scale, lo, hi, out);
        let (elo, ehi) = (lo.max(PREFIX) - PREFIX, hi.max(PREFIX) - PREFIX);
        if state.cursor != elo {
            return Err(CompressError::Protocol(format!(
                "QSGD chunks must stream in order: expected element {}, got {elo}",
                state.cursor
            )));
        }
        for &x in &state.src[elo..ehi] {
            let level: i8 = if norm == 0.0 {
                // The monolithic quantizer early-returns zeros without
                // touching the RNG; mirror that exactly.
                0
            } else {
                let t = x.abs() / norm * s;
                let low = t.floor();
                let frac = t - low;
                let level = if self.rng.gen::<f32>() < frac {
                    low + 1.0
                } else {
                    low
                };
                (level * x.signum()).clamp(-127.0, 127.0) as i8
            };
            out.push(level as u8);
        }
        state.cursor = ehi;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::round_trip;

    #[test]
    fn rejects_bad_levels() {
        assert!(Qsgd::new(0).is_err());
        assert!(Qsgd::new(128).is_err());
        assert!(Qsgd::new(127).is_ok());
    }

    #[test]
    fn zero_vector_stays_zero() {
        let g = Tensor::zeros([32]);
        let mut c = Qsgd::new(15).unwrap();
        let out = round_trip(&mut c, 0, &g).unwrap();
        assert!(out.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn quantizer_is_unbiased_in_expectation() {
        let g = Tensor::from_vec(vec![0.3, -0.7, 0.05, 0.9]);
        let mut acc = [0.0f64; 4];
        let trials = 4000;
        let mut c = Qsgd::new(4).unwrap().with_seed(123);
        for _ in 0..trials {
            let out = round_trip(&mut c, 0, &g).unwrap();
            for (a, &x) in acc.iter_mut().zip(out.data()) {
                *a += x as f64;
            }
        }
        for (a, &x) in acc.iter().zip(g.data()) {
            let mean = a / trials as f64;
            assert!(
                (mean - x as f64).abs() < 0.02,
                "expected {x}, got mean {mean}"
            );
        }
    }

    #[test]
    fn quantized_levels_bounded_by_s() {
        let g = Tensor::randn([4096], 6);
        let mut c = Qsgd::new(15).unwrap();
        let p = c.encode(0, &g).unwrap();
        let Payload::Quantized { levels, .. } = p else {
            panic!("wrong payload kind")
        };
        // Stochastic rounding can exceed s by at most one step at the max
        // element (t = s exactly rounds up is impossible; frac = 0).
        assert!(levels.iter().all(|&l| l.unsigned_abs() <= 16));
    }

    #[test]
    fn error_bounded_by_scale() {
        let g = Tensor::randn([512], 7);
        let mut c = Qsgd::new(64).unwrap();
        let out = round_trip(&mut c, 0, &g).unwrap();
        let step = g.l2_norm() / 64.0;
        for (a, b) in g.data().iter().zip(out.data()) {
            assert!((a - b).abs() <= step + 1e-5);
        }
    }

    #[test]
    fn compressed_is_about_4x() {
        let c = Qsgd::new(15).unwrap();
        let n = 4096;
        let bytes = c.compressed_bytes(&Shape::new(vec![n]));
        assert!(((n * 4) as f64 / bytes as f64) > 3.9);
    }

    #[test]
    fn aggregate_rejects_foreign() {
        let c = Qsgd::new(15).unwrap();
        assert!(c.aggregate(0, &[Payload::Dense(vec![1.0])]).is_err());
    }
}
