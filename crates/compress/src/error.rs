//! Error type for compression operations.

use gcs_tensor::TensorError;
use std::error::Error;
use std::fmt;

/// Errors produced while encoding, aggregating or decoding gradients.
#[derive(Debug, Clone, PartialEq)]
pub enum CompressError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// A payload of the wrong variant was supplied to a compressor.
    PayloadKind {
        /// What the compressor expected, e.g. `"Sparse"`.
        expected: &'static str,
        /// What it received.
        actual: &'static str,
    },
    /// The protocol was driven out of order (e.g. `finish` before `absorb`,
    /// or an unknown round index).
    Protocol(String),
    /// `aggregate` was called with zero payloads.
    EmptyAggregate,
    /// Payload (de)serialization failed.
    Wire(String),
    /// A configuration parameter was invalid (e.g. rank 0, ratio > 1).
    InvalidConfig(String),
}

impl fmt::Display for CompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompressError::Tensor(e) => write!(f, "tensor error: {e}"),
            CompressError::PayloadKind { expected, actual } => {
                write!(
                    f,
                    "payload kind mismatch: expected {expected}, got {actual}"
                )
            }
            CompressError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            CompressError::EmptyAggregate => write!(f, "aggregate called with no payloads"),
            CompressError::Wire(msg) => write!(f, "wire format error: {msg}"),
            CompressError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl Error for CompressError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CompressError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for CompressError {
    fn from(e: TensorError) -> Self {
        CompressError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty_for_all_variants() {
        let variants = [
            CompressError::Tensor(TensorError::IndexOutOfBounds { index: 1, len: 0 }),
            CompressError::PayloadKind {
                expected: "Dense",
                actual: "Sparse",
            },
            CompressError::Protocol("x".into()),
            CompressError::EmptyAggregate,
            CompressError::Wire("y".into()),
            CompressError::InvalidConfig("z".into()),
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn tensor_error_is_source() {
        let e = CompressError::Tensor(TensorError::IndexOutOfBounds { index: 1, len: 0 });
        assert!(e.source().is_some());
        assert!(CompressError::EmptyAggregate.source().is_none());
    }
}
