//! Compressed gradient payloads and their wire format.
//!
//! Payloads are what workers actually exchange. [`Payload::wire_bytes`] is
//! the size the network simulator charges for, and [`Payload::to_bytes`] /
//! [`Payload::from_bytes`] give a concrete little-endian serialization used
//! by the in-process cluster transport.

use crate::{CompressError, Result};
use gcs_tensor::kernels;
use gcs_tensor::pool;

/// Which low-rank factor a [`Payload::Factor`] carries (PowerSGD sends `P`
/// then `Q`, paying the all-reduce latency twice — see §4.2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Factor {
    /// The `m x r` left factor.
    P,
    /// The `n x r` right factor.
    Q,
}

/// Guards the `usize → u32` narrowing every sparse encoder performs when it
/// pushes coordinate indices: a tensor beyond the `u32` index space must
/// fail loudly with a typed [`CompressError::Wire`] before any index is
/// emitted, never truncate silently on the TCP framing.
pub(crate) fn check_sparse_index_space(n: usize) -> Result<()> {
    if u32::try_from(n).is_err() {
        return Err(CompressError::Wire(format!(
            "tensor of {n} elements exceeds the u32 sparse-index space"
        )));
    }
    Ok(())
}

/// A compressed gradient in one of the representations used by the schemes
/// in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// Uncompressed `f32` values (syncSGD, and dense intermediates).
    Dense(Vec<f32>),
    /// IEEE binary16 bit patterns (FP16 baseline).
    Half(Vec<u16>),
    /// Sparse coordinates: indices + values of a length-`len` vector.
    Sparse {
        /// Length of the underlying dense vector.
        len: usize,
        /// Flat coordinate indices.
        indices: Vec<u32>,
        /// Values at those coordinates.
        values: Vec<f32>,
    },
    /// Values-only sparse payload where the coordinate set is implied by a
    /// seed all workers share (Random-K) — this is what makes the method
    /// all-reducible at `k * 4` bytes.
    SharedSparse {
        /// Length of the underlying dense vector.
        len: usize,
        /// Seed identifying the shared coordinate set.
        seed: u64,
        /// Values at the shared coordinates.
        values: Vec<f32>,
    },
    /// One sign bit per element plus a scale (SignSGD).
    Signs {
        /// Packed sign words (LSB-first), 1 = non-negative.
        words: Vec<u32>,
        /// Number of packed elements.
        len: usize,
        /// Magnitude each sign is decoded to.
        scale: f32,
    },
    /// One low-rank factor (`rows x cols` row-major, `cols` = rank).
    Factor {
        /// Which factor this is.
        which: Factor,
        /// Rows of this factor.
        rows: usize,
        /// Columns of this factor (the compression rank).
        cols: usize,
        /// Row-major factor data.
        data: Vec<f32>,
    },
    /// Signed integer levels with a scale (QSGD): element ≈ `scale * level`.
    Quantized {
        /// Per-tensor scale.
        scale: f32,
        /// Quantization levels (`-s..=s`).
        levels: Vec<i8>,
    },
    /// 2-bit packed ternary values in `{-1, 0, +1}` times a scale (TernGrad).
    Ternary {
        /// Number of encoded elements.
        len: usize,
        /// Per-tensor scale (max |g|).
        scale: f32,
        /// 2 bits per element, 4 elements per byte: `00`=0, `01`=+1, `10`=−1.
        packed: Vec<u8>,
    },
    /// A truncated SVD triplet `U · diag(S) · Vᵀ` (ATOMO). Not summable —
    /// singular bases differ per worker, so aggregation needs all-gather.
    Svd {
        /// Rows of the matricized gradient.
        rows: usize,
        /// Columns of the matricized gradient.
        cols: usize,
        /// Retained rank.
        rank: usize,
        /// `rows x rank` left singular vectors, row-major.
        u: Vec<f32>,
        /// `rank` singular values.
        s: Vec<f32>,
        /// `cols x rank` right singular vectors, row-major.
        v: Vec<f32>,
    },
    /// One bit per element with separate negative/positive reconstruction
    /// values (1-bit SGD).
    TwoScale {
        /// Packed sign words, 1 = positive bucket.
        words: Vec<u32>,
        /// Number of packed elements.
        len: usize,
        /// Reconstruction value for the 0 bucket (≤ 0 in practice).
        neg: f32,
        /// Reconstruction value for the 1 bucket.
        pos: f32,
    },
}

/// Wire-format tags (first byte of a serialized payload). Crate-visible
/// because native chunk emitters reproduce `write_bytes` span by span.
pub(crate) const TAG_DENSE: u8 = 1;
pub(crate) const TAG_HALF: u8 = 2;
pub(crate) const TAG_SPARSE: u8 = 3;
pub(crate) const TAG_SHARED_SPARSE: u8 = 4;
pub(crate) const TAG_SIGNS: u8 = 5;
pub(crate) const TAG_FACTOR_P: u8 = 6;
pub(crate) const TAG_FACTOR_Q: u8 = 7;
pub(crate) const TAG_QUANTIZED: u8 = 8;
pub(crate) const TAG_TERNARY: u8 = 9;
pub(crate) const TAG_TWO_SCALE: u8 = 10;
pub(crate) const TAG_SVD: u8 = 11;

impl Payload {
    /// The variant name, for diagnostics and
    /// [`CompressError::PayloadKind`].
    pub fn kind_name(&self) -> &'static str {
        match self {
            Payload::Dense(_) => "Dense",
            Payload::Half(_) => "Half",
            Payload::Sparse { .. } => "Sparse",
            Payload::SharedSparse { .. } => "SharedSparse",
            Payload::Signs { .. } => "Signs",
            Payload::Factor { .. } => "Factor",
            Payload::Quantized { .. } => "Quantized",
            Payload::Ternary { .. } => "Ternary",
            Payload::Svd { .. } => "Svd",
            Payload::TwoScale { .. } => "TwoScale",
        }
    }

    /// Bytes this payload occupies on the wire (payload data + scalar
    /// metadata; framing excluded). This is what the network cost model
    /// charges.
    pub fn wire_bytes(&self) -> usize {
        match self {
            Payload::Dense(v) => v.len() * 4,
            Payload::Half(v) => v.len() * 2,
            Payload::Sparse {
                indices, values, ..
            } => indices.len() * 4 + values.len() * 4,
            Payload::SharedSparse { values, .. } => values.len() * 4 + 8,
            Payload::Signs { words, .. } => words.len() * 4 + 4,
            Payload::Factor { data, .. } => data.len() * 4,
            Payload::Quantized { levels, .. } => levels.len() + 4,
            Payload::Ternary { packed, .. } => packed.len() + 4,
            Payload::Svd { u, s, v, .. } => (u.len() + s.len() + v.len()) * 4,
            Payload::TwoScale { words, .. } => words.len() * 4 + 8,
        }
    }

    /// Whether this payload supports elementwise [`Payload::add_assign`]
    /// (i.e. can travel through a sum-based all-reduce).
    pub fn is_summable(&self) -> bool {
        matches!(
            self,
            Payload::Dense(_)
                | Payload::Half(_)
                | Payload::Factor { .. }
                | Payload::SharedSparse { .. }
        )
    }

    /// Elementwise accumulation for summable payloads — the reduction the
    /// ring all-reduce applies. `Half` payloads are summed in `f32` and
    /// re-rounded, matching NCCL's fp16 all-reduce behaviour.
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::PayloadKind`] if the variants differ or are
    /// not summable, and [`CompressError::Protocol`] on length / coordinate
    /// mismatches.
    pub fn add_assign(&mut self, other: &Payload) -> Result<()> {
        match (self, other) {
            (Payload::Dense(a), Payload::Dense(b)) => {
                check_len(a.len(), b.len())?;
                kernels::add_assign_pooled(pool::global(), a, b);
                Ok(())
            }
            (Payload::Half(a), Payload::Half(b)) => {
                check_len(a.len(), b.len())?;
                for (x, y) in a.iter_mut().zip(b) {
                    let sum =
                        gcs_tensor::f16::f16_bits_to_f32(*x) + gcs_tensor::f16::f16_bits_to_f32(*y);
                    *x = gcs_tensor::f16::f32_to_f16_bits(sum);
                }
                Ok(())
            }
            (
                Payload::Factor {
                    which: wa,
                    rows: ra,
                    cols: ca,
                    data: a,
                },
                Payload::Factor {
                    which: wb,
                    rows: rb,
                    cols: cb,
                    data: b,
                },
            ) => {
                if wa != wb || ra != rb || ca != cb {
                    return Err(CompressError::Protocol(
                        "factor payload shape mismatch".into(),
                    ));
                }
                check_len(a.len(), b.len())?;
                kernels::add_assign(a, b);
                Ok(())
            }
            (
                Payload::SharedSparse {
                    seed: sa,
                    values: a,
                    len: la,
                },
                Payload::SharedSparse {
                    seed: sb,
                    values: b,
                    len: lb,
                },
            ) => {
                if sa != sb || la != lb {
                    return Err(CompressError::Protocol(
                        "shared-sparse payloads disagree on seed or length".into(),
                    ));
                }
                check_len(a.len(), b.len())?;
                kernels::add_assign(a, b);
                Ok(())
            }
            (me, other) => Err(CompressError::PayloadKind {
                expected: "matching summable payloads",
                actual: if me.kind_name() == other.kind_name() {
                    me.kind_name()
                } else {
                    "mixed variants"
                },
            }),
        }
    }

    /// Scales a summable payload in place (used to turn sums into means).
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::PayloadKind`] for non-summable variants.
    pub fn scale(&mut self, s: f32) -> Result<()> {
        match self {
            Payload::Dense(v) => {
                kernels::scale(v, s);
                Ok(())
            }
            Payload::Half(v) => {
                for x in v {
                    let scaled = gcs_tensor::f16::f16_bits_to_f32(*x) * s;
                    *x = gcs_tensor::f16::f32_to_f16_bits(scaled);
                }
                Ok(())
            }
            Payload::Factor { data, .. } => {
                kernels::scale(data, s);
                Ok(())
            }
            Payload::SharedSparse { values, .. } => {
                kernels::scale(values, s);
                Ok(())
            }
            other => Err(CompressError::PayloadKind {
                expected: "summable payload",
                actual: other.kind_name(),
            }),
        }
    }

    /// Serializes to a self-describing little-endian byte vector.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_bytes() + 32);
        self.write_bytes(&mut out);
        out
    }

    /// Appends the serialization of this payload to `out` (the buffer is
    /// not cleared, so a caller can reuse one allocation across payloads —
    /// the DDP executor serializes every layer of every iteration through
    /// this path). Numeric arrays are written with bulk slice copies rather
    /// than per-element pushes.
    pub fn write_bytes(&self, out: &mut Vec<u8>) {
        out.reserve(self.wire_bytes() + 32);
        match self {
            Payload::Dense(v) => {
                out.push(TAG_DENSE);
                push_u64(out, v.len() as u64);
                push_f32s(out, v);
            }
            Payload::Half(v) => {
                out.push(TAG_HALF);
                push_u64(out, v.len() as u64);
                push_u16s(out, v);
            }
            Payload::Sparse {
                len,
                indices,
                values,
            } => {
                out.push(TAG_SPARSE);
                push_u64(out, *len as u64);
                push_u64(out, indices.len() as u64);
                push_u32s(out, indices);
                push_f32s(out, values);
            }
            Payload::SharedSparse { len, seed, values } => {
                out.push(TAG_SHARED_SPARSE);
                push_u64(out, *len as u64);
                push_u64(out, *seed);
                push_u64(out, values.len() as u64);
                push_f32s(out, values);
            }
            Payload::Signs { words, len, scale } => {
                out.push(TAG_SIGNS);
                push_u64(out, *len as u64);
                out.extend_from_slice(&scale.to_le_bytes());
                push_u32s(out, words);
            }
            Payload::Factor {
                which,
                rows,
                cols,
                data,
            } => {
                out.push(match which {
                    Factor::P => TAG_FACTOR_P,
                    Factor::Q => TAG_FACTOR_Q,
                });
                push_u64(out, *rows as u64);
                push_u64(out, *cols as u64);
                push_f32s(out, data);
            }
            Payload::Quantized { scale, levels } => {
                out.push(TAG_QUANTIZED);
                push_u64(out, levels.len() as u64);
                out.extend_from_slice(&scale.to_le_bytes());
                out.extend(levels.iter().map(|&l| l as u8));
            }
            Payload::Ternary { len, scale, packed } => {
                out.push(TAG_TERNARY);
                push_u64(out, *len as u64);
                out.extend_from_slice(&scale.to_le_bytes());
                out.extend_from_slice(packed);
            }
            Payload::Svd {
                rows,
                cols,
                rank,
                u,
                s,
                v,
            } => {
                out.push(TAG_SVD);
                push_u64(out, *rows as u64);
                push_u64(out, *cols as u64);
                push_u64(out, *rank as u64);
                push_f32s(out, u);
                push_f32s(out, s);
                push_f32s(out, v);
            }
            Payload::TwoScale {
                words,
                len,
                neg,
                pos,
            } => {
                out.push(TAG_TWO_SCALE);
                push_u64(out, *len as u64);
                out.extend_from_slice(&neg.to_le_bytes());
                out.extend_from_slice(&pos.to_le_bytes());
                push_u32s(out, words);
            }
        }
    }

    /// Deserializes a payload produced by [`Payload::to_bytes`].
    ///
    /// The input must be exactly one payload: every byte is consumed, and
    /// trailing bytes (e.g. a length field that doesn't cover a whole
    /// number of elements, or a frame carrying more than it claims) are a
    /// structured error rather than being silently dropped.
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::Wire`] on truncated, malformed, or
    /// over-long input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Payload> {
        let mut r = Reader::new(bytes);
        let tag = r.u8()?;
        let payload = match tag {
            TAG_DENSE => {
                let n = r.u64()? as usize;
                Payload::Dense(r.f32s(n)?)
            }
            TAG_HALF => {
                let n = r.u64()? as usize;
                Payload::Half(r.u16s(n)?)
            }
            TAG_SPARSE => {
                let len = r.u64()? as usize;
                let k = r.u64()? as usize;
                let indices = r.u32s(k)?;
                let values = r.f32s(k)?;
                Payload::Sparse {
                    len,
                    indices,
                    values,
                }
            }
            TAG_SHARED_SPARSE => {
                let len = r.u64()? as usize;
                let seed = r.u64()?;
                let k = r.u64()? as usize;
                Payload::SharedSparse {
                    len,
                    seed,
                    values: r.f32s(k)?,
                }
            }
            TAG_SIGNS => {
                let len = r.u64()? as usize;
                let scale = r.f32()?;
                let words = r.u32s(len.div_ceil(32))?;
                Payload::Signs { words, len, scale }
            }
            TAG_FACTOR_P | TAG_FACTOR_Q => {
                let rows = r.u64()? as usize;
                let cols = r.u64()? as usize;
                let total = rows
                    .checked_mul(cols)
                    .ok_or_else(|| CompressError::Wire("factor dimensions overflow".into()))?;
                Payload::Factor {
                    which: if tag == TAG_FACTOR_P {
                        Factor::P
                    } else {
                        Factor::Q
                    },
                    rows,
                    cols,
                    data: r.f32s(total)?,
                }
            }
            TAG_QUANTIZED => {
                let n = r.u64()? as usize;
                let scale = r.f32()?;
                let raw = r.bytes(n)?;
                Payload::Quantized {
                    scale,
                    levels: raw.iter().map(|&b| b as i8).collect(),
                }
            }
            TAG_TERNARY => {
                let len = r.u64()? as usize;
                let scale = r.f32()?;
                let packed = r.bytes(len.div_ceil(4))?.to_vec();
                Payload::Ternary { len, scale, packed }
            }
            TAG_SVD => {
                let rows = r.u64()? as usize;
                let cols = r.u64()? as usize;
                let rank = r.u64()? as usize;
                let nu = rows.checked_mul(rank);
                let nv = cols.checked_mul(rank);
                let (nu, nv) = match (nu, nv) {
                    (Some(a), Some(b)) => (a, b),
                    _ => return Err(CompressError::Wire("svd dimensions overflow".into())),
                };
                Payload::Svd {
                    rows,
                    cols,
                    rank,
                    u: r.f32s(nu)?,
                    s: r.f32s(rank)?,
                    v: r.f32s(nv)?,
                }
            }
            TAG_TWO_SCALE => {
                let len = r.u64()? as usize;
                let neg = r.f32()?;
                let pos = r.f32()?;
                let words = r.u32s(len.div_ceil(32))?;
                Payload::TwoScale {
                    words,
                    len,
                    neg,
                    pos,
                }
            }
            other => {
                return Err(CompressError::Wire(format!("unknown payload tag {other}")));
            }
        };
        if r.pos != bytes.len() {
            return Err(CompressError::Wire(format!(
                "{} trailing bytes after {} payload",
                bytes.len() - r.pos,
                payload.kind_name()
            )));
        }
        Ok(payload)
    }
}

fn check_len(a: usize, b: usize) -> Result<()> {
    if a != b {
        return Err(CompressError::Protocol(format!(
            "payload length mismatch: {a} vs {b}"
        )));
    }
    Ok(())
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends `xs` as little-endian `f32`s with one bulk resize and a
/// dispatched bulk-serialization kernel (no per-element Vec growth),
/// banded across the kernel pool for large payloads.
fn push_f32s(out: &mut Vec<u8>, xs: &[f32]) {
    let start = out.len();
    out.resize(start + xs.len() * 4, 0);
    kernels::f32s_to_bytes_pooled(pool::global(), xs, &mut out[start..]);
}

fn push_u32s(out: &mut Vec<u8>, xs: &[u32]) {
    let start = out.len();
    out.resize(start + xs.len() * 4, 0);
    kernels::u32s_to_bytes(xs, &mut out[start..]);
}

fn push_u16s(out: &mut Vec<u8>, xs: &[u16]) {
    let start = out.len();
    out.resize(start + xs.len() * 2, 0);
    for (chunk, x) in out[start..].chunks_exact_mut(2).zip(xs) {
        chunk.copy_from_slice(&x.to_le_bytes());
    }
}

/// Minimal cursor over a byte slice with bounds-checked reads.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        // checked_add guards against `pos + n` overflowing on adversarial
        // length fields.
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| CompressError::Wire("truncated payload".into()))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn f32(&mut self) -> Result<f32> {
        let b = self.take(4)?;
        let mut a = [0u8; 4];
        a.copy_from_slice(b);
        Ok(f32::from_le_bytes(a))
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }

    fn f32s(&mut self, n: usize) -> Result<Vec<f32>> {
        let b = self.take(
            n.checked_mul(4)
                .ok_or_else(|| CompressError::Wire("length overflow".into()))?,
        )?;
        let mut out = vec![0.0f32; n];
        kernels::bytes_to_f32s_pooled(pool::global(), b, &mut out);
        Ok(out)
    }

    fn u32s(&mut self, n: usize) -> Result<Vec<u32>> {
        let b = self.take(
            n.checked_mul(4)
                .ok_or_else(|| CompressError::Wire("length overflow".into()))?,
        )?;
        let mut out = vec![0u32; n];
        kernels::bytes_to_u32s(b, &mut out);
        Ok(out)
    }

    fn u16s(&mut self, n: usize) -> Result<Vec<u16>> {
        let b = self.take(
            n.checked_mul(2)
                .ok_or_else(|| CompressError::Wire("length overflow".into()))?,
        )?;
        Ok(b.chunks_exact(2)
            .map(|c| u16::from_le_bytes([c[0], c[1]]))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(p: Payload) {
        let bytes = p.to_bytes();
        let q = Payload::from_bytes(&bytes).expect("roundtrip decode");
        assert_eq!(p, q);
    }

    #[test]
    fn sparse_index_space_guard_is_a_typed_wire_error() {
        // Every sparse encoder narrows coordinate indices to u32; the
        // shared guard must reject tensors past that space loudly instead
        // of letting `i as u32` wrap on the wire.
        assert!(check_sparse_index_space(0).is_ok());
        assert!(check_sparse_index_space(u32::MAX as usize).is_ok());
        let err = check_sparse_index_space(u32::MAX as usize + 1).unwrap_err();
        assert!(matches!(err, CompressError::Wire(_)), "got {err:?}");
        assert!(err.to_string().contains("sparse-index space"));
    }

    #[test]
    fn all_variants_roundtrip() {
        roundtrip(Payload::Dense(vec![1.0, -2.5, 3.25]));
        roundtrip(Payload::Half(vec![0x3c00, 0xbc00]));
        roundtrip(Payload::Sparse {
            len: 10,
            indices: vec![1, 5, 9],
            values: vec![0.5, -0.5, 2.0],
        });
        roundtrip(Payload::SharedSparse {
            len: 10,
            seed: 42,
            values: vec![1.0, 2.0],
        });
        roundtrip(Payload::Signs {
            words: vec![0b1011],
            len: 4,
            scale: 0.01,
        });
        roundtrip(Payload::Factor {
            which: Factor::P,
            rows: 2,
            cols: 3,
            data: vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        });
        roundtrip(Payload::Factor {
            which: Factor::Q,
            rows: 3,
            cols: 1,
            data: vec![1.0, 2.0, 3.0],
        });
        roundtrip(Payload::Quantized {
            scale: 0.125,
            levels: vec![-3, 0, 7, -128],
        });
        roundtrip(Payload::Ternary {
            len: 5,
            scale: 2.0,
            packed: vec![0b01_10_00_01, 0b10],
        });
        roundtrip(Payload::Svd {
            rows: 2,
            cols: 3,
            rank: 1,
            u: vec![0.5, -0.5],
            s: vec![3.0],
            v: vec![1.0, 0.0, 0.0],
        });
        roundtrip(Payload::TwoScale {
            words: vec![0b101],
            len: 3,
            neg: -0.5,
            pos: 0.75,
        });
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(Payload::from_bytes(&[]).is_err());
        assert!(Payload::from_bytes(&[99]).is_err());
        // Dense claiming more elements than bytes present.
        let mut b = vec![1u8];
        b.extend_from_slice(&100u64.to_le_bytes());
        b.extend_from_slice(&1.0f32.to_le_bytes());
        assert!(Payload::from_bytes(&b).is_err());
    }

    #[test]
    fn from_bytes_rejects_trailing_bytes() {
        // Regression: a byte length that is not a whole number of elements
        // used to be silently truncated — the reader consumed `len * 4`
        // bytes and ignored the rest. Every variant must now reject
        // over-long input with a structured Wire error.
        let victims = [
            Payload::Dense(vec![1.0, -2.5]),
            Payload::Signs {
                words: vec![0b1011],
                len: 4,
                scale: 0.01,
            },
            Payload::Sparse {
                len: 10,
                indices: vec![1, 5],
                values: vec![0.5, -0.5],
            },
        ];
        for p in victims {
            for extra in [1usize, 3, 4] {
                let mut b = p.to_bytes();
                b.extend(std::iter::repeat_n(0xAB, extra));
                let err = Payload::from_bytes(&b).expect_err("trailing bytes must error");
                let msg = err.to_string();
                assert!(msg.contains("trailing"), "unexpected error: {msg}");
            }
        }
        // A Dense length field that covers only part of the byte tail:
        // 1 claimed element but 6 data bytes -> 2 trailing bytes, error.
        let mut b = vec![1u8];
        b.extend_from_slice(&1u64.to_le_bytes());
        b.extend_from_slice(&1.0f32.to_le_bytes());
        b.extend_from_slice(&[0xCD, 0xEF]);
        assert!(Payload::from_bytes(&b).is_err());
    }

    #[test]
    fn from_bytes_rejects_overflowing_lengths() {
        let mut b = vec![1u8]; // Dense
        b.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(Payload::from_bytes(&b).is_err());
        let mut b = vec![6u8]; // Factor P
        b.extend_from_slice(&u64::MAX.to_le_bytes());
        b.extend_from_slice(&2u64.to_le_bytes());
        assert!(Payload::from_bytes(&b).is_err());
    }

    #[test]
    fn wire_bytes_reflect_compression() {
        let n = 1024;
        let dense = Payload::Dense(vec![0.0; n]);
        let signs = Payload::Signs {
            words: vec![0; n / 32],
            len: n,
            scale: 1.0,
        };
        let ternary = Payload::Ternary {
            len: n,
            scale: 1.0,
            packed: vec![0; n / 4],
        };
        assert_eq!(dense.wire_bytes(), 4096);
        assert_eq!(signs.wire_bytes(), n / 8 + 4);
        assert_eq!(ternary.wire_bytes(), n / 4 + 4);
        assert!(signs.wire_bytes() * 30 < dense.wire_bytes() * 2);
    }

    #[test]
    fn dense_add_and_scale() {
        let mut a = Payload::Dense(vec![1.0, 2.0]);
        a.add_assign(&Payload::Dense(vec![3.0, 4.0])).unwrap();
        a.scale(0.5).unwrap();
        assert_eq!(a, Payload::Dense(vec![2.0, 3.0]));
    }

    #[test]
    fn half_add_goes_through_f32() {
        use gcs_tensor::f16::f32_to_f16_bits;
        let mut a = Payload::Half(vec![f32_to_f16_bits(1.5)]);
        a.add_assign(&Payload::Half(vec![f32_to_f16_bits(2.25)]))
            .unwrap();
        assert_eq!(a, Payload::Half(vec![f32_to_f16_bits(3.75)]));
    }

    #[test]
    fn shared_sparse_add_checks_seed() {
        let mut a = Payload::SharedSparse {
            len: 4,
            seed: 1,
            values: vec![1.0],
        };
        let b = Payload::SharedSparse {
            len: 4,
            seed: 2,
            values: vec![1.0],
        };
        assert!(a.add_assign(&b).is_err());
    }

    #[test]
    fn non_summable_add_rejected() {
        let mut a = Payload::Signs {
            words: vec![0],
            len: 1,
            scale: 1.0,
        };
        let b = a.clone();
        assert!(!a.is_summable());
        assert!(a.add_assign(&b).is_err());
        assert!(a.scale(2.0).is_err());
    }

    #[test]
    fn mixed_variant_add_rejected() {
        let mut a = Payload::Dense(vec![1.0]);
        assert!(a.add_assign(&Payload::Half(vec![0])).is_err());
    }

    #[test]
    fn factor_add_checks_shape() {
        let mut a = Payload::Factor {
            which: Factor::P,
            rows: 2,
            cols: 1,
            data: vec![1.0, 2.0],
        };
        let b = Payload::Factor {
            which: Factor::Q,
            rows: 2,
            cols: 1,
            data: vec![1.0, 2.0],
        };
        assert!(a.add_assign(&b).is_err());
    }
}
