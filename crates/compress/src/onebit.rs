//! 1-bit SGD (Seide et al., 2014) — the earliest scheme the paper cites.
//!
//! Each element is bucketed by sign; the positive bucket is reconstructed
//! by the mean of its members and likewise the negative bucket. Error
//! feedback is integral to the original algorithm and always on here.
//! Reconstruction values differ per worker, so aggregation needs
//! all-gather.

use crate::{CompressError, Compressor, Payload, Properties, Result};
use gcs_tensor::bits::SignBits;
use gcs_tensor::{Shape, Tensor};
use std::collections::HashMap;

/// 1-bit SGD compressor (error feedback built in, as in the original).
#[derive(Debug, Default)]
pub struct OneBitSgd {
    residual: HashMap<usize, Tensor>,
    pending: HashMap<usize, Vec<f32>>,
}

impl OneBitSgd {
    /// Creates a 1-bit SGD compressor.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_means(v: &[f32]) -> (f32, f32) {
        let (mut pos_sum, mut pos_n, mut neg_sum, mut neg_n) = (0.0f64, 0usize, 0.0f64, 0usize);
        for &x in v {
            if x >= 0.0 {
                pos_sum += x as f64;
                pos_n += 1;
            } else {
                neg_sum += x as f64;
                neg_n += 1;
            }
        }
        let pos = if pos_n > 0 {
            (pos_sum / pos_n as f64) as f32
        } else {
            0.0
        };
        let neg = if neg_n > 0 {
            (neg_sum / neg_n as f64) as f32
        } else {
            0.0
        };
        (neg, pos)
    }
}

impl Compressor for OneBitSgd {
    fn properties(&self) -> Properties {
        Properties {
            name: "1-bit SGD".to_owned(),
            all_reducible: false,
            layerwise: true,
            rounds: 1,
        }
    }

    fn compressed_bytes(&self, shape: &Shape) -> usize {
        shape.numel().div_ceil(32) * 4 + 8
    }

    fn encode(&mut self, layer: usize, grad: &Tensor) -> Result<Payload> {
        let v = match self.residual.get(&layer) {
            Some(e) => grad.add(e)?,
            None => grad.clone(),
        };
        let bits = SignBits::pack(v.data());
        let (neg, pos) = Self::bucket_means(v.data());
        // Residual: v minus own reconstruction (accumulating unpack of the
        // negated bucket means — one vectorized pass, no recon buffer).
        let mut res = v.clone();
        bits.unpack_add_into(-neg, -pos, res.data_mut());
        self.residual.insert(layer, res);
        Ok(Payload::TwoScale {
            len: bits.len(),
            words: bits.words().to_vec(),
            neg,
            pos,
        })
    }

    fn aggregate(&self, _round: usize, payloads: &[Payload]) -> Result<Payload> {
        if payloads.is_empty() {
            return Err(CompressError::EmptyAggregate);
        }
        let mut acc: Option<Vec<f32>> = None;
        for p in payloads {
            match p {
                Payload::TwoScale {
                    words,
                    len,
                    neg,
                    pos,
                } => {
                    let bits = SignBits::from_words(words.clone(), *len);
                    let a = acc.get_or_insert_with(|| vec![0.0; *len]);
                    if a.len() != *len {
                        return Err(CompressError::Protocol(
                            "two-scale payloads disagree on length".into(),
                        ));
                    }
                    bits.unpack_add_into(*neg, *pos, a);
                }
                other => {
                    return Err(CompressError::PayloadKind {
                        expected: "TwoScale",
                        actual: other.kind_name(),
                    });
                }
            }
        }
        let Some(mut a) = acc else {
            return Err(CompressError::EmptyAggregate);
        };
        gcs_tensor::kernels::scale(&mut a, 1.0 / payloads.len() as f32);
        Ok(Payload::Dense(a))
    }

    fn absorb(&mut self, layer: usize, round: usize, agg: Payload) -> Result<()> {
        if round != 0 {
            return Err(CompressError::Protocol(format!(
                "1-bit SGD has a single round, got {round}"
            )));
        }
        match agg {
            Payload::Dense(v) => {
                self.pending.insert(layer, v);
                Ok(())
            }
            other => Err(CompressError::PayloadKind {
                expected: "Dense",
                actual: other.kind_name(),
            }),
        }
    }

    fn finish(&mut self, layer: usize, shape: &Shape) -> Result<Tensor> {
        let v = self.pending.remove(&layer).ok_or_else(|| {
            CompressError::Protocol(format!("finish before absorb for layer {layer}"))
        })?;
        Tensor::from_shape_vec(shape.clone(), v).map_err(Into::into)
    }

    fn reset(&mut self) {
        self.residual.clear();
        self.pending.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::round_trip;

    #[test]
    fn reconstruction_preserves_bucket_means() {
        let g = Tensor::from_vec(vec![1.0, 3.0, -2.0, -4.0]);
        let mut c = OneBitSgd::new();
        let out = round_trip(&mut c, 0, &g).unwrap();
        assert_eq!(out.data(), &[2.0, 2.0, -3.0, -3.0]);
    }

    #[test]
    fn all_positive_gradient() {
        let g = Tensor::from_vec(vec![1.0, 2.0, 3.0]);
        let mut c = OneBitSgd::new();
        let out = round_trip(&mut c, 0, &g).unwrap();
        assert_eq!(out.data(), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn error_feedback_reconstructs_mean_over_time() {
        let g = Tensor::randn([64], 41);
        let mut c = OneBitSgd::new();
        let mut applied = Tensor::zeros([64]);
        let steps = 50;
        for _ in 0..steps {
            let out = round_trip(&mut c, 0, &g).unwrap();
            applied.add_assign(&out).unwrap();
        }
        applied.scale(1.0 / steps as f32);
        let cos = gcs_tensor::stats::cosine_similarity(&g, &applied);
        assert!(cos > 0.9, "cosine {cos}");
    }

    #[test]
    fn about_32x_compression() {
        let c = OneBitSgd::new();
        let n = 32 * 256;
        let ratio = (n * 4) as f64 / c.compressed_bytes(&Shape::new(vec![n])) as f64;
        assert!(ratio > 31.0);
    }
}
