//! The [`Compressor`] protocol trait and method metadata.

use crate::chunked::{ChunkData, ChunkSink, ChunkedDecode, ChunkedEncode, ChunkedHeader};
use crate::{Payload, Result};
use gcs_tensor::{Shape, Tensor};

/// Static metadata describing a compression scheme — the columns of the
/// paper's Table 1 plus the analytic compression ratio used by the
/// performance model.
#[derive(Debug, Clone, PartialEq)]
pub struct Properties {
    /// Human-readable method name, e.g. `"PowerSGD (rank 4)"`.
    pub name: String,
    /// Whether the aggregation operator is associative and therefore
    /// all-reduce compatible (Table 1, column "All-reduce"). Methods that
    /// are not must fall back to all-gather, whose traffic grows linearly
    /// with the number of workers.
    pub all_reducible: bool,
    /// Whether the method can compress each layer independently (Table 1,
    /// column "Layer-Wise Compression").
    pub layerwise: bool,
    /// Communication rounds per iteration (1 for most; 2 for PowerSGD,
    /// which all-reduces `P` then `Q` and pays the latency term twice).
    pub rounds: usize,
}

/// A gradient compression scheme, driven once per layer per iteration
/// through the round protocol:
///
/// ```text
/// encode(layer, grad)            -> round-0 payload
/// aggregate(0, worker payloads)  -> aggregated payload   (on the "wire")
/// absorb(layer, 0, aggregated)
/// [ encode_round(layer, 1) -> aggregate(1, ..) -> absorb(layer, 1, ..) ]*
/// finish(layer, shape)           -> decoded mean gradient
/// ```
///
/// `aggregate` defines the reference semantics of the wire reduction: for
/// all-reducible methods it is a sum that a ring all-reduce can compute
/// incrementally; for the rest it requires all payloads at once (what an
/// all-gather provides). The distributed engine in `gcs-ddp` reproduces
/// exactly these semantics over real collectives.
///
/// Implementations keep per-layer state (error feedback memory, PowerSGD's
/// warm-started `Q`), keyed by the `layer` index.
pub trait Compressor: Send {
    /// Method metadata (Table 1 row).
    fn properties(&self) -> Properties;

    /// Analytic wire size in bytes of one worker's round-0 payload for a
    /// gradient of shape `shape`, as charged by the performance model.
    fn compressed_bytes(&self, shape: &Shape) -> usize;

    /// Starts an iteration for `layer`: consumes the local gradient and
    /// produces the round-0 payload.
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors from the underlying kernels.
    fn encode(&mut self, layer: usize, grad: &Tensor) -> Result<Payload>;

    /// Produces the payload for a later round (`round >= 1`). Only
    /// multi-round methods implement this.
    ///
    /// # Errors
    ///
    /// The default returns [`CompressError::Protocol`](crate::CompressError)
    /// because single-round methods have no later rounds.
    fn encode_round(&mut self, layer: usize, round: usize) -> Result<Payload> {
        let _ = layer;
        Err(crate::CompressError::Protocol(format!(
            "{} has no round {round}",
            self.properties().name
        )))
    }

    /// Combines the payloads of all workers for `round` into the aggregated
    /// payload every worker receives back. Payloads are ordered by worker
    /// rank. The result of the final round, fed through
    /// [`absorb`](Compressor::absorb) and [`finish`](Compressor::finish),
    /// must decode to the *mean* of the workers' (compressed) gradients —
    /// except for vote-based schemes like SignSGD where it is the majority
    /// sign.
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::EmptyAggregate`](crate::CompressError) when
    /// `payloads` is empty, or a payload-kind error on foreign payloads.
    fn aggregate(&self, round: usize, payloads: &[Payload]) -> Result<Payload>;

    /// Feeds the aggregated payload for `round` back into the worker.
    ///
    /// # Errors
    ///
    /// Returns a protocol error for out-of-order rounds or foreign payloads.
    fn absorb(&mut self, layer: usize, round: usize, agg: Payload) -> Result<()>;

    /// Returns the decoded aggregated gradient for `layer` and updates any
    /// per-layer state (error feedback memory, warm-start factors). Must be
    /// called exactly once per iteration, after every round was absorbed.
    ///
    /// # Errors
    ///
    /// Returns a protocol error if rounds are missing.
    fn finish(&mut self, layer: usize, shape: &Shape) -> Result<Tensor>;

    /// Clears all per-layer state (error feedback, warm starts, counters).
    fn reset(&mut self);

    /// Removes and returns the error-feedback residual for `layer` as a
    /// flat tensor, or `None` when this scheme keeps no residual (either
    /// because error feedback is disabled or the method has none).
    ///
    /// This is one half of the **scheme-switch residual contract** used by
    /// the adaptive controller: when a bucket switches compressors
    /// mid-run, the unsent gradient mass accumulated by the old scheme is
    /// extracted here and handed to
    /// [`inject_residual`](Compressor::inject_residual) on the new one
    /// (see [`driver::switch_scheme`](crate::driver::switch_scheme)).
    /// Implementations must leave the layer with a *zero* residual
    /// afterwards, so a `take` followed by continued use of the old
    /// compressor never double-counts mass.
    fn take_residual(&mut self, layer: usize) -> Option<Tensor> {
        let _ = layer;
        None
    }

    /// Seeds the error-feedback residual for `layer` with `residual`
    /// (flat, element count must match the layer's gradient). Returns
    /// `Ok(true)` if the residual was accepted, `Ok(false)` if this scheme
    /// cannot carry one (no error-feedback memory) — the caller must then
    /// treat the switch as a documented **reset**: the mass is dropped,
    /// exactly as if the old scheme had transmitted it losslessly and the
    /// optimizer had consumed it.
    ///
    /// # Errors
    ///
    /// May return a protocol error when the residual cannot be reconciled
    /// with existing layer state (implementations that defer the check to
    /// the next `encode` instead drop a mismatched residual there).
    fn inject_residual(&mut self, layer: usize, residual: Tensor) -> Result<bool> {
        let _ = (layer, residual);
        Ok(false)
    }

    /// Starts a **chunk-granular streaming encode** for one (layer, round):
    /// the streaming engine pulls the payload as ordered wire spans via
    /// [`encode_chunk`](Compressor::encode_chunk) instead of receiving it
    /// whole, so encoding chunk `i+1` can overlap the wire time of chunk
    /// `i`. `grad` is `Some` for round 0 and `None` for later rounds.
    ///
    /// The default materializes the monolithic payload here (via
    /// [`encode`](Compressor::encode) / [`encode_round`](Compressor::encode_round))
    /// and slices it — always correct, no intra-payload overlap. Schemes
    /// with element-wise codecs override this to defer the actual encode
    /// work into `encode_chunk`.
    ///
    /// # Errors
    ///
    /// Propagates encode errors; protocol error when `grad` does not match
    /// the round.
    fn begin_chunked_encode(
        &mut self,
        layer: usize,
        round: usize,
        grad: Option<&Tensor>,
    ) -> Result<ChunkedEncode> {
        let payload = match grad {
            Some(g) => self.encode(layer, g)?,
            None => self.encode_round(layer, round)?,
        };
        Ok(ChunkedEncode::whole(payload))
    }

    /// Emits wire span `[lo, hi)` of the payload begun by
    /// [`begin_chunked_encode`](Compressor::begin_chunked_encode) into
    /// `sink`. Spans are element offsets (summable) or byte offsets
    /// (gather), arrive in order, and tile the image exactly; concatenating
    /// every span must reproduce the monolithic payload bit for bit.
    ///
    /// # Errors
    ///
    /// Protocol error on out-of-order or out-of-range spans.
    fn encode_chunk(
        &mut self,
        layer: usize,
        enc: &mut ChunkedEncode,
        lo: usize,
        hi: usize,
        sink: ChunkSink<'_>,
    ) -> Result<()> {
        let _ = layer;
        enc.emit_staged(lo, hi, sink)
    }

    /// Starts the matching streaming decode for one (layer, round): the
    /// engine feeds reduced chunks through
    /// [`decode_chunk`](Compressor::decode_chunk) as they come off the
    /// wire, then seals with
    /// [`finish_chunked_decode`](Compressor::finish_chunked_decode).
    ///
    /// # Errors
    ///
    /// Protocol error when the header is inconsistent with layer state.
    fn begin_chunked_decode(
        &mut self,
        layer: usize,
        round: usize,
        header: &ChunkedHeader,
        world: usize,
    ) -> Result<ChunkedDecode> {
        let _ = (layer, round);
        Ok(ChunkedDecode::staged(header, world))
    }

    /// Consumes the reduced wire content of span `[lo, hi)` — the mean f32
    /// span for summable payloads, per-rank byte spans for gather payloads.
    /// Chunk-wise decode work (e.g. FP16 re-rounding) happens here,
    /// overlapping the receive of later chunks.
    ///
    /// # Errors
    ///
    /// Protocol error on span/stage mismatches.
    fn decode_chunk(
        &mut self,
        layer: usize,
        dec: &mut ChunkedDecode,
        lo: usize,
        hi: usize,
        data: ChunkData<'_>,
    ) -> Result<()> {
        let _ = layer;
        dec.absorb_staged(lo, hi, data)
    }

    /// Seals a streaming decode after every chunk of the (layer, round)
    /// arrived: performs whatever aggregation remains and feeds the result
    /// through [`absorb`](Compressor::absorb) — after this call the layer
    /// state is indistinguishable from the monolithic path's.
    ///
    /// # Errors
    ///
    /// Propagates wire, aggregate, and absorb errors.
    fn finish_chunked_decode(
        &mut self,
        layer: usize,
        round: usize,
        dec: ChunkedDecode,
    ) -> Result<()> {
        dec.finish_staged(self, layer, round)
    }
}

impl<C: Compressor + ?Sized> Compressor for Box<C> {
    fn properties(&self) -> Properties {
        (**self).properties()
    }

    fn compressed_bytes(&self, shape: &Shape) -> usize {
        (**self).compressed_bytes(shape)
    }

    fn encode(&mut self, layer: usize, grad: &Tensor) -> Result<Payload> {
        (**self).encode(layer, grad)
    }

    fn encode_round(&mut self, layer: usize, round: usize) -> Result<Payload> {
        (**self).encode_round(layer, round)
    }

    fn aggregate(&self, round: usize, payloads: &[Payload]) -> Result<Payload> {
        (**self).aggregate(round, payloads)
    }

    fn absorb(&mut self, layer: usize, round: usize, agg: Payload) -> Result<()> {
        (**self).absorb(layer, round, agg)
    }

    fn finish(&mut self, layer: usize, shape: &Shape) -> Result<Tensor> {
        (**self).finish(layer, shape)
    }

    fn reset(&mut self) {
        (**self).reset()
    }

    fn take_residual(&mut self, layer: usize) -> Option<Tensor> {
        (**self).take_residual(layer)
    }

    fn inject_residual(&mut self, layer: usize, residual: Tensor) -> Result<bool> {
        (**self).inject_residual(layer, residual)
    }

    // The chunked surface must forward too: falling back to the provided
    // bodies here would erase the inner scheme's native overrides behind
    // `Box<dyn Compressor>`.
    fn begin_chunked_encode(
        &mut self,
        layer: usize,
        round: usize,
        grad: Option<&Tensor>,
    ) -> Result<ChunkedEncode> {
        (**self).begin_chunked_encode(layer, round, grad)
    }

    fn encode_chunk(
        &mut self,
        layer: usize,
        enc: &mut ChunkedEncode,
        lo: usize,
        hi: usize,
        sink: ChunkSink<'_>,
    ) -> Result<()> {
        (**self).encode_chunk(layer, enc, lo, hi, sink)
    }

    fn begin_chunked_decode(
        &mut self,
        layer: usize,
        round: usize,
        header: &ChunkedHeader,
        world: usize,
    ) -> Result<ChunkedDecode> {
        (**self).begin_chunked_decode(layer, round, header, world)
    }

    fn decode_chunk(
        &mut self,
        layer: usize,
        dec: &mut ChunkedDecode,
        lo: usize,
        hi: usize,
        data: ChunkData<'_>,
    ) -> Result<()> {
        (**self).decode_chunk(layer, dec, lo, hi, data)
    }

    fn finish_chunked_decode(
        &mut self,
        layer: usize,
        round: usize,
        dec: ChunkedDecode,
    ) -> Result<()> {
        (**self).finish_chunked_decode(layer, round, dec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::none::NoCompression;

    #[test]
    fn compressor_is_object_safe() {
        let c: Box<dyn Compressor> = Box::new(NoCompression::new());
        assert_eq!(c.properties().rounds, 1);
    }

    #[test]
    fn default_encode_round_is_protocol_error() {
        let mut c = NoCompression::new();
        assert!(c.encode_round(0, 1).is_err());
    }
}
