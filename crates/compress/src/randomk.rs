//! Random-K sparsification (Wangni et al., 2018).
//!
//! All workers draw the *same* random coordinate subset each iteration
//! (from a shared seed), so only values travel and elementwise summation is
//! associative — Table 1 of the paper marks Random-K all-reduce compatible
//! but **not** layer-wise (the shared coordinate sampling is defined over
//! the full flattened gradient, so per-layer overlap with the backward pass
//! is unavailable).

use crate::chunked::{
    f32_sink, ChunkSink, ChunkedEncode, ChunkedHeader, NativeEncode, PayloadShell,
};
use crate::{CompressError, Compressor, Payload, Properties, Result};
use gcs_tensor::select::random_k;
use gcs_tensor::{Shape, Tensor};
use std::collections::HashMap;

/// Random-K sparsification with a shared per-iteration coordinate seed.
#[derive(Debug)]
pub struct RandomK {
    ratio: f64,
    base_seed: u64,
    error_feedback: bool,
    /// Per-layer iteration counters; all workers advance in lock step.
    iteration: HashMap<usize, u64>,
    residual: HashMap<usize, Tensor>,
    pending: HashMap<usize, Payload>,
}

impl RandomK {
    /// Creates Random-K keeping `ratio` of the coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::InvalidConfig`] unless `0 < ratio <= 1`.
    pub fn new(ratio: f64) -> Result<Self> {
        if !(ratio > 0.0 && ratio <= 1.0) {
            return Err(CompressError::InvalidConfig(format!(
                "random-k ratio must be in (0, 1], got {ratio}"
            )));
        }
        Ok(RandomK {
            ratio,
            base_seed: 0xabcd_ef01,
            error_feedback: false,
            iteration: HashMap::new(),
            residual: HashMap::new(),
            pending: HashMap::new(),
        })
    }

    /// Enables error feedback.
    pub fn error_feedback(mut self, on: bool) -> Self {
        self.error_feedback = on;
        self
    }

    /// Number of kept coordinates for `numel` elements (at least 1).
    pub fn k_for(&self, numel: usize) -> usize {
        ((numel as f64 * self.ratio).round() as usize).clamp(1, numel.max(1))
    }

    /// The shared coordinate seed for `(layer, iteration)`.
    fn coord_seed(&self, layer: usize, iter: u64) -> u64 {
        self.base_seed
            .wrapping_add((layer as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .wrapping_add(iter.wrapping_mul(0xbf58_476d_1ce4_e5b9))
    }
}

impl Compressor for RandomK {
    fn properties(&self) -> Properties {
        Properties {
            name: format!("Random-K ({:.0}%)", self.ratio * 100.0),
            all_reducible: true,
            layerwise: false,
            rounds: 1,
        }
    }

    fn compressed_bytes(&self, shape: &Shape) -> usize {
        // Values only; the coordinate set is implied by the shared seed.
        self.k_for(shape.numel()) * 4 + 8
    }

    fn encode(&mut self, layer: usize, grad: &Tensor) -> Result<Payload> {
        let iter = *self.iteration.entry(layer).or_insert(0);
        self.iteration.insert(layer, iter + 1);
        let v = if self.error_feedback {
            match self.residual.get(&layer) {
                Some(e) => grad.add(e)?,
                None => grad.clone(),
            }
        } else {
            grad.clone()
        };
        let k = self.k_for(v.numel());
        let seed = self.coord_seed(layer, iter);
        let sel = random_k(v.data(), k, seed);
        if self.error_feedback {
            let mut res = v.clone();
            for &i in &sel.indices {
                res.data_mut()[i as usize] = 0.0;
            }
            self.residual.insert(layer, res);
        }
        Ok(Payload::SharedSparse {
            len: v.numel(),
            seed,
            values: sel.values,
        })
    }

    fn aggregate(&self, _round: usize, payloads: &[Payload]) -> Result<Payload> {
        let mut iter = payloads.iter();
        let first = iter.next().ok_or(CompressError::EmptyAggregate)?;
        let mut acc = first.clone();
        for p in iter {
            acc.add_assign(p)?;
        }
        acc.scale(1.0 / payloads.len() as f32)?;
        Ok(acc)
    }

    fn absorb(&mut self, layer: usize, round: usize, agg: Payload) -> Result<()> {
        if round != 0 {
            return Err(CompressError::Protocol(format!(
                "Random-K has a single round, got {round}"
            )));
        }
        match &agg {
            Payload::SharedSparse { .. } => {
                self.pending.insert(layer, agg);
                Ok(())
            }
            other => Err(CompressError::PayloadKind {
                expected: "SharedSparse",
                actual: other.kind_name(),
            }),
        }
    }

    fn finish(&mut self, layer: usize, shape: &Shape) -> Result<Tensor> {
        let agg = self.pending.remove(&layer).ok_or_else(|| {
            CompressError::Protocol(format!("finish before absorb for layer {layer}"))
        })?;
        let Payload::SharedSparse { len, seed, values } = agg else {
            unreachable!("absorb validated the variant");
        };
        if len != shape.numel() {
            return Err(CompressError::Protocol(format!(
                "payload length {len} does not match shape {shape}"
            )));
        }
        // Re-derive the shared coordinate set from the seed. The values in
        // `random_k` are positional, so selecting on a zero template gives
        // the index order values were packed in.
        let template = vec![0.0f32; len];
        let sel = random_k(&template, values.len(), seed);
        let mut dense = vec![0.0f32; len];
        for (&i, &v) in sel.indices.iter().zip(&values) {
            dense[i as usize] = v;
        }
        Tensor::from_shape_vec(shape.clone(), dense).map_err(Into::into)
    }

    fn reset(&mut self) {
        self.iteration.clear();
        self.residual.clear();
        self.pending.clear();
    }

    // Streaming: the shared-seed selection runs at begin (advancing the
    // iteration counter exactly as `encode` would); the values then ride
    // the ring in f32 spans. The non-EF path selects straight from the
    // gradient, skipping the tensor clone the monolithic encode makes.
    fn begin_chunked_encode(
        &mut self,
        layer: usize,
        round: usize,
        grad: Option<&Tensor>,
    ) -> Result<ChunkedEncode> {
        let Some(g) = grad else {
            return Ok(ChunkedEncode::whole(self.encode_round(layer, round)?));
        };
        let iter = *self.iteration.entry(layer).or_insert(0);
        self.iteration.insert(layer, iter + 1);
        let k = self.k_for(g.numel());
        let seed = self.coord_seed(layer, iter);
        let values = if self.error_feedback {
            let v = match self.residual.get(&layer) {
                Some(e) => g.add(e)?,
                None => g.clone(),
            };
            let sel = random_k(v.data(), k, seed);
            let mut res = v;
            for &i in &sel.indices {
                res.data_mut()[i as usize] = 0.0;
            }
            self.residual.insert(layer, res);
            sel.values
        } else {
            random_k(g.data(), k, seed).values
        };
        Ok(ChunkedEncode::native(
            ChunkedHeader::Summable {
                shell: PayloadShell::SharedSparse {
                    len: g.numel(),
                    seed,
                },
                elems: values.len(),
            },
            NativeEncode {
                src: values,
                ..NativeEncode::default()
            },
        ))
    }

    fn encode_chunk(
        &mut self,
        _layer: usize,
        enc: &mut ChunkedEncode,
        lo: usize,
        hi: usize,
        sink: ChunkSink<'_>,
    ) -> Result<()> {
        if !enc.is_native() {
            // Whole-payload stage (e.g. constructed by the default
            // `begin_chunked_encode`): slice the materialized image.
            return enc.emit_staged(lo, hi, sink);
        }
        let state = enc.native_mut()?;
        let out = f32_sink(sink)?;
        out.extend_from_slice(&state.src[lo..hi]);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{all_reduce_compressed, round_trip};

    #[test]
    fn rejects_bad_ratio() {
        assert!(RandomK::new(0.0).is_err());
        assert!(RandomK::new(2.0).is_err());
    }

    #[test]
    fn workers_share_coordinates_each_iteration() {
        let grads = vec![Tensor::randn([100], 1), Tensor::randn([100], 2)];
        let mut workers = vec![RandomK::new(0.1).unwrap(), RandomK::new(0.1).unwrap()];
        // Should not error: SharedSparse addition requires matching seeds.
        let outs = all_reduce_compressed(&mut workers, 0, &grads).unwrap();
        assert_eq!(outs[0], outs[1]);
        // Exactly k coordinates non-zero.
        let nz = outs[0].data().iter().filter(|&&x| x != 0.0).count();
        assert!(nz <= 10);
    }

    #[test]
    fn coordinates_change_across_iterations() {
        let g = Tensor::randn([1000], 3);
        let mut c = RandomK::new(0.01).unwrap();
        let a = round_trip(&mut c, 0, &g).unwrap();
        let b = round_trip(&mut c, 0, &g).unwrap();
        let support = |t: &Tensor| -> Vec<usize> {
            t.data()
                .iter()
                .enumerate()
                .filter(|(_, &x)| x != 0.0)
                .map(|(i, _)| i)
                .collect()
        };
        assert_ne!(support(&a), support(&b), "coordinate sets should rotate");
    }

    #[test]
    fn decoded_values_match_input_at_selected_coordinates() {
        let g = Tensor::randn([64], 4);
        let mut c = RandomK::new(0.25).unwrap();
        let out = round_trip(&mut c, 0, &g).unwrap();
        for (o, i) in out.data().iter().zip(g.data()) {
            assert!(*o == 0.0 || (o - i).abs() < 1e-6);
        }
    }

    #[test]
    fn error_feedback_covers_all_coordinates_eventually() {
        // With EF and rotating coordinates, the accumulated applied update
        // must converge toward the full gradient direction.
        let g = Tensor::randn([50], 5);
        let mut c = RandomK::new(0.2).unwrap().error_feedback(true);
        let mut applied = Tensor::zeros([50]);
        for _ in 0..60 {
            let out = round_trip(&mut c, 0, &g).unwrap();
            applied.add_assign(&out).unwrap();
        }
        // Per-iteration expectation is g (values passed through exactly),
        // so applied/iters ≈ g with EF soaking up the tail.
        applied.scale(1.0 / 60.0);
        let cos = gcs_tensor::stats::cosine_similarity(&g, &applied);
        assert!(cos > 0.95, "cosine {cos}");
    }

    #[test]
    fn table1_row() {
        let p = RandomK::new(0.5).unwrap().properties();
        assert!(p.all_reducible);
        assert!(!p.layerwise);
    }

    #[test]
    fn finish_validates_shape() {
        let g = Tensor::randn([10], 6);
        let mut c = RandomK::new(0.5).unwrap();
        let p = c.encode(0, &g).unwrap();
        let agg = c.aggregate(0, std::slice::from_ref(&p)).unwrap();
        c.absorb(0, 0, agg).unwrap();
        assert!(c.finish(0, &Shape::new(vec![11])).is_err());
    }
}
