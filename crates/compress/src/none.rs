//! The uncompressed baseline (synchronous SGD).

use crate::{CompressError, Compressor, Payload, Properties, Result};
use gcs_tensor::{Shape, Tensor};
use std::collections::HashMap;

/// No compression: gradients travel as raw `f32` and aggregate by exact
/// mean. This is the "syncSGD" baseline every experiment in the paper
/// compares against.
///
/// # Example
///
/// ```
/// use gcs_compress::{driver::round_trip, none::NoCompression};
/// use gcs_tensor::Tensor;
///
/// # fn main() -> Result<(), gcs_compress::CompressError> {
/// let g = Tensor::from_vec(vec![1.0, -2.0]);
/// let mut c = NoCompression::new();
/// assert_eq!(round_trip(&mut c, 0, &g)?, g);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct NoCompression {
    pending: HashMap<usize, Vec<f32>>,
}

impl NoCompression {
    /// Creates the baseline compressor.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Compressor for NoCompression {
    fn properties(&self) -> Properties {
        Properties {
            name: "syncSGD".to_owned(),
            all_reducible: true,
            layerwise: true,
            rounds: 1,
        }
    }

    fn compressed_bytes(&self, shape: &Shape) -> usize {
        shape.numel() * 4
    }

    fn encode(&mut self, _layer: usize, grad: &Tensor) -> Result<Payload> {
        Ok(Payload::Dense(grad.data().to_vec()))
    }

    fn aggregate(&self, _round: usize, payloads: &[Payload]) -> Result<Payload> {
        let mut iter = payloads.iter();
        let first = iter.next().ok_or(CompressError::EmptyAggregate)?;
        let mut acc = first.clone();
        for p in iter {
            acc.add_assign(p)?;
        }
        acc.scale(1.0 / payloads.len() as f32)?;
        Ok(acc)
    }

    fn absorb(&mut self, layer: usize, round: usize, agg: Payload) -> Result<()> {
        if round != 0 {
            return Err(CompressError::Protocol(format!(
                "syncSGD has a single round, got {round}"
            )));
        }
        match agg {
            Payload::Dense(v) => {
                self.pending.insert(layer, v);
                Ok(())
            }
            other => Err(CompressError::PayloadKind {
                expected: "Dense",
                actual: other.kind_name(),
            }),
        }
    }

    fn finish(&mut self, layer: usize, shape: &Shape) -> Result<Tensor> {
        let v = self.pending.remove(&layer).ok_or_else(|| {
            CompressError::Protocol(format!("finish before absorb for layer {layer}"))
        })?;
        Tensor::from_shape_vec(shape.clone(), v).map_err(Into::into)
    }

    fn reset(&mut self) {
        self.pending.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn properties_match_table1() {
        let p = NoCompression::new().properties();
        assert!(p.all_reducible);
        assert!(p.layerwise);
        assert_eq!(p.rounds, 1);
    }

    #[test]
    fn compressed_bytes_is_4n() {
        let c = NoCompression::new();
        assert_eq!(c.compressed_bytes(&Shape::new(vec![100])), 400);
    }

    #[test]
    fn aggregate_is_mean() {
        let c = NoCompression::new();
        let agg = c
            .aggregate(
                0,
                &[
                    Payload::Dense(vec![1.0, 2.0]),
                    Payload::Dense(vec![3.0, 4.0]),
                ],
            )
            .unwrap();
        assert_eq!(agg, Payload::Dense(vec![2.0, 3.0]));
    }

    #[test]
    fn aggregate_empty_fails() {
        let c = NoCompression::new();
        assert!(matches!(
            c.aggregate(0, &[]),
            Err(CompressError::EmptyAggregate)
        ));
    }

    #[test]
    fn protocol_errors() {
        let mut c = NoCompression::new();
        assert!(c.absorb(0, 1, Payload::Dense(vec![])).is_err());
        assert!(c
            .absorb(
                0,
                0,
                Payload::Signs {
                    words: vec![],
                    len: 0,
                    scale: 1.0
                }
            )
            .is_err());
        assert!(c.finish(0, &Shape::new(vec![1])).is_err());
    }

    #[test]
    fn reset_clears_pending() {
        let mut c = NoCompression::new();
        c.absorb(3, 0, Payload::Dense(vec![1.0])).unwrap();
        c.reset();
        assert!(c.finish(3, &Shape::new(vec![1])).is_err());
    }
}
