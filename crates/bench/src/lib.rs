//! Shared harness for the figure/table reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper. Output goes to stdout as an aligned text table (the "series the
//! paper reports") and, when `write_json` is used, to
//! `results/<name>.json` for machine consumption (EXPERIMENTS.md is
//! written from those files).
//!
//! Run them with `--release`; `table2` in particular measures real
//! encode/decode kernels.

use gcs_compress::registry::MethodConfig;
use gcs_models::presets;
use gcs_models::ModelSpec;
use std::io::Write;
use std::path::PathBuf;

pub mod timing;

/// The paper's per-worker batch size for a model (64 for vision, 12 for
/// BERT).
pub fn paper_batch(model: &ModelSpec) -> usize {
    if model.name.starts_with("BERT") {
        12
    } else {
        64
    }
}

/// The worker counts the paper sweeps (8–96 GPUs; 2–24 p3.8xlarge
/// instances).
pub fn paper_worker_counts() -> Vec<usize> {
    vec![8, 16, 24, 32, 48, 64, 96]
}

/// The three headline models.
pub fn paper_models() -> Vec<ModelSpec> {
    presets::paper_models()
}

/// PowerSGD ranks the paper evaluates.
pub fn paper_ranks() -> Vec<usize> {
    vec![4, 8, 16]
}

/// Top-K ratios the paper evaluates.
pub fn paper_topk_ratios() -> Vec<f64> {
    vec![0.01, 0.10, 0.20]
}

/// Human-readable name of a method config.
pub fn method_name(method: &MethodConfig) -> String {
    method
        .build()
        .map(|c| c.properties().name)
        .unwrap_or_else(|_| format!("{method:?}"))
}

/// Prints an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!(
                "{:width$}  ",
                c,
                width = widths.get(i).copied().unwrap_or(0)
            ));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>());
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    println!("{}", "-".repeat(total));
    for row in rows {
        line(row);
    }
}

/// Formats seconds as milliseconds with one decimal.
pub fn ms(seconds: f64) -> String {
    format!("{:.1}", seconds * 1e3)
}

/// Formats a mean ± std pair in milliseconds.
pub fn ms_pm(mean_s: f64, std_s: f64) -> String {
    format!("{:.1}±{:.1}", mean_s * 1e3, std_s * 1e3)
}

/// Directory the JSON results land in (`<workspace>/results`).
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench → workspace root is two up.
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop();
    dir.pop();
    dir.push("results");
    dir
}

/// Writes a JSON value to `results/<name>.json` (best effort: prints a
/// warning instead of failing the experiment if the filesystem objects).
pub fn write_json(name: &str, value: &serde_json::Value) {
    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            if let Err(e) = f.write_all(
                serde_json::to_string_pretty(value)
                    .expect("serializable")
                    .as_bytes(),
            ) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                println!("[results written to {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot create {}: {e}", path.display()),
    }
}

/// Runs a Figures-4/5/6-style weak-scaling comparison: for each paper
/// model, `methods` (plus the syncSGD baseline) across the paper's worker
/// counts. `cap` limits worker counts for non-all-reducible methods on
/// BERT (the paper ran out of memory beyond 32 GPUs there, because
/// all-gather buffers grow linearly with workers). Prints one table per
/// model and returns the JSON rows.
pub fn scaling_figure(
    title: &str,
    methods: &[MethodConfig],
    bert_cap_for_gather: Option<usize>,
) -> serde_json::Value {
    use gcs_core::study::Study;
    let mut all_rows = Vec::new();
    for model in paper_models() {
        let batch = paper_batch(&model);
        let mut table_rows: Vec<Vec<String>> = Vec::new();
        let mut method_list = vec![MethodConfig::SyncSgd];
        method_list.extend_from_slice(methods);
        for method in &method_list {
            let gather_based = !method
                .build()
                .map(|c| c.properties().all_reducible)
                .unwrap_or(true);
            let counts: Vec<usize> = paper_worker_counts()
                .into_iter()
                .filter(|&p| {
                    !(model.name.starts_with("BERT") && gather_based)
                        || bert_cap_for_gather.is_none_or(|cap| p <= cap)
                })
                .collect();
            let rows = Study::new(model.clone(), batch)
                .methods(vec![method.clone()])
                .worker_counts(counts)
                .run();
            for r in &rows {
                table_rows.push(vec![
                    r.method.clone(),
                    r.workers.to_string(),
                    ms_pm(r.measured_s, r.std_s),
                ]);
                all_rows.push(serde_json::json!({
                    "model": &r.model,
                    "method": &r.method,
                    "workers": r.workers,
                    "batch": r.batch,
                    "measured_s": r.measured_s,
                    "std_s": r.std_s,
                    "predicted_s": r.predicted_s,
                }));
            }
        }
        print_table(
            &format!("{title} — {} (batch {batch}/GPU)", model.name),
            &["Method", "GPUs", "Iteration time (ms, mean±std)"],
            &table_rows,
        );
        if model.name.starts_with("BERT") {
            if let Some(cap) = bert_cap_for_gather {
                println!(
                    "Note: gather-based methods capped at {cap} GPUs for BERT — their memory\n\
                     requirement grows linearly with workers (paper ran out of GPU memory)."
                );
            }
        }
    }
    serde_json::Value::Array(all_rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_batches() {
        assert_eq!(paper_batch(&presets::resnet50()), 64);
        assert_eq!(paper_batch(&presets::bert_base()), 12);
    }

    #[test]
    fn method_names_are_human_readable() {
        assert_eq!(method_name(&MethodConfig::SyncSgd), "syncSGD");
        assert_eq!(
            method_name(&MethodConfig::PowerSgd { rank: 4 }),
            "PowerSGD (rank 4)"
        );
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ms(0.1234), "123.4");
        assert_eq!(ms_pm(0.1, 0.01), "100.0±10.0");
    }

    #[test]
    fn results_dir_is_workspace_level() {
        assert!(results_dir().ends_with("results"));
    }
}
