//! Extension (paper §7 future work): accuracy-aware comparison — rank
//! methods by wall-clock time to a target loss, combining real convergence
//! trajectories with the performance model. Exposes the cases where a
//! method that wins per-iteration loses end-to-end.

use gcs_bench::print_table;
use gcs_compress::registry::MethodConfig;
use gcs_core::accuracy::rank_methods_by_time_to_loss;
use gcs_ddp::sim::SimConfig;
use gcs_models::presets;
use gcs_train::harness::TrainConfig;
use gcs_train::task::{LinearRegression, Task};

fn main() {
    let task = LinearRegression::new(16, 256, 0.01, 7);
    let train_cfg = TrainConfig::new().workers(4).steps(300).lr(0.05).seed(13);
    // The cluster the analysis is "about": BERT at 96 GPUs, where
    // compression wins per-iteration.
    let sim_cfg = SimConfig::new(presets::bert_base(), 96).batch_per_worker(12);
    let init = task.full_loss(&task.init_params(train_cfg.seed));
    // Tight target: reachable by faithful methods, out of reach for the
    // biased plain-SignSGD update.
    let target = init * 5e-4;

    let ranked = rank_methods_by_time_to_loss(
        &task,
        &[
            MethodConfig::SyncSgd,
            MethodConfig::Fp16,
            MethodConfig::PowerSgd { rank: 4 },
            MethodConfig::EfSignSgd,
            MethodConfig::SignSgd,
            MethodConfig::Qsgd { levels: 15 },
        ],
        &train_cfg,
        target,
        &sim_cfg,
    )
    .expect("analysis runs");

    let rows: Vec<Vec<String>> = ranked
        .iter()
        .map(|t| {
            vec![
                t.method.clone(),
                t.steps_to_target
                    .map_or("not reached".to_owned(), |s| s.to_string()),
                format!("{:.1}", t.per_step_s * 1e3),
                t.seconds_to_target
                    .map_or("—".to_owned(), |s| format!("{s:.1}")),
                format!("{:.5}", t.final_loss),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Time to target loss ({target:.4}) — optimization on a convex task, timing on BERT @ 96 GPUs"
        ),
        &["Method", "Steps to target", "ms/step", "Seconds to target", "Final loss"],
        &rows,
    );
    println!(
        "\nExpected shape: plain SignSGD never reaches the target (accuracy loss\n\
         beats its cheap iterations); EF variants and PowerSGD track syncSGD in\n\
         steps, so their per-iteration advantage survives end to end."
    );
    let json: Vec<serde_json::Value> = ranked
        .iter()
        .map(|t| {
            serde_json::json!({
                "method": t.method,
                "steps_to_target": t
                    .steps_to_target
                    .map_or(serde_json::Value::Null, serde_json::Value::from),
                "per_step_s": t.per_step_s,
                "seconds_to_target": t
                    .seconds_to_target
                    .map_or(serde_json::Value::Null, serde_json::Value::from),
                "final_loss": t.final_loss,
            })
        })
        .collect();
    gcs_bench::write_json("ext_time_to_accuracy", &serde_json::Value::Array(json));
}
