//! Figure 13: the encode-time vs compression-ratio tradeoff. A
//! hypothetical PowerSGD-rank-4 variant whose encode/decode runs k× faster
//! at the price of l·k× more communicated bytes.
//!
//! Expected shape: at datacenter bandwidth, *any* encode-time reduction
//! wins, even when it multiplies the wire bytes — encode time, not
//! compression ratio, is the binding constraint.

use gcs_bench::{ms, paper_batch, paper_models, print_table};
use gcs_cluster::cost::NetworkModel;
use gcs_compress::registry::MethodConfig;
use gcs_core::whatif::tradeoff_sweep;
use gcs_models::DeviceSpec;

fn main() {
    let ks = [1.0, 2.0, 3.0, 4.0];
    let ls = [1.0, 2.0, 3.0];
    let mut json = Vec::new();
    for model in paper_models() {
        let grid = tradeoff_sweep(
            &model,
            &DeviceSpec::v100(),
            &NetworkModel::datacenter_10gbps(),
            64,
            paper_batch(&model),
            &MethodConfig::PowerSgd { rank: 4 },
            &ks,
            &ls,
        );
        let rows: Vec<Vec<String>> = grid
            .iter()
            .map(|p| {
                vec![
                    format!("{:.0}", p.k),
                    format!("{:.0}", p.l),
                    ms(p.total_s),
                    format!("{:+.1}%", (p.total_s / p.baseline_s - 1.0) * 100.0),
                ]
            })
            .collect();
        print_table(
            &format!(
                "Figure 13: encode-time/compression tradeoff — {} (64 GPUs)",
                model.name
            ),
            &["k (encode ÷)", "l", "Iteration (ms)", "vs baseline"],
            &rows,
        );
        for p in &grid {
            json.push(serde_json::json!({
                "model": model.name, "k": p.k, "l": p.l,
                "total_s": p.total_s, "baseline_s": p.baseline_s,
            }));
        }
    }
    println!("\nExpected shape: every k > 1 row is faster than baseline, for every l.");
    gcs_bench::write_json("fig13", &serde_json::Value::Array(json));
}
