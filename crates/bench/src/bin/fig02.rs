//! Figure 2: overlap of gradient communication with computation — the
//! paper shows an Nsight trace of a single backward pass with bucket
//! all-reduces proceeding on a separate CUDA stream. This binary renders
//! the simulator's two-stream timeline for syncSGD (overlapped) and
//! PowerSGD (sequential), making the §3.1 contrast visible.

use gcs_bench::method_name;
use gcs_compress::registry::MethodConfig;
use gcs_ddp::sim::SimConfig;
use gcs_ddp::trace::{render_ascii, trace_iteration};
use gcs_models::presets;

fn main() {
    let model = presets::resnet50();
    let mut json = Vec::new();
    for method in [
        MethodConfig::SyncSgd,
        MethodConfig::Fp16,
        MethodConfig::PowerSgd { rank: 4 },
        MethodConfig::SignSgd,
    ] {
        let cfg = SimConfig::new(model.clone(), 16).method(method.clone());
        let trace = trace_iteration(&cfg);
        println!(
            "\n== Figure 2: iteration timeline — {} ({}, 16 GPUs, batch 64) ==",
            method_name(&method),
            model.name
        );
        print!("{}", render_ascii(&trace, 72));
        for e in &trace {
            json.push(serde_json::json!({
                "method": method_name(&method),
                "stream": format!("{:?}", e.stream),
                "label": e.label,
                "start_s": e.start_s,
                "end_s": e.end_s,
            }));
        }
    }
    println!(
        "\nExpected shape: syncSGD/FP16 communication (▒) runs concurrently with the\n\
         backward pass (█) and only the tail is exposed; compressed methods serialize\n\
         backward → encode → communicate, leaving the comm stream idle until the end."
    );
    gcs_bench::write_json("fig02", &serde_json::Value::Array(json));
}
