//! Figure 8: validating the analytic performance model against the
//! (simulated) testbed for syncSGD, PowerSGD and SignSGD.
//!
//! The paper reports median model-vs-measurement error of 1.8% (syncSGD),
//! 1.37% (PowerSGD) and 14.2% (SignSGD, blamed on incast). Here the
//! "measurement" is the discrete-event simulator with calibrated jitter;
//! the analytic model must track it closely.

use gcs_bench::{ms, ms_pm, paper_batch, paper_models, paper_worker_counts, print_table};
use gcs_compress::registry::MethodConfig;
use gcs_core::study::{Study, StudyRow};

fn main() {
    let methods = [
        ("syncSGD", MethodConfig::SyncSgd),
        ("PowerSGD r4", MethodConfig::PowerSgd { rank: 4 }),
        ("SignSGD", MethodConfig::SignSgd),
    ];
    let mut json = Vec::new();
    for (label, method) in &methods {
        let mut rows = Vec::new();
        let mut errors = Vec::new();
        for model in paper_models() {
            let counts: Vec<usize> = if model.name.starts_with("BERT") && *label == "SignSGD" {
                paper_worker_counts()
                    .into_iter()
                    .filter(|&p| p <= 32)
                    .collect()
            } else {
                paper_worker_counts()
            };
            let out: Vec<StudyRow> = Study::new(model.clone(), paper_batch(&model))
                .methods(vec![method.clone()])
                .worker_counts(counts)
                .run();
            for r in &out {
                errors.push(r.model_error());
                rows.push(vec![
                    r.model.clone(),
                    r.workers.to_string(),
                    ms_pm(r.measured_s, r.std_s),
                    ms(r.predicted_s),
                    format!("{:.1}%", r.model_error() * 100.0),
                ]);
                json.push(serde_json::json!({
                    "method": label,
                    "model": r.model,
                    "workers": r.workers,
                    "measured_s": r.measured_s,
                    "predicted_s": r.predicted_s,
                    "error": r.model_error(),
                }));
            }
        }
        print_table(
            &format!("Figure 8: performance model vs measured — {label}"),
            &["Model", "GPUs", "Measured (ms)", "Predicted (ms)", "Error"],
            &rows,
        );
        let median = gcs_tensor::stats::median(&errors);
        println!(
            "Median model error for {label}: {:.2}%  (paper: 1.8% sync / 1.37% PowerSGD / 14.2% SignSGD)",
            median * 100.0
        );
    }
    // The paper's SignSGD error (14.2 %) comes from incast on the real
    // testbed — an effect its model (and ours) deliberately omits. Turn
    // incast ON in the "measured" simulator only and watch the same
    // one-sided error appear.
    let mut incast_errors = Vec::new();
    for model in paper_models() {
        let counts: Vec<usize> = if model.name.starts_with("BERT") {
            paper_worker_counts()
                .into_iter()
                .filter(|&p| p <= 32)
                .collect()
        } else {
            paper_worker_counts()
        };
        for p in counts {
            let clean = gcs_ddp::sim::SimConfig::new(model.clone(), p)
                .batch_per_worker(gcs_bench::paper_batch(&model))
                .method(MethodConfig::SignSgd);
            let congested = clean
                .clone()
                .network(gcs_cluster::cost::NetworkModel::datacenter_10gbps().with_incast(0.22));
            let predicted = gcs_core::perf::predict_iteration(&clean).total_s;
            let measured = gcs_ddp::sim::simulate_iteration(&congested).total_s;
            incast_errors.push(((predicted - measured) / measured).abs());
        }
    }
    let median_incast = gcs_tensor::stats::median(&incast_errors);
    println!(
        "
With incast enabled in the 'testbed' (severity 0.22) but not in the model,
         SignSGD's median model error becomes {:.1}% — the same one-sided degradation
         the paper reports (14.2%) and attributes to incast (§4.3).",
        median_incast * 100.0
    );

    gcs_bench::write_json("fig08", &serde_json::Value::Array(json));
}
