//! Convergence validation (beyond the paper's timing-only scope): trains a
//! convex task and an MLP through the *real* compression protocol of every
//! method, with and without error feedback where applicable.
//!
//! The paper assumes compression preserves accuracy; this bench makes the
//! mechanics executable: error feedback rescues SignSGD/Top-K, PowerSGD
//! warm start matters, unbiased quantizers track syncSGD.

use gcs_bench::{method_name, print_table};
use gcs_compress::registry::MethodConfig;
use gcs_train::harness::{train_distributed, TrainConfig};
use gcs_train::task::{LinearRegression, MlpClassification};

fn main() {
    let cfg = TrainConfig::new()
        .workers(4)
        .steps(250)
        .lr(0.05)
        .batch(16)
        .seed(11);
    let task = LinearRegression::new(16, 256, 0.01, 7);
    let methods = [
        MethodConfig::SyncSgd,
        MethodConfig::Fp16,
        MethodConfig::PowerSgd { rank: 2 },
        MethodConfig::PowerSgd { rank: 4 },
        MethodConfig::EfSignSgd,
        MethodConfig::SignSgd,
        MethodConfig::Qsgd { levels: 15 },
        MethodConfig::TernGrad,
        MethodConfig::RandomK { ratio: 0.25 },
        MethodConfig::OneBit,
        MethodConfig::Dgc { ratio: 0.1 },
        MethodConfig::Atomo { rank: 2 },
        MethodConfig::Sketch { block: 2 },
        MethodConfig::TopK { ratio: 0.25 },
        MethodConfig::Variance { kappa: 1.0 },
        MethodConfig::Natural,
    ];
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for method in &methods {
        let rep = train_distributed(&task, method, &cfg).expect("training runs");
        rows.push(vec![
            method_name(method),
            format!("{:.4}", rep.initial_loss()),
            format!("{:.4}", rep.final_loss()),
            format!("{:.1}x", rep.initial_loss() / rep.final_loss().max(1e-9)),
        ]);
        json.push(serde_json::json!({
            "task": rep.task, "method": rep.method,
            "initial_loss": rep.initial_loss(), "final_loss": rep.final_loss(),
            "losses": rep.losses,
        }));
    }
    print_table(
        "Convergence: linear regression (16-dim, 4 workers, 250 steps, real compression)",
        &["Method", "Initial loss", "Final loss", "Reduction"],
        &rows,
    );
    println!(
        "\nExpected shape: all-reducible + EF methods track syncSGD; plain SignSGD\n\
         (unit scale, no EF) converges noticeably worse — 'error feedback fixes SignSGD'."
    );

    // MLP classification with the strongest methods.
    let mlp = MlpClassification::new(8, 24, 4, 512, 3);
    let mcfg = TrainConfig::new()
        .workers(2)
        .steps(200)
        .lr(0.5)
        .batch(32)
        .seed(5);
    let mut mlp_rows = Vec::new();
    for method in [
        MethodConfig::SyncSgd,
        MethodConfig::PowerSgd { rank: 4 },
        MethodConfig::EfSignSgd,
        MethodConfig::Qsgd { levels: 15 },
    ] {
        let rep = train_distributed(&mlp, &method, &mcfg).expect("training runs");
        mlp_rows.push(vec![
            method_name(&method),
            format!("{:.3}", rep.initial_loss()),
            format!("{:.3}", rep.final_loss()),
        ]);
        json.push(serde_json::json!({
            "task": rep.task, "method": rep.method,
            "initial_loss": rep.initial_loss(), "final_loss": rep.final_loss(),
        }));
    }
    print_table(
        "Convergence: MLP classification (4 classes, 2 workers, 200 steps)",
        &["Method", "Initial CE loss", "Final CE loss"],
        &mlp_rows,
    );
    gcs_bench::write_json("convergence", &serde_json::Value::Array(json));
}
