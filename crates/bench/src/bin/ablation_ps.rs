//! Ablation: parameter server vs all-reduce (§2.2's historical shift) —
//! and why compression was born in the PS era: with a single server link
//! carrying p gradients, 32x compression was the only way to scale, while
//! the ring made most of that compression unnecessary.

use gcs_bench::{ms, print_table};
use gcs_cluster::cost::NetworkModel;
use gcs_models::presets;

fn main() {
    let net = NetworkModel::datacenter_10gbps();
    let model = presets::resnet50();
    let bytes = model.size_bytes();
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for p in [2usize, 4, 8, 16, 32, 64] {
        let ps1 = net.parameter_server(bytes, p, 1).expect("shards > 0");
        let ps8 = net.parameter_server(bytes, p, 8).expect("shards > 0");
        let ps_sign = net.parameter_server(bytes / 32, p, 1).expect("shards > 0");
        let ring = net.ring_all_reduce(bytes, p);
        rows.push(vec![p.to_string(), ms(ps1), ms(ps8), ms(ps_sign), ms(ring)]);
        json.push(serde_json::json!({
            "workers": p, "ps_1shard_s": ps1, "ps_8shard_s": ps8,
            "ps_signsgd_s": ps_sign, "ring_s": ring,
        }));
    }
    print_table(
        &format!(
            "Ablation: PS vs all-reduce — {} gradients, 10 Gbps",
            model.name
        ),
        &[
            "Workers",
            "PS 1 shard (ms)",
            "PS 8 shards (ms)",
            "PS + 32x compression (ms)",
            "Ring all-reduce (ms)",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: the single-shard PS explodes linearly with workers;\n\
         32x compression rescues it (this is the world SignSGD/1-bit SGD were\n\
         designed for) — but the plain ring beats even compressed PS at scale,\n\
         which is exactly why the community's migration to all-reduce eroded\n\
         compression's utility."
    );
    gcs_bench::write_json("ablation_ps", &serde_json::Value::Array(json));
}
