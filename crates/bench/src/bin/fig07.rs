//! Figure 7: effect of per-worker batch size on PowerSGD's benefit
//! (ResNet-101, rank 4), plus the §3.3 BERT data point.
//!
//! Expected shape: ~40% speedup at batch 16 shrinking to a slowdown at
//! batch 64 — larger batches give syncSGD more backward time to hide its
//! communication behind.

use gcs_bench::{ms_pm, print_table};
use gcs_compress::registry::MethodConfig;
use gcs_core::study::Study;
use gcs_models::presets;

fn main() {
    let model = presets::resnet101();
    let workers = 64;
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for batch in [16usize, 32, 64] {
        let out = Study::new(model.clone(), batch)
            .methods(vec![
                MethodConfig::SyncSgd,
                MethodConfig::PowerSgd { rank: 4 },
            ])
            .worker_counts(vec![workers])
            .run();
        let speedup = out[0].measured_s / out[1].measured_s;
        rows.push(vec![
            batch.to_string(),
            ms_pm(out[0].measured_s, out[0].std_s),
            ms_pm(out[1].measured_s, out[1].std_s),
            format!("{:+.1}%", (speedup - 1.0) * 100.0),
        ]);
        json.push(serde_json::json!({
            "model": model.name,
            "batch": batch,
            "sync_s": out[0].measured_s,
            "powersgd4_s": out[1].measured_s,
            "speedup": speedup,
        }));
    }
    print_table(
        &format!(
            "Figure 7: batch-size sweep — {} @ {workers} GPUs, PowerSGD rank 4",
            model.name
        ),
        &[
            "Batch/GPU",
            "syncSGD (ms)",
            "PowerSGD r4 (ms)",
            "PowerSGD speedup",
        ],
        &rows,
    );

    // §3.3 text: BERT at 64 machines, batch 10 vs 12.
    let bert = presets::bert_base();
    let mut bert_rows = Vec::new();
    for batch in [10usize, 12] {
        let out = Study::new(bert.clone(), batch)
            .methods(vec![
                MethodConfig::SyncSgd,
                MethodConfig::PowerSgd { rank: 4 },
            ])
            .worker_counts(vec![64])
            .run();
        let speedup = out[0].measured_s / out[1].measured_s;
        bert_rows.push(vec![
            batch.to_string(),
            ms_pm(out[0].measured_s, out[0].std_s),
            ms_pm(out[1].measured_s, out[1].std_s),
            format!("{:+.1}%", (speedup - 1.0) * 100.0),
        ]);
        json.push(serde_json::json!({
            "model": bert.name,
            "batch": batch,
            "sync_s": out[0].measured_s,
            "powersgd4_s": out[1].measured_s,
            "speedup": speedup,
        }));
    }
    print_table(
        "Figure 7 (companion, §3.3): BERT @ 64 GPUs",
        &[
            "Batch/GPU",
            "syncSGD (ms)",
            "PowerSGD r4 (ms)",
            "PowerSGD speedup",
        ],
        &bert_rows,
    );
    println!("\nExpected shape: speedup shrinks monotonically as the batch grows.");
    gcs_bench::write_json("fig07", &serde_json::Value::Array(json));
}
