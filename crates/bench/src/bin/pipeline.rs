//! Pipelined-exchange benchmark: sequential vs. pipelined bucket exchange
//! over an emulated α–β network, writing `BENCH_pipeline.json` at the repo
//! root.
//!
//! Both engines run the identical compressed exchange (same bucket plan,
//! same matricized bucket shapes, same plain-ring collectives); the only
//! difference is the schedule. The sequential engine encodes a bucket,
//! blocks inside its collective, absorbs, then moves on; the pipelined
//! engine ships each bucket's collective to a dedicated comm thread so it
//! overlaps the next bucket's encode. The network is emulated
//! ([`NetEmu`]) — frames are paced by latency + bytes/bandwidth while the
//! receiver sleeps — so the overlap is a genuine wall-clock win even on a
//! single core: encode CPU fills the windows where the sequential engine
//! would sleep in a collective.
//!
//! The emulated link is deliberately slow (0.2 Gbit/s, 25 µs) relative to
//! the paper's 10 Gbit/s: a lone CPU core encodes roughly three orders of
//! magnitude slower than a V100, so the network is scaled down by a
//! similar factor to keep the comm/compute ratio representative.
//!
//! Run with `cargo run -p gcs-bench --bin pipeline --release`. Set
//! `GCS_BENCH_SMOKE=1` for a seconds-long CI smoke run (tiny model, one
//! iteration — timings meaningless, only the plumbing is exercised).

use gcs_bench::timing::black_box;
use gcs_cluster::{NetEmu, SimCluster};
use gcs_compress::registry::MethodConfig;
use gcs_ddp::exec::{exchange_gradients_with_plan, BucketPlan};
use gcs_ddp::{PipelineConfig, PipelinedEngine};
use gcs_tensor::Tensor;
use serde_json::{json, Value};

struct BenchParams {
    worlds: Vec<usize>,
    layer_shapes: Vec<Vec<usize>>,
    /// Paired sequential-vs-pipelined measurements per configuration.
    trials: usize,
    /// Timed exchanges per measurement (one untimed warmup precedes them).
    inner: usize,
}

fn params(smoke: bool) -> BenchParams {
    if smoke {
        BenchParams {
            worlds: vec![2],
            layer_shapes: vec![vec![32, 32, 3, 3], vec![64, 64], vec![100]],
            trials: 1,
            inner: 1,
        }
    } else {
        BenchParams {
            // A ~4.2M-parameter conv-style stack: enough buckets for the
            // pipeline to fill, small enough to bench in seconds.
            worlds: vec![4, 8],
            layer_shapes: vec![
                vec![64, 64, 3, 3],
                vec![64],
                vec![128, 128, 3, 3],
                vec![128],
                vec![256, 256, 3, 3],
                vec![256],
                vec![512, 512, 3, 3],
                vec![512],
                vec![512, 1024],
                vec![1000, 512],
                vec![1000],
            ],
            trials: 5,
            inner: 2,
        }
    }
}

/// Benchmarked methods, each with a bucket size and an emulated link
/// speed.
///
/// The bucket cap is a real DDP tuning knob (PyTorch's comm hooks pick
/// bucket caps per algorithm): Top-K and SignSGD ship large payloads whose
/// emulated transfers are best amortized over a few big buckets, while on
/// one core many small transfers tax the pipelined engine with per-step
/// scheduling latency.
///
/// The link speed is chosen *per method* so that emulated communication
/// time is comparable to the single-core encode time — the regime where
/// overlap matters and where the paper's analysis lives. The speeds are
/// not comparable across methods: PowerSGD compresses ~100× harder than
/// Top-K 5%, so it only reaches the balanced regime on a link ~100× 
/// slower. (A lone CPU core also encodes orders of magnitude slower than
/// the paper's V100s, which is why all the links are far below 10 Gbit/s.)
fn methods(smoke: bool) -> Vec<(MethodConfig, usize, NetEmu)> {
    if smoke {
        let link = NetEmu::from_gbps(5.0, 2.0);
        return vec![
            (MethodConfig::PowerSgd { rank: 16 }, 16 * 1024, link),
            (MethodConfig::TopK { ratio: 0.05 }, 16 * 1024, link),
            (MethodConfig::SignSgd, 16 * 1024, link),
        ];
    }
    vec![
        (
            MethodConfig::PowerSgd { rank: 16 },
            4 * 1024 * 1024,
            NetEmu::from_gbps(25.0, 0.006),
        ),
        (
            MethodConfig::TopK { ratio: 0.05 },
            4 * 1024 * 1024,
            NetEmu::from_gbps(25.0, 0.2),
        ),
        (
            MethodConfig::SignSgd,
            4 * 1024 * 1024,
            NetEmu::from_gbps(25.0, 0.2),
        ),
    ]
}

fn make_grads(rank: usize, shapes: &[Vec<usize>]) -> Vec<Tensor> {
    shapes
        .iter()
        .enumerate()
        .map(|(l, s)| Tensor::randn(s.clone(), 7 + (rank * 257 + l) as u64))
        .collect()
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        0.5 * (xs[n / 2 - 1] + xs[n / 2])
    }
}

/// Times one engine at world size `p`: one untimed warmup exchange, then
/// `inner` timed exchanges. Every worker loops full exchanges over
/// persistent gradients; rank 0's per-exchange time is reported
/// (collectives synchronize all ranks to the same cadence).
fn time_exchange(
    method: &MethodConfig,
    bucket_bytes: usize,
    netem: NetEmu,
    p: usize,
    pipelined: bool,
    bp: &BenchParams,
) -> f64 {
    let shapes = &bp.layer_shapes;
    let mut outs = SimCluster::run_with_netem(p, netem, move |w| {
        let grads = make_grads(w.rank(), shapes);
        if pipelined {
            let c = method.build().expect("build compressor");
            let mut eng = PipelinedEngine::new(
                w,
                c,
                PipelineConfig {
                    bucket_bytes,
                    depth: 2,
                    chunk_elems: None,
                    matricize: true,
                },
            ).unwrap();
            black_box(eng.exchange(&grads).expect("pipelined exchange"));
            let t0 = std::time::Instant::now();
            for _ in 0..bp.inner {
                black_box(eng.exchange(&grads).expect("pipelined exchange"));
            }
            let t = t0.elapsed().as_secs_f64() / bp.inner as f64;
            let _ = eng.into_parts();
            t
        } else {
            let mut c = method.build().expect("build compressor");
            let mut plan = BucketPlan::matricized(&grads, bucket_bytes);
            let mut run = || {
                black_box(
                    exchange_gradients_with_plan(&w, &mut c, &grads, &mut plan)
                        .expect("sequential exchange"),
                );
            };
            run();
            let t0 = std::time::Instant::now();
            for _ in 0..bp.inner {
                run();
            }
            t0.elapsed().as_secs_f64() / bp.inner as f64
        }
    });
    outs.swap_remove(0)
}

/// One configuration: `trials` paired runs (sequential immediately
/// followed by pipelined, so machine-level interference hits both), summed
/// up as the median per-exchange time of each engine and the median of the
/// per-trial ratios. The median-of-ratios is the headline number: pairing
/// plus the median makes it robust against the scheduler noise that
/// dominates absolute timings when 2p threads share one core.
fn compare(
    method: &MethodConfig,
    bucket_bytes: usize,
    netem: NetEmu,
    p: usize,
    bp: &BenchParams,
) -> (f64, f64, f64) {
    let mut seq_s = Vec::with_capacity(bp.trials);
    let mut pipe_s = Vec::with_capacity(bp.trials);
    let mut ratios = Vec::with_capacity(bp.trials);
    for _ in 0..bp.trials {
        let s = time_exchange(method, bucket_bytes, netem, p, false, bp);
        let q = time_exchange(method, bucket_bytes, netem, p, true, bp);
        seq_s.push(s);
        pipe_s.push(q);
        ratios.push(s / q);
    }
    (
        median(&mut seq_s),
        median(&mut pipe_s),
        median(&mut ratios),
    )
}

fn main() {
    let smoke = std::env::var_os("GCS_BENCH_SMOKE").is_some();
    let bp = params(smoke);
    let total_params: usize = bp
        .layer_shapes
        .iter()
        .map(|s| s.iter().product::<usize>())
        .sum();
    println!(
        "pipelined exchange benchmark{}: {} params",
        if smoke { " (smoke)" } else { "" },
        total_params,
    );

    let mut rows = Vec::new();
    for (method, bucket_bytes, netem) in methods(smoke) {
        let name = gcs_bench::method_name(&method);
        for &p in &bp.worlds {
            let (seq_s, pipe_s, sp) = compare(&method, bucket_bytes, netem, p, &bp);
            println!(
                "{name:<12} p={p:<2}  bucket {:>4} KiB  link {:>6.2} MB/s  sequential {:.3}ms  pipelined {:.3}ms  speedup {sp:.2}x",
                bucket_bytes / 1024,
                netem.bytes_per_sec / 1e6,
                seq_s * 1e3,
                pipe_s * 1e3
            );
            rows.push(json!({
                "method": name,
                "p": p,
                "bucket_bytes": bucket_bytes,
                "link_mbytes_per_sec": netem.bytes_per_sec / 1e6,
                "sequential_ms": seq_s * 1e3,
                "pipelined_ms": pipe_s * 1e3,
                "speedup": sp,
            }));
        }
    }

    let choice = gcs_tensor::autotune::choice();
    let metadata = json!({
        "active_kernel_table": gcs_tensor::kernels::active().name,
        "kernel_threads": gcs_tensor::pool::global().width(),
        "gemm_tile": choice.gemm_tile.name(),
        "wire_chunk_elems": choice.wire_chunk_elems,
        "autotune_provenance": choice.provenance,
        "smoke": smoke,
    });
    let report: Value = json!({
        "bench": "pipeline",
        "smoke": smoke,
        "params": total_params,
        "metadata": metadata,
        "rows": rows,
    });
    // `GCS_BENCH_OUT` redirects the report (written even in smoke mode, for
    // the structural regression gate in CI).
    let default_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
    match (std::env::var("GCS_BENCH_OUT").ok(), smoke) {
        (Some(path), _) => {
            let text = serde_json::to_string_pretty(&report).expect("serialize report");
            std::fs::write(&path, text).expect("write GCS_BENCH_OUT report");
            println!("wrote {path}");
        }
        (None, true) => {
            // Smoke timings are meaningless; don't clobber the tracked file.
            println!("smoke mode: skipping write of {default_path}");
        }
        (None, false) => {
            let text = serde_json::to_string_pretty(&report).expect("serialize report");
            std::fs::write(default_path, text).expect("write BENCH_pipeline.json");
            println!("wrote {default_path}");
        }
    }
}
