//! Pipelined-exchange benchmark: sequential vs. pipelined vs. streaming
//! bucket exchange over an emulated α–β network, writing
//! `BENCH_pipeline.json` at the repo root.
//!
//! All engines run the identical compressed exchange (same bucket plan,
//! same matricized bucket shapes, same plain-ring collectives); the only
//! difference is the schedule. The sequential engine encodes a bucket,
//! blocks inside its collective, absorbs, then moves on; the pipelined
//! engine ships each bucket's collective to a dedicated comm thread so it
//! overlaps the next bucket's encode; the streaming engine additionally
//! splits every bucket into wire chunks so encode(chunk i+1) overlaps
//! send(chunk i) and decode overlaps recv *inside* each bucket. The
//! network is emulated ([`NetEmu`]) — frames are paced by latency +
//! bytes/bandwidth while the receiver sleeps — so the overlap is a genuine
//! wall-clock win even on a single core: encode CPU fills the windows
//! where the sequential engine would sleep in a collective.
//!
//! The emulated link is deliberately slow (0.2 Gbit/s, 25 µs) relative to
//! the paper's 10 Gbit/s: a lone CPU core encodes roughly three orders of
//! magnitude slower than a V100, so the network is scaled down by a
//! similar factor to keep the comm/compute ratio representative.
//!
//! Besides the headline per-engine medians, every configuration also
//! emits a per-engine phase breakdown row (`encode_ms` / `comm_ms` /
//! `decode_ms` / `exposed_wait_ms`) so a weak speedup is diagnosable:
//! `exposed_wait_ms` is the caller-blocked wait the schedule failed to
//! hide, and `comm_ms` for the threaded engines is wire-busy time measured
//! on the comm thread itself.
//!
//! Run with `cargo run -p gcs-bench --bin pipeline --release`. Set
//! `GCS_BENCH_SMOKE=1` for a seconds-long CI smoke run (tiny model, one
//! iteration — timings meaningless, only the plumbing is exercised).

use gcs_bench::timing::black_box;
use gcs_cluster::{NetEmu, SimCluster};
use gcs_compress::registry::MethodConfig;
use gcs_ddp::exec::{exchange_gradients_with_plan_timed, BucketPlan, BucketTiming};
use gcs_ddp::{PipelineConfig, PipelinedEngine};
use gcs_tensor::Tensor;
use serde_json::{json, Value};

#[derive(Clone, Copy, PartialEq, Eq)]
enum Engine {
    Sequential,
    Pipelined,
    Streaming,
}

impl Engine {
    fn name(self) -> &'static str {
        match self {
            Engine::Sequential => "sequential",
            Engine::Pipelined => "pipelined",
            Engine::Streaming => "streaming",
        }
    }
}

struct BenchParams {
    worlds: Vec<usize>,
    layer_shapes: Vec<Vec<usize>>,
    /// Paired engine measurements per configuration.
    trials: usize,
    /// Timed exchanges per measurement (one untimed warmup precedes them).
    inner: usize,
    /// In-flight chunk window for the streaming engine.
    stream_depth: usize,
}

fn params(smoke: bool) -> BenchParams {
    if smoke {
        BenchParams {
            worlds: vec![2],
            layer_shapes: vec![vec![32, 32, 3, 3], vec![64, 64], vec![100]],
            trials: 1,
            inner: 1,
            stream_depth: 4,
        }
    } else {
        BenchParams {
            // A ~4.2M-parameter conv-style stack: enough buckets for the
            // pipeline to fill, small enough to bench in seconds.
            worlds: vec![4, 8],
            layer_shapes: vec![
                vec![64, 64, 3, 3],
                vec![64],
                vec![128, 128, 3, 3],
                vec![128],
                vec![256, 256, 3, 3],
                vec![256],
                vec![512, 512, 3, 3],
                vec![512],
                vec![512, 1024],
                vec![1000, 512],
                vec![1000],
            ],
            trials: 5,
            inner: 2,
            stream_depth: 8,
        }
    }
}

/// Benchmarked methods, each with a bucket size, an emulated link speed,
/// and a streaming wire-chunk size (elements).
///
/// The bucket cap is a real DDP tuning knob (PyTorch's comm hooks pick
/// bucket caps per algorithm): Top-K and SignSGD ship large payloads whose
/// emulated transfers are best amortized over a few big buckets, while on
/// one core many small transfers tax the pipelined engine with per-step
/// scheduling latency.
///
/// The link speed is chosen *per method* so that emulated communication
/// time is comparable to the single-core encode time — the regime where
/// overlap matters and where the paper's analysis lives. The speeds are
/// not comparable across methods: PowerSGD compresses ~100× harder than
/// Top-K 5%, so it only reaches the balanced regime on a link ~100×
/// slower. (A lone CPU core also encodes orders of magnitude slower than
/// the paper's V100s, which is why all the links are far below 10 Gbit/s.)
///
/// The streaming chunk size is a per-method knob for the same reason the
/// link is: the overlap granularity worth paying for depends on how the
/// scheme's wire image decomposes. PowerSGD's 16K-element P/Q factors
/// split into two ring segments each (genuine intra-bucket streaming of
/// the GEMM panels), while the gather-based methods keep bucket-granular
/// chunks — on a single benchmark core, finer gather chunks cost more in
/// comm-thread scheduling than their decode overlap recovers (the scan
/// that picked these values is reproducible by sweeping the last tuple
/// field).
fn methods(smoke: bool) -> Vec<(MethodConfig, usize, NetEmu, usize)> {
    if smoke {
        let link = NetEmu::from_gbps(5.0, 2.0);
        return vec![
            (MethodConfig::PowerSgd { rank: 16 }, 16 * 1024, link, 1024),
            (MethodConfig::TopK { ratio: 0.05 }, 16 * 1024, link, 1024),
            (MethodConfig::SignSgd, 16 * 1024, link, 1024),
        ];
    }
    vec![
        (
            MethodConfig::PowerSgd { rank: 16 },
            4 * 1024 * 1024,
            NetEmu::from_gbps(25.0, 0.006),
            8 * 1024,
        ),
        (
            MethodConfig::TopK { ratio: 0.05 },
            4 * 1024 * 1024,
            NetEmu::from_gbps(25.0, 0.2),
            128 * 1024,
        ),
        (
            MethodConfig::SignSgd,
            4 * 1024 * 1024,
            NetEmu::from_gbps(25.0, 0.2),
            128 * 1024,
        ),
    ]
}

fn make_grads(rank: usize, shapes: &[Vec<usize>]) -> Vec<Tensor> {
    shapes
        .iter()
        .enumerate()
        .map(|(l, s)| Tensor::randn(s.clone(), 7 + (rank * 257 + l) as u64))
        .collect()
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        0.5 * (xs[n / 2 - 1] + xs[n / 2])
    }
}

/// Per-exchange phase breakdown in milliseconds:
/// `[encode, comm, decode, exposed_wait]`.
type Breakdown = [f64; 4];

fn sum_timings(timings: &[BucketTiming], comm_ms: f64) -> Breakdown {
    let encode: f64 = timings.iter().map(|t| t.encode_s).sum();
    let decode: f64 = timings.iter().map(|t| t.decode_s).sum();
    let exposed: f64 = timings.iter().map(|t| t.exposed_wait_s).sum();
    [encode * 1e3, comm_ms, decode * 1e3, exposed * 1e3]
}

/// Times one engine at world size `p`: one untimed warmup exchange, then
/// `inner` timed exchanges. Every worker loops full exchanges over
/// persistent gradients; rank 0's per-exchange time and breakdown are
/// reported (collectives synchronize all ranks to the same cadence).
///
/// `comm_ms` in the breakdown is wire-busy time: for the threaded engines
/// it is the comm-thread busy counter averaged over the timed exchanges;
/// for the sequential engine it is the caller's in-collective time (the
/// two coincide there — the caller *is* the comm thread).
fn time_exchange(
    method: &MethodConfig,
    bucket_bytes: usize,
    netem: NetEmu,
    chunk_elems: usize,
    p: usize,
    engine: Engine,
    bp: &BenchParams,
) -> (f64, Breakdown) {
    let shapes = &bp.layer_shapes;
    let mut outs = SimCluster::run_with_netem(p, netem, move |w| {
        let grads = make_grads(w.rank(), shapes);
        if engine == Engine::Sequential {
            let mut c = method.build().expect("build compressor");
            let mut plan = BucketPlan::matricized(&grads, bucket_bytes);
            let mut run = || {
                let (out, timings) =
                    exchange_gradients_with_plan_timed(&w, &mut c, &grads, &mut plan)
                        .expect("sequential exchange");
                black_box(out);
                timings
            };
            run();
            let t0 = std::time::Instant::now();
            let mut timings = Vec::new();
            for _ in 0..bp.inner {
                timings = run();
            }
            let t = t0.elapsed().as_secs_f64() / bp.inner as f64;
            let comm_ms: f64 = timings.iter().map(|t| t.comm_s).sum::<f64>() * 1e3;
            (t, sum_timings(&timings, comm_ms))
        } else {
            let c = method.build().expect("build compressor");
            let mut eng = PipelinedEngine::new(
                w,
                c,
                PipelineConfig {
                    bucket_bytes,
                    depth: if engine == Engine::Streaming {
                        bp.stream_depth
                    } else {
                        2
                    },
                    chunk_elems: None,
                    stream_chunk_elems: if engine == Engine::Streaming {
                        Some(chunk_elems)
                    } else {
                        None
                    },
                    matricize: true,
                },
            )
            .unwrap();
            black_box(eng.exchange(&grads).expect("pipelined exchange"));
            let busy0 = eng.comm_busy_seconds();
            let t0 = std::time::Instant::now();
            for _ in 0..bp.inner {
                black_box(eng.exchange(&grads).expect("pipelined exchange"));
            }
            let t = t0.elapsed().as_secs_f64() / bp.inner as f64;
            let comm_ms = (eng.comm_busy_seconds() - busy0) / bp.inner as f64 * 1e3;
            let breakdown = sum_timings(eng.last_timings(), comm_ms);
            let _ = eng.into_parts();
            (t, breakdown)
        }
    });
    outs.swap_remove(0)
}

struct Comparison {
    seq_ms: f64,
    pipe_ms: f64,
    stream_ms: f64,
    /// Median of per-trial sequential/pipelined ratios.
    speedup: f64,
    /// Median of per-trial pipelined/streaming ratios.
    streaming_speedup: f64,
    breakdowns: [Breakdown; 3],
}

/// One configuration: `trials` paired runs (the three engines back to
/// back, so machine-level interference hits all of them), summed up as the
/// median per-exchange time of each engine and the median of the per-trial
/// ratios. The median-of-ratios is the headline number: pairing plus the
/// median makes it robust against the scheduler noise that dominates
/// absolute timings when 2p threads share one core.
fn compare(
    method: &MethodConfig,
    bucket_bytes: usize,
    netem: NetEmu,
    chunk_elems: usize,
    p: usize,
    bp: &BenchParams,
) -> Comparison {
    let engines = [Engine::Sequential, Engine::Pipelined, Engine::Streaming];
    let mut times: [Vec<f64>; 3] = Default::default();
    let mut ratios = Vec::with_capacity(bp.trials);
    let mut stream_ratios = Vec::with_capacity(bp.trials);
    let mut parts: [[Vec<f64>; 4]; 3] = Default::default();
    for _ in 0..bp.trials {
        let mut trial = [0.0f64; 3];
        for (e, engine) in engines.into_iter().enumerate() {
            let (t, breakdown) =
                time_exchange(method, bucket_bytes, netem, chunk_elems, p, engine, bp);
            trial[e] = t;
            times[e].push(t);
            for (k, ms) in breakdown.into_iter().enumerate() {
                parts[e][k].push(ms);
            }
        }
        ratios.push(trial[0] / trial[1]);
        stream_ratios.push(trial[1] / trial[2]);
    }
    let mut breakdowns = [[0.0f64; 4]; 3];
    for e in 0..3 {
        for k in 0..4 {
            breakdowns[e][k] = median(&mut parts[e][k]);
        }
    }
    Comparison {
        seq_ms: median(&mut times[0]) * 1e3,
        pipe_ms: median(&mut times[1]) * 1e3,
        stream_ms: median(&mut times[2]) * 1e3,
        speedup: median(&mut ratios),
        streaming_speedup: median(&mut stream_ratios),
        breakdowns,
    }
}

fn main() {
    let smoke = std::env::var_os("GCS_BENCH_SMOKE").is_some();
    let bp = params(smoke);
    let total_params: usize = bp
        .layer_shapes
        .iter()
        .map(|s| s.iter().product::<usize>())
        .sum();
    println!(
        "pipelined exchange benchmark{}: {} params",
        if smoke { " (smoke)" } else { "" },
        total_params,
    );

    let mut rows = Vec::new();
    let mut breakdown_rows = Vec::new();
    for (method, bucket_bytes, netem, chunk_elems) in methods(smoke) {
        let name = gcs_bench::method_name(&method);
        for &p in &bp.worlds {
            let c = compare(&method, bucket_bytes, netem, chunk_elems, p, &bp);
            println!(
                "{name:<12} p={p:<2}  bucket {:>4} KiB  link {:>6.2} MB/s  sequential {:.3}ms  pipelined {:.3}ms  streaming {:.3}ms  speedup {:.2}x  stream {:.2}x",
                bucket_bytes / 1024,
                netem.bytes_per_sec / 1e6,
                c.seq_ms,
                c.pipe_ms,
                c.stream_ms,
                c.speedup,
                c.streaming_speedup,
            );
            rows.push(json!({
                "method": name,
                "p": p,
                "bucket_bytes": bucket_bytes,
                "link_mbytes_per_sec": netem.bytes_per_sec / 1e6,
                "stream_chunk_elems": chunk_elems,
                "sequential_ms": c.seq_ms,
                "pipelined_ms": c.pipe_ms,
                "streaming_ms": c.stream_ms,
                "speedup": c.speedup,
                "streaming_speedup": c.streaming_speedup,
            }));
            for (e, engine) in [Engine::Sequential, Engine::Pipelined, Engine::Streaming]
                .into_iter()
                .enumerate()
            {
                let [encode_ms, comm_ms, decode_ms, exposed_wait_ms] = c.breakdowns[e];
                println!(
                    "    {:<10}  encode {encode_ms:.3}ms  comm {comm_ms:.3}ms  decode {decode_ms:.3}ms  exposed wait {exposed_wait_ms:.3}ms",
                    engine.name(),
                );
                breakdown_rows.push(json!({
                    "method": name,
                    "engine": engine.name(),
                    "p": p,
                    "bucket_bytes": bucket_bytes,
                    "encode_ms": encode_ms,
                    "comm_ms": comm_ms,
                    "decode_ms": decode_ms,
                    "exposed_wait_ms": exposed_wait_ms,
                }));
            }
        }
    }

    let choice = gcs_tensor::autotune::choice();
    let metadata = json!({
        "active_kernel_table": gcs_tensor::kernels::active().name,
        "kernel_threads": gcs_tensor::pool::global().width(),
        "gemm_tile": choice.gemm_tile.name(),
        "wire_chunk_elems": choice.wire_chunk_elems,
        "stream_depth": bp.stream_depth,
        "autotune_provenance": choice.provenance,
        "smoke": smoke,
    });
    let report: Value = json!({
        "bench": "pipeline",
        "smoke": smoke,
        "params": total_params,
        "metadata": metadata,
        "rows": rows,
        "breakdown": breakdown_rows,
    });
    // `GCS_BENCH_OUT` redirects the report (written even in smoke mode, for
    // the structural regression gate in CI).
    let default_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
    match (std::env::var("GCS_BENCH_OUT").ok(), smoke) {
        (Some(path), _) => {
            let text = serde_json::to_string_pretty(&report).expect("serialize report");
            std::fs::write(&path, text).expect("write GCS_BENCH_OUT report");
            println!("wrote {path}");
        }
        (None, true) => {
            // Smoke timings are meaningless; don't clobber the tracked file.
            println!("smoke mode: skipping write of {default_path}");
        }
        (None, false) => {
            let text = serde_json::to_string_pretty(&report).expect("serialize report");
            std::fs::write(default_path, text).expect("write BENCH_pipeline.json");
            println!("wrote {default_path}");
        }
    }
}
