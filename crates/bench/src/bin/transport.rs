//! Transport backend comparison: the identical sequential bucketed
//! exchange over the in-process [`SimCluster`] channels and over the
//! real loopback [`TcpCluster`] sockets, writing `BENCH_transport.json`
//! at the repo root.
//!
//! Every row carries a `transport` identity key (`sim` / `tcp`) so the
//! regression gate (`scripts/bench_compare.py`) never diffs a channel
//! row against a socket row: the two backends have categorically
//! different wall-clock profiles (memcpy vs syscalls + wire framing),
//! and only like-for-like pairs are meaningful.
//!
//! The exchanged results are asserted bit-identical across backends on
//! every iteration — this bench doubles as a continuous cross-backend
//! consistency probe, not just a stopwatch.
//!
//! Run with `cargo run -p gcs-bench --bin transport --release`. Set
//! `GCS_BENCH_SMOKE=1` for a seconds-long CI smoke run.

use gcs_cluster::{SimCluster, TcpCluster, WorkerHandle};
use gcs_compress::registry::MethodConfig;
use gcs_ddp::exec::exchange_gradients_bucketed;
use gcs_tensor::Tensor;
use serde_json::{json, Value};
use std::time::Instant;

struct BenchParams {
    worlds: Vec<usize>,
    layer_shapes: Vec<Vec<usize>>,
    iters: usize,
}

fn params(smoke: bool) -> BenchParams {
    if smoke {
        BenchParams {
            worlds: vec![2],
            layer_shapes: vec![vec![6, 10], vec![33]],
            iters: 1,
        }
    } else {
        BenchParams {
            worlds: vec![2, 4],
            layer_shapes: vec![vec![64, 64], vec![256], vec![32, 3, 3, 3]],
            iters: 5,
        }
    }
}

// Smoke keeps the full method set (the structure gate matches rows by
// coarse (method, transport) identity); only sizes and repeats shrink.
fn methods() -> Vec<MethodConfig> {
    vec![
        MethodConfig::SyncSgd,
        MethodConfig::Fp16,
        MethodConfig::TopK { ratio: 0.2 },
        MethodConfig::Qsgd { levels: 15 },
        MethodConfig::PowerSgd { rank: 2 },
    ]
}

fn make_grads(rank: usize, shapes: &[Vec<usize>]) -> Vec<Tensor> {
    shapes
        .iter()
        .enumerate()
        .map(|(l, s)| Tensor::randn(s.clone(), 42 + (rank * 131 + l) as u64))
        .collect()
}

fn exchange(w: &WorkerHandle, method: &MethodConfig, shapes: &[Vec<usize>]) -> Vec<Tensor> {
    let mut c = method.build().expect("method builds");
    let grads = make_grads(w.rank(), shapes);
    exchange_gradients_bucketed(w, &mut c, &grads, usize::MAX).expect("exchange")
}

fn bits(outs: &[Vec<Tensor>]) -> Vec<u32> {
    outs.iter()
        .flatten()
        .flat_map(|t| t.data().iter().map(|v| v.to_bits()))
        .collect()
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

fn main() {
    let smoke = std::env::var_os("GCS_BENCH_SMOKE").is_some();
    let bp = params(smoke);
    println!(
        "transport backend benchmark{}",
        if smoke { " (smoke)" } else { "" }
    );

    let mut rows = Vec::new();
    for method in methods() {
        let name = gcs_bench::method_name(&method);
        for &p in &bp.worlds {
            let mut sim_ms = Vec::new();
            let mut tcp_ms = Vec::new();
            for _ in 0..bp.iters {
                let t = Instant::now();
                let sim = SimCluster::run(p, |w| exchange(&w, &method, &bp.layer_shapes));
                sim_ms.push(t.elapsed().as_secs_f64() * 1e3);

                let t = Instant::now();
                let tcp = TcpCluster::run(p, |w| exchange(&w, &method, &bp.layer_shapes))
                    .expect("tcp mesh forms on loopback");
                tcp_ms.push(t.elapsed().as_secs_f64() * 1e3);

                assert_eq!(
                    bits(&sim),
                    bits(&tcp),
                    "{name} p={p}: tcp deviates from sim"
                );
            }
            let (sim_med, tcp_med) = (median(sim_ms), median(tcp_ms));
            println!(
                "{name:<12} p={p:<2}  sim {sim_med:>8.3}ms  tcp {tcp_med:>8.3}ms  (bit-identical)"
            );
            for (transport, exchange_ms) in [("sim", sim_med), ("tcp", tcp_med)] {
                rows.push(json!({
                    "method": name,
                    "transport": transport,
                    "p": p,
                    "exchange_ms": exchange_ms,
                }));
            }
        }
    }

    let metadata = json!({
        "active_kernel_table": gcs_tensor::kernels::active().name,
        "kernel_threads": gcs_tensor::pool::global().width(),
        "smoke": smoke,
    });
    let report: Value = json!({
        "bench": "transport",
        "smoke": smoke,
        "metadata": metadata,
        "rows": rows,
    });
    let default_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_transport.json");
    match (std::env::var("GCS_BENCH_OUT").ok(), smoke) {
        (Some(path), _) => {
            let text = serde_json::to_string_pretty(&report).expect("serialize report");
            std::fs::write(&path, text).expect("write GCS_BENCH_OUT report");
            println!("wrote {path}");
        }
        (None, true) => {
            println!("smoke mode: skipping write of {default_path}");
        }
        (None, false) => {
            let text = serde_json::to_string_pretty(&report).expect("serialize report");
            std::fs::write(default_path, text).expect("write BENCH_transport.json");
            println!("wrote {default_path}");
        }
    }
}
