//! Datapath micro-benchmark: times the allocation-free data plane against
//! the seed's naive implementations and writes `BENCH_datapath.json` at the
//! repo root.
//!
//! Four kernels are tracked:
//!
//! 1. Ring all-reduce on a 25 MiB gradient for p ∈ {4, 8, 16}, against a
//!    faithful reconstruction of the seed's clone-based ring (fresh wire
//!    buffer plus per-element f32↔byte conversion every step).
//! 2. Register-blocked GEMM against the seed's scalar i-k-j loop, on a
//!    PowerSGD-shaped skinny product and a square product.
//! 3. PowerSGD rank-4 round trip over ResNet-50-style layer shapes.
//! 4. Top-k 1% selection and sign pack/unpack on the same 25 MiB buffer.
//!
//! Run with `cargo run -p gcs-bench --bin datapath --release`.

use gcs_bench::timing::{bench, black_box, Timing};
use gcs_cluster::{Frame, SimCluster, WorkerHandle};
use gcs_compress::driver::round_trip;
use gcs_compress::powersgd::PowerSgd;
use gcs_tensor::bits::SignBits;
use gcs_tensor::matrix::{matmul, MatrixRef};
use gcs_tensor::select::top_k_abs_with;
use gcs_tensor::Tensor;
use serde_json::{json, Value};

/// 25 MiB of f32 gradient — the paper's ResNet-50 bucket scale.
const RING_ELEMS: usize = 25 * 1024 * 1024 / 4;
const RING_WORLDS: [usize; 3] = [4, 8, 16];
const RING_ITERS: usize = 7;
const GEMM_ITERS: usize = 10;

/// Best-of-N speedup: on a single shared core the mean is dominated by
/// scheduler noise, so ratios use the minimum observed time per variant.
fn speedup(seed: &Timing, fast: &Timing) -> f64 {
    seed.min_s / fast.min_s
}

// ---------------------------------------------------------------------------
// Seed references, reconstructed verbatim from the pre-refactor data plane.
// ---------------------------------------------------------------------------

/// The seed's chunk partition (identical to the current one).
fn chunk_range(len: usize, p: usize, i: usize) -> (usize, usize) {
    let base = len / p;
    let rem = len % p;
    let start = i * base + i.min(rem);
    let size = base + usize::from(i < rem);
    (start, start + size)
}

/// Seed serialization: a fresh `Vec` grown 4 bytes per element.
fn seed_f32s_to_bytes(xs: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(xs.len() * 4);
    for x in xs {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

/// Seed deserialization: collect into a fresh `Vec<f32>`, then copy again.
fn seed_bytes_to_f32s(bytes: &[u8]) -> Vec<f32> {
    bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
        .collect()
}

/// The seed's ring all-reduce: same schedule as the current
/// [`WorkerHandle::all_reduce_sum`], but every step allocates a fresh wire
/// buffer and an intermediate `Vec<f32>` before touching `buf`.
fn seed_all_reduce_sum(w: &WorkerHandle, buf: &mut [f32]) {
    let p = w.world();
    if p == 1 {
        return;
    }
    let rank = w.rank();
    let len = buf.len();
    let next = w.ring_next();
    let prev = w.ring_prev();
    for s in 0..p - 1 {
        let send_idx = (rank + p - s) % p;
        let recv_idx = (rank + 2 * p - s - 1) % p;
        let (ss, se) = chunk_range(len, p, send_idx);
        w.send(next, Frame::from_vec(seed_f32s_to_bytes(&buf[ss..se])))
            .expect("ring send");
        let incoming = seed_bytes_to_f32s(&w.recv(prev).expect("ring recv"));
        let (rs, re) = chunk_range(len, p, recv_idx);
        for (x, y) in buf[rs..re].iter_mut().zip(&incoming) {
            *x += y;
        }
    }
    for s in 0..p - 1 {
        let send_idx = (rank + 1 + p - s) % p;
        let recv_idx = (rank + p - s) % p;
        let (ss, se) = chunk_range(len, p, send_idx);
        w.send(next, Frame::from_vec(seed_f32s_to_bytes(&buf[ss..se])))
            .expect("ring send");
        let incoming = seed_bytes_to_f32s(&w.recv(prev).expect("ring recv"));
        let (rs, re) = chunk_range(len, p, recv_idx);
        buf[rs..re].copy_from_slice(&incoming);
    }
}

/// The seed's GEMM: scalar i-k-j streaming loop with a zero skip.
fn seed_matmul(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    out.fill(0.0);
    for i in 0..m {
        for l in 0..k {
            let aik = a[i * k + l];
            if aik == 0.0 {
                continue;
            }
            let brow = &b[l * n..(l + 1) * n];
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += aik * bv;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Benchmarks.
// ---------------------------------------------------------------------------

/// Times one ring variant at world size `p`: each worker loops the
/// collective over a persistent 25 MiB buffer; rank 0's timing is reported
/// (the ring synchronizes every rank to the same cadence).
fn time_ring(p: usize, use_seed: bool) -> Timing {
    let mut outs = SimCluster::run(p, move |w| {
        let mut buf: Vec<f32> = (0..RING_ELEMS)
            .map(|i| (i % 97) as f32 * 1e-3 + w.rank() as f32)
            .collect();
        bench(1, RING_ITERS, || {
            if use_seed {
                seed_all_reduce_sum(&w, &mut buf);
            } else {
                w.all_reduce_sum(&mut buf).expect("all_reduce_sum");
            }
            black_box(&buf);
        })
    });
    outs.swap_remove(0)
}

fn ring_section() -> Vec<Value> {
    let mut rows = Vec::new();
    for &p in &RING_WORLDS {
        let fast = time_ring(p, false);
        let seed = time_ring(p, true);
        let sp = speedup(&seed, &fast);
        println!(
            "ring all-reduce 25MiB p={p:<2}  fast {}  seed {}  speedup {sp:.2}x",
            fast.ms(),
            seed.ms()
        );
        rows.push(json!({
            "kernel": "ring_all_reduce",
            "p": p,
            "mbytes": (RING_ELEMS * 4) as f64 / (1024.0 * 1024.0),
            "fast_ms": fast.min_s * 1e3,
            "seed_ms": seed.min_s * 1e3,
            "speedup": sp,
        }));
    }
    rows
}

fn time_gemm(m: usize, k: usize, n: usize) -> (Timing, Timing, f64) {
    let a = Tensor::randn([m, k], 11).into_vec();
    let b = Tensor::randn([k, n], 13).into_vec();
    let mut out = vec![0.0f32; m * n];
    let fast = bench(2, GEMM_ITERS, || {
        let av = MatrixRef::new(&a, m, k).expect("a view");
        let bv = MatrixRef::new(&b, k, n).expect("b view");
        matmul(av, bv, &mut out).expect("matmul");
        black_box(&out);
    });
    let seed = bench(2, GEMM_ITERS, || {
        seed_matmul(&a, &b, &mut out, m, k, n);
        black_box(&out);
    });
    let sp = speedup(&seed, &fast);
    (fast, seed, sp)
}

fn gemm_section() -> Vec<Value> {
    // The two shapes PowerSGD actually runs (a conv layer viewed as
    // 512 x 4608 against a rank-4 factor) plus a square product where
    // register blocking is load-bound.
    let shapes = [(512usize, 4608usize, 64usize), (384, 384, 384)];
    let mut rows = Vec::new();
    for &(m, k, n) in &shapes {
        let (fast, seed, speedup) = time_gemm(m, k, n);
        println!(
            "matmul {m}x{k}x{n}  fast {}  seed {}  speedup {speedup:.2}x",
            fast.ms(),
            seed.ms()
        );
        rows.push(json!({
            "kernel": "matmul",
            "m": m, "k": k, "n": n,
            "fast_ms": fast.min_s * 1e3,
            "seed_ms": seed.min_s * 1e3,
            "speedup": speedup,
        }));
    }
    rows
}

fn powersgd_section() -> Value {
    // ResNet-50-style layer shapes (the encode_decode suite's conv set).
    let shapes: Vec<Vec<usize>> = vec![
        vec![64, 64, 3, 3],
        vec![128, 128, 3, 3],
        vec![256, 256, 3, 3],
        vec![512, 512, 3, 3],
        vec![512, 2048],
        vec![1000, 512],
    ];
    let grads: Vec<Tensor> = shapes
        .iter()
        .enumerate()
        .map(|(i, s)| Tensor::randn(s.clone(), 17 + i as u64))
        .collect();
    let params: usize = grads.iter().map(Tensor::numel).sum();
    let mut c = PowerSgd::new(4).expect("rank 4");
    let t = bench(1, GEMM_ITERS, || {
        for (layer, g) in grads.iter().enumerate() {
            black_box(round_trip(&mut c, layer, g).expect("powersgd round trip"));
        }
    });
    println!(
        "powersgd rank-4 round trip  {} layers / {params} params  {}",
        grads.len(),
        t.ms()
    );
    json!({
        "kernel": "powersgd_rank4",
        "layers": grads.len(),
        "params": params,
        "round_trip_ms": t.mean_s * 1e3,
    })
}

fn selection_section() -> (Value, Value) {
    let g = Tensor::randn([RING_ELEMS], 23);
    let k = RING_ELEMS / 100;
    let mut mags = Vec::new();
    let topk = bench(1, GEMM_ITERS, || {
        black_box(top_k_abs_with(g.data(), k, &mut mags));
    });
    println!("top-k 1% select  n={RING_ELEMS} k={k}  {}", topk.ms());

    let mut packed = SignBits::pack(g.data());
    let pack = bench(1, GEMM_ITERS, || {
        packed = SignBits::pack(g.data());
        black_box(&packed);
    });
    let unpack = bench(1, GEMM_ITERS, || {
        black_box(packed.unpack(1.0));
    });
    println!(
        "sign pack/unpack  n={RING_ELEMS}  pack {}  unpack {}",
        pack.ms(),
        unpack.ms()
    );
    (
        json!({
            "kernel": "topk_select",
            "n": RING_ELEMS,
            "k": k,
            "ratio": 0.01,
            "select_ms": topk.mean_s * 1e3,
        }),
        json!({
            "kernel": "sign_pack_unpack",
            "n": RING_ELEMS,
            "pack_ms": pack.mean_s * 1e3,
            "unpack_ms": unpack.mean_s * 1e3,
        }),
    )
}

fn main() {
    println!("datapath micro-benchmark (release builds only give meaningful numbers)");
    let ring = ring_section();
    let gemm = gemm_section();
    let psgd = powersgd_section();
    let (topk, signs) = selection_section();

    let report = json!({
        "bench": "datapath",
        "ring_all_reduce": ring,
        "matmul": gemm,
        "powersgd": psgd,
        "topk": topk,
        "signs": signs,
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_datapath.json");
    let text = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(path, text).expect("write BENCH_datapath.json");
    println!("wrote {path}");
}
