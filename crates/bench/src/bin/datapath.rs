//! Datapath micro-benchmark: times the allocation-free data plane against
//! the seed's naive implementations and writes `BENCH_datapath.json` at the
//! repo root.
//!
//! Five kernels are tracked:
//!
//! 1. Ring all-reduce on a 25 MiB gradient for p ∈ {4, 8, 16}, against a
//!    faithful reconstruction of the seed's clone-based ring (fresh wire
//!    buffer plus per-element f32↔byte conversion every step).
//! 2. All-reduce algorithms head-to-head on the same buffer: ring vs.
//!    Rabenseifner recursive halving-doubling (power-of-two worlds) vs.
//!    hierarchical two-level reduce.
//! 3. Register-blocked GEMM against the seed's scalar i-k-j loop, on a
//!    PowerSGD-shaped skinny product and a square product.
//! 4. PowerSGD rank-4 round trip over ResNet-50-style layer shapes.
//! 5. Top-k 1% selection and sign pack/unpack on the same 25 MiB buffer.
//! 6. Per-kernel SIMD vs. scalar rows: every primitive in the
//!    [`gcs_tensor::kernels`] dispatch table timed against both tables on
//!    the same buffers, plus the GEMM tile through both dispatch paths.
//!    The report's `metadata` object records the CPU model, detected
//!    feature string, and whether `GCS_FORCE_SCALAR` was set.
//!
//! Run with `cargo run -p gcs-bench --bin datapath --release`. Set
//! `GCS_BENCH_SMOKE=1` for a seconds-long CI smoke run (tiny sizes, one
//! iteration — timings meaningless, only the plumbing is exercised; the
//! tracked JSON is not rewritten).

use gcs_bench::timing::{bench, black_box, Timing};
use gcs_cluster::{Frame, SimCluster, WorkerHandle};
use gcs_compress::driver::round_trip;
use gcs_compress::powersgd::PowerSgd;
use gcs_tensor::bits::SignBits;
use gcs_tensor::kernels;
use gcs_tensor::matrix::{matmul, matmul_with_dispatch, MatrixRef};
use gcs_tensor::select::top_k_abs_with;
use gcs_tensor::Tensor;
use serde_json::{json, Value};

/// Benchmark sizes; `full` is the tracked configuration, smoke mode
/// shrinks everything to exercise the plumbing in seconds.
#[derive(Clone, Copy)]
struct Params {
    /// Gradient elements for the collective benches (full: 25 MiB of f32,
    /// the paper's ResNet-50 bucket scale).
    ring_elems: usize,
    ring_iters: usize,
    gemm_iters: usize,
}

impl Params {
    fn new(smoke: bool) -> Self {
        if smoke {
            Params {
                ring_elems: 64 * 1024,
                ring_iters: 1,
                gemm_iters: 1,
            }
        } else {
            Params {
                ring_elems: 25 * 1024 * 1024 / 4,
                ring_iters: 7,
                gemm_iters: 10,
            }
        }
    }
}

const RING_WORLDS: [usize; 3] = [4, 8, 16];
/// GPUs per node of the paper's p3.8xlarge testbed, used to group ranks
/// in the hierarchical all-reduce.
const GPUS_PER_NODE: usize = 4;

/// Best-of-N speedup: on a single shared core the mean is dominated by
/// scheduler noise, so ratios use the minimum observed time per variant.
fn speedup(seed: &Timing, fast: &Timing) -> f64 {
    seed.min_s / fast.min_s
}

// ---------------------------------------------------------------------------
// Seed references, reconstructed verbatim from the pre-refactor data plane.
// ---------------------------------------------------------------------------

/// The seed's chunk partition (identical to the current one).
fn chunk_range(len: usize, p: usize, i: usize) -> (usize, usize) {
    let base = len / p;
    let rem = len % p;
    let start = i * base + i.min(rem);
    let size = base + usize::from(i < rem);
    (start, start + size)
}

/// Seed serialization: a fresh `Vec` grown 4 bytes per element.
fn seed_f32s_to_bytes(xs: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(xs.len() * 4);
    for x in xs {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

/// Seed deserialization: collect into a fresh `Vec<f32>`, then copy again.
fn seed_bytes_to_f32s(bytes: &[u8]) -> Vec<f32> {
    bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
        .collect()
}

/// The seed's ring all-reduce: same schedule as the current
/// [`WorkerHandle::all_reduce_sum`], but every step allocates a fresh wire
/// buffer and an intermediate `Vec<f32>` before touching `buf`.
fn seed_all_reduce_sum(w: &WorkerHandle, buf: &mut [f32]) {
    let p = w.world();
    if p == 1 {
        return;
    }
    let rank = w.rank();
    let len = buf.len();
    let next = w.ring_next();
    let prev = w.ring_prev();
    for s in 0..p - 1 {
        let send_idx = (rank + p - s) % p;
        let recv_idx = (rank + 2 * p - s - 1) % p;
        let (ss, se) = chunk_range(len, p, send_idx);
        w.send(next, Frame::from_vec(seed_f32s_to_bytes(&buf[ss..se])))
            .expect("ring send");
        let incoming = seed_bytes_to_f32s(&w.recv(prev).expect("ring recv"));
        let (rs, re) = chunk_range(len, p, recv_idx);
        for (x, y) in buf[rs..re].iter_mut().zip(&incoming) {
            *x += y;
        }
    }
    for s in 0..p - 1 {
        let send_idx = (rank + 1 + p - s) % p;
        let recv_idx = (rank + p - s) % p;
        let (ss, se) = chunk_range(len, p, send_idx);
        w.send(next, Frame::from_vec(seed_f32s_to_bytes(&buf[ss..se])))
            .expect("ring send");
        let incoming = seed_bytes_to_f32s(&w.recv(prev).expect("ring recv"));
        let (rs, re) = chunk_range(len, p, recv_idx);
        buf[rs..re].copy_from_slice(&incoming);
    }
}

/// The seed's GEMM: scalar i-k-j streaming loop with a zero skip.
fn seed_matmul(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    out.fill(0.0);
    for i in 0..m {
        for l in 0..k {
            let aik = a[i * k + l];
            if aik == 0.0 {
                continue;
            }
            let brow = &b[l * n..(l + 1) * n];
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += aik * bv;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Benchmarks.
// ---------------------------------------------------------------------------

/// Times one ring variant at world size `p`: each worker loops the
/// collective over a persistent 25 MiB buffer; rank 0's timing is reported
/// (the ring synchronizes every rank to the same cadence).
fn time_ring(pr: Params, p: usize, use_seed: bool) -> Timing {
    let mut outs = SimCluster::run(p, move |w| {
        let mut buf: Vec<f32> = (0..pr.ring_elems)
            .map(|i| (i % 97) as f32 * 1e-3 + w.rank() as f32)
            .collect();
        bench(1, pr.ring_iters, || {
            if use_seed {
                seed_all_reduce_sum(&w, &mut buf);
            } else {
                w.all_reduce_sum(&mut buf).expect("all_reduce_sum");
            }
            black_box(&buf);
        })
    });
    outs.swap_remove(0)
}

fn ring_section(pr: Params) -> Vec<Value> {
    let mut rows = Vec::new();
    for &p in &RING_WORLDS {
        let fast = time_ring(pr, p, false);
        let seed = time_ring(pr, p, true);
        let sp = speedup(&seed, &fast);
        println!(
            "ring all-reduce p={p:<2}  fast {}  seed {}  speedup {sp:.2}x",
            fast.ms(),
            seed.ms()
        );
        rows.push(json!({
            "kernel": "ring_all_reduce",
            "p": p,
            "mbytes": (pr.ring_elems * 4) as f64 / (1024.0 * 1024.0),
            "fast_ms": fast.min_s * 1e3,
            "seed_ms": seed.min_s * 1e3,
            "speedup": sp,
        }));
    }
    rows
}

/// All-reduce algorithm to benchmark head-to-head.
#[derive(Clone, Copy)]
enum Algo {
    Ring,
    Rabenseifner,
    Hierarchical,
}

fn time_algo(pr: Params, p: usize, algo: Algo) -> Timing {
    let mut outs = SimCluster::run(p, move |w| {
        let mut buf: Vec<f32> = (0..pr.ring_elems)
            .map(|i| (i % 97) as f32 * 1e-3 + w.rank() as f32)
            .collect();
        bench(1, pr.ring_iters, || {
            match algo {
                Algo::Ring => w.all_reduce_sum(&mut buf).expect("ring"),
                Algo::Rabenseifner => w
                    .rabenseifner_all_reduce_sum(&mut buf)
                    .expect("rabenseifner"),
                Algo::Hierarchical => w
                    .hierarchical_all_reduce_sum(&mut buf, GPUS_PER_NODE)
                    .expect("hierarchical"),
            }
            black_box(&buf);
        })
    });
    outs.swap_remove(0)
}

/// Ring vs. Rabenseifner vs. hierarchical on the same buffer. All three
/// produce identical sums (modulo addition order); what differs is the
/// number of passes over the buffer and the message schedule, which is
/// what shows up on an in-process transport where bandwidth is memcpy.
fn all_reduce_algorithms_section(pr: Params) -> Vec<Value> {
    let mut rows = Vec::new();
    for &p in &RING_WORLDS {
        let ring = time_algo(pr, p, Algo::Ring);
        // Rabenseifner's recursive halving-doubling needs a power-of-two
        // world; RING_WORLDS all qualify, but guard anyway so editing the
        // sweep can't panic the bench.
        let raben = p
            .is_power_of_two()
            .then(|| time_algo(pr, p, Algo::Rabenseifner));
        let hier = time_algo(pr, p, Algo::Hierarchical);
        let raben_ms = raben.map(|t| t.min_s * 1e3);
        println!(
            "all-reduce algos p={p:<2}  ring {}  rabenseifner {}  hierarchical {}",
            ring.ms(),
            raben.map_or_else(|| "n/a".into(), |t| t.ms()),
            hier.ms()
        );
        rows.push(json!({
            "kernel": "all_reduce_algorithms",
            "p": p,
            "gpus_per_node": GPUS_PER_NODE,
            "mbytes": (pr.ring_elems * 4) as f64 / (1024.0 * 1024.0),
            "ring_ms": ring.min_s * 1e3,
            "rabenseifner_ms": raben_ms,
            "hierarchical_ms": hier.min_s * 1e3,
        }));
    }
    rows
}

fn time_gemm(pr: Params, m: usize, k: usize, n: usize) -> (Timing, Timing, f64) {
    let a = Tensor::randn([m, k], 11).into_vec();
    let b = Tensor::randn([k, n], 13).into_vec();
    let mut out = vec![0.0f32; m * n];
    let fast = bench(2, pr.gemm_iters, || {
        let av = MatrixRef::new(&a, m, k).expect("a view");
        let bv = MatrixRef::new(&b, k, n).expect("b view");
        matmul(av, bv, &mut out).expect("matmul");
        black_box(&out);
    });
    let seed = bench(2, pr.gemm_iters, || {
        seed_matmul(&a, &b, &mut out, m, k, n);
        black_box(&out);
    });
    let sp = speedup(&seed, &fast);
    (fast, seed, sp)
}

fn gemm_section(pr: Params, smoke: bool) -> Vec<Value> {
    // The two shapes PowerSGD actually runs (a conv layer viewed as
    // 512 x 4608 against a rank-4 factor) plus a square product where
    // register blocking is load-bound.
    let shapes = if smoke {
        [(64usize, 128usize, 16usize), (48, 48, 48)]
    } else {
        [(512usize, 4608usize, 64usize), (384, 384, 384)]
    };
    let mut rows = Vec::new();
    for &(m, k, n) in &shapes {
        let (fast, seed, speedup) = time_gemm(pr, m, k, n);
        println!(
            "matmul {m}x{k}x{n}  fast {}  seed {}  speedup {speedup:.2}x",
            fast.ms(),
            seed.ms()
        );
        rows.push(json!({
            "kernel": "matmul",
            "m": m, "k": k, "n": n,
            "fast_ms": fast.min_s * 1e3,
            "seed_ms": seed.min_s * 1e3,
            "speedup": speedup,
        }));
    }
    rows
}

fn powersgd_section(pr: Params, smoke: bool) -> Value {
    // ResNet-50-style layer shapes (the encode_decode suite's conv set).
    let shapes: Vec<Vec<usize>> = if smoke {
        vec![vec![32, 32, 3, 3], vec![64, 128]]
    } else {
        vec![
            vec![64, 64, 3, 3],
            vec![128, 128, 3, 3],
            vec![256, 256, 3, 3],
            vec![512, 512, 3, 3],
            vec![512, 2048],
            vec![1000, 512],
        ]
    };
    let grads: Vec<Tensor> = shapes
        .iter()
        .enumerate()
        .map(|(i, s)| Tensor::randn(s.clone(), 17 + i as u64))
        .collect();
    let params: usize = grads.iter().map(Tensor::numel).sum();
    let mut c = PowerSgd::new(4).expect("rank 4");
    let t = bench(1, pr.gemm_iters, || {
        for (layer, g) in grads.iter().enumerate() {
            black_box(round_trip(&mut c, layer, g).expect("powersgd round trip"));
        }
    });
    println!(
        "powersgd rank-4 round trip  {} layers / {params} params  {}",
        grads.len(),
        t.ms()
    );
    json!({
        "kernel": "powersgd_rank4",
        "layers": grads.len(),
        "params": params,
        "round_trip_ms": t.mean_s * 1e3,
    })
}

fn selection_section(pr: Params) -> (Value, Value) {
    let n = pr.ring_elems;
    let g = Tensor::randn([n], 23);
    let k = n / 100;
    let mut mags = Vec::new();
    let topk = bench(1, pr.gemm_iters, || {
        black_box(top_k_abs_with(g.data(), k, &mut mags));
    });
    println!("top-k 1% select  n={n} k={k}  {}", topk.ms());

    let mut packed = SignBits::pack(g.data());
    let pack = bench(1, pr.gemm_iters, || {
        packed = SignBits::pack(g.data());
        black_box(&packed);
    });
    let unpack = bench(1, pr.gemm_iters, || {
        black_box(packed.unpack(1.0));
    });
    println!(
        "sign pack/unpack  n={n}  pack {}  unpack {}",
        pack.ms(),
        unpack.ms()
    );
    (
        json!({
            "kernel": "topk_select",
            "n": n,
            "k": k,
            "ratio": 0.01,
            "select_ms": topk.mean_s * 1e3,
        }),
        json!({
            "kernel": "sign_pack_unpack",
            "n": n,
            "pack_ms": pack.mean_s * 1e3,
            "unpack_ms": unpack.mean_s * 1e3,
        }),
    )
}

/// Times one kernel under both dispatch tables and returns the JSON row.
/// The closure receives `use_simd` and runs the kernel on shared buffers
/// (one closure, so the buffers are borrowed only once). `iters` comes from
/// the caller so smoke mode stays fast.
fn simd_row(name: &str, n: usize, iters: usize, mut f: impl FnMut(bool)) -> Value {
    let sc = bench(1, iters, || f(false));
    let sv = bench(1, iters, || f(true));
    let sp = speedup(&sc, &sv);
    println!(
        "simd kernel {name:<16} n={n:<9} scalar {}  simd {}  speedup {sp:.2}x",
        sc.ms(),
        sv.ms()
    );
    json!({
        "kernel": name,
        "n": n,
        "scalar_ms": sc.min_s * 1e3,
        "simd_ms": sv.min_s * 1e3,
        "speedup": sp,
    })
}

/// Per-kernel SIMD vs. scalar comparison: calls both dispatch tables
/// directly (ignoring `GCS_FORCE_SCALAR`) on identical buffers, so the rows
/// isolate the kernel code from everything around it. Empty on hosts
/// without the SIMD table.
fn simd_kernels_section(pr: Params) -> Vec<Value> {
    let sc = kernels::scalar();
    let Some(sv) = kernels::simd() else {
        println!("simd kernels: no SIMD table on this host, skipping simd-vs-scalar rows");
        return Vec::new();
    };
    let n = pr.ring_elems;
    let iters = pr.gemm_iters;
    let data = Tensor::randn([n], 29).into_vec();
    let other = Tensor::randn([n], 31).into_vec();
    let words_len = n.div_ceil(32);
    let table = move |s: bool| if s { sv } else { sc };
    let mut rows = Vec::new();

    // Sign pack / unpack / majority vote (SignSGD and 1-bit Adam paths).
    let mut words = vec![0u32; words_len];
    rows.push(simd_row("sign_pack", n, iters, |s| {
        (table(s).sign_pack)(&data, black_box(&mut words));
    }));
    let mut out = vec![0.0f32; n];
    rows.push(simd_row("sign_unpack_fill", n, iters, |s| {
        (table(s).unpack_fill)(&words, -1.0, 1.0, black_box(&mut out));
    }));
    let mut tally = vec![0i32; n];
    rows.push(simd_row("vote_add", n, iters, |s| {
        (table(s).vote_add)(&words, black_box(&mut tally));
    }));
    rows.push(simd_row("vote_pack", n, iters, |s| {
        (table(s).vote_pack)(&tally, black_box(&mut words));
    }));

    // Wire (de)serialization and the ring's receive-and-accumulate step.
    let mut bytes = vec![0u8; n * 4];
    rows.push(simd_row("f32s_to_bytes", n, iters, |s| {
        (table(s).f32s_to_bytes)(&other, black_box(&mut bytes));
    }));
    rows.push(simd_row("bytes_to_f32s", n, iters, |s| {
        (table(s).bytes_to_f32s)(&bytes, black_box(&mut out));
    }));
    let mut acc = data.clone();
    rows.push(simd_row("add_from_bytes", n, iters, |s| {
        (table(s).add_from_bytes)(&bytes, black_box(&mut acc));
    }));
    let mut acc2 = data.clone();
    rows.push(simd_row("add_assign", n, iters, |s| {
        (table(s).add_assign)(black_box(&mut acc2), &other);
    }));
    let mut acc3 = data.clone();
    rows.push(simd_row("axpy", n, iters, |s| {
        (table(s).axpy)(black_box(&mut acc3), 0.999, &other);
    }));

    // Top-k support kernels: |x| materialization, L1 reduction, and the
    // threshold scan-and-gather (threshold chosen near the top-1% cut of a
    // standard normal, ~2.6 sigma).
    let mut mags = vec![0.0f32; n];
    rows.push(simd_row("abs_into", n, iters, |s| {
        (table(s).abs_into)(&data, black_box(&mut mags));
    }));
    rows.push(simd_row("sum_abs", n, iters, |s| {
        black_box((table(s).sum_abs)(&data));
    }));
    let threshold = 2.6f32;
    let (mut idx, mut vals) = (Vec::new(), Vec::new());
    rows.push(simd_row("gather_above", n, iters, |s| {
        idx.clear();
        vals.clear();
        (table(s).gather_above)(&data, threshold, &mut idx, &mut vals);
        black_box((&idx, &vals));
    }));

    // GEMM microkernel through both dispatch paths (PowerSGD's skinny
    // shape). Unlike the rows above this compares the same register-blocked
    // algorithm with scalar mul_add vs. AVX2 FMA tiles.
    let (m, k, nn) = if pr.ring_elems < 1024 * 1024 {
        (64usize, 128usize, 16usize)
    } else {
        (512usize, 4608usize, 64usize)
    };
    let a = Tensor::randn([m, k], 37).into_vec();
    let b = Tensor::randn([k, nn], 41).into_vec();
    let mut gout = vec![0.0f32; m * nn];
    rows.push(simd_row("matmul_tile", m * k * nn, iters, |s| {
        let av = MatrixRef::new(&a, m, k).expect("a view");
        let bv = MatrixRef::new(&b, k, nn).expect("b view");
        matmul_with_dispatch(s, av, bv, &mut gout).expect("matmul");
        black_box(&gout);
    }));
    rows
}

/// `model name` from `/proc/cpuinfo`, or `"unknown"` off Linux.
fn cpu_model() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|v| v.trim().to_string())
        })
        .unwrap_or_else(|| "unknown".into())
}

/// Host + dispatch provenance for the tracked report (bench hygiene: a
/// number without the CPU, dispatch mode, thread count and tile shape that
/// produced it is noise).
fn metadata(smoke: bool) -> Value {
    let choice = gcs_tensor::autotune::choice();
    json!({
        "cpu_model": cpu_model(),
        "kernel_features": kernels::feature_string(),
        "active_kernel_table": kernels::active().name,
        "simd_active": kernels::simd_active(),
        "force_scalar": std::env::var("GCS_FORCE_SCALAR").ok(),
        "kernel_threads": gcs_tensor::pool::global().width(),
        "gemm_tile": choice.gemm_tile.name(),
        "wire_chunk_elems": choice.wire_chunk_elems,
        "autotune_provenance": choice.provenance,
        "smoke": smoke,
    })
}

fn main() {
    println!("datapath micro-benchmark (release builds only give meaningful numbers)");
    let smoke = std::env::var_os("GCS_BENCH_SMOKE").is_some();
    let pr = Params::new(smoke);
    let ring = ring_section(pr);
    let algos = all_reduce_algorithms_section(pr);
    let gemm = gemm_section(pr, smoke);
    let psgd = powersgd_section(pr, smoke);
    let (topk, signs) = selection_section(pr);
    let simd = simd_kernels_section(pr);

    let report = json!({
        "bench": "datapath",
        "metadata": metadata(smoke),
        "ring_all_reduce": ring,
        "all_reduce_algorithms": algos,
        "matmul": gemm,
        "powersgd": psgd,
        "topk": topk,
        "signs": signs,
        "simd_kernels": simd,
    });
    // `GCS_BENCH_OUT` redirects the report (written even in smoke mode —
    // the regression gate diffs report *structure* against the committed
    // file and only compares timings between two full runs).
    let default_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_datapath.json");
    let out = std::env::var("GCS_BENCH_OUT").ok();
    match (out, smoke) {
        (Some(path), _) => {
            let text = serde_json::to_string_pretty(&report).expect("serialize report");
            std::fs::write(&path, text).expect("write GCS_BENCH_OUT report");
            println!("wrote {path}");
        }
        (None, true) => {
            // Smoke timings are meaningless; don't clobber the tracked file.
            println!("smoke mode: skipping write of {default_path}");
        }
        (None, false) => {
            let text = serde_json::to_string_pretty(&report).expect("serialize report");
            std::fs::write(default_path, text).expect("write BENCH_datapath.json");
            println!("wrote {default_path}");
        }
    }
}
