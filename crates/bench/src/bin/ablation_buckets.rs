//! Ablation: DDP bucket-size sweep. Too-small buckets expose per-collective
//! latency; too-large buckets destroy overlap (§2.2's motivation for the
//! 25 MB default).

use gcs_bench::{ms, print_table};
use gcs_ddp::sim::{simulate_iteration, SimConfig};
use gcs_models::presets;

fn main() {
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for model in [presets::resnet50(), presets::bert_base()] {
        let batch = if model.name.starts_with("BERT") {
            8
        } else {
            32
        };
        for mb in [1usize, 5, 10, 25, 50, 100, 500] {
            let cfg = SimConfig::new(model.clone(), 64)
                .batch_per_worker(batch)
                .bucket_bytes(mb << 20);
            let t = simulate_iteration(&cfg).total_s;
            rows.push(vec![model.name.clone(), format!("{mb} MB"), ms(t)]);
            json.push(serde_json::json!({
                "model": model.name, "bucket_mb": mb, "total_s": t,
            }));
        }
    }
    print_table(
        "Ablation: bucket-size sweep (64 GPUs, 10 Gbps)",
        &["Model", "Bucket size", "Iteration (ms)"],
        &rows,
    );
    println!("\nExpected shape: a sweet spot near DDP's 25 MB default — latency-bound below, overlap-starved above.");
    gcs_bench::write_json("ablation_buckets", &serde_json::Value::Array(json));
}
