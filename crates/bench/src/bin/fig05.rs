//! Figure 5: scalability of Top-K (1%, 10%, 20%) vs syncSGD.
//!
//! Expected shape: Top-K loses to syncSGD everywhere — enormous encode
//! time (Table 2) plus all-gather traffic that grows linearly with the
//! worker count. BERT runs are capped at 32 GPUs as in the paper (gather
//! buffers exhaust memory).

use gcs_bench::{paper_topk_ratios, scaling_figure};
use gcs_compress::registry::MethodConfig;

fn main() {
    let methods: Vec<MethodConfig> = paper_topk_ratios()
        .into_iter()
        .map(|ratio| MethodConfig::TopK { ratio })
        .collect();
    let json = scaling_figure("Figure 5: Top-K scalability", &methods, Some(32));
    gcs_bench::write_json("fig05", &json);
}
