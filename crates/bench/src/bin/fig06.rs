//! Figure 6: scalability of SignSGD (majority vote) vs syncSGD.
//!
//! Expected shape: SignSGD encodes quickly but is not all-reducible; its
//! all-gather communication and majority-vote decode both grow linearly
//! with workers. The paper's headline number: at 96 GPUs on ResNet-101,
//! SignSGD ≈ 1075 ms vs < 265 ms for syncSGD.

use gcs_bench::scaling_figure;
use gcs_compress::registry::MethodConfig;
use gcs_core::study::Study;
use gcs_models::presets;

fn main() {
    let json = scaling_figure(
        "Figure 6: SignSGD scalability",
        &[MethodConfig::SignSgd],
        Some(32),
    );
    gcs_bench::write_json("fig06", &json);

    // The §1 headline comparison.
    let rows = Study::new(presets::resnet101(), 64)
        .methods(vec![MethodConfig::SyncSgd, MethodConfig::SignSgd])
        .worker_counts(vec![96])
        .run();
    println!(
        "\nHeadline check (ResNet-101, 96 GPUs): syncSGD {:.0} ms vs SignSGD {:.0} ms\n\
         (paper: <265 ms vs ~1075 ms — the ordering and ~4x gap are the reproduced shape)",
        rows[0].measured_s * 1e3,
        rows[1].measured_s * 1e3
    );
}
