//! Figure 11: what-if on network bandwidth (1–30 Gbps), syncSGD vs
//! PowerSGD rank 4.
//!
//! Expected shape: PowerSGD dominates at 1–3 Gbps; syncSGD catches up as
//! bandwidth grows (crossover ≈9 Gbps for ResNet-50, ≈15 Gbps for BERT)
//! because only syncSGD has enough traffic left to benefit.

use gcs_bench::{ms, paper_batch, paper_models, print_table};
use gcs_compress::registry::MethodConfig;
use gcs_core::whatif::bandwidth_sweep;
use gcs_models::DeviceSpec;

fn main() {
    let gbps: Vec<f64> = vec![
        1.0, 2.0, 3.0, 5.0, 7.0, 9.0, 10.0, 12.0, 15.0, 20.0, 25.0, 30.0,
    ];
    let mut json = Vec::new();
    for model in paper_models() {
        let pts = bandwidth_sweep(
            &model,
            &DeviceSpec::v100(),
            64,
            paper_batch(&model),
            &MethodConfig::PowerSgd { rank: 4 },
            &gbps,
            15e-6,
        );
        let rows: Vec<Vec<String>> = pts
            .iter()
            .map(|p| {
                vec![
                    format!("{:.0}", p.x),
                    ms(p.sync_s),
                    ms(p.method_s),
                    format!("{:.2}x", p.speedup()),
                ]
            })
            .collect();
        print_table(
            &format!("Figure 11: bandwidth sweep — {} (64 GPUs)", model.name),
            &[
                "Gbps",
                "syncSGD (ms)",
                "PowerSGD r4 (ms)",
                "PowerSGD speedup",
            ],
            &rows,
        );
        let crossover = pts.iter().find(|p| p.speedup() < 1.0).map(|p| p.x);
        match crossover {
            Some(x) => println!("Crossover (syncSGD wins) at ≈ {x:.0} Gbps"),
            None => println!("PowerSGD wins across the whole sweep"),
        }
        for p in &pts {
            json.push(serde_json::json!({
                "model": model.name, "gbps": p.x,
                "sync_s": p.sync_s, "powersgd4_s": p.method_s,
            }));
        }
    }
    gcs_bench::write_json("fig11", &serde_json::Value::Array(json));
}
