//! Figure 9: how much compression is actually needed for near-linear
//! scaling (64 GPUs, 10 Gbps), by model and batch size.
//!
//! Expected shape: at most ~7x even for small batches; BERT at realistic
//! batch needs < 2x. Over-compressing beyond these ratios buys nothing.

use gcs_bench::{paper_models, print_table};
use gcs_cluster::cost::NetworkModel;
use gcs_core::ideal::{required_compression, RequiredCompression};
use gcs_models::DeviceSpec;

fn main() {
    let device = DeviceSpec::v100();
    let net = NetworkModel::datacenter_10gbps();
    let workers = 64;
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for model in paper_models() {
        let batches: &[usize] = if model.name.starts_with("BERT") {
            &[4, 8, 12, 16]
        } else {
            &[8, 16, 32, 64]
        };
        for &batch in batches {
            let cell = match required_compression(&model, &device, &net, workers, batch) {
                RequiredCompression::Achievable { ratio, bytes } => {
                    json.push(serde_json::json!({
                        "model": model.name, "batch": batch,
                        "required_ratio": ratio, "compressed_bytes": bytes,
                    }));
                    format!("{ratio:.2}x")
                }
                RequiredCompression::LatencyBound => {
                    json.push(serde_json::json!({
                        "model": model.name, "batch": batch,
                        "required_ratio": serde_json::Value::Null,
                    }));
                    "latency-bound".to_owned()
                }
            };
            rows.push(vec![model.name.clone(), batch.to_string(), cell]);
        }
    }
    print_table(
        "Figure 9: compression required for near-linear scaling (64 GPUs, 10 Gbps)",
        &["Model", "Batch/GPU", "Required compression"],
        &rows,
    );
    println!(
        "\nExpected shape: ≤ ~7x everywhere; shrinking with batch size; BERT < 2x at batch ≥ 12."
    );
    gcs_bench::write_json("fig09", &serde_json::Value::Array(json));
}
