//! Straggler benchmark: iteration time with one worker slowed 1–8x, per
//! compression method, plus a deterministic exercise of the fault plane.
//!
//! Two halves:
//!
//! 1. **Model timings** (written to `BENCH_straggler.json`): for every
//!    tracked method, the α–β performance model's iteration breakdown is
//!    extended with a synchronous-straggler term — with one worker slowed
//!    `s`x, every collective waits on its backward pass, so the critical
//!    path grows by `(s − 1) · t_comp`:
//!    `T(s) = T(1) + (s − 1) · t_comp`. These are pure functions of the
//!    configuration, so the tracked JSON is bit-identical across runs.
//! 2. **Fault-plane exercise** (wall timings printed, never written): a
//!    real `SimCluster` job runs ring all-reduces under a seeded
//!    delay-jitter [`FaultPlan`] while rank 0 sleeps per iteration to
//!    emulate the straggler. The JSON records only the seed-deterministic
//!    part: the injected event count and the summed injected delay.
//!
//! Run with `cargo run -p gcs-bench --bin straggler --release`. Set
//! `GCS_BENCH_SMOKE=1` for a seconds-long CI smoke run (tiny sizes; the
//! tracked JSON is not rewritten).

use std::time::{Duration, Instant};

use gcs_cluster::{FaultKind, FaultPlan, SimCluster};
use gcs_compress::registry::MethodConfig;
use gcs_core::perf::predict_iteration;
use gcs_ddp::sim::SimConfig;
use gcs_models::presets;
use serde_json::{json, Value};

/// Straggler slowdown factors (1x = healthy baseline).
const SLOWDOWNS: [f64; 6] = [1.0, 2.0, 3.0, 4.0, 6.0, 8.0];

/// Fault-plan master seed for the fault-plane exercise. Fixed so the
/// event sequence — and therefore the JSON's fault section — is identical
/// across runs.
const FAULT_SEED: u64 = 0x5712A_661E5;

/// Methods tracked in the report, spanning every aggregation class.
fn methods() -> Vec<MethodConfig> {
    vec![
        MethodConfig::SyncSgd,
        MethodConfig::Fp16,
        MethodConfig::PowerSgd { rank: 4 },
        MethodConfig::TopK { ratio: 0.01 },
        MethodConfig::SignSgd,
        MethodConfig::Qsgd { levels: 15 },
        MethodConfig::RandomK { ratio: 0.25 },
    ]
}

fn method_name(m: &MethodConfig) -> String {
    m.build()
        .map(|c| c.properties().name)
        .unwrap_or_else(|_| format!("{m:?}"))
}

/// Model-predicted iteration times vs. straggler slowdown for one method.
///
/// A synchronous data-parallel iteration gates every collective on the
/// slowest worker's backward pass, so slowing one worker `s`x stretches
/// the critical path by `(s − 1) · t_comp` regardless of how the healthy
/// iteration overlaps compute and communication.
fn straggler_rows(workers: usize) -> Vec<Value> {
    let mut rows = Vec::new();
    for method in methods() {
        let cfg = SimConfig::new(presets::resnet50(), workers).method(method.clone());
        let p = predict_iteration(&cfg);
        let iters: Vec<Value> = SLOWDOWNS
            .iter()
            .map(|&s| {
                let total = p.total_s + (s - 1.0) * p.t_comp_s;
                json!({
                    "slowdown": s,
                    "iteration_ms": total * 1e3,
                    "vs_healthy": total / p.total_s,
                })
            })
            .collect();
        println!(
            "{:<24} healthy {:>7.1} ms  8x-straggler {:>7.1} ms",
            method_name(&method),
            p.total_s * 1e3,
            (p.total_s + 7.0 * p.t_comp_s) * 1e3,
        );
        rows.push(json!({
            "method": method_name(&method),
            "workers": workers,
            "healthy_ms": p.total_s * 1e3,
            "t_comp_ms": p.t_comp_s * 1e3,
            "t_encdec_ms": p.t_encdec_s * 1e3,
            "t_comm_ms": p.t_comm_s * 1e3,
            "points": iters,
        }));
    }
    rows
}

/// Runs real ring all-reduces under a seeded delay-jitter plan with rank 0
/// sleeping `slow_factor`-proportional time per iteration. Returns the
/// measured wall time per iteration (printed, not written) and the
/// seed-deterministic fault summary.
fn fault_plane_exercise(smoke: bool) -> Value {
    let (elems, iters, unit_us) = if smoke {
        (4 * 1024, 2, 50)
    } else {
        (256 * 1024, 8, 500)
    };
    let world = 4;
    let plan = FaultPlan::new(FAULT_SEED).delay_jitter(Duration::from_micros(200));
    let mut summary = Vec::new();
    for &s in &SLOWDOWNS {
        let started = Instant::now();
        let (_, events) = SimCluster::run_with_faults(world, plan.clone(), |w| {
            let mut buf: Vec<f32> = (0..elems)
                .map(|i| (i % 97) as f32 + w.rank() as f32)
                .collect();
            for _ in 0..iters {
                if w.rank() == 0 {
                    // The straggler: extra "backward" time before joining.
                    std::thread::sleep(Duration::from_micros(((s - 1.0) * unit_us as f64) as u64));
                }
                w.all_reduce_sum(&mut buf).expect("all_reduce_sum");
            }
        });
        let wall = started.elapsed();
        let delays = events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::Delay { .. }))
            .count();
        let injected_us: u64 = events
            .iter()
            .map(|e| match e.kind {
                FaultKind::Delay { extra } => extra.as_micros() as u64,
                _ => 0,
            })
            .sum();
        println!(
            "fault plane slowdown {s:.0}x  wall {:>8.2} ms  {delays} delays injected ({injected_us} us total)",
            wall.as_secs_f64() * 1e3,
        );
        // Only the seed-deterministic fields go into the report.
        summary.push(json!({
            "slowdown": s,
            "delay_events": delays,
            "injected_delay_us": injected_us,
        }));
    }
    json!({
        "seed": FAULT_SEED,
        "world": world,
        "elems": elems,
        "iters_per_run": iters,
        "runs": summary,
    })
}

fn main() {
    println!("straggler benchmark (model timings are deterministic; wall timings printed only)");
    let smoke = std::env::var_os("GCS_BENCH_SMOKE").is_some();
    let workers = 16;
    let rows = straggler_rows(workers);
    let faults = fault_plane_exercise(smoke);

    let choice = gcs_tensor::autotune::choice();
    let metadata = json!({
        "active_kernel_table": gcs_tensor::kernels::active().name,
        "kernel_threads": gcs_tensor::pool::global().width(),
        "gemm_tile": choice.gemm_tile.name(),
        "wire_chunk_elems": choice.wire_chunk_elems,
        "autotune_provenance": choice.provenance,
        "smoke": smoke,
    });
    let report = json!({
        "bench": "straggler",
        "model": "resnet50",
        "smoke": smoke,
        "workers": workers,
        "slowdowns": SLOWDOWNS.to_vec(),
        "metadata": metadata,
        "methods": rows,
        "fault_plane": faults,
    });
    // `GCS_BENCH_OUT` redirects the report (written even in smoke mode,
    // for the structural regression gate in CI).
    let default_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_straggler.json");
    match (std::env::var("GCS_BENCH_OUT").ok(), smoke) {
        (Some(path), _) => {
            let text = serde_json::to_string_pretty(&report).expect("serialize report");
            std::fs::write(&path, text).expect("write GCS_BENCH_OUT report");
            println!("wrote {path}");
        }
        (None, true) => {
            // Smoke sizes change the fault section; don't clobber the tracked file.
            println!("smoke mode: skipping write of {default_path}");
        }
        (None, false) => {
            let text = serde_json::to_string_pretty(&report).expect("serialize report");
            std::fs::write(default_path, text).expect("write BENCH_straggler.json");
            println!("wrote {default_path}");
        }
    }
}
