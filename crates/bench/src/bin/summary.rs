//! Reproduction summary: reads `results/*.json` (produced by the other
//! binaries) and machine-checks every qualitative shape the paper claims,
//! printing a PASS/FAIL scorecard. Exits non-zero if any shape fails —
//! run `--bin all` first, then this.

use gcs_bench::{print_table, results_dir};
use serde_json::Value;

/// Loads one results file; `None` if it hasn't been generated yet.
fn load(name: &str) -> Option<Vec<Value>> {
    let path = results_dir().join(format!("{name}.json"));
    let text = std::fs::read_to_string(path).ok()?;
    serde_json::from_str::<Vec<Value>>(&text).ok()
}

fn f(v: &Value, key: &str) -> f64 {
    v[key].as_f64().unwrap_or(f64::NAN)
}

fn s<'a>(v: &'a Value, key: &str) -> &'a str {
    v[key].as_str().unwrap_or("")
}

/// One shape check: name, claim text, evaluated outcome.
struct Check {
    id: &'static str,
    claim: &'static str,
    outcome: Option<bool>,
}

fn check(id: &'static str, claim: &'static str, outcome: Option<bool>) -> Check {
    Check { id, claim, outcome }
}

#[allow(clippy::too_many_lines)] // one straight-line checklist per figure
fn run_checks() -> Vec<Check> {
    let mut checks = Vec::new();

    // Table 1: 4 all-reducible rows, 5 gather rows.
    checks.push(check(
        "table1",
        "4 all-reducible / 5 gather-based methods, as in the paper",
        load("table1").map(|rows| {
            let ar = rows.iter().filter(|r| r["all_reduce"] == true).count();
            ar == 4 && rows.len() == 9
        }),
    ));

    // Table 2: model anchors within 5% of paper; CPU SignSGD < PowerSGD r16.
    checks.push(check(
        "table2",
        "calibrated model hits the paper's anchors; CPU keeps SignSGD < PowerSGD r16",
        load("table2").map(|rows| {
            let anchors_ok = rows.iter().all(|r| match r["paper_v100_ms"].as_f64() {
                Some(paper) => (f(r, "modeled_v100_ms") - paper).abs() / paper < 0.05,
                None => true,
            });
            let cpu = |m: &str| {
                rows.iter()
                    .find(|r| s(r, "method") == m)
                    .map(|r| f(r, "measured_cpu_ms"))
            };
            let order_ok = match (cpu("SignSGD"), cpu("PowerSGD (rank 16)")) {
                (Some(sign), Some(p16)) => sign < p16,
                _ => false,
            };
            anchors_ok && order_ok
        }),
    ));

    // Fig 3: overlapped > sequential for every method.
    checks.push(check(
        "fig03",
        "overlapping compression with backward is slower for every method",
        load("fig03").map(|rows| {
            !rows.is_empty()
                && rows
                    .iter()
                    .all(|r| f(r, "overlapped_s") > f(r, "sequential_s"))
        }),
    ));

    // Fig 4: PowerSGD r4 loses on ResNet-50 b64 @96, wins on BERT @96.
    checks.push(check(
        "fig04",
        "PowerSGD r4 loses on ResNet-50 (batch 64) and wins on BERT at 96 GPUs",
        load("fig04").map(|rows| {
            let get = |model: &str, method: &str| {
                rows.iter()
                    .find(|r| {
                        s(r, "model") == model && s(r, "method") == method && r["workers"] == 96
                    })
                    .map(|r| f(r, "measured_s"))
            };
            match (
                get("ResNet-50", "syncSGD"),
                get("ResNet-50", "PowerSGD (rank 4)"),
                get("BERT-base", "syncSGD"),
                get("BERT-base", "PowerSGD (rank 4)"),
            ) {
                (Some(rs), Some(rp), Some(bs), Some(bp)) => rp > rs && bp < bs,
                _ => false,
            }
        }),
    ));

    // Fig 5: TopK never beats syncSGD (per model+workers).
    checks.push(check(
        "fig05",
        "Top-K loses to syncSGD at every model and scale",
        load("fig05").map(|rows| {
            let sync = |model: &str, workers: &Value| {
                rows.iter()
                    .find(|r| {
                        s(r, "model") == model
                            && s(r, "method") == "syncSGD"
                            && &r["workers"] == workers
                    })
                    .map(|r| f(r, "measured_s"))
            };
            rows.iter()
                .filter(|r| s(r, "method").starts_with("TopK"))
                .all(|r| match sync(s(r, "model"), &r["workers"]) {
                    Some(t) => f(r, "measured_s") > t,
                    None => false,
                })
        }),
    ));

    // Fig 6: SignSGD >= 2.5x syncSGD on ResNet-101 at 96 GPUs.
    checks.push(check(
        "fig06",
        "SignSGD ≥ 2.5x slower than syncSGD (ResNet-101, 96 GPUs; paper ~4x)",
        load("fig06").map(|rows| {
            let get = |method: &str| {
                rows.iter()
                    .find(|r| {
                        s(r, "model") == "ResNet-101"
                            && s(r, "method") == method
                            && r["workers"] == 96
                    })
                    .map(|r| f(r, "measured_s"))
            };
            match (get("syncSGD"), get("SignSGD")) {
                (Some(sync), Some(sign)) => sign > 2.5 * sync,
                _ => false,
            }
        }),
    ));

    // Fig 7: speedup monotone decreasing in batch for ResNet-101.
    checks.push(check(
        "fig07",
        "PowerSGD speedup shrinks monotonically with batch size",
        load("fig07").map(|rows| {
            let mut r101: Vec<(u64, f64)> = rows
                .iter()
                .filter(|r| s(r, "model") == "ResNet-101")
                .map(|r| (r["batch"].as_u64().unwrap_or(0), f(r, "speedup")))
                .collect();
            r101.sort_by_key(|&(b, _)| b);
            r101.len() >= 3 && r101.windows(2).all(|w| w[1].1 <= w[0].1)
        }),
    ));

    // Fig 8: median errors small for sync/powersgd.
    checks.push(check(
        "fig08",
        "performance model tracks measurement (median error < 10% for sync & PowerSGD)",
        load("fig08").map(|rows| {
            let median_for = |method: &str| {
                let errs: Vec<f64> = rows
                    .iter()
                    .filter(|r| s(r, "method") == method)
                    .map(|r| f(r, "error"))
                    .collect();
                gcs_tensor::stats::median(&errs)
            };
            median_for("syncSGD") < 0.10 && median_for("PowerSGD r4") < 0.10
        }),
    ));

    // Fig 9: all achievable ratios <= 12.
    checks.push(check(
        "fig09",
        "required compression ≤ ~12x everywhere at 10 Gbps",
        load("fig09").map(|rows| {
            rows.iter().all(|r| match r["required_ratio"].as_f64() {
                Some(ratio) => ratio <= 12.0,
                None => false,
            })
        }),
    ));

    // Fig 10: all gaps < 250 ms.
    checks.push(check(
        "fig10",
        "syncSGD-to-ideal gap stays below ~250 ms",
        load("fig10").map(|rows| rows.iter().all(|r| f(r, "gap_s") < 0.25)),
    ));

    // Fig 11: ResNet-50 crossover in 5..15 Gbps; BERT crossover above it.
    checks.push(check(
        "fig11",
        "bandwidth crossover ≈9 Gbps (ResNet-50) and higher for BERT (paper: 15)",
        load("fig11").map(|rows| {
            let crossover = |model: &str| {
                let mut pts: Vec<(f64, f64)> = rows
                    .iter()
                    .filter(|r| s(r, "model") == model)
                    .map(|r| (f(r, "gbps"), f(r, "sync_s") / f(r, "powersgd4_s")))
                    .collect();
                pts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
                pts.iter().find(|&&(_, sp)| sp < 1.0).map(|&(g, _)| g)
            };
            match (crossover("ResNet-50"), crossover("BERT-base")) {
                (Some(r50), Some(bert)) => (5.0..=15.0).contains(&r50) && bert > r50,
                _ => false,
            }
        }),
    ));

    // Fig 12: speedup monotone increasing in compute for every model.
    checks.push(check(
        "fig12",
        "faster compute makes compression monotonically more attractive",
        load("fig12").map(|rows| {
            for model in ["ResNet-50", "ResNet-101", "BERT-base"] {
                let mut pts: Vec<(f64, f64)> = rows
                    .iter()
                    .filter(|r| s(r, "model") == model)
                    .map(|r| {
                        (
                            f(r, "compute_speedup"),
                            f(r, "sync_s") / f(r, "powersgd4_s"),
                        )
                    })
                    .collect();
                pts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
                if pts.len() < 3 || pts.windows(2).any(|w| w[1].1 < w[0].1) {
                    return false;
                }
            }
            true
        }),
    ));

    // Fig 13: every k>1 beats baseline.
    checks.push(check(
        "fig13",
        "any encode-time reduction beats the baseline, for every byte penalty",
        load("fig13").map(|rows| {
            rows.iter()
                .filter(|r| f(r, "k") > 1.0)
                .all(|r| f(r, "total_s") < f(r, "baseline_s"))
        }),
    ));

    // Convergence: EF-SignSGD reaches ~syncSGD loss; plain SignSGD much worse.
    checks.push(check(
        "convergence",
        "error feedback fixes SignSGD (plain SignSGD ≥ 10x worse final loss)",
        load("convergence").map(|rows| {
            let final_of = |m: &str| {
                rows.iter()
                    .find(|r| s(r, "method") == m && s(r, "task") == "linear-regression")
                    .map(|r| f(r, "final_loss"))
            };
            match (final_of("SignSGD"), final_of("EF-SignSGD")) {
                (Some(plain), Some(ef)) => plain > 10.0 * ef,
                _ => false,
            }
        }),
    ));

    // Extension: large models flip the verdict.
    checks.push(check(
        "ext_large_models",
        "§7 regime: PowerSGD r32 ≥ 4x faster than syncSGD on the 12B model",
        load("ext_large_models").map(|rows| {
            let get = |method: &str| {
                rows.iter()
                    .find(|r| s(r, "model") == "DALL-E 12B" && s(r, "method") == method)
                    .map(|r| f(r, "total_s"))
            };
            match (get("syncSGD"), get("PowerSGD (rank 32)")) {
                (Some(sync), Some(p)) => sync > 4.0 * p,
                _ => false,
            }
        }),
    ));

    checks
}

fn main() {
    let checks = run_checks();
    let rows: Vec<Vec<String>> = checks
        .iter()
        .map(|c| {
            vec![
                c.id.to_owned(),
                c.claim.to_owned(),
                match c.outcome {
                    Some(true) => "PASS".to_owned(),
                    Some(false) => "FAIL".to_owned(),
                    None => "MISSING (run --bin all first)".to_owned(),
                },
            ]
        })
        .collect();
    print_table(
        "Reproduction scorecard (shapes from the paper, checked against results/*.json)",
        &["Experiment", "Claim", "Status"],
        &rows,
    );
    let failed = checks.iter().filter(|c| c.outcome != Some(true)).count();
    if failed == 0 {
        println!("\nAll {} shape checks PASS.", checks.len());
    } else {
        eprintln!("\n{failed} of {} checks did not pass.", checks.len());
        std::process::exit(1);
    }
}
