//! Ablation: ring vs double-binary-tree all-reduce (the paper forces ring
//! with NCCL_TREE_THRESHOLD=0; NCCL picks tree at scale because of its
//! logarithmic latency).

use gcs_bench::{ms, print_table};
use gcs_compress::registry::MethodConfig;
use gcs_ddp::sim::{simulate_iteration, AllReduceAlgo, SimConfig};
use gcs_models::presets;

fn main() {
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (label, method) in [
        ("syncSGD (97 MB payload)", MethodConfig::SyncSgd),
        (
            "PowerSGD r4 (small payload)",
            MethodConfig::PowerSgd { rank: 4 },
        ),
    ] {
        for p in [4usize, 16, 64, 128, 256] {
            let base = SimConfig::new(presets::resnet50(), p).method(method.clone());
            let ring = simulate_iteration(&base).total_s;
            let tree =
                simulate_iteration(&base.clone().allreduce(AllReduceAlgo::DoubleTree)).total_s;
            rows.push(vec![
                label.to_owned(),
                p.to_string(),
                ms(ring),
                ms(tree),
                if tree < ring { "tree" } else { "ring" }.to_owned(),
            ]);
            json.push(serde_json::json!({
                "method": label, "workers": p, "ring_s": ring, "tree_s": tree,
            }));
        }
    }
    print_table(
        "Ablation: ring vs double-binary-tree all-reduce (ResNet-50, batch 64)",
        &["Method", "Workers", "Ring (ms)", "Tree (ms)", "Winner"],
        &rows,
    );
    println!(
        "\nExpected shape: ring wins for bandwidth-bound payloads at small scale;\n\
         tree wins for latency-bound (small) payloads at large scale."
    );
    gcs_bench::write_json("ablation_allreduce", &serde_json::Value::Array(json));
}
