//! Table 2: encode–decode times for ResNet-50 at 4 workers.
//!
//! Two columns per method:
//!
//! * **V100 (model)** — the calibrated encode-cost model, which reproduces
//!   the paper's published numbers at the calibration point;
//! * **CPU (measured)** — actual wall-clock time of this crate's Rust
//!   kernels encoding + decoding real per-layer ResNet-50 gradients on the
//!   host CPU. Absolute values differ from a V100, but the *ordering*
//!   (Top-K ≫ PowerSGD ≫ SignSGD, higher ranks cost more) must hold —
//!   which is the property the paper's argument rests on.
//!
//! Run with `--release`; debug-mode kernel timings are meaningless.

use gcs_bench::{method_name, print_table};
use gcs_compress::driver::round_trip;
use gcs_compress::registry::MethodConfig;
use gcs_models::encode_cost::encode_cost;
use gcs_models::presets;
use gcs_tensor::Tensor;
use std::time::Instant;

/// Measures one full-model encode+decode round trip (4-worker aggregation
/// cost is dominated by encode/decode for these methods).
fn measure_cpu_seconds(method: &MethodConfig, grads: &[Tensor], reps: usize) -> f64 {
    let mut compressor = method.build().expect("method builds");
    // Warm up one pass (allocations, PowerSGD Q init).
    for (layer, g) in grads.iter().enumerate() {
        let _ = round_trip(&mut compressor, layer, g).expect("round trip");
    }
    let start = Instant::now();
    for _ in 0..reps {
        for (layer, g) in grads.iter().enumerate() {
            let _ = round_trip(&mut compressor, layer, g).expect("round trip");
        }
    }
    start.elapsed().as_secs_f64() / reps as f64
}

fn main() {
    let model = presets::resnet50();
    println!(
        "Generating real per-layer gradients for {} ({:.1} MB)…",
        model.name,
        model.size_mb()
    );
    let grads: Vec<Tensor> = model
        .layers
        .iter()
        .enumerate()
        .map(|(i, l)| Tensor::randn(l.shape.clone(), i as u64))
        .collect();

    let methods = [
        (MethodConfig::PowerSgd { rank: 4 }, 45.0),
        (MethodConfig::PowerSgd { rank: 8 }, 64.0),
        (MethodConfig::PowerSgd { rank: 16 }, 130.0),
        (MethodConfig::TopK { ratio: 0.20 }, 295.0),
        (MethodConfig::TopK { ratio: 0.10 }, 289.0),
        (MethodConfig::TopK { ratio: 0.01 }, 240.0),
        (MethodConfig::SignSgd, 16.34),
        (MethodConfig::Fp16, f64::NAN),
        (MethodConfig::TernGrad, f64::NAN),
        (MethodConfig::Qsgd { levels: 15 }, f64::NAN),
    ];

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (method, paper_ms) in &methods {
        let modeled_ms = encode_cost(method, &model).total_seconds(4) * 1e3;
        let cpu_s = measure_cpu_seconds(method, &grads, 2);
        rows.push(vec![
            method_name(method),
            if paper_ms.is_nan() {
                "—".to_owned()
            } else {
                format!("{paper_ms:.2}")
            },
            format!("{modeled_ms:.2}"),
            format!("{:.1}", cpu_s * 1e3),
        ]);
        json.push(serde_json::json!({
            "method": method_name(method),
            "paper_v100_ms": if paper_ms.is_nan() { None } else { Some(*paper_ms) },
            "modeled_v100_ms": modeled_ms,
            "measured_cpu_ms": cpu_s * 1e3,
        }));
    }
    print_table(
        "Table 2: encode-decode time, ResNet-50, 4 workers",
        &[
            "Method",
            "Paper V100 (ms)",
            "Model V100 (ms)",
            "This crate, CPU (ms)",
        ],
        &rows,
    );
    println!(
        "\nShape notes (CPU vs the paper's V100):\n\
         * SignSGD < PowerSGD and rank-16 > rank-8 > rank-4 transfer to CPU.\n\
         * Top-K does NOT transfer: a CPU quickselect is linear and cache-friendly,\n\
           while the GPU top-k the paper measured is the pathological kernel that\n\
           made Top-K 5-18x slower than SignSGD there. The load-bearing property —\n\
           every scheme costs tens-to-hundreds of ms, far above the <200 ms\n\
           opportunity window of Figure 10 — holds in both columns.\n\
         * Absolute values are host-CPU; V100 absolute numbers come from the\n\
           calibrated model column."
    );
    gcs_bench::write_json("table2", &serde_json::Value::Array(json));
}
