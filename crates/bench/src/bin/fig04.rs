//! Figure 4: scalability of PowerSGD (ranks 4/8/16) vs syncSGD on
//! ResNet-50, ResNet-101 and BERT_BASE.
//!
//! Expected shape: PowerSGD is *slower* for the ResNets at batch 64, and
//! faster than syncSGD only for BERT at large scale (paper: ~23% for
//! rank 4 at 96 GPUs), with rank 16 losing even there.

use gcs_bench::{paper_ranks, scaling_figure};
use gcs_compress::registry::MethodConfig;

fn main() {
    let methods: Vec<MethodConfig> = paper_ranks()
        .into_iter()
        .map(|rank| MethodConfig::PowerSgd { rank })
        .collect();
    let json = scaling_figure("Figure 4: PowerSGD scalability", &methods, None);
    gcs_bench::write_json("fig04", &json);
}
