//! Figure 12: what-if on compute speedup (1–4x) with bandwidth pinned at
//! 10 Gbps, syncSGD vs PowerSGD rank 4.
//!
//! Expected shape: faster compute shrinks both the backward pass and the
//! encode/decode time, so PowerSGD's relative advantage *grows* while
//! syncSGD saturates at its communication floor (paper: ~1.75x PowerSGD
//! speedup at 3.5x compute for ResNet-50).

use gcs_bench::{ms, paper_batch, paper_models, print_table};
use gcs_cluster::cost::NetworkModel;
use gcs_compress::registry::MethodConfig;
use gcs_core::whatif::compute_sweep;

fn main() {
    let speedups: Vec<f64> = vec![1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0];
    let mut json = Vec::new();
    for model in paper_models() {
        let pts = compute_sweep(
            &model,
            &NetworkModel::datacenter_10gbps(),
            64,
            paper_batch(&model),
            &MethodConfig::PowerSgd { rank: 4 },
            &speedups,
        );
        let rows: Vec<Vec<String>> = pts
            .iter()
            .map(|p| {
                vec![
                    format!("{:.1}x", p.x),
                    ms(p.sync_s),
                    ms(p.method_s),
                    format!("{:.2}x", p.speedup()),
                ]
            })
            .collect();
        print_table(
            &format!(
                "Figure 12: compute-speedup sweep — {} (64 GPUs, 10 Gbps)",
                model.name
            ),
            &[
                "Compute",
                "syncSGD (ms)",
                "PowerSGD r4 (ms)",
                "PowerSGD speedup",
            ],
            &rows,
        );
        for p in &pts {
            json.push(serde_json::json!({
                "model": model.name, "compute_speedup": p.x,
                "sync_s": p.sync_s, "powersgd4_s": p.method_s,
            }));
        }
    }
    println!("\nExpected shape: PowerSGD speedup column increases monotonically with compute.");
    gcs_bench::write_json("fig12", &serde_json::Value::Array(json));
}
