//! Extension: strong scaling. The paper evaluates weak scaling (constant
//! per-worker batch); under strong scaling a *fixed global batch* is split
//! across workers, so adding GPUs shrinks T_comp and starves syncSGD's
//! overlap — compression becomes useful at realistic bandwidths after all.

use gcs_bench::{ms, print_table};
use gcs_compress::registry::MethodConfig;
use gcs_ddp::sim::{simulate_strong_scaling, SimConfig};
use gcs_models::presets;

fn main() {
    let model = presets::resnet101();
    let global = 1024usize;
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for p in [8usize, 16, 32, 64, 128] {
        let sync = simulate_strong_scaling(&SimConfig::new(model.clone(), p), global);
        let psgd = simulate_strong_scaling(
            &SimConfig::new(model.clone(), p).method(MethodConfig::PowerSgd { rank: 4 }),
            global,
        );
        rows.push(vec![
            p.to_string(),
            (global / p).max(1).to_string(),
            ms(sync.total_s),
            ms(psgd.total_s),
            format!("{:.2}x", sync.total_s / psgd.total_s),
        ]);
        json.push(serde_json::json!({
            "model": model.name, "workers": p, "global_batch": global,
            "sync_s": sync.total_s, "powersgd4_s": psgd.total_s,
        }));
    }
    print_table(
        &format!(
            "Strong scaling — {model} @ global batch {global}, 10 Gbps",
            model = model.name
        ),
        &[
            "GPUs",
            "Batch/GPU",
            "syncSGD (ms)",
            "PowerSGD r4 (ms)",
            "PowerSGD speedup",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: the PowerSGD speedup column *grows* with GPUs — the\n\
         opposite of the paper's weak-scaling result, because strong scaling\n\
         shrinks the backward pass syncSGD hides communication behind."
    );
    gcs_bench::write_json("ext_strong_scaling", &serde_json::Value::Array(json));
}
