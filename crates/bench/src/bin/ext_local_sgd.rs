//! Extension: local SGD (periodic averaging) — the communication
//! *frequency* lever the paper contrasts with compression (§2). Reports
//! both the per-step time (simulator) and the convergence cost (real
//! training), i.e. the full tradeoff compression papers usually skip.

use gcs_bench::{ms, print_table};
use gcs_compress::registry::MethodConfig;
use gcs_ddp::sim::{simulate_iteration, simulate_local_sgd, SimConfig};
use gcs_models::presets;
use gcs_train::local_sgd::{train_local_sgd, LocalSgdConfig};
use gcs_train::task::LinearRegression;

fn main() {
    // Timing: per-step cost vs period for the comm-heavy model.
    let model = presets::bert_base();
    let cfg = SimConfig::new(model.clone(), 96).batch_per_worker(12);
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for period in [1usize, 2, 4, 8, 16, 32] {
        let t = simulate_local_sgd(&cfg, period).total_s;
        rows.push(vec![period.to_string(), ms(t)]);
        json.push(serde_json::json!({
            "model": model.name, "workers": 96, "period": period, "per_step_s": t,
        }));
    }
    let psgd = simulate_iteration(&cfg.clone().method(MethodConfig::PowerSgd { rank: 4 })).total_s;
    print_table(
        &format!(
            "Local SGD per-step time — {} @ 96 GPUs (batch 12)",
            model.name
        ),
        &["Sync period H", "Per-step time (ms)"],
        &rows,
    );
    println!(
        "Reference: PowerSGD rank 4 at the same scale: {:.1} ms/step.\n\
         Expected shape: period 4-8 already beats the best compression scheme,\n\
         with zero encode cost — frequency is the cheaper lever.",
        psgd * 1e3
    );

    // Convergence: what the longer periods cost in loss.
    let task = LinearRegression::new(16, 256, 0.01, 7);
    let mut conv_rows = Vec::new();
    for period in [1usize, 2, 4, 8, 16] {
        let rep = train_local_sgd(
            &task,
            &MethodConfig::SyncSgd,
            &LocalSgdConfig::new()
                .period(period)
                .steps(240)
                .lr(0.05)
                .seed(9),
        )
        .expect("training runs");
        conv_rows.push(vec![period.to_string(), format!("{:.5}", rep.final_loss())]);
        json.push(serde_json::json!({
            "task": rep.task, "period": period, "final_loss": rep.final_loss(),
        }));
    }
    print_table(
        "Local SGD convergence cost (linear regression, 4 workers, 240 steps)",
        &["Sync period H", "Final loss"],
        &conv_rows,
    );
    println!("\nExpected shape: mild degradation as H grows — the accuracy price of fewer syncs.");
    gcs_bench::write_json("ext_local_sgd", &serde_json::Value::Array(json));
}
