//! Runs every table/figure binary in sequence (the full evaluation).
//!
//! Equivalent to invoking each `table*`/`fig*`/`convergence`/`ablation_*`
//! binary; results land in `results/*.json` and stdout.

use std::process::Command;

fn main() {
    let bins = [
        "table1",
        "table2",
        "fig02",
        "fig03",
        "fig04",
        "fig05",
        "fig06",
        "fig07",
        "fig08",
        "fig09",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "convergence",
        "ablation_allreduce",
        "ablation_buckets",
        "ablation_hierarchy",
        "ablation_ps",
        "ext_local_sgd",
        "ext_time_to_accuracy",
        "ext_large_models",
        "ext_strong_scaling",
        "summary", // must run last: it validates the other binaries' results
    ];
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    let mut failures = Vec::new();
    for bin in bins {
        println!("\n######## {bin} ########");
        let status = Command::new(dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            failures.push(bin);
        }
    }
    if failures.is_empty() {
        println!("\nAll experiments completed.");
    } else {
        eprintln!("\nFAILED: {failures:?}");
        std::process::exit(1);
    }
}
