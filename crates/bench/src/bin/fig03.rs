//! Figure 3: overlapping gradient compression with the backward pass is
//! *slower* than running it sequentially afterwards, because both compete
//! for compute (§3.1).

use gcs_bench::{method_name, ms, print_table};
use gcs_compress::registry::MethodConfig;
use gcs_core::perf::predict_generic_overlapped;
use gcs_ddp::sim::{simulate_iteration, SimConfig};
use gcs_models::presets;

fn main() {
    let model = presets::resnet101();
    let workers = 16;
    let methods = [
        MethodConfig::PowerSgd { rank: 4 },
        MethodConfig::TopK { ratio: 0.01 },
        MethodConfig::SignSgd,
    ];
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for method in &methods {
        let base = SimConfig::new(model.clone(), workers).method(method.clone());
        let seq = simulate_iteration(&base).total_s;
        let ovl = simulate_iteration(&base.clone().overlap_compression(true)).total_s;
        let hypothetical = predict_generic_overlapped(&base).total_s;
        rows.push(vec![
            method_name(method),
            ms(seq),
            ms(ovl),
            format!("{:+.1}%", (ovl / seq - 1.0) * 100.0),
            ms(hypothetical),
        ]);
        json.push(serde_json::json!({
            "method": method_name(method),
            "sequential_s": seq,
            "overlapped_s": ovl,
            "hypothetical_free_overlap_s": hypothetical,
        }));
    }
    print_table(
        &format!(
            "Figure 3: sequential vs overlapped compression ({}, {workers} GPUs, batch 64)",
            model.name
        ),
        &[
            "Method",
            "Sequential (ms)",
            "Overlapped (ms)",
            "Overlap penalty",
            "If overlap were free (ms)",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: overlapped > sequential for every method (compute\n\
         contention). The last column is §4.2's generic formula with zero\n\
         contention — an unreachable bound, shown for scale."
    );
    gcs_bench::write_json("fig03", &serde_json::Value::Array(json));
}
