//! Ablation: flat ring all-reduce (what the paper models) vs hierarchical
//! NVLink-aware all-reduce (what NCCL actually does on p3.8xlarge's 4-GPU
//! nodes). Quantifies how much headroom the flat-ring assumption leaves on
//! the table — and therefore how much *less* room compression has against
//! a topology-aware baseline.

use gcs_bench::{ms, print_table};
use gcs_cluster::hierarchy::HierarchicalNetwork;
use gcs_models::presets;

fn main() {
    let h = HierarchicalNetwork::p3_8xlarge();
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for model in presets::paper_models() {
        let bytes = model.size_bytes();
        for p in [8usize, 16, 32, 64, 96] {
            let flat = h.flat_all_reduce(bytes, p);
            let hier = h.hierarchical_all_reduce(bytes, p);
            rows.push(vec![
                model.name.clone(),
                p.to_string(),
                ms(flat),
                ms(hier),
                format!("{:.2}x", flat / hier),
            ]);
            json.push(serde_json::json!({
                "model": model.name, "workers": p,
                "flat_s": flat, "hierarchical_s": hier,
            }));
        }
    }
    print_table(
        "Ablation: flat ring vs hierarchical all-reduce (4 GPUs/node, NVLink intra)",
        &[
            "Model",
            "GPUs",
            "Flat ring (ms)",
            "Hierarchical (ms)",
            "Speedup",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: hierarchy wins everywhere multi-node (only node leaders\n\
         cross the slow network), and the win grows with GPUs per node."
    );
    gcs_bench::write_json("ablation_hierarchy", &serde_json::Value::Array(json));
}
