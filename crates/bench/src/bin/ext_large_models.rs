//! Extension: §7's billion-parameter regime. The paper notes that for a
//! 12-billion-parameter model (DALL-E) engineers *did* get PowerSGD to pay
//! off — because at that scale gradients are tens of gigabytes while
//! per-sample compute stays bounded, so training is hopelessly
//! communication-bound without compression. This bench quantifies that
//! flip with the same performance model that shows compression *losing*
//! on ResNet/BERT.

use gcs_bench::{method_name, print_table};
use gcs_compress::registry::MethodConfig;
use gcs_core::perf::predict_iteration;
use gcs_ddp::sim::SimConfig;
use gcs_models::{presets, DeviceSpec};

fn main() {
    // Mixed-precision tensor-core throughput for transformer training is
    // ~8x our conv-calibrated V100 figure; encode kernels scale along.
    let device = DeviceSpec::v100().with_speedup(8.0);
    let mut json = Vec::new();
    for (model, batch, workers) in [
        (presets::gpt2_xl(), 4usize, 128usize),
        (presets::dalle_12b(), 1, 512),
    ] {
        let methods = [
            MethodConfig::SyncSgd,
            MethodConfig::Fp16,
            MethodConfig::PowerSgd { rank: 32 },
            MethodConfig::PowerSgd { rank: 128 },
        ];
        let mut rows = Vec::new();
        let mut sync_s = 0.0;
        for method in &methods {
            let cfg = SimConfig::new(model.clone(), workers)
                .batch_per_worker(batch)
                .device(device.clone())
                .method(method.clone());
            let p = predict_iteration(&cfg);
            if matches!(method, MethodConfig::SyncSgd) {
                sync_s = p.total_s;
            }
            rows.push(vec![
                method_name(method),
                format!("{:.2}", p.total_s),
                format!("{:.2}", p.t_comm_s),
                format!("{:.2}x", sync_s / p.total_s),
            ]);
            json.push(serde_json::json!({
                "model": model.name, "workers": workers, "batch": batch,
                "method": method_name(method),
                "total_s": p.total_s, "comm_s": p.t_comm_s,
            }));
        }
        print_table(
            &format!(
                "§7 regime: {} ({:.0} GB gradients) @ {workers} GPUs, batch {batch}, 10 Gbps",
                model.name,
                model.size_mb() / 1024.0
            ),
            &["Method", "Iteration (s)", "Comm (s)", "Speedup vs syncSGD"],
            &rows,
        );
    }
    println!(
        "\nExpected shape: the verdict flips — at 10+ GB of gradients, syncSGD is\n\
         communication-bound by tens of seconds per iteration and PowerSGD's\n\
         encode cost becomes negligible in comparison. Same model, same math,\n\
         opposite conclusion to ResNet-50: the paper's point is that *utility is\n\
         a function of the operating point*, not the algorithm."
    );
    gcs_bench::write_json("ext_large_models", &serde_json::Value::Array(json));
}
