//! Adaptive-controller benchmark: the online Equation-1 controller vs.
//! every fixed scheme across emulated bandwidth regimes, writing
//! `BENCH_adaptive.json` at the repo root.
//!
//! For each regime (slow WAN-ish link → fast datacenter link) the same
//! gradient workload runs through [`AdaptiveEngine`] five ways: the live
//! controller (twice — the decision traces must be bit-identical), and
//! once per arm pinned as a single-arm config. Pinned runs use the
//! identical engine and per-step decision broadcast, so the comparison
//! isolates exactly one variable: who picks the scheme.
//!
//! Two timing views per run:
//!
//! * `modelled_step_ms` — the controller's Equation-1 estimate under the
//!   regime's link parameters. Deterministic; this is what the report's
//!   acceptance summary is computed from.
//! * `measured_step_ms` — wall clock per step over the [`NetEmu`]-paced
//!   cluster. Machine-dependent; recorded for honesty, never gated.
//!
//! Run with `cargo run -p gcs-bench --bin adaptive --release`. Set
//! `GCS_BENCH_SMOKE=1` for a seconds-long CI smoke run (tiny tensors; the
//! tracked JSON is not rewritten unless `GCS_BENCH_OUT` redirects it).

use std::time::Instant;

use gcs_cluster::{NetEmu, SimCluster, WorkerHandle};
use gcs_compress::adaptive::{AdaptiveConfig, Decision, LinkModel};
use gcs_compress::registry::MethodConfig;
use gcs_ddp::AdaptiveEngine;
use gcs_tensor::Tensor;
use serde_json::{json, Value};

/// One emulated bandwidth regime.
struct Regime {
    name: &'static str,
    latency_us: f64,
    gbps: f64,
}

const REGIMES: [Regime; 3] = [
    Regime {
        name: "slow",
        latency_us: 50.0,
        gbps: 0.05,
    },
    Regime {
        name: "medium",
        latency_us: 25.0,
        gbps: 0.5,
    },
    Regime {
        name: "fast",
        latency_us: 15.0,
        gbps: 5.0,
    },
];

fn arms() -> Vec<MethodConfig> {
    vec![
        MethodConfig::SyncSgd,
        MethodConfig::PowerSgd { rank: 4 },
        MethodConfig::TopK { ratio: 0.01 },
    ]
}

struct BenchParams {
    world: usize,
    layer_shapes: Vec<Vec<usize>>,
    bucket_bytes: usize,
    steps: usize,
}

fn params(smoke: bool) -> BenchParams {
    if smoke {
        BenchParams {
            world: 2,
            layer_shapes: vec![vec![32, 32], vec![16, 16]],
            bucket_bytes: 2 * 1024,
            steps: 3,
        }
    } else {
        BenchParams {
            world: 4,
            // ~80 KB of gradients in three 32 KiB buckets: enough wire
            // traffic that the slow regime meaningfully separates the
            // schemes, small enough to bench in seconds.
            layer_shapes: vec![vec![128, 128], vec![64, 64]],
            bucket_bytes: 32 * 1024,
            steps: 12,
        }
    }
}

fn grads_for(rank: usize, shapes: &[Vec<usize>]) -> Vec<Tensor> {
    shapes
        .iter()
        .enumerate()
        .map(|(l, s)| Tensor::randn(s.clone(), 1000 + (rank * 131 + l) as u64))
        .collect()
}

struct RunOutcome {
    modelled_step_s: f64,
    measured_step_s: f64,
    assignment: Vec<usize>,
    trace: Vec<Decision>,
    switches: usize,
}

/// Runs `steps` adaptive exchanges over a NetEmu-paced cluster and
/// returns rank 0's controller view plus measured wall time per step.
fn run_engine(regime: &Regime, scheme_arms: Vec<MethodConfig>, bp: &BenchParams) -> RunOutcome {
    let netem = NetEmu::from_gbps(regime.latency_us, regime.gbps);
    let link = LinkModel::from_gbps(regime.latency_us * 1e-6, regime.gbps).expect("link");
    let shapes = bp.layer_shapes.clone();
    let bucket_bytes = bp.bucket_bytes;
    let steps = bp.steps;
    let mut outs = SimCluster::run_with_netem(bp.world, netem, move |worker: WorkerHandle| {
        let cfg = AdaptiveConfig::new(scheme_arms.clone())
            .expect("config")
            .link(link);
        let mut engine = AdaptiveEngine::new(cfg, bucket_bytes).expect("engine");
        let grads = grads_for(worker.rank(), &shapes);
        // Untimed warmup exchange: builds the plan, runs tune_initial.
        engine.exchange(&worker, &grads).expect("warmup exchange");
        let started = Instant::now();
        for _ in 0..steps {
            engine.exchange(&worker, &grads).expect("exchange");
        }
        let measured_step_s = started.elapsed().as_secs_f64() / steps as f64;
        let c = engine.controller().expect("initialized");
        RunOutcome {
            modelled_step_s: c.step_estimate(),
            measured_step_s,
            assignment: (0..c.num_buckets()).map(|b| c.arm_of(b)).collect(),
            trace: c.trace().to_vec(),
            switches: engine.switches().len(),
        }
    });
    outs.swap_remove(0)
}

fn decisions_json(trace: &[Decision]) -> Vec<Value> {
    trace
        .iter()
        .map(|d| {
            json!({
                "step": d.step,
                "bucket": d.bucket,
                "from": d.from,
                "to": d.to,
                "est_from_s": d.est_from_s,
                "est_to_s": d.est_to_s,
                "probe": d.probe,
            })
        })
        .collect()
}

fn main() {
    let smoke = std::env::var_os("GCS_BENCH_SMOKE").is_some();
    let bp = params(smoke);
    println!(
        "adaptive controller benchmark{}: p={} bucket {} KiB",
        if smoke { " (smoke)" } else { "" },
        bp.world,
        bp.bucket_bytes / 1024,
    );

    let mut rows = Vec::new();
    let mut summaries = Vec::new();
    let mut traces = Vec::new();
    for regime in &REGIMES {
        // The controller, twice: decision traces must be reproducible.
        let adaptive = run_engine(regime, arms(), &bp);
        let replayed = run_engine(regime, arms(), &bp);
        assert_eq!(
            adaptive.trace, replayed.trace,
            "controller decision trace must be deterministic (regime {})",
            regime.name
        );

        let mut fixed = Vec::new();
        for arm in arms() {
            let name = gcs_bench::method_name(&arm);
            let out = run_engine(regime, vec![arm], &bp);
            fixed.push((name, out));
        }

        let best = fixed
            .iter()
            .map(|(_, o)| o.modelled_step_s)
            .fold(f64::INFINITY, f64::min);
        let worst = fixed
            .iter()
            .map(|(_, o)| o.modelled_step_s)
            .fold(0.0, f64::max);
        println!(
            "{:<7} adaptive {:>8.3} ms (measured {:>8.3} ms)  best fixed {:>8.3} ms  worst fixed {:>8.3} ms  assignment {:?}",
            regime.name,
            adaptive.modelled_step_s * 1e3,
            adaptive.measured_step_s * 1e3,
            best * 1e3,
            worst * 1e3,
            adaptive.assignment,
        );

        for (scheme, out) in std::iter::once(("adaptive".to_owned(), &adaptive))
            .chain(fixed.iter().map(|(n, o)| (n.clone(), o)))
        {
            rows.push(json!({
                "regime": regime.name,
                "gbps": regime.gbps,
                "latency_us": regime.latency_us,
                "workers": bp.world,
                "scheme": scheme,
                "modelled_step_ms": out.modelled_step_s * 1e3,
                "measured_step_ms": out.measured_step_s * 1e3,
                "assignment": out.assignment.clone(),
                "switches": out.switches,
            }));
        }
        summaries.push(json!({
            "regime": regime.name,
            "gbps": regime.gbps,
            "adaptive_ms": adaptive.modelled_step_s * 1e3,
            "best_fixed_ms": best * 1e3,
            "worst_fixed_ms": worst * 1e3,
            "vs_best": adaptive.modelled_step_s / best,
            "vs_worst": worst / adaptive.modelled_step_s,
        }));
        traces.push(json!({
            "regime": regime.name,
            "decisions": decisions_json(&adaptive.trace),
        }));

        // Acceptance gates (modelled, hence machine-independent): the
        // controller tracks the best fixed scheme within 5% everywhere.
        assert!(
            adaptive.modelled_step_s <= 1.05 * best,
            "regime {}: adaptive {:.4e}s worse than best fixed {:.4e}s + 5%",
            regime.name,
            adaptive.modelled_step_s,
            best
        );
    }
    // ... and beats the worst fixed scheme >= 1.3x somewhere.
    let max_vs_worst = summaries
        .iter()
        .map(|s| s["vs_worst"].as_f64().unwrap_or(0.0))
        .fold(0.0, f64::max);
    assert!(
        max_vs_worst >= 1.3,
        "controller never beat the worst fixed scheme 1.3x (max {max_vs_worst:.2}x)"
    );

    let choice = gcs_tensor::autotune::choice();
    let metadata = json!({
        "active_kernel_table": gcs_tensor::kernels::active().name,
        "kernel_threads": gcs_tensor::pool::global().width(),
        "gemm_tile": choice.gemm_tile.name(),
        "wire_chunk_elems": choice.wire_chunk_elems,
        "autotune_provenance": choice.provenance,
        "decision_traces": traces,
        "smoke": smoke,
    });
    let report: Value = json!({
        "bench": "adaptive",
        "smoke": smoke,
        "arms": arms().iter().map(gcs_bench::method_name).collect::<Vec<_>>(),
        "metadata": metadata,
        "summary": summaries,
        "rows": rows,
    });
    // `GCS_BENCH_OUT` redirects the report (written even in smoke mode,
    // for the structural regression gate in CI).
    let default_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_adaptive.json");
    match (std::env::var("GCS_BENCH_OUT").ok(), smoke) {
        (Some(path), _) => {
            let text = serde_json::to_string_pretty(&report).expect("serialize report");
            std::fs::write(&path, text).expect("write GCS_BENCH_OUT report");
            println!("wrote {path}");
        }
        (None, true) => {
            // Smoke timings are meaningless; don't clobber the tracked file.
            println!("smoke mode: skipping write of {default_path}");
        }
        (None, false) => {
            let text = serde_json::to_string_pretty(&report).expect("serialize report");
            std::fs::write(default_path, text).expect("write BENCH_adaptive.json");
            println!("wrote {default_path}");
        }
    }
}
