//! Table 1: classification of compression methods by all-reduce
//! compatibility and layer-wise support — generated from the actual trait
//! properties of every implementation.

use gcs_bench::print_table;
use gcs_compress::registry::table1_methods;

fn main() {
    let rows: Vec<Vec<String>> = table1_methods()
        .iter()
        .map(|cfg| {
            let p = cfg.build().expect("catalogue entry builds").properties();
            vec![
                p.name,
                if p.all_reducible { "yes" } else { "no" }.to_owned(),
                if p.layerwise { "yes" } else { "no" }.to_owned(),
                p.rounds.to_string(),
            ]
        })
        .collect();
    print_table(
        "Table 1: all-reduce compatibility and layer-wise compression",
        &["Method", "All-reduce", "Layer-wise", "Comm rounds"],
        &rows,
    );
    let json: Vec<serde_json::Value> = rows
        .iter()
        .map(|r| {
            serde_json::json!({
                "method": r[0],
                "all_reduce": r[1] == "yes",
                "layerwise": r[2] == "yes",
                "rounds": r[3].parse::<usize>().expect("round count"),
            })
        })
        .collect();
    gcs_bench::write_json("table1", &serde_json::Value::Array(json));
}
