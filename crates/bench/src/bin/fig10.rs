//! Figure 10: the gap between optimized syncSGD and perfect weak scaling
//! — the entire time budget available to any compression scheme.

use gcs_bench::{ms, paper_models, print_table};
use gcs_cluster::cost::NetworkModel;
use gcs_core::ideal::ideal_gap;
use gcs_models::DeviceSpec;

fn main() {
    let device = DeviceSpec::v100();
    let net = NetworkModel::datacenter_10gbps();
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for model in paper_models() {
        let batch = if model.name.starts_with("BERT") {
            16
        } else {
            64
        };
        for p in [8usize, 16, 32, 64, 96, 128, 150] {
            let gap = ideal_gap(&model, &device, &net, p, batch);
            rows.push(vec![model.name.clone(), p.to_string(), ms(gap)]);
            json.push(serde_json::json!({
                "model": model.name, "workers": p, "batch": batch, "gap_s": gap,
            }));
        }
    }
    print_table(
        "Figure 10: syncSGD distance from ideal scaling (10 Gbps)",
        &["Model", "Workers", "Gap to ideal (ms)"],
        &rows,
    );
    println!(
        "\nExpected shape: grows with model size and worker count, but stays small\n\
         (≈50 ms ResNet-50, ≈100 ms ResNet-101, ≈200 ms BERT at 150 workers) —\n\
         a compression scheme must fit its entire encode+decode+comm in this budget."
    );
    gcs_bench::write_json("fig10", &serde_json::Value::Array(json));
}
