//! Minimal wall-clock micro-benchmark harness.
//!
//! Replaces the former Criterion dev-dependency (unavailable offline) for
//! the `benches/` targets and powers the `datapath` perf-tracking binary.
//! Deliberately simple: warmup runs, then a fixed number of timed
//! iterations, reporting mean / std / min.

use std::time::Instant;

/// Summary statistics of one benchmarked closure.
#[derive(Debug, Clone, Copy)]
pub struct Timing {
    pub mean_s: f64,
    pub std_s: f64,
    pub min_s: f64,
    pub iters: usize,
}

impl Timing {
    /// Mean formatted in milliseconds.
    pub fn ms(&self) -> String {
        format!("{:.3}", self.mean_s * 1e3)
    }
}

/// Runs `f` `warmup` times untimed, then `iters` timed iterations.
///
/// # Panics
///
/// Panics if `iters == 0`.
pub fn bench<F: FnMut()>(warmup: usize, iters: usize, mut f: F) -> Timing {
    assert!(iters > 0, "need at least one timed iteration");
    for _ in 0..warmup {
        f();
    }
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed().as_secs_f64());
    }
    let mean_s = samples.iter().sum::<f64>() / iters as f64;
    let var = samples
        .iter()
        .map(|s| (s - mean_s) * (s - mean_s))
        .sum::<f64>()
        / iters as f64;
    let min_s = samples.iter().copied().fold(f64::INFINITY, f64::min);
    Timing {
        mean_s,
        std_s: var.sqrt(),
        min_s,
        iters,
    }
}

/// Keeps a value (and the work that produced it) observable to the
/// optimizer — re-export of [`std::hint::black_box`] under the name the
/// bench targets use.
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_plausible_stats() {
        let t = bench(1, 5, || {
            std::thread::sleep(std::time::Duration::from_millis(2));
        });
        assert_eq!(t.iters, 5);
        assert!(t.mean_s >= 0.002);
        assert!(t.min_s <= t.mean_s + 1e-9);
        assert!(t.std_s >= 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one timed iteration")]
    fn zero_iters_panics() {
        let _ = bench(0, 0, || {});
    }
}
