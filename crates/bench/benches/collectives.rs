//! Microbenchmarks of the in-process collectives: ring all-reduce vs
//! all-gather as the worker count grows — the data-plane analogue of the
//! scalability argument (per-worker ring traffic is flat; gather traffic
//! grows with `p`).
//!
//! Plain `main()` harness (`harness = false`): run with
//! `cargo bench -p gcs-bench --bench collectives`.

use gcs_bench::timing::{bench, black_box};
use gcs_cluster::SimCluster;

fn main() {
    let n = 1 << 18; // 256k f32 = 1 MB
    let mut rows: Vec<Vec<String>> = Vec::new();
    for p in [2usize, 4, 8] {
        let t = bench(2, 10, || {
            let outs = SimCluster::run(p, |w| {
                let mut buf = vec![w.rank() as f32; n];
                w.all_reduce_sum(&mut buf).expect("all-reduce");
                buf[0]
            });
            black_box(outs);
        });
        rows.push(vec![
            "ring_all_reduce_1mb".into(),
            p.to_string(),
            gcs_bench::ms_pm(t.mean_s, t.std_s),
        ]);
    }
    let bytes = 1 << 20; // 1 MB per worker
    for p in [2usize, 4, 8] {
        let t = bench(2, 10, || {
            let outs = SimCluster::run(p, |w| {
                let blob = vec![w.rank() as u8; bytes];
                w.all_gather_bytes(&blob).expect("all-gather").len()
            });
            black_box(outs);
        });
        rows.push(vec![
            "all_gather_1mb".into(),
            p.to_string(),
            gcs_bench::ms_pm(t.mean_s, t.std_s),
        ]);
    }
    gcs_bench::print_table(
        "Collective microbenchmarks (1 MB payload)",
        &["Collective", "Workers", "Time (ms, mean±std)"],
        &rows,
    );
}
