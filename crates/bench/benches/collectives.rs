//! Criterion benchmarks of the in-process collectives: ring all-reduce vs
//! all-gather as the worker count grows — the data-plane analogue of the
//! scalability argument (per-worker ring traffic is flat; gather traffic
//! grows with `p`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcs_cluster::SimCluster;
use std::hint::black_box;

fn bench_all_reduce(c: &mut Criterion) {
    let n = 1 << 18; // 256k f32 = 1 MB
    let mut group = c.benchmark_group("ring_all_reduce_1mb");
    group.sample_size(10);
    for p in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| {
                let outs = SimCluster::run(p, |w| {
                    let mut buf = vec![w.rank() as f32; n];
                    w.all_reduce_sum(&mut buf).expect("all-reduce");
                    buf[0]
                });
                black_box(outs);
            });
        });
    }
    group.finish();
}

fn bench_all_gather(c: &mut Criterion) {
    let bytes = 1 << 20; // 1 MB per worker
    let mut group = c.benchmark_group("all_gather_1mb");
    group.sample_size(10);
    for p in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| {
                let outs = SimCluster::run(p, |w| {
                    let blob = vec![w.rank() as u8; bytes];
                    w.all_gather_bytes(&blob).expect("all-gather").len()
                });
                black_box(outs);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_all_reduce, bench_all_gather);
criterion_main!(benches);
