//! Microbenchmarks of the real encode/decode kernels — the living version
//! of the paper's Table 2, on host CPU.
//!
//! The gradient is a ResNet-style conv stack scaled down (~2.4 M
//! parameters) so a full run stays fast; `table2` (the binary) measures
//! the full 25.6 M-parameter ResNet-50.
//!
//! Plain `main()` harness (`harness = false`): run with
//! `cargo bench -p gcs-bench --bench encode_decode`.

use gcs_bench::timing::{bench, black_box};
use gcs_compress::driver::round_trip;
use gcs_compress::registry::MethodConfig;
use gcs_tensor::Tensor;

/// A reduced conv-net gradient set (~2.4 M params across realistic
/// shapes).
fn gradients() -> Vec<Tensor> {
    let shapes: Vec<Vec<usize>> = vec![
        vec![64, 64, 3, 3],
        vec![128, 64, 3, 3],
        vec![128, 128, 3, 3],
        vec![256, 128, 3, 3],
        vec![256, 256, 3, 3],
        vec![512, 256, 1, 1],
        vec![1000, 512],
        vec![512],
        vec![1000],
    ];
    shapes
        .into_iter()
        .enumerate()
        .map(|(i, s)| Tensor::randn(s, i as u64))
        .collect()
}

fn main() {
    let grads = gradients();
    let methods = [
        MethodConfig::SyncSgd,
        MethodConfig::Fp16,
        MethodConfig::PowerSgd { rank: 4 },
        MethodConfig::PowerSgd { rank: 16 },
        MethodConfig::TopK { ratio: 0.01 },
        MethodConfig::SignSgd,
        MethodConfig::Qsgd { levels: 15 },
        MethodConfig::TernGrad,
        MethodConfig::RandomK { ratio: 0.01 },
        MethodConfig::OneBit,
        MethodConfig::Sketch { block: 16 },
        MethodConfig::Dgc { ratio: 0.01 },
        MethodConfig::Variance { kappa: 1.5 },
        MethodConfig::Natural,
    ];
    let mut rows: Vec<Vec<String>> = Vec::new();
    for method in &methods {
        let name = method.build().expect("method builds").properties().name;
        let mut compressor = method.build().expect("method builds");
        let t = bench(2, 10, || {
            for (layer, g) in grads.iter().enumerate() {
                let out = round_trip(&mut compressor, layer, g).expect("round trip");
                black_box(out);
            }
        });
        rows.push(vec![name, gcs_bench::ms_pm(t.mean_s, t.std_s)]);
    }
    // ATOMO separately: its SVD is orders of magnitude slower, so it gets a
    // smaller input to keep the suite quick.
    {
        let grads = [Tensor::randn([128, 128, 3, 3], 0)];
        let mut compressor = MethodConfig::Atomo { rank: 4 }
            .build()
            .expect("method builds");
        let t = bench(1, 10, || {
            for (layer, g) in grads.iter().enumerate() {
                let out = round_trip(&mut compressor, layer, g).expect("round trip");
                black_box(out);
            }
        });
        rows.push(vec![
            "ATOMO (rank 4, small input)".into(),
            gcs_bench::ms_pm(t.mean_s, t.std_s),
        ]);
    }
    gcs_bench::print_table(
        "Encode+decode round trip (~2.4 M params)",
        &["Method", "Time (ms, mean±std)"],
        &rows,
    );
}
