//! The TCP backend must be math-invisible: for every method in the
//! registry, both the sequential and the pipelined engine must produce
//! results over real loopback sockets that are bit-identical to the
//! deterministic [`SimCluster`] reference — clean and under a delay-only
//! fault plan (seeded from `GCS_FAULT_SEED` so CI sweeps seeds).

use std::time::Duration;

use gcs_cluster::{FaultPlan, SimCluster, TcpCluster};
use gcs_compress::registry::MethodConfig;
use gcs_ddp::exec::exchange_gradients_bucketed;
use gcs_ddp::{PipelineConfig, PipelinedEngine};
use gcs_tensor::Tensor;

const WORLD: usize = 4;

/// Seed for the faulted comparison; overridable so CI can sweep seeds.
fn seed_from_env() -> u64 {
    std::env::var("GCS_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x7C9_B17)
}

/// Every variant of `MethodConfig`, with representative parameters.
fn registry() -> Vec<MethodConfig> {
    vec![
        MethodConfig::SyncSgd,
        MethodConfig::Fp16,
        MethodConfig::PowerSgd { rank: 2 },
        MethodConfig::TopK { ratio: 0.2 },
        MethodConfig::SignSgd,
        MethodConfig::EfSignSgd,
        MethodConfig::Qsgd { levels: 15 },
        MethodConfig::TernGrad,
        MethodConfig::RandomK { ratio: 0.25 },
        MethodConfig::Atomo { rank: 2 },
        MethodConfig::OneBit,
        MethodConfig::Sketch { block: 4 },
        MethodConfig::Dgc { ratio: 0.05 },
        MethodConfig::Variance { kappa: 1.0 },
        MethodConfig::Natural,
    ]
}

fn make_grads(rank: usize) -> Vec<Tensor> {
    [vec![6usize, 10], vec![33], vec![4, 4, 3, 3]]
        .iter()
        .enumerate()
        .map(|(l, s)| Tensor::randn(s.clone(), 42 + (rank * 131 + l) as u64))
        .collect()
}

fn sequential_exchange(w: gcs_cluster::WorkerHandle, method: &MethodConfig) -> Vec<Tensor> {
    let mut c = method.build().unwrap();
    let grads = make_grads(w.rank());
    exchange_gradients_bucketed(&w, &mut c, &grads, usize::MAX).unwrap()
}

fn pipelined_exchange(w: gcs_cluster::WorkerHandle, method: &MethodConfig) -> Vec<Tensor> {
    let c = method.build().unwrap();
    let grads = make_grads(w.rank());
    let mut eng = PipelinedEngine::new(
        w,
        c,
        PipelineConfig {
            bucket_bytes: usize::MAX,
            depth: 2,
            chunk_elems: None,
            stream_chunk_elems: None,
            matricize: false,
        },
    )
    .unwrap();
    let out = eng.exchange(&grads).unwrap();
    let _ = eng.into_parts();
    out
}

fn assert_bitwise_eq(sim: &[Vec<Tensor>], tcp: &[Vec<Tensor>], method: &MethodConfig, what: &str) {
    for (rank, (x, y)) in sim.iter().zip(tcp).enumerate() {
        assert_eq!(x.len(), y.len(), "{method:?} worker {rank}: layer count");
        for (layer, (s, t)) in x.iter().zip(y).enumerate() {
            let sb: Vec<u32> = s.data().iter().map(|v| v.to_bits()).collect();
            let tb: Vec<u32> = t.data().iter().map(|v| v.to_bits()).collect();
            assert_eq!(
                sb, tb,
                "{method:?} worker {rank} layer {layer}: {what} over TCP deviates from sim"
            );
        }
    }
}

#[test]
fn tcp_backend_is_bit_identical_to_sim_for_every_method() {
    for method in registry() {
        let sim_seq = SimCluster::run(WORLD, |w| sequential_exchange(w, &method));
        let tcp_seq =
            TcpCluster::run(WORLD, |w| sequential_exchange(w, &method)).expect("tcp mesh");
        assert_bitwise_eq(&sim_seq, &tcp_seq, &method, "sequential engine");

        let sim_pipe = SimCluster::run(WORLD, |w| pipelined_exchange(w, &method));
        let tcp_pipe =
            TcpCluster::run(WORLD, |w| pipelined_exchange(w, &method)).expect("tcp mesh");
        assert_bitwise_eq(&sim_pipe, &tcp_pipe, &method, "pipelined engine");
    }
}

#[test]
fn tcp_backend_stays_bit_identical_under_delay_faults() {
    // Real sockets + receiver-side delay injection: late frames must
    // still arrive intact and in per-peer order, so every method's
    // sequential exchange stays pinned to the clean sim reference.
    let plan = FaultPlan::new(seed_from_env()).delay_jitter(Duration::from_micros(200));
    for method in registry() {
        let reference = SimCluster::run(WORLD, |w| sequential_exchange(w, &method));
        let (tcp_delayed, _) =
            TcpCluster::run_with_faults(WORLD, plan.clone(), |w| sequential_exchange(w, &method))
                .expect("tcp mesh");
        assert_bitwise_eq(&reference, &tcp_delayed, &method, "sequential engine");
    }
}
