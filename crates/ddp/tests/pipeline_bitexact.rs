//! The pipelined engine must be bit-identical to the sequential engine
//! and numerically equal to the centralized reference driver for every
//! method in the registry.
//!
//! Strategy: run both engines with a single giant bucket
//! (`bucket_bytes = usize::MAX`) so the whole model is one flat tensor.
//! That makes the reference-driver comparison well-defined too: the
//! driver is layer-wise, so we hand it the same flat concatenation as one
//! "layer". Pipelined vs. sequential is asserted with exact bit equality;
//! vs. the reference driver with f32 tolerance (the ring reduces in a
//! different association order than the driver's sequential sum).

use gcs_cluster::SimCluster;
use gcs_compress::driver::all_reduce_compressed;
use gcs_compress::registry::MethodConfig;
use gcs_ddp::exec::exchange_gradients_bucketed;
use gcs_ddp::{PipelineConfig, PipelinedEngine};
use gcs_tensor::Tensor;

const WORLD: usize = 4;

/// Every variant of `MethodConfig`, with representative parameters.
fn registry() -> Vec<MethodConfig> {
    vec![
        MethodConfig::SyncSgd,
        MethodConfig::Fp16,
        MethodConfig::PowerSgd { rank: 2 },
        MethodConfig::TopK { ratio: 0.2 },
        MethodConfig::SignSgd,
        MethodConfig::EfSignSgd,
        MethodConfig::Qsgd { levels: 15 },
        MethodConfig::TernGrad,
        MethodConfig::RandomK { ratio: 0.25 },
        MethodConfig::Atomo { rank: 2 },
        MethodConfig::OneBit,
        MethodConfig::Sketch { block: 4 },
        MethodConfig::Dgc { ratio: 0.05 },
        MethodConfig::Variance { kappa: 1.0 },
        MethodConfig::Natural,
    ]
}

fn shapes() -> Vec<Vec<usize>> {
    vec![vec![6, 10], vec![33], vec![4, 4, 3, 3]]
}

fn make_grads(rank: usize) -> Vec<Tensor> {
    shapes()
        .iter()
        .enumerate()
        .map(|(l, s)| Tensor::randn(s.clone(), 42 + (rank * 131 + l) as u64))
        .collect()
}

fn flat_concat(grads: &[Tensor]) -> Tensor {
    // The bucketed engines pack in backward (reverse-layer) order.
    let mut flat = Vec::new();
    for g in grads.iter().rev() {
        flat.extend_from_slice(g.data());
    }
    Tensor::from_vec(flat)
}

#[test]
fn pipelined_matches_sequential_and_reference_for_every_method() {
    for method in registry() {
        let sequential = SimCluster::run(WORLD, |w| {
            let mut c = method.build().unwrap();
            let grads = make_grads(w.rank());
            exchange_gradients_bucketed(&w, &mut c, &grads, usize::MAX).unwrap()
        });
        let pipelined = SimCluster::run(WORLD, |w| {
            let c = method.build().unwrap();
            let grads = make_grads(w.rank());
            let mut eng = PipelinedEngine::new(
                w,
                c,
                PipelineConfig {
                    bucket_bytes: usize::MAX,
                    depth: 2,
                    chunk_elems: None,
                    stream_chunk_elems: None,
                    matricize: false,
                },
            )
            .unwrap();
            let out = eng.exchange(&grads).unwrap();
            let _ = eng.into_parts();
            out
        });

        // 1. Pipelined == sequential, bit for bit, every worker and layer.
        for (rank, (seq, pipe)) in sequential.iter().zip(&pipelined).enumerate() {
            for (layer, (s, p)) in seq.iter().zip(pipe).enumerate() {
                let sb: Vec<u32> = s.data().iter().map(|x| x.to_bits()).collect();
                let pb: Vec<u32> = p.data().iter().map(|x| x.to_bits()).collect();
                assert_eq!(
                    sb, pb,
                    "{method:?} worker {rank} layer {layer}: pipelined deviates from sequential"
                );
            }
        }

        // 2. Both engines vs. the centralized reference driver on the same
        // flat concatenation treated as one layer.
        let tol = if method == MethodConfig::Fp16 {
            2e-3
        } else {
            1e-4
        };
        let mut ref_workers: Vec<_> = (0..WORLD).map(|_| method.build().unwrap()).collect();
        let flat_grads: Vec<Tensor> = (0..WORLD).map(|r| flat_concat(&make_grads(r))).collect();
        let ref_out = all_reduce_compressed(&mut ref_workers, 0, &flat_grads).unwrap();
        for (rank, pipe) in pipelined.iter().enumerate() {
            let engine_flat = flat_concat(pipe);
            let reference = &ref_out[rank];
            assert_eq!(engine_flat.numel(), reference.numel());
            let ref_norm = reference
                .data()
                .iter()
                .map(|x| (*x as f64) * (*x as f64))
                .sum::<f64>()
                .sqrt();
            let err = engine_flat
                .data()
                .iter()
                .zip(reference.data())
                .map(|(a, b)| ((a - b) as f64) * ((a - b) as f64))
                .sum::<f64>()
                .sqrt();
            let rel = err / ref_norm.max(1e-12);
            assert!(
                rel < tol,
                "{method:?} worker {rank}: engine deviates from reference driver (rel {rel})"
            );
        }
    }
}
