//! The streaming engine (`stream_chunk_elems = Some(c)`) must be
//! bit-identical to the chunked pipelined engine (`chunk_elems = Some(c)`)
//! for every method in the registry: summable spans reproduce the
//! staggered chunked ring's segment schedule exactly, and gather spans
//! concatenate back to the monolithic wire image, so the only thing
//! streaming may change is *when* work happens — never the bits.
//!
//! Two exchanges run through each engine so stateful schemes (error
//! feedback, warm start, shared-seed rotation) are compared along their
//! whole state trajectory, not just the first step.

use std::time::Duration;

use gcs_cluster::{FaultKind, FaultPlan, SimCluster};
use gcs_compress::registry::MethodConfig;
use gcs_ddp::{PipelineConfig, PipelinedEngine};
use gcs_tensor::Tensor;

/// Small enough that a 7-element chunk splits every bucket raggedly.
const PRIME_CHUNK: usize = 7;
const BUCKET_BYTES: usize = 400;

/// Every variant of `MethodConfig`, with representative parameters.
fn registry() -> Vec<MethodConfig> {
    vec![
        MethodConfig::SyncSgd,
        MethodConfig::Fp16,
        MethodConfig::PowerSgd { rank: 2 },
        MethodConfig::TopK { ratio: 0.2 },
        MethodConfig::SignSgd,
        MethodConfig::EfSignSgd,
        MethodConfig::Qsgd { levels: 15 },
        MethodConfig::TernGrad,
        MethodConfig::RandomK { ratio: 0.25 },
        MethodConfig::Atomo { rank: 2 },
        MethodConfig::OneBit,
        MethodConfig::Sketch { block: 4 },
        MethodConfig::Dgc { ratio: 0.05 },
        MethodConfig::Variance { kappa: 1.0 },
        MethodConfig::Natural,
    ]
}

fn make_grads(rank: usize) -> Vec<Tensor> {
    [vec![6usize, 10], vec![33], vec![4, 4, 3, 3]]
        .iter()
        .enumerate()
        .map(|(l, s)| Tensor::randn(s.clone(), 42 + (rank * 131 + l) as u64))
        .collect()
}

/// Two exchanges through one engine, returning both steps' outputs.
fn two_steps(
    w: gcs_cluster::WorkerHandle,
    method: &MethodConfig,
    cfg: PipelineConfig,
) -> (Vec<Tensor>, Vec<Tensor>) {
    let c = method.build().unwrap();
    let grads = make_grads(w.rank());
    let mut eng = PipelinedEngine::new(w, c, cfg).unwrap();
    let first = eng.exchange(&grads).unwrap();
    let second = eng.exchange(&grads).unwrap();
    let _ = eng.into_parts();
    (first, second)
}

fn chunked_cfg(chunk: usize) -> PipelineConfig {
    PipelineConfig {
        bucket_bytes: BUCKET_BYTES,
        depth: 2,
        chunk_elems: Some(chunk),
        stream_chunk_elems: None,
        matricize: false,
    }
}

fn streaming_cfg(chunk: usize) -> PipelineConfig {
    PipelineConfig {
        bucket_bytes: BUCKET_BYTES,
        depth: 2,
        chunk_elems: None,
        stream_chunk_elems: Some(chunk),
        matricize: false,
    }
}

fn assert_bitwise_eq(
    a: &[(Vec<Tensor>, Vec<Tensor>)],
    b: &[(Vec<Tensor>, Vec<Tensor>)],
    method: &MethodConfig,
    what: &str,
) {
    for (rank, (x, y)) in a.iter().zip(b).enumerate() {
        for (step, (xs, ys)) in [(&x.0, &y.0), (&x.1, &y.1)].into_iter().enumerate() {
            for (layer, (s, p)) in xs.iter().zip(ys).enumerate() {
                let sb: Vec<u32> = s.data().iter().map(|v| v.to_bits()).collect();
                let pb: Vec<u32> = p.data().iter().map(|v| v.to_bits()).collect();
                assert_eq!(
                    sb, pb,
                    "{method:?} worker {rank} step {step} layer {layer}: {what}"
                );
            }
        }
    }
}

#[test]
fn streaming_matches_chunked_pipelined_for_every_method_and_world() {
    for world in [2usize, 4, 8] {
        for method in registry() {
            let chunked =
                SimCluster::run(world, |w| two_steps(w, &method, chunked_cfg(PRIME_CHUNK)));
            let streaming =
                SimCluster::run(world, |w| two_steps(w, &method, streaming_cfg(PRIME_CHUNK)));
            assert_bitwise_eq(
                &chunked,
                &streaming,
                &method,
                &format!("streaming deviates from chunked pipelined at p={world}"),
            );
        }
    }
}

#[test]
fn ragged_chunk_sizes_stream_bit_identically() {
    // One representative per native chunked-encode path plus a
    // whole-stage fallback scheme (Natural), swept across degenerate and
    // misaligned chunk sizes: single-element, prime, and the autotuned
    // wire chunk ±1 (far larger than the test model, so the schedule
    // collapses to one chunk — the other boundary).
    let wire = gcs_tensor::autotune::choice().wire_chunk_elems;
    let methods = [
        MethodConfig::Fp16,
        MethodConfig::PowerSgd { rank: 2 },
        MethodConfig::TopK { ratio: 0.2 },
        MethodConfig::SignSgd,
        MethodConfig::Qsgd { levels: 15 },
        MethodConfig::TernGrad,
        MethodConfig::RandomK { ratio: 0.25 },
        MethodConfig::Natural,
    ];
    for chunk in [1usize, PRIME_CHUNK, wire - 1, wire + 1] {
        for method in &methods {
            let chunked = SimCluster::run(4, |w| two_steps(w, method, chunked_cfg(chunk)));
            let streaming = SimCluster::run(4, |w| two_steps(w, method, streaming_cfg(chunk)));
            assert_bitwise_eq(
                &chunked,
                &streaming,
                method,
                &format!("streaming deviates from chunked pipelined at chunk={chunk}"),
            );
        }
    }
}

#[test]
fn delay_only_faults_leave_streaming_bit_identical_for_every_method() {
    // Late-but-intact frames must not perturb the streaming schedule's
    // arithmetic: completion order is FIFO regardless of wire timing.
    // The seed is sweepable for CI re-runs, as in the other fault suites.
    let seed = std::env::var("GCS_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xD31A);
    let plan = FaultPlan::new(seed).delay_jitter(Duration::from_micros(200));
    for method in registry() {
        let clean = SimCluster::run(4, |w| two_steps(w, &method, streaming_cfg(PRIME_CHUNK)));
        let (delayed, events) = SimCluster::run_with_faults(4, plan.clone(), |w| {
            two_steps(w, &method, streaming_cfg(PRIME_CHUNK))
        });
        assert!(
            !events.is_empty(),
            "{method:?}: the plan must actually inject delays"
        );
        assert!(
            events
                .iter()
                .all(|e| matches!(e.kind, FaultKind::Delay { .. })),
            "{method:?}: a delay-only plan must log only Delay events"
        );
        assert_bitwise_eq(
            &clean,
            &delayed,
            &method,
            "streaming deviates under delay-only faults",
        );
    }
}
