//! The adaptive controller under the deterministic fault plane:
//! delay-injected links make every wire byte expensive, which the
//! measured-mode bandwidth inversion must translate into a move toward
//! higher compression — reproducibly under a fixed `GCS_FAULT_SEED`.

use std::time::Duration;

use gcs_cluster::{FaultPlan, SimCluster};
use gcs_compress::adaptive::{AdaptiveConfig, DecisionInputs};
use gcs_compress::registry::MethodConfig;
use gcs_ddp::AdaptiveEngine;
use gcs_tensor::Tensor;

const WORLD: usize = 4;
const BUCKET_BYTES: usize = 8 * 1024;
const STEPS: usize = 8;

/// Seed for the fault plane; overridable so CI can sweep seeds.
fn seed_from_env() -> u64 {
    std::env::var("GCS_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x00C0_FFEE)
}

fn arms() -> Vec<MethodConfig> {
    vec![
        MethodConfig::SyncSgd,
        MethodConfig::PowerSgd { rank: 2 },
        MethodConfig::TopK { ratio: 0.01 },
    ]
}

fn grads_for(rank: usize, seed: u64) -> Vec<Tensor> {
    vec![
        Tensor::randn([48, 32], seed + rank as u64 * 131),
        Tensor::randn([40, 24], seed + 7 + rank as u64 * 131),
    ]
}

type RankOutcome = ((Vec<usize>, Vec<(u32, u32, u32, u32)>), Option<f64>);

/// Runs a measured-mode adaptive session under `plan` and returns each
/// rank's `((final assignment, decision trace as (step, bucket, from,
/// to)), bandwidth estimate)`. The first component is broadcast-driven
/// and identical across ranks; the bandwidth estimate comes from each
/// rank's own timers.
fn run_measured(plan: FaultPlan) -> Vec<RankOutcome> {
    let (outs, _events) = SimCluster::run_with_faults(WORLD, plan, |worker| {
        let cfg = AdaptiveConfig::new(arms())
            .unwrap()
            .inputs(DecisionInputs::Measured)
            .warmup_steps(3);
        let mut engine = AdaptiveEngine::new(cfg, BUCKET_BYTES).unwrap();
        let grads = grads_for(worker.rank(), 61);
        for _ in 0..STEPS {
            let out = engine.exchange(&worker, &grads).unwrap();
            for g in &out {
                assert!(g.data().iter().all(|x| x.is_finite()));
            }
        }
        let c = engine.controller().unwrap();
        let assignment: Vec<usize> = (0..c.num_buckets()).map(|b| c.arm_of(b)).collect();
        let trace: Vec<(u32, u32, u32, u32)> = c
            .trace()
            .iter()
            .map(|d| (d.step, d.bucket, d.from, d.to))
            .collect();
        ((assignment, trace), c.bandwidth_estimate())
    });
    outs
}

#[test]
fn delay_injected_links_steer_toward_higher_compression() {
    let seed = seed_from_env();
    let plan = FaultPlan::new(seed).delay_jitter(Duration::from_millis(2));
    let outs = run_measured(plan);
    for ((assignment, trace), _) in &outs {
        // A 2 ms per-frame tax dwarfs every encode cost; the inverted
        // bandwidth estimate must push each bucket off raw SyncSGD.
        assert!(
            assignment.iter().all(|&a| a != 0),
            "bucket left uncompressed on a delayed link: {assignment:?} ({trace:?})"
        );
    }
    // Every rank replayed rank 0's decisions exactly.
    for (o, _) in &outs[1..] {
        assert_eq!(o, &outs[0].0);
    }
}

#[test]
fn steering_reproduces_under_a_fixed_fault_seed() {
    let seed = seed_from_env();
    let mk = || FaultPlan::new(seed).delay_jitter(Duration::from_millis(2));
    let a = run_measured(mk());
    let b = run_measured(mk());
    // Wall-clock jitter may reorder estimates between equally-compressed
    // arms, but the *steering* — which buckets abandon SyncSGD — is a
    // property of the injected delays, which the seed fixes.
    let off_sync =
        |outs: &[RankOutcome]| -> Vec<bool> { outs[0].0 .0.iter().map(|&arm| arm != 0).collect() };
    assert_eq!(off_sync(&a), off_sync(&b));
    assert!(off_sync(&a).iter().all(|&moved| moved));
    // Within one run the ranks always agree, faults or not.
    for (o, _) in &a[1..] {
        assert_eq!(o, &a[0].0);
    }
    for (o, _) in &b[1..] {
        assert_eq!(o, &b[0].0);
    }
}

#[test]
fn delay_injection_collapses_the_bandwidth_estimate() {
    // Control experiment: the *reason* the controller compresses under
    // delay is the online inversion — the same workload must look like a
    // far slower link when frames are taxed 0–2 ms each. (The clean
    // in-process assignment itself is not asserted: even a clean channel
    // charges per-hop wakeups, which can legitimately favour a gather.)
    let seed = seed_from_env();
    let clean = run_measured(FaultPlan::new(seed));
    let delayed = run_measured(FaultPlan::new(seed).delay_jitter(Duration::from_millis(2)));
    for ((_, clean_bw), (_, delayed_bw)) in clean.iter().zip(&delayed) {
        let clean_bw = clean_bw.expect("clean run observed ring traffic");
        let delayed_bw = delayed_bw.expect("delayed run observed ring traffic");
        assert!(
            clean_bw > 5.0 * delayed_bw,
            "delay tax invisible to inversion: clean {clean_bw:.3e} vs delayed {delayed_bw:.3e} B/s"
        );
    }
}
