//! Property tests of mid-run scheme switching at bucket boundaries:
//! forced switch scripts must keep gradients finite with bounded
//! error-feedback residuals, recorded decision traces must replay
//! bit-identically, and live modelled runs must be deterministic.

use gcs_cluster::SimCluster;
use gcs_compress::adaptive::{AdaptiveConfig, Decision, DecisionInputs, LinkModel};
use gcs_compress::driver::ResidualPolicy;
use gcs_compress::registry::MethodConfig;
use gcs_ddp::AdaptiveEngine;
use gcs_tensor::Tensor;

const WORLD: usize = 3;
const BUCKET_BYTES: usize = 8 * 1024;

/// SyncSGD plus two error-feedback schemes, so carry paths are real.
fn arms() -> Vec<MethodConfig> {
    vec![
        MethodConfig::SyncSgd,
        MethodConfig::EfSignSgd,
        MethodConfig::PowerSgd { rank: 2 },
    ]
}

/// Two layers that land in two distinct 8 KiB buckets.
fn grads_for(rank: usize, seed: u64) -> Vec<Tensor> {
    vec![
        Tensor::randn([48, 32], seed + rank as u64 * 131),
        Tensor::randn([40, 24], seed + 7 + rank as u64 * 131),
    ]
}

fn forced_script() -> Vec<Decision> {
    let d = |step: u32, bucket: u32, from: u32, to: u32| Decision {
        step,
        bucket,
        from,
        to,
        est_from_s: 0.0,
        est_to_s: 0.0,
        probe: false,
    };
    vec![
        d(1, 0, 0, 1), // SyncSGD → EF-SignSGD: nothing to carry
        d(2, 0, 1, 2), // EF-SignSGD → PowerSGD: carries sign residual
        d(2, 1, 0, 1),
        d(3, 0, 2, 1), // PowerSGD → EF-SignSGD: carries low-rank residual
        d(4, 1, 1, 0), // EF-SignSGD → SyncSGD: documented reset
    ]
}

#[test]
fn forced_switches_keep_gradients_finite_and_residuals_bounded() {
    let outs = SimCluster::run(WORLD, |worker| {
        let cfg = AdaptiveConfig::new(arms()).unwrap();
        let mut engine = AdaptiveEngine::new(cfg, BUCKET_BYTES)
            .unwrap()
            .residual_policy(ResidualPolicy::Carry)
            .scripted(forced_script());
        let grads = grads_for(worker.rank(), 17);
        for _ in 0..6 {
            let out = engine.exchange(&worker, &grads).unwrap();
            for g in &out {
                assert!(
                    g.data().iter().all(|x| x.is_finite()),
                    "non-finite gradient"
                );
            }
        }
        engine
            .switches()
            .iter()
            .map(|s| {
                (
                    s.decision.clone(),
                    s.outcome.carried,
                    s.outcome.residual_norm,
                )
            })
            .collect::<Vec<_>>()
    });
    let grad_norm_bound = 1e4;
    for switches in &outs {
        assert_eq!(switches.len(), forced_script().len());
        for (d, carried, norm) in switches {
            assert!(norm.is_finite() && *norm >= 0.0, "residual norm {norm}");
            assert!(*norm < grad_norm_bound, "unbounded residual: {norm}");
            // A carry happens exactly when the old arm holds a residual
            // (any EF scheme) AND the new arm can absorb one; SyncSGD on
            // either side means a documented no-carry.
            if d.from == 0 || d.to == 0 {
                assert!(!carried, "impossible carry reported: {d:?}");
            } else {
                assert!(*carried, "EF residual lost at switch: {d:?}");
            }
            // Any EF source must at least report what it held.
            if d.from != 0 {
                assert!(*norm > 0.0, "EF residual unexpectedly zero: {d:?}");
            }
        }
    }
    // The decision sequence is identical on every rank (residual norms
    // are per-rank: each rank compresses its own gradients).
    let decisions = |s: &[(Decision, bool, f64)]| -> Vec<Decision> {
        s.iter().map(|(d, _, _)| d.clone()).collect()
    };
    for o in &outs[1..] {
        assert_eq!(decisions(o), decisions(&outs[0]));
    }
}

#[test]
fn reset_policy_documents_the_drop_instead_of_carrying() {
    let outs = SimCluster::run(WORLD, |worker| {
        let cfg = AdaptiveConfig::new(arms()).unwrap();
        let mut engine = AdaptiveEngine::new(cfg, BUCKET_BYTES)
            .unwrap()
            .residual_policy(ResidualPolicy::Reset)
            .scripted(forced_script());
        let grads = grads_for(worker.rank(), 29);
        for _ in 0..6 {
            let out = engine.exchange(&worker, &grads).unwrap();
            for g in &out {
                assert!(g.data().iter().all(|x| x.is_finite()));
            }
        }
        engine
            .switches()
            .iter()
            .map(|s| (s.outcome.carried, s.outcome.residual_norm))
            .collect::<Vec<_>>()
    });
    for switches in &outs {
        // Reset never injects into the new scheme, but still reports the
        // norm of what was dropped.
        assert!(switches.iter().all(|(carried, _)| !carried));
        assert!(switches.iter().any(|(_, norm)| *norm > 0.0));
    }
}

#[test]
fn recorded_trace_replays_bit_identically() {
    // Live run in measured mode: warm-up probes force real mid-run
    // switches whose schedule depends on nothing but the step counter.
    let live = SimCluster::run(WORLD, |worker| {
        let cfg = AdaptiveConfig::new(arms())
            .unwrap()
            .inputs(DecisionInputs::Measured)
            .warmup_steps(3);
        let mut engine = AdaptiveEngine::new(cfg, BUCKET_BYTES).unwrap();
        let grads = grads_for(worker.rank(), 41);
        let mut bits = Vec::new();
        for _ in 0..5 {
            let out = engine.exchange(&worker, &grads).unwrap();
            bits.push(
                out.iter()
                    .flat_map(|t| t.data().iter().map(|x| x.to_bits()))
                    .collect::<Vec<u32>>(),
            );
        }
        let c = engine.controller().unwrap();
        (bits, c.trace().to_vec())
    });
    let trace = live[0].1.clone();
    assert!(
        trace.iter().any(|d| d.step > 0),
        "warm-up must have produced mid-run switches"
    );

    let replay = SimCluster::run(WORLD, {
        let trace = trace.clone();
        move |worker| {
            let cfg = AdaptiveConfig::new(arms())
                .unwrap()
                .inputs(DecisionInputs::Measured)
                .warmup_steps(3);
            let mut engine = AdaptiveEngine::new(cfg, BUCKET_BYTES)
                .unwrap()
                .scripted(trace.clone());
            let grads = grads_for(worker.rank(), 41);
            let mut bits = Vec::new();
            for _ in 0..5 {
                let out = engine.exchange(&worker, &grads).unwrap();
                bits.push(
                    out.iter()
                        .flat_map(|t| t.data().iter().map(|x| x.to_bits()))
                        .collect::<Vec<u32>>(),
                );
            }
            let c = engine.controller().unwrap();
            (bits, c.trace().to_vec())
        }
    });
    for (l, r) in live.iter().zip(&replay) {
        assert_eq!(l.0, r.0, "replayed gradients must be bit-identical");
        assert_eq!(l.1, r.1, "replayed trace must match the recording");
    }
}

#[test]
fn modelled_decision_traces_are_deterministic_across_runs() {
    let run = || {
        SimCluster::run(WORLD, |worker| {
            let cfg = AdaptiveConfig::new(arms())
                .unwrap()
                .link(LinkModel::from_gbps(15e-6, 0.1).unwrap());
            let mut engine = AdaptiveEngine::new(cfg, BUCKET_BYTES).unwrap();
            let grads = grads_for(worker.rank(), 53);
            for _ in 0..4 {
                engine.exchange(&worker, &grads).unwrap();
            }
            let c = engine.controller().unwrap();
            let assignment: Vec<usize> = (0..c.num_buckets()).map(|b| c.arm_of(b)).collect();
            (assignment, c.trace().to_vec())
        })
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "modelled runs must be reproducible");
    for o in &a[1..] {
        assert_eq!(o, &a[0], "ranks must agree");
    }
}
