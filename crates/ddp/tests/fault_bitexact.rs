//! Delay-only faults must be invisible to the math: frames arrive late
//! but intact and in order, so both the sequential and the pipelined
//! engine must produce bit-identical results to a clean cluster for every
//! method in the registry.

use std::time::Duration;

use gcs_cluster::{FaultKind, FaultPlan, SimCluster};
use gcs_compress::registry::MethodConfig;
use gcs_ddp::exec::exchange_gradients_bucketed;
use gcs_ddp::{PipelineConfig, PipelinedEngine};
use gcs_tensor::Tensor;

const WORLD: usize = 4;

/// Every variant of `MethodConfig`, with representative parameters.
fn registry() -> Vec<MethodConfig> {
    vec![
        MethodConfig::SyncSgd,
        MethodConfig::Fp16,
        MethodConfig::PowerSgd { rank: 2 },
        MethodConfig::TopK { ratio: 0.2 },
        MethodConfig::SignSgd,
        MethodConfig::EfSignSgd,
        MethodConfig::Qsgd { levels: 15 },
        MethodConfig::TernGrad,
        MethodConfig::RandomK { ratio: 0.25 },
        MethodConfig::Atomo { rank: 2 },
        MethodConfig::OneBit,
        MethodConfig::Sketch { block: 4 },
        MethodConfig::Dgc { ratio: 0.05 },
        MethodConfig::Variance { kappa: 1.0 },
        MethodConfig::Natural,
    ]
}

fn make_grads(rank: usize) -> Vec<Tensor> {
    [vec![6usize, 10], vec![33], vec![4, 4, 3, 3]]
        .iter()
        .enumerate()
        .map(|(l, s)| Tensor::randn(s.clone(), 42 + (rank * 131 + l) as u64))
        .collect()
}

fn sequential_exchange(w: gcs_cluster::WorkerHandle, method: &MethodConfig) -> Vec<Tensor> {
    let mut c = method.build().unwrap();
    let grads = make_grads(w.rank());
    exchange_gradients_bucketed(&w, &mut c, &grads, usize::MAX).unwrap()
}

fn pipelined_exchange(w: gcs_cluster::WorkerHandle, method: &MethodConfig) -> Vec<Tensor> {
    let c = method.build().unwrap();
    let grads = make_grads(w.rank());
    let mut eng = PipelinedEngine::new(
        w,
        c,
        PipelineConfig {
            bucket_bytes: usize::MAX,
            depth: 2,
            chunk_elems: None,
            stream_chunk_elems: None,
            matricize: false,
        },
    )
    .unwrap();
    let out = eng.exchange(&grads).unwrap();
    let _ = eng.into_parts();
    out
}

fn assert_bitwise_eq(a: &[Vec<Tensor>], b: &[Vec<Tensor>], method: &MethodConfig, what: &str) {
    for (rank, (x, y)) in a.iter().zip(b).enumerate() {
        for (layer, (s, p)) in x.iter().zip(y).enumerate() {
            let sb: Vec<u32> = s.data().iter().map(|v| v.to_bits()).collect();
            let pb: Vec<u32> = p.data().iter().map(|v| v.to_bits()).collect();
            assert_eq!(
                sb, pb,
                "{method:?} worker {rank} layer {layer}: {what} deviates under delay-only faults"
            );
        }
    }
}

#[test]
fn delay_only_faults_leave_both_engines_bit_identical_for_every_method() {
    let plan = FaultPlan::new(0xD31A).delay_jitter(Duration::from_micros(200));
    for method in registry() {
        let clean = SimCluster::run(WORLD, |w| sequential_exchange(w, &method));

        let (delayed_seq, events) =
            SimCluster::run_with_faults(WORLD, plan.clone(), |w| sequential_exchange(w, &method));
        assert!(
            !events.is_empty(),
            "{method:?}: the plan must actually inject delays"
        );
        assert!(
            events
                .iter()
                .all(|e| matches!(e.kind, FaultKind::Delay { .. })),
            "{method:?}: a delay-only plan must log only Delay events"
        );

        let (delayed_pipe, _) =
            SimCluster::run_with_faults(WORLD, plan.clone(), |w| pipelined_exchange(w, &method));

        assert_bitwise_eq(&clean, &delayed_seq, &method, "sequential engine");
        assert_bitwise_eq(&clean, &delayed_pipe, &method, "pipelined engine");
    }
}
