//! Iteration timelines — the reproduction of Figure 2's Nsight trace.
//!
//! The paper illustrates comm/compute overlap with a profiler screenshot:
//! backward kernels on one CUDA stream, bucket all-reduces on another,
//! only the last bucket's communication exposed. [`trace_iteration`]
//! produces the same two-stream timeline from the event simulator, and
//! [`render_ascii`] draws it as a Gantt chart.

use crate::sim::SimConfig;
use gcs_compress::registry::MethodConfig;
use gcs_models::buckets::{bucket_ready_fractions, partition};
use gcs_models::encode_cost::encode_cost;

/// Which execution stream an event runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stream {
    /// The GPU compute stream (backward pass, encode/decode kernels).
    Compute,
    /// The communication stream (NCCL collectives).
    Comm,
}

/// One span on a stream.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Stream the span occupies.
    pub stream: Stream,
    /// Human-readable label (e.g. `"bucket 2 all-reduce"`).
    pub label: String,
    /// Start time, seconds from iteration start.
    pub start_s: f64,
    /// End time, seconds.
    pub end_s: f64,
}

impl TraceEvent {
    fn new(stream: Stream, label: impl Into<String>, start_s: f64, end_s: f64) -> Self {
        TraceEvent {
            stream,
            label: label.into(),
            start_s,
            end_s,
        }
    }

    /// Span duration in seconds.
    pub fn duration_s(&self) -> f64 {
        self.end_s - self.start_s
    }
}

/// Produces the two-stream timeline of one iteration for `cfg`. The event
/// end times agree with [`crate::sim::simulate_iteration`].
pub fn trace_iteration(cfg: &SimConfig) -> Vec<TraceEvent> {
    let t_comp = cfg.device.backward_seconds(&cfg.model, cfg.batch);
    let mut events = Vec::new();
    if cfg.workers == 1 {
        events.push(TraceEvent::new(Stream::Compute, "backward", 0.0, t_comp));
        return events;
    }
    match &cfg.method {
        MethodConfig::SyncSgd | MethodConfig::Fp16 => {
            let (byte_scale, cast_s) = if matches!(cfg.method, MethodConfig::Fp16) {
                let enc = encode_cost(&MethodConfig::Fp16, &cfg.model);
                (
                    0.5,
                    cfg.device
                        .scale_encode_seconds(enc.total_with_integration(cfg.workers)),
                )
            } else {
                (1.0, 0.0)
            };
            let backward_end = cfg.device.gamma * t_comp + cast_s;
            events.push(TraceEvent::new(
                Stream::Compute,
                if cast_s > 0.0 {
                    "backward + fp16 cast (γ overlap slowdown)"
                } else {
                    "backward (γ overlap slowdown)"
                },
                0.0,
                backward_end,
            ));
            let buckets = partition(&cfg.model, cfg.bucket_bytes);
            let ready = bucket_ready_fractions(&cfg.model, &buckets);
            let mut comm_free = 0.0f64;
            for (i, (bucket, frac)) in buckets.iter().zip(&ready).enumerate() {
                let start = (backward_end * frac).max(comm_free);
                let bytes = (bucket.bytes as f64 * byte_scale) as usize;
                let dur = match cfg.allreduce {
                    crate::sim::AllReduceAlgo::Ring => {
                        cfg.network.ring_all_reduce(bytes, cfg.workers)
                    }
                    crate::sim::AllReduceAlgo::DoubleTree => {
                        cfg.network.tree_all_reduce(bytes, cfg.workers)
                    }
                };
                events.push(TraceEvent::new(
                    Stream::Comm,
                    format!(
                        "bucket {i} all-reduce ({:.1} MB)",
                        bucket.bytes as f64 / 1e6
                    ),
                    start,
                    start + dur,
                ));
                comm_free = start + dur;
            }
        }
        method => {
            let enc = encode_cost(method, &cfg.model);
            let t_encdec = cfg
                .device
                .scale_encode_seconds(enc.total_with_integration(cfg.workers));
            let plan = crate::wire::wire_plan(method, &cfg.model);
            let (backward_span, encode_span) = if cfg.overlap_compression {
                let end = cfg.device.compression_contention * (t_comp + t_encdec);
                // Contended: both kernels share the stream for the window.
                ((0.0, end), (0.0, end))
            } else {
                ((0.0, t_comp), (t_comp, t_comp + t_encdec))
            };
            events.push(TraceEvent::new(
                Stream::Compute,
                "backward",
                backward_span.0,
                backward_span.1,
            ));
            events.push(TraceEvent::new(
                Stream::Compute,
                "encode/decode",
                encode_span.0,
                encode_span.1,
            ));
            let mut t = encode_span.1;
            for (i, round) in plan.rounds.iter().enumerate() {
                let dur = match round.collective {
                    crate::wire::Collective::AllReduce => match cfg.allreduce {
                        crate::sim::AllReduceAlgo::Ring => {
                            cfg.network.ring_all_reduce(round.bytes, cfg.workers)
                        }
                        crate::sim::AllReduceAlgo::DoubleTree => {
                            cfg.network.tree_all_reduce(round.bytes, cfg.workers)
                        }
                    },
                    crate::wire::Collective::AllGather => {
                        cfg.network.all_gather(round.bytes, cfg.workers)
                    }
                };
                let kind = match round.collective {
                    crate::wire::Collective::AllReduce => "all-reduce",
                    crate::wire::Collective::AllGather => "all-gather",
                };
                events.push(TraceEvent::new(
                    Stream::Comm,
                    format!("round {i} {kind} ({:.1} MB)", round.bytes as f64 / 1e6),
                    t,
                    t + dur,
                ));
                t += dur;
            }
        }
    }
    events
}

/// What happened in a robustness-relevant run event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunEventKind {
    /// A rank reached its scheduled death and stopped participating.
    RankDead {
        /// The rank that died.
        rank: usize,
    },
    /// The survivors shrank the ring from `from` to `to` live members.
    RingShrink {
        /// Live member count before the shrink.
        from: usize,
        /// Live member count after the shrink.
        to: usize,
    },
}

/// One entry in a training run's robustness event log: a dead rank or a
/// ring reconfiguration, stamped with the step it took effect at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunEvent {
    /// Training step the event took effect at.
    pub step: usize,
    /// What happened.
    pub kind: RunEventKind,
}

impl std::fmt::Display for RunEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            RunEventKind::RankDead { rank } => {
                write!(f, "step {}: rank {rank} died", self.step)
            }
            RunEventKind::RingShrink { from, to } => {
                write!(f, "step {}: ring shrank {from} -> {to} workers", self.step)
            }
        }
    }
}

/// Renders a trace as a two-row ASCII Gantt chart of `width` columns.
///
/// # Panics
///
/// Panics if `width < 10`.
pub fn render_ascii(events: &[TraceEvent], width: usize) -> String {
    assert!(width >= 10, "chart needs at least 10 columns");
    let end = events.iter().map(|e| e.end_s).fold(0.0f64, f64::max);
    if end <= 0.0 {
        return String::new();
    }
    let col = |t: f64| ((t / end) * (width as f64 - 1.0)).round() as usize;
    let mut rows = [vec![' '; width], vec![' '; width]];
    for e in events {
        let row = match e.stream {
            Stream::Compute => 0,
            Stream::Comm => 1,
        };
        let (a, b) = (col(e.start_s), col(e.end_s).max(col(e.start_s)));
        let fill = if row == 0 { '█' } else { '▒' };
        for c in &mut rows[row][a..=b.min(width - 1)] {
            *c = fill;
        }
    }
    let mut out = String::new();
    out.push_str(&format!(
        "compute |{}|\ncomm    |{}|\n         0 ms{}{:>8.1} ms\n",
        rows[0].iter().collect::<String>(),
        rows[1].iter().collect::<String>(),
        " ".repeat(width.saturating_sub(16)),
        end * 1e3
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::simulate_iteration;
    use gcs_models::presets;

    #[test]
    fn trace_end_matches_simulator_total() {
        for method in [
            MethodConfig::SyncSgd,
            MethodConfig::Fp16,
            MethodConfig::PowerSgd { rank: 4 },
            MethodConfig::SignSgd,
        ] {
            let cfg = SimConfig::new(presets::resnet50(), 16).method(method.clone());
            let trace = trace_iteration(&cfg);
            let trace_end = trace.iter().map(|e| e.end_s).fold(0.0f64, f64::max);
            let sim_total = simulate_iteration(&cfg).total_s;
            assert!(
                (trace_end - sim_total).abs() < 1e-9,
                "{method:?}: trace {trace_end} vs sim {sim_total}"
            );
        }
    }

    #[test]
    fn syncsgd_comm_overlaps_compute() {
        // Figure 2's visual: bucket all-reduces start well before the
        // backward pass ends.
        let cfg = SimConfig::new(presets::resnet50(), 16);
        let trace = trace_iteration(&cfg);
        let backward_end = trace
            .iter()
            .find(|e| e.stream == Stream::Compute)
            .expect("compute span")
            .end_s;
        let first_comm = trace
            .iter()
            .filter(|e| e.stream == Stream::Comm)
            .map(|e| e.start_s)
            .fold(f64::MAX, f64::min);
        assert!(
            first_comm < 0.2 * backward_end,
            "first bucket must start early: {first_comm} vs backward end {backward_end}"
        );
    }

    #[test]
    fn compressed_trace_is_sequential() {
        let cfg =
            SimConfig::new(presets::resnet50(), 16).method(MethodConfig::PowerSgd { rank: 4 });
        let trace = trace_iteration(&cfg);
        // encode starts when backward ends; comm starts when encode ends.
        let backward = &trace[0];
        let encode = &trace[1];
        assert!((encode.start_s - backward.end_s).abs() < 1e-12);
        let comm_start = trace
            .iter()
            .filter(|e| e.stream == Stream::Comm)
            .map(|e| e.start_s)
            .fold(f64::MAX, f64::min);
        assert!((comm_start - encode.end_s).abs() < 1e-12);
    }

    #[test]
    fn single_worker_trace_is_backward_only() {
        let cfg = SimConfig::new(presets::resnet50(), 1);
        let trace = trace_iteration(&cfg);
        assert_eq!(trace.len(), 1);
        assert_eq!(trace[0].stream, Stream::Compute);
    }

    #[test]
    fn ascii_render_has_two_streams_and_fills() {
        let cfg = SimConfig::new(presets::resnet50(), 16);
        let chart = render_ascii(&trace_iteration(&cfg), 60);
        assert!(chart.contains("compute |"));
        assert!(chart.contains("comm    |"));
        assert!(chart.contains('█'));
        assert!(chart.contains('▒'));
    }

    #[test]
    #[should_panic(expected = "at least 10 columns")]
    fn tiny_chart_panics() {
        let _ = render_ascii(&[], 3);
    }

    #[test]
    fn run_events_render_human_readable() {
        let dead = RunEvent {
            step: 5,
            kind: RunEventKind::RankDead { rank: 3 },
        };
        let shrink = RunEvent {
            step: 5,
            kind: RunEventKind::RingShrink { from: 8, to: 7 },
        };
        assert_eq!(dead.to_string(), "step 5: rank 3 died");
        assert_eq!(shrink.to_string(), "step 5: ring shrank 8 -> 7 workers");
    }
}
