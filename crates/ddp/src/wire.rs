//! Wire plans: how many bytes each method puts on the network, and through
//! which collective.

use gcs_compress::registry::MethodConfig;
use gcs_models::ModelSpec;

/// Which collective a communication round uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Collective {
    /// Ring all-reduce (associative aggregation).
    AllReduce,
    /// All-gather (non-associative aggregation; traffic grows with `p`).
    AllGather,
}

/// One communication round of a compression method.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundPlan {
    /// Bytes contributed per worker in this round.
    pub bytes: usize,
    /// Collective the round runs through.
    pub collective: Collective,
}

/// The full per-iteration communication plan of a method on a model.
#[derive(Debug, Clone, PartialEq)]
pub struct WirePlan {
    /// Rounds in order. syncSGD has one all-reduce round (bucketing is
    /// handled separately by the overlap simulator); PowerSGD has two.
    pub rounds: Vec<RoundPlan>,
}

impl WirePlan {
    /// Total bytes per worker across rounds (what the compression ratio is
    /// computed from).
    pub fn total_bytes(&self) -> usize {
        self.rounds.iter().map(|r| r.bytes).sum()
    }

    /// Compression ratio versus raw `f32` gradients.
    pub fn compression_ratio(&self, model: &ModelSpec) -> f64 {
        model.size_bytes() as f64 / self.total_bytes().max(1) as f64
    }

    /// Whether every round is all-reduce compatible.
    pub fn is_all_reducible(&self) -> bool {
        self.rounds
            .iter()
            .all(|r| r.collective == Collective::AllReduce)
    }
}

/// Builds the wire plan for `method` on `model`.
///
/// For layer-wise methods the per-layer compressed sizes (from the actual
/// compressor implementations) are summed; PowerSGD's two factors are
/// split into their two all-reduce rounds.
///
/// # Panics
///
/// Panics if the method configuration is invalid (rank 0 etc.) — validate
/// configs with [`MethodConfig::build`] first if they come from user input.
pub fn wire_plan(method: &MethodConfig, model: &ModelSpec) -> WirePlan {
    match method {
        MethodConfig::SyncSgd => WirePlan {
            rounds: vec![RoundPlan {
                bytes: model.size_bytes(),
                collective: Collective::AllReduce,
            }],
        },
        MethodConfig::PowerSgd { rank } => {
            assert!(*rank > 0, "invalid PowerSGD rank");
            let (mut p_bytes, mut q_bytes) = (0usize, 0usize);
            for layer in &model.layers {
                let (m, n) = layer.shape.matricized();
                let r = (*rank).min(m).min(n).max(1);
                p_bytes += m * r * 4;
                q_bytes += n * r * 4;
            }
            WirePlan {
                rounds: vec![
                    RoundPlan {
                        bytes: p_bytes,
                        collective: Collective::AllReduce,
                    },
                    RoundPlan {
                        bytes: q_bytes,
                        collective: Collective::AllReduce,
                    },
                ],
            }
        }
        other => {
            // Documented panic contract (see `# Panics` above): callers
            // validate user-supplied configs with MethodConfig::build.
            let compressor = other.build().expect("valid method config"); // lint: allow(panic-in-data-plane)
            let bytes: usize = model
                .layers
                .iter()
                .map(|l| compressor.compressed_bytes(&l.shape))
                .sum();
            let collective = if compressor.properties().all_reducible {
                Collective::AllReduce
            } else {
                Collective::AllGather
            };
            WirePlan {
                rounds: vec![RoundPlan { bytes, collective }],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_models::presets;

    #[test]
    fn syncsgd_moves_full_gradient_via_allreduce() {
        let m = presets::resnet50();
        let plan = wire_plan(&MethodConfig::SyncSgd, &m);
        assert_eq!(plan.total_bytes(), m.size_bytes());
        assert!(plan.is_all_reducible());
        assert!((plan.compression_ratio(&m) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn powersgd_rank4_gives_about_60x_on_resnet50() {
        // The paper: "PowerSGD provides around 60x compression when using
        // Rank-4 for ResNet-50".
        let m = presets::resnet50();
        let plan = wire_plan(&MethodConfig::PowerSgd { rank: 4 }, &m);
        assert_eq!(plan.rounds.len(), 2);
        assert!(plan.is_all_reducible());
        let ratio = plan.compression_ratio(&m);
        assert!((40.0..90.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn signsgd_is_about_32x_and_gathered() {
        let m = presets::resnet101();
        let plan = wire_plan(&MethodConfig::SignSgd, &m);
        assert!(!plan.is_all_reducible());
        let ratio = plan.compression_ratio(&m);
        assert!((28.0..33.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn topk_bytes_track_ratio() {
        let m = presets::bert_base();
        let one = wire_plan(&MethodConfig::TopK { ratio: 0.01 }, &m);
        let ten = wire_plan(&MethodConfig::TopK { ratio: 0.10 }, &m);
        assert!(!one.is_all_reducible());
        let r = ten.total_bytes() as f64 / one.total_bytes() as f64;
        assert!((r - 10.0).abs() < 0.5, "scaling {r}");
    }

    #[test]
    fn fp16_is_exactly_2x() {
        let m = presets::resnet50();
        let plan = wire_plan(&MethodConfig::Fp16, &m);
        assert_eq!(plan.total_bytes(), m.size_bytes() / 2);
        assert!(plan.is_all_reducible());
    }

    #[test]
    fn powersgd_rank_ordering_in_bytes() {
        let m = presets::resnet50();
        let b = |r| wire_plan(&MethodConfig::PowerSgd { rank: r }, &m).total_bytes();
        assert!(b(4) < b(8));
        assert!(b(8) < b(16));
    }
}
