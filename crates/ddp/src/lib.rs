//! Distributed data-parallel engine for the gradient-compression study.
//!
//! Two complementary halves:
//!
//! * [`sim`] — a discrete-event **timing** simulator of one training
//!   iteration with the system optimizations of PyTorch DDP: gradient
//!   bucketing, communication/computation overlap on a separate stream,
//!   the γ contention factor, ring/tree all-reduce, and
//!   sequential-vs-overlapped gradient compression (§3.1). This is the
//!   stand-in for the paper's AWS testbed; the benches sample it (with
//!   calibrated jitter) to produce "measured" curves.
//! * [`exec`] — a real **data-plane** engine: `p` worker threads compress
//!   actual gradients and aggregate them through the channel-level
//!   collectives of `gcs-cluster`, reproducing exactly the semantics of the
//!   centralized reference driver in `gcs-compress`.
//!
//! # Example
//!
//! ```
//! use gcs_compress::registry::MethodConfig;
//! use gcs_ddp::sim::{simulate_iteration, SimConfig};
//!
//! let cfg = SimConfig::new(gcs_models::presets::resnet50(), 16)
//!     .batch_per_worker(64)
//!     .method(MethodConfig::SyncSgd);
//! let breakdown = simulate_iteration(&cfg);
//! assert!(breakdown.total_s > 0.0);
//! ```

#![forbid(unsafe_code)]

pub mod adaptive;
pub mod exec;
pub mod pipeline;
pub mod sim;
pub mod trace;
pub mod wire;

pub use adaptive::{AdaptiveEngine, SwitchRecord};
pub use exec::{summable_wire_bytes, BucketTiming};
pub use pipeline::{PipelineConfig, PipelinedEngine};
pub use trace::{RunEvent, RunEventKind};
