//! Discrete-event timing simulator for one distributed training iteration.
//!
//! Reproduces the mechanics the paper's performance model abstracts
//! (§4.1–4.2):
//!
//! * **syncSGD**: gradients become ready in reverse layer order during the
//!   backward pass; 25 MB buckets launch ring all-reduces on a dedicated
//!   communication stream as they fill, overlapping communication with the
//!   remaining backward work. The backward pass runs γ× slower while
//!   overlapped. The iteration ends when the last bucket's all-reduce
//!   completes.
//! * **compressed methods**: compression runs *after* the backward pass
//!   (the paper's §3.1 finding — overlapping it with backward causes
//!   compute contention and is slower; set
//!   [`SimConfig::overlap_compression`] to simulate the losing variant),
//!   then communication proceeds per the method's [`WirePlan`]: ring
//!   all-reduce rounds for associative schemes, all-gather otherwise.
//!
//! The simulator is deterministic. [`simulate_measured`] adds calibrated
//! multiplicative jitter to emulate testbed noise for Figure-8-style
//! model-vs-measured comparisons.

use crate::wire::{wire_plan, Collective, WirePlan};
use gcs_cluster::cost::NetworkModel;
use gcs_compress::registry::MethodConfig;
use gcs_models::buckets::{bucket_ready_fractions, partition, DEFAULT_BUCKET_BYTES};
use gcs_models::encode_cost::encode_cost;
use gcs_models::{DeviceSpec, ModelSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// All-reduce algorithm selection (the paper forces ring via
/// `NCCL_TREE_THRESHOLD=0`; tree is provided for the ablation bench).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AllReduceAlgo {
    /// Ring reduce-scatter + all-gather (Equation 1).
    #[default]
    Ring,
    /// Double binary tree (logarithmic latency).
    DoubleTree,
}

/// Configuration of one simulated iteration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Model being trained.
    pub model: ModelSpec,
    /// Accelerator spec.
    pub device: DeviceSpec,
    /// Network spec.
    pub network: NetworkModel,
    /// Number of GPUs (weak scaling: batch is per worker).
    pub workers: usize,
    /// Per-worker batch size.
    pub batch: usize,
    /// Compression method.
    pub method: MethodConfig,
    /// DDP bucket size for syncSGD overlap.
    pub bucket_bytes: usize,
    /// Overlap gradient compression with the backward pass (§3.1 ablation;
    /// slower due to compute contention).
    pub overlap_compression: bool,
    /// All-reduce algorithm.
    pub allreduce: AllReduceAlgo,
}

impl SimConfig {
    /// Creates a config with the paper's defaults: V100, 10 Gbps, batch
    /// 64, syncSGD, 25 MB buckets, ring all-reduce, sequential
    /// compression.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(model: ModelSpec, workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        SimConfig {
            model,
            device: DeviceSpec::v100(),
            network: NetworkModel::datacenter_10gbps(),
            workers,
            batch: 64,
            method: MethodConfig::SyncSgd,
            bucket_bytes: DEFAULT_BUCKET_BYTES,
            overlap_compression: false,
            allreduce: AllReduceAlgo::Ring,
        }
    }

    /// Sets the per-worker batch size.
    pub fn batch_per_worker(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Sets the compression method.
    pub fn method(mut self, method: MethodConfig) -> Self {
        self.method = method;
        self
    }

    /// Sets the network model.
    pub fn network(mut self, network: NetworkModel) -> Self {
        self.network = network;
        self
    }

    /// Sets the device.
    pub fn device(mut self, device: DeviceSpec) -> Self {
        self.device = device;
        self
    }

    /// Enables the overlapped-compression variant of §3.1.
    pub fn overlap_compression(mut self, on: bool) -> Self {
        self.overlap_compression = on;
        self
    }

    /// Sets the all-reduce algorithm.
    pub fn allreduce(mut self, algo: AllReduceAlgo) -> Self {
        self.allreduce = algo;
        self
    }

    /// Sets the DDP bucket size.
    ///
    /// # Panics
    ///
    /// Panics if `bytes == 0`.
    pub fn bucket_bytes(mut self, bytes: usize) -> Self {
        assert!(bytes > 0, "bucket size must be positive");
        self.bucket_bytes = bytes;
        self
    }

    fn all_reduce_time(&self, bytes: usize) -> f64 {
        match self.allreduce {
            AllReduceAlgo::Ring => self.network.ring_all_reduce(bytes, self.workers),
            AllReduceAlgo::DoubleTree => self.network.tree_all_reduce(bytes, self.workers),
        }
    }
}

/// Timing breakdown of one simulated iteration (backward + gradient sync;
/// the forward pass is identical across methods and excluded, as in the
/// paper's measurements).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationBreakdown {
    /// Pure backward-pass time `T_comp` (no contention factors).
    pub backward_s: f64,
    /// Encode + decode time.
    pub encode_decode_s: f64,
    /// Total communication busy time.
    pub comm_s: f64,
    /// Communication time *not* hidden behind compute.
    pub exposed_comm_s: f64,
    /// End-to-end iteration time (backward start → gradients ready).
    pub total_s: f64,
    /// Bytes contributed to the wire per worker.
    pub wire_bytes: usize,
}

impl IterationBreakdown {
    /// Fraction of the iteration spent on useful compute
    /// (`backward / total`) — 1.0 means perfect scaling.
    pub fn compute_utilization(&self) -> f64 {
        if self.total_s <= 0.0 {
            return 0.0;
        }
        (self.backward_s / self.total_s).min(1.0)
    }

    /// Slowdown versus perfect weak scaling (`total / backward`, ≥ 1).
    pub fn slowdown_vs_ideal(&self) -> f64 {
        if self.backward_s <= 0.0 {
            return 1.0;
        }
        (self.total_s / self.backward_s).max(1.0)
    }

    /// Training throughput in samples per second for a per-worker batch
    /// of `batch` across `workers` workers.
    ///
    /// # Panics
    ///
    /// Panics if the breakdown has a non-positive total time.
    pub fn samples_per_second(&self, batch: usize, workers: usize) -> f64 {
        assert!(self.total_s > 0.0, "breakdown must have positive time");
        (batch * workers) as f64 / self.total_s
    }
}

/// Simulates one iteration and returns its timing breakdown.
pub fn simulate_iteration(cfg: &SimConfig) -> IterationBreakdown {
    let t_comp = cfg.device.backward_seconds(&cfg.model, cfg.batch);
    if cfg.workers == 1 {
        // Single worker: no communication, no compression needed.
        return IterationBreakdown {
            backward_s: t_comp,
            encode_decode_s: 0.0,
            comm_s: 0.0,
            exposed_comm_s: 0.0,
            total_s: t_comp,
            wire_bytes: 0,
        };
    }
    match &cfg.method {
        MethodConfig::SyncSgd => simulate_bucketed(cfg, t_comp, 1.0, 0.0),
        // FP16 rides the DDP bucket pipeline: the comm hook casts each
        // bucket in place (cheap, memory-bound) and all-reduces half the
        // bytes, so it overlaps exactly like syncSGD.
        MethodConfig::Fp16 => {
            let enc = encode_cost(&MethodConfig::Fp16, &cfg.model);
            let t_cast = cfg
                .device
                .scale_encode_seconds(enc.total_with_integration(cfg.workers));
            simulate_bucketed(cfg, t_comp, 0.5, t_cast)
        }
        method => simulate_compressed(cfg, t_comp, method),
    }
}

/// The DDP bucket pipeline: overlapped per-bucket all-reduce on
/// `byte_scale` of each bucket's bytes, plus `encode_s` of cheap per-bucket
/// compression work charged to the compute stream.
fn simulate_bucketed(
    cfg: &SimConfig,
    t_comp: f64,
    byte_scale: f64,
    encode_s: f64,
) -> IterationBreakdown {
    let buckets = partition(&cfg.model, cfg.bucket_bytes);
    let ready_frac = bucket_ready_fractions(&cfg.model, &buckets);
    let backward_end = cfg.device.gamma * t_comp + encode_s;
    let mut comm_free = 0.0f64;
    let mut comm_busy = 0.0f64;
    for (bucket, frac) in buckets.iter().zip(&ready_frac) {
        let ready = backward_end * frac;
        let start = ready.max(comm_free);
        let dur = cfg.all_reduce_time((bucket.bytes as f64 * byte_scale) as usize);
        comm_free = start + dur;
        comm_busy += dur;
    }
    let total = comm_free.max(backward_end);
    IterationBreakdown {
        backward_s: t_comp,
        encode_decode_s: encode_s,
        comm_s: comm_busy,
        exposed_comm_s: (total - backward_end).max(0.0),
        total_s: total,
        wire_bytes: (cfg.model.size_bytes() as f64 * byte_scale) as usize,
    }
}

/// A compressed method: backward, then encode/decode, then its wire plan.
fn simulate_compressed(cfg: &SimConfig, t_comp: f64, method: &MethodConfig) -> IterationBreakdown {
    let enc = encode_cost(method, &cfg.model);
    let t_encdec = cfg
        .device
        .scale_encode_seconds(enc.total_with_integration(cfg.workers));
    let plan: WirePlan = wire_plan(method, &cfg.model);
    let mut comm = 0.0f64;
    for round in &plan.rounds {
        comm += match round.collective {
            Collective::AllReduce => cfg.all_reduce_time(round.bytes),
            Collective::AllGather => cfg.network.all_gather(round.bytes, cfg.workers),
        };
    }
    let compute_phase = if cfg.overlap_compression {
        // §3.1: compression and backward compete for the GPU; both slow
        // down by the contention factor, so the overlapped variant costs
        // more than running them back to back.
        cfg.device.compression_contention * (t_comp + t_encdec)
    } else {
        t_comp + t_encdec
    };
    let total = compute_phase + comm;
    IterationBreakdown {
        backward_s: t_comp,
        encode_decode_s: t_encdec,
        comm_s: comm,
        exposed_comm_s: comm,
        total_s: total,
        wire_bytes: plan.total_bytes(),
    }
}

/// Time to process one epoch of `dataset_size` samples under weak
/// scaling: `ceil(N / (batch·p))` iterations at the simulated
/// per-iteration time. This is the "fixed number of epochs" accounting
/// behind Finding 2: larger batches mean fewer communications per epoch,
/// compounding the per-iteration overlap advantage.
///
/// # Panics
///
/// Panics if `dataset_size == 0`.
pub fn epoch_seconds(cfg: &SimConfig, dataset_size: usize) -> f64 {
    assert!(dataset_size > 0, "dataset must be non-empty");
    let global_batch = cfg.batch * cfg.workers;
    let iters = dataset_size.div_ceil(global_batch).max(1);
    iters as f64 * simulate_iteration(cfg).total_s
}

/// Simulates local SGD / periodic averaging: workers take `period` local
/// steps between gradient/parameter exchanges, amortizing one
/// communication (with full overlap mechanics on the sync step) over the
/// window. Returns the **per-step** breakdown.
///
/// This is the "reduce communication frequency" alternative the paper
/// contrasts with compression (§2): with `period = 1` it reduces to
/// [`simulate_iteration`].
///
/// # Panics
///
/// Panics if `period == 0`.
pub fn simulate_local_sgd(cfg: &SimConfig, period: usize) -> IterationBreakdown {
    assert!(period > 0, "local SGD period must be positive");
    let one = simulate_iteration(cfg);
    if period == 1 || cfg.workers == 1 {
        return one;
    }
    let t_comp = one.backward_s;
    // period-1 silent local steps + one fully synced step.
    let window = (period - 1) as f64 * t_comp + one.total_s;
    let h = period as f64;
    IterationBreakdown {
        backward_s: t_comp,
        encode_decode_s: one.encode_decode_s / h,
        comm_s: one.comm_s / h,
        exposed_comm_s: one.exposed_comm_s / h,
        total_s: window / h,
        wire_bytes: one.wire_bytes / period,
    }
}

/// Simulates one iteration under **strong scaling**: a fixed global batch
/// split across workers (`batch = global_batch / p`, minimum 1). Weak
/// scaling (the paper's default) keeps per-worker batch constant instead.
///
/// Strong scaling squeezes `T_comp` as workers are added, eroding
/// syncSGD's overlap window — the regime where compression becomes useful
/// earlier.
///
/// # Panics
///
/// Panics if `global_batch == 0`.
pub fn simulate_strong_scaling(cfg: &SimConfig, global_batch: usize) -> IterationBreakdown {
    assert!(global_batch > 0, "global batch must be positive");
    let per_worker = (global_batch / cfg.workers).max(1);
    simulate_iteration(&cfg.clone().batch_per_worker(per_worker))
}

/// Samples `iters` jittered iteration times (seconds), emulating testbed
/// noise: multiplicative Gaussian jitter with the ~4% std the paper's
/// error bars show, never below 90% of the deterministic time.
pub fn simulate_measured(cfg: &SimConfig, iters: usize, seed: u64) -> Vec<f64> {
    let base = simulate_iteration(cfg).total_s;
    let mut rng = StdRng::seed_from_u64(seed);
    (0..iters)
        .map(|_| {
            // Sum of 4 uniforms ≈ Gaussian (Irwin–Hall), cheap and bounded.
            let u: f64 = (0..4).map(|_| rng.gen::<f64>()).sum::<f64>() / 4.0 - 0.5;
            let eps = u * 0.16; // std ≈ 0.04
            base * (1.0 + eps).max(0.9)
        })
        .collect()
}

/// Mean and standard deviation of [`simulate_measured`] samples.
pub fn measured_mean_std(cfg: &SimConfig, iters: usize, seed: u64) -> (f64, f64) {
    let samples = simulate_measured(cfg, iters, seed);
    gcs_tensor::stats::mean_std(&samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_models::presets;

    fn cfg(model: ModelSpec, workers: usize) -> SimConfig {
        SimConfig::new(model, workers)
    }

    #[test]
    fn breakdown_utility_accessors() {
        let b = simulate_iteration(&cfg(presets::resnet50(), 16));
        assert!(b.compute_utilization() > 0.0 && b.compute_utilization() <= 1.0);
        assert!(b.slowdown_vs_ideal() >= 1.0);
        assert!(
            (b.compute_utilization() * b.slowdown_vs_ideal() - 1.0).abs() < 1e-9,
            "utilization and slowdown are reciprocal"
        );
        let sps = b.samples_per_second(64, 16);
        assert!((sps - 1024.0 / b.total_s).abs() < 1e-9);
    }

    #[test]
    fn single_worker_is_pure_compute() {
        let b = simulate_iteration(&cfg(presets::resnet50(), 1));
        assert_eq!(b.total_s, b.backward_s);
        assert_eq!(b.comm_s, 0.0);
    }

    #[test]
    fn syncsgd_total_at_least_backward() {
        let b = simulate_iteration(&cfg(presets::resnet50(), 16));
        assert!(b.total_s >= b.backward_s);
        assert!(b.exposed_comm_s >= 0.0);
    }

    #[test]
    fn syncsgd_scales_nearly_flat_with_workers() {
        // Ring all-reduce: weak-scaling iteration time grows slowly.
        let m = presets::resnet50();
        let t8 = simulate_iteration(&cfg(m.clone(), 8)).total_s;
        let t96 = simulate_iteration(&cfg(m, 96)).total_s;
        assert!(t96 / t8 < 1.5, "syncSGD should be near-flat: {}", t96 / t8);
    }

    #[test]
    fn gather_methods_scale_linearly_with_workers() {
        let m = presets::resnet101();
        let mk = |p| simulate_iteration(&cfg(m.clone(), p).method(MethodConfig::SignSgd)).total_s;
        let t8 = mk(8);
        let t96 = mk(96);
        assert!(
            t96 / t8 > 2.5,
            "SignSGD must degrade at scale: {}",
            t96 / t8
        );
    }

    #[test]
    fn signsgd_96gpu_resnet101_matches_paper_magnitudes() {
        // Paper §1: SignSGD ~1075 ms vs syncSGD <265 ms for ResNet-101 at
        // 96 GPUs. Shapes (and rough magnitudes) must hold.
        let m = presets::resnet101();
        let sign = simulate_iteration(&cfg(m.clone(), 96).method(MethodConfig::SignSgd)).total_s;
        let sync = simulate_iteration(&cfg(m, 96)).total_s;
        assert!(sign > 2.5 * sync, "sign {sign} vs sync {sync}");
        assert!(sync < 0.45, "sync {sync}");
        assert!(sign > 0.6, "sign {sign}");
    }

    #[test]
    fn powersgd_beats_syncsgd_on_bert_at_scale() {
        // Figure 4: BERT at 96 GPUs, rank 4 ≈ 23% faster than syncSGD.
        let m = presets::bert_base();
        let sync = simulate_iteration(&cfg(m.clone(), 96).batch_per_worker(12)).total_s;
        let psgd = simulate_iteration(
            &cfg(m, 96)
                .batch_per_worker(12)
                .method(MethodConfig::PowerSgd { rank: 4 }),
        )
        .total_s;
        assert!(psgd < sync, "psgd {psgd} vs sync {sync}");
    }

    #[test]
    fn powersgd_loses_on_resnet50_batch64() {
        // Figure 4: PowerSGD slower than syncSGD for ResNet-50 at batch 64.
        let m = presets::resnet50();
        let sync = simulate_iteration(&cfg(m.clone(), 64)).total_s;
        let psgd =
            simulate_iteration(&cfg(m, 64).method(MethodConfig::PowerSgd { rank: 4 })).total_s;
        assert!(psgd > sync, "psgd {psgd} vs sync {sync}");
    }

    #[test]
    fn powersgd_wins_at_small_batch_loses_at_large_batch() {
        // Figure 7 (ResNet-101): rank 4 ≈ 40% faster at batch 16, ~10%
        // slower at batch 64.
        let m = presets::resnet101();
        let speedup = |batch| {
            let sync = simulate_iteration(&cfg(m.clone(), 64).batch_per_worker(batch)).total_s;
            let psgd = simulate_iteration(
                &cfg(m.clone(), 64)
                    .batch_per_worker(batch)
                    .method(MethodConfig::PowerSgd { rank: 4 }),
            )
            .total_s;
            sync / psgd
        };
        assert!(speedup(16) > 1.2, "batch 16 speedup {}", speedup(16));
        assert!(speedup(64) < 1.05, "batch 64 speedup {}", speedup(64));
        assert!(speedup(16) > speedup(32));
        assert!(speedup(32) > speedup(64));
    }

    #[test]
    fn topk_never_beats_syncsgd() {
        // Figure 5: across models and scales Top-K loses.
        for m in presets::paper_models() {
            for p in [8usize, 32, 96] {
                let batch = if m.name.starts_with("BERT") { 12 } else { 64 };
                let sync = simulate_iteration(&cfg(m.clone(), p).batch_per_worker(batch)).total_s;
                let topk = simulate_iteration(
                    &cfg(m.clone(), p)
                        .batch_per_worker(batch)
                        .method(MethodConfig::TopK { ratio: 0.01 }),
                )
                .total_s;
                assert!(topk > sync, "{} p={p}: topk {topk} sync {sync}", m.name);
            }
        }
    }

    #[test]
    fn overlapped_compression_is_slower_than_sequential() {
        // Figure 3.
        let m = presets::resnet101();
        for method in [
            MethodConfig::PowerSgd { rank: 4 },
            MethodConfig::TopK { ratio: 0.01 },
            MethodConfig::SignSgd,
        ] {
            let seq = simulate_iteration(&cfg(m.clone(), 16).method(method.clone())).total_s;
            let ovl = simulate_iteration(
                &cfg(m.clone(), 16)
                    .method(method.clone())
                    .overlap_compression(true),
            )
            .total_s;
            assert!(ovl > seq, "{method:?}: overlap {ovl} vs sequential {seq}");
        }
    }

    #[test]
    fn tree_allreduce_wins_at_scale_for_small_payloads() {
        let m = presets::resnet50();
        let small = cfg(m, 128).method(MethodConfig::PowerSgd { rank: 4 });
        let ring = simulate_iteration(&small).total_s;
        let tree = simulate_iteration(&small.clone().allreduce(AllReduceAlgo::DoubleTree)).total_s;
        assert!(tree < ring, "tree {tree} vs ring {ring}");
    }

    #[test]
    fn smaller_buckets_cost_more_latency() {
        // Comm-bound configuration (small batch): per-bucket all-reduce
        // latency is exposed, so shrinking buckets hurts.
        let m = presets::bert_base();
        let big = simulate_iteration(
            &cfg(m.clone(), 32)
                .batch_per_worker(8)
                .bucket_bytes(25 << 20),
        )
        .total_s;
        let tiny =
            simulate_iteration(&cfg(m, 32).batch_per_worker(8).bucket_bytes(256 << 10)).total_s;
        assert!(tiny > big, "tiny-bucket {tiny} vs 25MB {big}");
    }

    #[test]
    fn epoch_time_rewards_large_batches_twice() {
        // Finding 2's mechanism: at fixed epochs, batch 64 beats batch 16
        // by MORE than the per-iteration ratio would suggest, because it
        // also does 4x fewer communications.
        let m = presets::resnet101();
        let n = 1_281_167; // ImageNet train size
        let e16 = epoch_seconds(&cfg(m.clone(), 64).batch_per_worker(16), n);
        let e64 = epoch_seconds(&cfg(m.clone(), 64).batch_per_worker(64), n);
        assert!(e64 < e16, "batch 64 epoch {e64} vs batch 16 {e16}");
        // And the *relative* advantage of syncSGD over PowerSGD grows in
        // epoch terms exactly as in iteration terms (same iteration count).
        let p16 = epoch_seconds(
            &cfg(m.clone(), 64)
                .batch_per_worker(16)
                .method(MethodConfig::PowerSgd { rank: 4 }),
            n,
        );
        assert!(p16 < e16, "PowerSGD should win per epoch at batch 16 too");
    }

    #[test]
    #[should_panic(expected = "dataset must be non-empty")]
    fn epoch_zero_dataset_panics() {
        let _ = epoch_seconds(&cfg(presets::resnet50(), 4), 0);
    }

    #[test]
    fn strong_scaling_erodes_syncsgd_overlap() {
        // Fixed global batch 1024: at 64 workers each gets 16 samples and
        // syncSGD loses its overlap window; PowerSGD's relative position
        // improves versus weak scaling at the same worker count.
        let m = presets::resnet101();
        let global = 1024usize;
        let speedup_at = |p: usize| {
            let sync = simulate_strong_scaling(&cfg(m.clone(), p), global).total_s;
            let psgd = simulate_strong_scaling(
                &cfg(m.clone(), p).method(MethodConfig::PowerSgd { rank: 4 }),
                global,
            )
            .total_s;
            sync / psgd
        };
        assert!(
            speedup_at(64) > speedup_at(8),
            "compression must gain ground as strong scaling starves compute: {} vs {}",
            speedup_at(64),
            speedup_at(8)
        );
    }

    #[test]
    #[should_panic(expected = "global batch must be positive")]
    fn strong_scaling_zero_batch_panics() {
        let _ = simulate_strong_scaling(&cfg(presets::resnet50(), 4), 0);
    }

    #[test]
    fn local_sgd_amortizes_communication() {
        let c = cfg(presets::bert_base(), 64).batch_per_worker(8);
        let t1 = simulate_local_sgd(&c, 1).total_s;
        let t4 = simulate_local_sgd(&c, 4).total_s;
        let t16 = simulate_local_sgd(&c, 16).total_s;
        assert!((t1 - simulate_iteration(&c).total_s).abs() < 1e-12);
        assert!(t4 < t1, "period 4 {t4} vs 1 {t1}");
        assert!(t16 < t4);
        // As period -> inf, per-step time approaches pure compute.
        let t_comp = c.device.backward_seconds(&c.model, c.batch);
        let t256 = simulate_local_sgd(&c, 256).total_s;
        assert!(
            (t256 - t_comp) / t_comp < 0.05,
            "t256 {t256} vs T_comp {t_comp}"
        );
    }

    #[test]
    fn local_sgd_reduces_gap_more_than_compression_needs_to() {
        // Period-8 local SGD already hides almost all communication even
        // for the comm-heavy BERT, without any encode cost.
        let c = cfg(presets::bert_base(), 96).batch_per_worker(12);
        let local8 = simulate_local_sgd(&c, 8).total_s;
        let psgd =
            simulate_iteration(&c.clone().method(MethodConfig::PowerSgd { rank: 4 })).total_s;
        assert!(local8 < psgd, "local SGD {local8} vs PowerSGD {psgd}");
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn local_sgd_zero_period_panics() {
        let _ = simulate_local_sgd(&cfg(presets::resnet50(), 4), 0);
    }

    #[test]
    fn measured_jitter_is_centered_and_bounded() {
        let c = cfg(presets::resnet50(), 16);
        let base = simulate_iteration(&c).total_s;
        let samples = simulate_measured(&c, 200, 7);
        let (mean, std) = gcs_tensor::stats::mean_std(&samples);
        assert!((mean - base).abs() / base < 0.02, "mean {mean} vs {base}");
        assert!(std / base < 0.08, "std {std}");
        assert!(samples.iter().all(|&s| s >= 0.9 * base));
    }

    #[test]
    fn measured_is_deterministic_per_seed() {
        let c = cfg(presets::resnet50(), 8);
        assert_eq!(simulate_measured(&c, 10, 1), simulate_measured(&c, 10, 1));
        assert_ne!(simulate_measured(&c, 10, 1), simulate_measured(&c, 10, 2));
    }
}
