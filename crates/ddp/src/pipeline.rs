//! Pipelined bucket exchange: comm/compute overlap in the real data plane.
//!
//! The sequential engine ([`exec::exchange_gradients_with_plan`]) encodes
//! a bucket, blocks inside the collective, absorbs, and only then touches
//! the next bucket — so while bytes are on the wire the CPU idles, and
//! while the CPU encodes the wire idles. [`PipelinedEngine`] splits each
//! worker into two threads:
//!
//! ```text
//!  encode thread (caller)          comm thread (gcs_cluster::CommEngine)
//!  ──────────────────────          ────────────────────────────────────
//!  pack+encode bucket 0  ──job──▶  collective(bucket 0)
//!  pack+encode bucket 1  ──job──▶  collective(bucket 1)
//!  absorb bucket 0 ◀──reply──────  ...
//!  pack+encode bucket 2  ──job──▶
//!  ...
//! ```
//!
//! The job queue is a *bounded* channel of depth
//! [`PipelineConfig::depth`] (default 2 — classic double buffering), so
//! the encode thread can run at most `depth` buckets ahead before
//! backpressure stalls it. Completions are always consumed **in
//! submission order** (the in-order absorb invariant): the engine keeps a
//! FIFO of in-flight buckets and only ever waits on the front, which is
//! also the job the comm thread finishes first.
//!
//! # Bit-exactness
//!
//! The pipelined engine performs *exactly* the arithmetic of the
//! sequential engine, just on a different thread:
//!
//! * summable payloads ride the same plain ring `all_reduce_sum` followed
//!   by the same f32 divide-by-world (Half payloads are decoded to f32
//!   before submission and re-rounded after, mirroring
//!   `aggregate_over_cluster_with`);
//! * gather payloads are serialized to the same bytes, all-gathered, and
//!   aggregated by the same `Compressor::aggregate` call.
//!
//! Hence pipelined output is bit-identical to the sequential engine for
//! every method in the registry (asserted in `tests/pipeline_bitexact.rs`).
//!
//! Setting [`PipelineConfig::chunk_elems`] switches summable reductions
//! to the staggered chunked ring, which cuts time-to-first-byte on large
//! buckets but accumulates each element in a chunk-dependent order — use
//! it for throughput experiments, not when comparing bits against the
//! sequential engine.

use std::collections::VecDeque;

use gcs_cluster::{CommEngine, PendingGather, PendingReduce, WorkerHandle};
use gcs_compress::{Compressor, Factor, Payload};
use gcs_tensor::f16::{decode_f16, encode_f16};
use gcs_tensor::Tensor;

use crate::exec::{summable_wire_bytes, BucketPlan, BucketTiming, Result};
use gcs_compress::driver::{switch_scheme, ResidualPolicy, SwitchOutcome};

/// Tuning knobs for [`PipelinedEngine`].
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Bucket capacity in bytes (of uncompressed f32 gradient). PyTorch
    /// DDP defaults to 25 MiB; small models end up with one bucket and no
    /// overlap, so benches use ~1 MiB buckets.
    pub bucket_bytes: usize,
    /// Bound on in-flight collectives (job-queue depth, ≥ 1). Depth 1
    /// degenerates to the sequential schedule (submit, wait, absorb);
    /// depth 2 is double buffering.
    pub depth: usize,
    /// `Some(c)`: use the staggered chunked ring with `c`-element segments
    /// for summable reductions. `None` (default): plain ring,
    /// bit-identical to the sequential engine.
    pub chunk_elems: Option<usize>,
    /// Present packed buckets to the compressor as near-square matrices
    /// (see [`BucketPlan::matricized`]) instead of flat vectors. Needed
    /// for PowerSGD-class methods to actually compress buckets; off by
    /// default to match the flat sequential/reference semantics.
    pub matricize: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            bucket_bytes: 25 * 1024 * 1024,
            depth: 2,
            chunk_elems: None,
            matricize: false,
        }
    }
}

/// Everything needed to rebuild a summable payload around the reduced f32
/// buffer that comes back from the comm thread.
enum Shell {
    Dense,
    Half,
    Factor {
        which: Factor,
        rows: usize,
        cols: usize,
    },
    SharedSparse {
        len: usize,
        seed: u64,
    },
}

/// One in-flight bucket: which collective it is riding and how to turn
/// the completion back into a payload.
enum Inflight {
    Reduce {
        bucket: usize,
        shell: Shell,
        pending: PendingReduce,
    },
    Gather {
        bucket: usize,
        pending: PendingGather,
    },
}

/// A worker-side pipelined exchange engine: encode path on the calling
/// thread, collectives on a dedicated comm thread, connected by a bounded
/// channel. See the module docs for the thread layout and invariants.
pub struct PipelinedEngine<C: Compressor> {
    comm: CommEngine,
    compressor: C,
    cfg: PipelineConfig,
    plan: Option<BucketPlan>,
    /// Recycled gather-path serialization buffers (up to `depth` circulate).
    wire_pool: Vec<Vec<u8>>,
    /// Per-bucket timing probes of the most recent exchange. In a
    /// pipelined schedule `comm_s` is the *exposed* (wait-blocked)
    /// communication time — overlap hides the rest, which is precisely
    /// the quantity an adaptive policy should react to.
    timings: Vec<BucketTiming>,
}

impl<C: Compressor> PipelinedEngine<C> {
    /// Moves `worker` onto a dedicated comm thread and wraps `compressor`
    /// in the pipelined schedule.
    ///
    /// # Errors
    ///
    /// Returns an error if `cfg.depth == 0` or the comm thread cannot be
    /// spawned.
    pub fn new(worker: WorkerHandle, compressor: C, cfg: PipelineConfig) -> Result<Self> {
        Ok(PipelinedEngine {
            comm: CommEngine::spawn(worker, cfg.depth)?,
            compressor,
            cfg,
            plan: None,
            wire_pool: Vec::new(),
            timings: Vec::new(),
        })
    }

    /// Per-bucket timing probes of the most recent [`exchange`](Self::exchange).
    pub fn last_timings(&self) -> &[BucketTiming] {
        &self.timings
    }

    /// The scheme-switch point of the pipelined plane: replaces the
    /// engine's compressor with `new` at a step boundary, moving (or
    /// documented-resetting) every bucket's error-feedback residual per
    /// `policy`. Returns the old compressor and one [`SwitchOutcome`] per
    /// bucket of the current plan. Must only be called between exchanges
    /// — the engine never holds in-flight collectives across
    /// [`exchange`](Self::exchange) calls, so that boundary is always
    /// safe.
    ///
    /// # Errors
    ///
    /// Propagates residual-reconciliation protocol errors.
    pub fn swap_compressor(
        &mut self,
        mut new: C,
        policy: ResidualPolicy,
    ) -> Result<(C, Vec<SwitchOutcome>)> {
        let buckets = self.plan.as_ref().map_or(0, BucketPlan::num_buckets);
        let mut outcomes = Vec::with_capacity(buckets);
        for bucket in 0..buckets {
            outcomes.push(switch_scheme(&mut self.compressor, &mut new, bucket, policy)?);
        }
        Ok((std::mem::replace(&mut self.compressor, new), outcomes))
    }

    /// Rank of the underlying worker.
    pub fn rank(&self) -> usize {
        self.comm.rank()
    }

    /// World size of the underlying cluster.
    pub fn world(&self) -> usize {
        self.comm.world()
    }

    /// Stops the comm thread and returns the worker handle and compressor.
    pub fn into_parts(self) -> (WorkerHandle, C) {
        let PipelinedEngine {
            comm, compressor, ..
        } = self;
        (comm.shutdown(), compressor)
    }

    /// Runs one full compressed bucket exchange, overlapping each bucket's
    /// collective with the next bucket's encode. Returns the decoded
    /// aggregated gradients in layer order — bit-identical (with the
    /// default plain ring) to `exchange_gradients_bucketed` on the same
    /// inputs.
    ///
    /// # Errors
    ///
    /// Propagates compression and transport errors.
    pub fn exchange(&mut self, grads: &[Tensor]) -> Result<Vec<Tensor>> {
        // (Re)build the bucket plan only when the gradient layout changes.
        if !self.plan.as_ref().is_some_and(|p| p.matches(grads)) {
            self.plan = Some(if self.cfg.matricize {
                BucketPlan::matricized(grads, self.cfg.bucket_bytes)
            } else {
                BucketPlan::new(grads, self.cfg.bucket_bytes)
            });
        }
        let Some(mut plan) = self.plan.take() else {
            // Installed unconditionally above; reachable only through a
            // logic error in this function.
            unreachable!("bucket plan installed above");
        };
        let result = self.exchange_with_plan(grads, &mut plan);
        self.plan = Some(plan);
        result
    }

    fn exchange_with_plan(
        &mut self,
        grads: &[Tensor],
        plan: &mut BucketPlan,
    ) -> Result<Vec<Tensor>> {
        let rounds = self.compressor.properties().rounds;
        let mut inflight: VecDeque<Inflight> = VecDeque::new();
        let mut timings: Vec<BucketTiming> = (0..plan.num_buckets())
            .map(|bucket| BucketTiming {
                bucket,
                ..BucketTiming::default()
            })
            .collect();
        for round in 0..rounds {
            // Indexed loop: `complete_front` needs the whole `timings`
            // slice mid-iteration, so an `iter_mut` would double-borrow.
            #[allow(clippy::needless_range_loop)]
            for bucket_id in 0..plan.num_buckets() {
                // Backpressure: never run more than `depth` buckets ahead
                // of the oldest unabsorbed collective.
                while inflight.len() >= self.cfg.depth {
                    self.complete_front(round, &mut inflight, &mut timings)?;
                }
                let t0 = std::time::Instant::now();
                let payload = if round == 0 {
                    let flat = plan.pack(grads, bucket_id)?;
                    let p = self.compressor.encode(bucket_id, &flat);
                    plan.reclaim(flat);
                    p?
                } else {
                    self.compressor.encode_round(bucket_id, round)?
                };
                timings[bucket_id].encode_s += t0.elapsed().as_secs_f64();
                inflight.push_back(self.submit(bucket_id, payload, &mut timings[bucket_id])?);
            }
            // Rounds are a barrier: encode_round(i, r+1) may require the
            // absorb of round r for bucket i, so drain before moving on.
            while !inflight.is_empty() {
                self.complete_front(round, &mut inflight, &mut timings)?;
            }
        }
        let flats: Vec<Tensor> = (0..plan.num_buckets())
            .map(|bucket_id| {
                let t0 = std::time::Instant::now();
                let flat = self.compressor.finish(bucket_id, plan.bucket_shape(bucket_id))?;
                timings[bucket_id].decode_s += t0.elapsed().as_secs_f64();
                Ok(flat)
            })
            .collect::<Result<_>>()?;
        self.timings = timings;
        plan.scatter(grads, flats)
    }

    /// Hands one encoded payload to the comm thread, choosing the
    /// collective exactly like `aggregate_over_cluster_with`.
    fn submit(
        &mut self,
        bucket: usize,
        payload: Payload,
        timing: &mut BucketTiming,
    ) -> Result<Inflight> {
        if payload.is_summable() {
            timing.ring_bytes += summable_wire_bytes(&payload);
            timing.ring_rounds += 1;
            let (shell, data) = match payload {
                Payload::Dense(v) => (Shell::Dense, v),
                // Sum the f32 images and re-round after the divide, exactly
                // like the sequential engine's Half arm.
                Payload::Half(h) => (Shell::Half, decode_f16(&h)),
                Payload::Factor {
                    which,
                    rows,
                    cols,
                    data,
                } => (Shell::Factor { which, rows, cols }, data),
                Payload::SharedSparse { len, seed, values } => {
                    (Shell::SharedSparse { len, seed }, values)
                }
                other => unreachable!("is_summable() covered {:?}", other.kind_name()),
            };
            let pending = self.comm.start_all_reduce_sum(data, self.cfg.chunk_elems)?;
            Ok(Inflight::Reduce {
                bucket,
                shell,
                pending,
            })
        } else {
            let mut wire = self.wire_pool.pop().unwrap_or_default();
            wire.clear();
            payload.write_bytes(&mut wire);
            timing.gather_bytes += wire.len() as u64;
            timing.gather_rounds += 1;
            let pending = self.comm.start_all_gather(wire)?;
            Ok(Inflight::Gather { bucket, pending })
        }
    }

    /// Waits for the oldest in-flight collective, finishes its aggregation
    /// arithmetic, and absorbs it — the in-order absorb invariant.
    fn complete_front(
        &mut self,
        round: usize,
        inflight: &mut VecDeque<Inflight>,
        timings: &mut [BucketTiming],
    ) -> Result<()> {
        let Some(front) = inflight.pop_front() else {
            return Ok(());
        };
        match front {
            Inflight::Reduce {
                bucket,
                shell,
                pending,
            } => {
                let t0 = std::time::Instant::now();
                let mut data = pending.wait()?;
                timings[bucket].comm_s += t0.elapsed().as_secs_f64();
                let t1 = std::time::Instant::now();
                let world = self.comm.world() as f32;
                for x in &mut data {
                    *x /= world;
                }
                let agg = match shell {
                    Shell::Dense => Payload::Dense(data),
                    Shell::Half => Payload::Half(encode_f16(&data)),
                    Shell::Factor { which, rows, cols } => Payload::Factor {
                        which,
                        rows,
                        cols,
                        data,
                    },
                    Shell::SharedSparse { len, seed } => Payload::SharedSparse {
                        len,
                        seed,
                        values: data,
                    },
                };
                self.compressor.absorb(bucket, round, agg)?;
                timings[bucket].decode_s += t1.elapsed().as_secs_f64();
            }
            Inflight::Gather { bucket, pending } => {
                let t0 = std::time::Instant::now();
                let (frames, wire) = pending.wait()?;
                timings[bucket].comm_s += t0.elapsed().as_secs_f64();
                let t1 = std::time::Instant::now();
                self.wire_pool.push(wire);
                let payloads: Vec<Payload> = frames
                    .iter()
                    .map(|b| Payload::from_bytes(b))
                    .collect::<gcs_compress::Result<_>>()?;
                let agg = self.compressor.aggregate(round, &payloads)?;
                self.compressor.absorb(bucket, round, agg)?;
                timings[bucket].decode_s += t1.elapsed().as_secs_f64();
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::exchange_gradients_bucketed;
    use gcs_cluster::SimCluster;
    use gcs_compress::registry::MethodConfig;

    fn make_grads(rank: usize, shapes: &[Vec<usize>]) -> Vec<Tensor> {
        shapes
            .iter()
            .enumerate()
            .map(|(l, s)| Tensor::randn(s.clone(), 90 + (rank * 131 + l) as u64))
            .collect()
    }

    fn assert_pipeline_matches_sequential(method: MethodConfig, bucket_bytes: usize) {
        let shapes = vec![vec![40usize, 3], vec![64], vec![9, 7], vec![128], vec![5]];
        let p = 4;
        let sequential = SimCluster::run(p, |w| {
            let mut c = method.build().unwrap();
            let grads = make_grads(w.rank(), &shapes);
            exchange_gradients_bucketed(&w, &mut c, &grads, bucket_bytes).unwrap()
        });
        let pipelined = SimCluster::run(p, |w| {
            let c = method.build().unwrap();
            let grads = make_grads(w.rank(), &shapes);
            let cfg = PipelineConfig {
                bucket_bytes,
                depth: 2,
                chunk_elems: None,
                matricize: false,
            };
            let mut eng = PipelinedEngine::new(w, c, cfg).unwrap();
            // Two steps through one engine: the cached plan and recycled
            // buffers must not change results.
            let first = eng.exchange(&grads).unwrap();
            let second = eng.exchange(&grads).unwrap();
            let _ = eng.into_parts();
            (first, second)
        });
        for (seq, (pipe1, pipe2)) in sequential.iter().zip(&pipelined) {
            for ((s, p1), p2) in seq.iter().zip(pipe1).zip(pipe2) {
                let sb: Vec<u32> = s.data().iter().map(|x| x.to_bits()).collect();
                let p1b: Vec<u32> = p1.data().iter().map(|x| x.to_bits()).collect();
                assert_eq!(sb, p1b, "{method:?} step 1 deviates");
                // Stateless methods repeat exactly; stateful ones (error
                // feedback, warm start) evolve — but both engines see the
                // same state trajectory, so only step 1 of a fresh engine
                // is comparable. Still, step 2 must be finite and sized.
                assert_eq!(p2.numel(), s.numel());
                assert!(p2.data().iter().all(|x| x.is_finite()));
            }
        }
    }

    #[test]
    fn pipeline_matches_sequential_syncsgd_multi_bucket() {
        assert_pipeline_matches_sequential(MethodConfig::SyncSgd, 600);
    }

    #[test]
    fn pipeline_matches_sequential_powersgd() {
        assert_pipeline_matches_sequential(MethodConfig::PowerSgd { rank: 2 }, 600);
    }

    #[test]
    fn pipeline_matches_sequential_topk_gather_path() {
        assert_pipeline_matches_sequential(MethodConfig::TopK { ratio: 0.25 }, 600);
    }

    #[test]
    fn pipeline_matches_sequential_single_bucket() {
        assert_pipeline_matches_sequential(MethodConfig::SignSgd, usize::MAX);
    }

    #[test]
    fn matricized_pipeline_matches_matricized_sequential() {
        // Matricized buckets change what the compressor sees (a near-square
        // matrix instead of a flat vector) but not the engine schedule, so
        // pipelined and sequential must still agree bit for bit.
        use crate::exec::{exchange_gradients_with_plan, BucketPlan};
        let shapes = vec![vec![40usize, 3], vec![64], vec![9, 7]];
        for method in [
            MethodConfig::PowerSgd { rank: 2 },
            MethodConfig::TopK { ratio: 0.25 },
        ] {
            let outs = SimCluster::run(4, |w| {
                let c = method.build().unwrap();
                let grads = make_grads(w.rank(), &shapes);
                let cfg = PipelineConfig {
                    bucket_bytes: 600,
                    depth: 2,
                    chunk_elems: None,
                    matricize: true,
                };
                let mut eng = PipelinedEngine::new(w, c, cfg).unwrap();
                let out = eng.exchange(&grads).unwrap();
                let (w, _) = eng.into_parts();
                let mut c2 = method.build().unwrap();
                let mut plan = BucketPlan::matricized(&grads, 600);
                let seq = exchange_gradients_with_plan(&w, &mut c2, &grads, &mut plan).unwrap();
                (out, seq)
            });
            for (pipe, seq) in outs {
                for (p, s) in pipe.iter().zip(&seq) {
                    assert_eq!(
                        p.data().iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                        s.data().iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                        "{method:?}: matricized pipelined deviates from sequential"
                    );
                }
            }
        }
    }

    #[test]
    fn depth_one_degenerates_to_sequential() {
        let shapes = vec![vec![32usize], vec![48], vec![16]];
        let outs = SimCluster::run(3, |w| {
            let c = MethodConfig::SyncSgd.build().unwrap();
            let grads = make_grads(w.rank(), &shapes);
            let cfg = PipelineConfig {
                bucket_bytes: 200,
                depth: 1,
                chunk_elems: None,
                matricize: false,
            };
            let mut eng = PipelinedEngine::new(w, c, cfg).unwrap();
            let out = eng.exchange(&grads).unwrap();
            let (w, _) = eng.into_parts();
            let mut c2 = MethodConfig::SyncSgd.build().unwrap();
            let grads2 = make_grads(w.rank(), &shapes);
            let seq = exchange_gradients_bucketed(&w, &mut c2, &grads2, 200).unwrap();
            (out, seq)
        });
        for (pipe, seq) in outs {
            for (p, s) in pipe.iter().zip(&seq) {
                assert_eq!(
                    p.data().iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    s.data().iter().map(|x| x.to_bits()).collect::<Vec<_>>()
                );
            }
        }
    }

    #[test]
    fn chunked_ring_option_stays_close_to_plain() {
        // Chunked reductions reorder the per-element accumulation, so
        // expect f32-noise-level differences, not equality.
        let shapes = vec![vec![300usize], vec![200]];
        let outs = SimCluster::run(4, |w| {
            let c = MethodConfig::SyncSgd.build().unwrap();
            let grads = make_grads(w.rank(), &shapes);
            let cfg = PipelineConfig {
                bucket_bytes: usize::MAX,
                depth: 2,
                chunk_elems: Some(64),
                matricize: false,
            };
            let mut eng = PipelinedEngine::new(w, c, cfg).unwrap();
            let out = eng.exchange(&grads).unwrap();
            let (w, _) = eng.into_parts();
            let mut c2 = MethodConfig::SyncSgd.build().unwrap();
            let seq =
                exchange_gradients_bucketed(&w, &mut c2, &grads, usize::MAX).unwrap();
            (out, seq)
        });
        for (pipe, seq) in outs {
            for (p, s) in pipe.iter().zip(&seq) {
                for (a, b) in p.data().iter().zip(s.data()) {
                    assert!((a - b).abs() <= 1e-4 * b.abs().max(1.0), "{a} vs {b}");
                }
            }
        }
    }

    /// The controller's dependency-free `LinkModel` must price collectives
    /// exactly like the cluster's `NetworkModel` — the whole point of the
    /// online Equation-1 estimate is that it agrees with the cost layer.
    #[test]
    fn link_model_matches_network_model() {
        use gcs_cluster::cost::NetworkModel;
        use gcs_compress::adaptive::LinkModel;
        for &incast in &[0.0f64, 0.3, 0.7] {
            let net = NetworkModel::new(15e-6, 1.25e9).with_incast(incast);
            let mut link = LinkModel::new(15e-6, 1.25e9).unwrap();
            link.incast = incast;
            for &bytes in &[1_000usize, 1_000_000, 100_000_000] {
                for &p in &[1usize, 2, 4, 16, 64] {
                    let ring_net = net.ring_all_reduce(bytes, p);
                    let ring_link = link.ring_all_reduce(bytes as f64, p);
                    assert!(
                        (ring_net - ring_link).abs() <= 1e-15 * ring_net.abs().max(1.0),
                        "ring mismatch: {ring_net} vs {ring_link} (bytes={bytes}, p={p})"
                    );
                    let gather_net = net.all_gather(bytes, p);
                    let gather_link = link.all_gather(bytes as f64, p);
                    assert!(
                        (gather_net - gather_link).abs()
                            <= 1e-15 * gather_net.abs().max(1.0),
                        "gather mismatch: {gather_net} vs {gather_link} (bytes={bytes}, p={p})"
                    );
                }
            }
        }
    }

    #[test]
    fn pipeline_timing_probes_count_wire_traffic() {
        let shapes = vec![vec![256usize], vec![200]];
        let outs = SimCluster::run(2, |w| {
            let c = MethodConfig::SyncSgd.build().unwrap();
            let grads = make_grads(w.rank(), &shapes);
            let cfg = PipelineConfig {
                bucket_bytes: 256 * 4,
                depth: 2,
                chunk_elems: None,
                matricize: false,
            };
            let mut eng = PipelinedEngine::new(w, c, cfg).unwrap();
            eng.exchange(&grads).unwrap();
            eng.last_timings().to_vec()
        });
        for timings in outs {
            assert_eq!(timings.len(), 2);
            let mut bytes: Vec<u64> = timings.iter().map(|t| t.ring_bytes).collect();
            bytes.sort_unstable();
            assert_eq!(bytes, vec![200 * 4, 256 * 4]);
            for t in &timings {
                assert_eq!(t.ring_rounds, 1);
                assert_eq!(t.gather_rounds, 0);
                assert!(t.encode_s >= 0.0 && t.comm_s >= 0.0 && t.decode_s >= 0.0);
            }
        }
    }

    #[test]
    fn swap_compressor_at_step_boundary_carries_residual() {
        use gcs_compress::driver::ResidualPolicy;
        use gcs_compress::topk::TopK;
        use gcs_compress::Compressor;
        let shapes = vec![vec![128usize], vec![96]];
        let outs = SimCluster::run(2, |w| {
            let c: Box<dyn Compressor> =
                Box::new(TopK::new(0.25).unwrap().error_feedback(true));
            let grads = make_grads(w.rank(), &shapes);
            let cfg = PipelineConfig {
                bucket_bytes: 128 * 4,
                depth: 2,
                chunk_elems: None,
                matricize: false,
            };
            let mut eng = PipelinedEngine::new(w, c, cfg).unwrap();
            eng.exchange(&grads).unwrap();
            let replacement = MethodConfig::EfSignSgd.build().unwrap();
            let (_old, outcomes) = eng
                .swap_compressor(replacement, ResidualPolicy::Carry)
                .unwrap();
            let out = eng.exchange(&grads).unwrap();
            (outcomes, out)
        });
        for (outcomes, out) in outs {
            // Top-K at ratio 0.25 leaves a residual in every bucket; the
            // carry must move it into the replacement scheme.
            assert_eq!(outcomes.len(), 2);
            assert!(outcomes.iter().all(|o| o.carried));
            assert!(outcomes.iter().all(|o| o.residual_norm > 0.0));
            assert!(out
                .iter()
                .all(|t| t.data().iter().all(|x| x.is_finite())));
        }
    }
}
